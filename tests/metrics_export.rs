//! Golden-file test of the flight-recorder export.
//!
//! A short deterministic run of the fig5 reference configuration —
//! `ReunionDmr(Oltp)` — records a 10 k-cycle-interval metrics
//! time-series; its JSONL rendering must match the checked-in
//! `tests/data/metrics_golden.jsonl` byte for byte. This pins the
//! sampling cadence, the delta conventions (counter deltas, gauge
//! last-values, mergeable histogram deltas), and the JSON serializer.
//!
//! After an *intentional* change to the sampled metrics or the export
//! format, regenerate the golden file:
//!
//! ```text
//! MMM_BLESS=1 cargo test --release --test metrics_export
//! ```

use mmm_core::{System, Workload};
use mmm_trace::{chrome_trace_with_counters, Json, MetricsSeries, Sampler, Tracer};
use mmm_types::SystemConfig;
use mmm_workload::Benchmark;

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/metrics_golden.jsonl"
);

const INTERVAL: u64 = 10_000;
const HORIZON: u64 = 60_000;

/// The fig5 reference run with the flight recorder attached: every
/// core busy under Reunion DMR, six sampling boundaries.
fn build() -> (System, MetricsSeries) {
    let cfg = SystemConfig::default();
    let mut sys = System::new(&cfg, Workload::ReunionDmr(Benchmark::Oltp), 1)
        .expect("golden metrics system builds");
    sys.attach_tracer(Tracer::ring(1 << 14));
    sys.attach_sampler(Sampler::every(INTERVAL));
    sys.run(HORIZON);
    let series = sys.sampler().series().expect("sampler attached");
    (sys, series)
}

#[test]
fn metrics_jsonl_matches_golden() {
    let (_, series) = build();
    let got = series.to_jsonl("Reunion", "OLTP");
    if std::env::var("MMM_BLESS").is_ok() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).expect(
        "tests/data/metrics_golden.jsonl missing — regenerate with \
         MMM_BLESS=1 cargo test --release --test metrics_export",
    );
    if got != want {
        let at = got
            .bytes()
            .zip(want.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.len().min(want.len()));
        let lo = at.saturating_sub(80);
        panic!(
            "metrics.jsonl drifted from golden (got {} bytes, want {}, first \
             difference at byte {at}):\n  got:  ...{}\n  want: ...{}\n\
             If the change is intentional, regenerate with \
             MMM_BLESS=1 cargo test --release --test metrics_export",
            got.len(),
            want.len(),
            &got[lo..(at + 80).min(got.len())],
            &want[lo..(at + 80).min(want.len())],
        );
    }
}

#[test]
fn series_has_every_boundary_and_the_flagship_metrics() {
    let (_, series) = build();
    assert_eq!(series.interval, INTERVAL);
    assert_eq!(series.samples.len() as u64, HORIZON / INTERVAL);
    for (i, s) in series.samples.iter().enumerate() {
        assert_eq!(s.at, (i as u64 + 1) * INTERVAL, "boundary cadence");
        assert!(
            s.counters.iter().any(|(n, _)| n == "reunion.ops_compared"),
            "every interval compares ops on a fully-paired machine"
        );
    }
    let last = series.samples.last().unwrap();
    assert!(
        last.histograms
            .iter()
            .any(|(n, _)| n == "reunion.channel_occupancy"),
        "pair-channel occupancy histogram sampled"
    );
}

/// The counter tracks appended to the Chrome trace are well-formed
/// Perfetto counter events: `"ph":"C"`, a name, a numeric
/// `args.value`, and per-name monotone timestamps.
#[test]
fn counter_tracks_are_well_formed() {
    let (sys, series) = build();
    let doc = chrome_trace_with_counters(&sys.tracer().snapshot(), 16, sys.now(), &series);
    let parsed = Json::parse(&doc).expect("trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut last_ts: std::collections::BTreeMap<String, u64> = Default::default();
    let mut counters = 0;
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("C") {
            continue;
        }
        counters += 1;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .expect("counter has a name");
        let ts = ev
            .get("ts")
            .and_then(Json::as_u64)
            .expect("counter has an integer ts");
        let prev = last_ts.insert(name.to_string(), ts).unwrap_or(0);
        assert!(ts >= prev, "counter {name} timestamps must be monotone");
        ev.get("args")
            .and_then(|a| a.get("value"))
            .and_then(Json::as_f64)
            .expect("counter has a numeric args.value");
    }
    assert!(counters > 0, "counter tracks present");
}

/// The sampler is purely observational: a sampled run and an
/// unsampled run of the same seed are bit-identical measurements.
#[test]
fn sampling_does_not_change_timing() {
    let cfg = SystemConfig::default();
    let w = Workload::ReunionDmr(Benchmark::Oltp);
    let run = |sampled: bool| {
        let mut sys = System::new(&cfg, w, 5).unwrap();
        if sampled {
            sys.attach_sampler(Sampler::every(7_000));
        }
        let r = sys.run_measured(10_000, 60_000);
        (
            r.total_user_commits(),
            r.cores.si_stall_cycles,
            r.mem.c2c_transfers,
            r.pairs.ops_compared,
        )
    };
    assert_eq!(run(false), run(true), "sampling altered simulated timing");
}
