//! Reproducibility: identical seeds give bit-identical experiments for
//! every configuration — the property the whole evaluation methodology
//! rests on.

use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;

fn fingerprint(w: Workload, seed: u64) -> (u64, u64, u64, u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 120_000;
    let mut sys = System::new(&cfg, w, seed).expect("valid workload");
    let r = sys.run_measured(60_000, 400_000);
    (
        r.total_user_commits(),
        r.vcpus.iter().map(|v| v.os_commits).sum(),
        r.mem.c2c_transfers,
        r.pairs.ops_compared,
        r.transitions.enter.count() + r.transitions.leave.count(),
    )
}

fn all_workloads() -> Vec<Workload> {
    let b = Benchmark::Apache;
    vec![
        Workload::NoDmr2x(b),
        Workload::NoDmr(b),
        Workload::ReunionDmr(b),
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::DmrBase,
        },
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::MmmIpc,
        },
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::MmmTp,
        },
        Workload::SingleOsMixed(b),
    ]
}

#[test]
fn same_seed_is_bit_identical_for_every_configuration() {
    for w in all_workloads() {
        assert_eq!(
            fingerprint(w, 42),
            fingerprint(w, 42),
            "{} must be deterministic",
            w.name()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let w = Workload::ReunionDmr(Benchmark::Apache);
    assert_ne!(fingerprint(w, 1), fingerprint(w, 2));
}

#[test]
fn fault_injection_is_deterministic_too() {
    let run = || {
        let mut cfg = SystemConfig::default();
        cfg.virt.timeslice_cycles = 120_000;
        let mut sys = System::new(
            &cfg,
            Workload::Consolidated {
                bench: Benchmark::Oltp,
                policy: MixedPolicy::MmmTp,
            },
            9,
        )
        .unwrap();
        sys.enable_fault_injection(1e-5, 33);
        let r = sys.run_measured(50_000, 400_000);
        (r.faults, r.total_user_commits())
    };
    assert_eq!(run(), run());
}
