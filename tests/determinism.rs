//! Reproducibility: identical seeds give bit-identical experiments for
//! every configuration — the property the whole evaluation methodology
//! rests on.

use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;

fn fingerprint(w: Workload, seed: u64) -> (u64, u64, u64, u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 120_000;
    let mut sys = System::new(&cfg, w, seed).expect("valid workload");
    let r = sys.run_measured(60_000, 400_000);
    (
        r.total_user_commits(),
        r.vcpus.iter().map(|v| v.os_commits).sum(),
        r.mem.c2c_transfers,
        r.pairs.ops_compared,
        r.transitions.enter.count() + r.transitions.leave.count(),
    )
}

fn all_workloads() -> Vec<Workload> {
    let b = Benchmark::Apache;
    vec![
        Workload::NoDmr2x(b),
        Workload::NoDmr(b),
        Workload::ReunionDmr(b),
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::DmrBase,
        },
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::MmmIpc,
        },
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::MmmTp,
        },
        Workload::SingleOsMixed(b),
    ]
}

#[test]
fn same_seed_is_bit_identical_for_every_configuration() {
    for w in all_workloads() {
        assert_eq!(
            fingerprint(w, 42),
            fingerprint(w, 42),
            "{} must be deterministic",
            w.name()
        );
    }
}

#[test]
fn different_seeds_differ() {
    let w = Workload::ReunionDmr(Benchmark::Apache);
    assert_ne!(fingerprint(w, 1), fingerprint(w, 2));
}

#[test]
fn fault_injection_is_deterministic_too() {
    let run = || {
        let mut cfg = SystemConfig::default();
        cfg.virt.timeslice_cycles = 120_000;
        let mut sys = System::new(
            &cfg,
            Workload::Consolidated {
                bench: Benchmark::Oltp,
                policy: MixedPolicy::MmmTp,
            },
            9,
        )
        .unwrap();
        sys.enable_fault_injection(1e-5, 33);
        let r = sys.run_measured(50_000, 400_000);
        (r.faults, r.total_user_commits())
    };
    assert_eq!(run(), run());
}

/// The report, canonicalized for cross-variant comparison: the
/// wall-clock timing (and the throughput gauge derived from it) is the
/// one host-dependent field, so it is zeroed before rendering.
fn canonical_json(mut r: mixed_mode_multicore::mmm::SystemReport) -> String {
    r.wall_seconds = 0.0;
    r.to_json()
}

/// Reports must be bit-identical no matter how the simulation is
/// hosted: worker-thread count of the experiment driver (`MMM_THREADS`
/// takes any value) and event tracing on or off are observability /
/// throughput knobs, not model inputs. One report per scheduler mode,
/// compared across all variants as rendered JSON.
#[test]
fn report_is_invariant_across_threads_and_tracing() {
    use mixed_mode_multicore::mmm::Experiment;
    use mixed_mode_multicore::trace::Tracer;

    let mut e = Experiment::default();
    e.cfg.virt.timeslice_cycles = 120_000;
    e.warmup = 20_000;
    e.measure = 150_000;
    e.seeds = vec![11, 12];
    let modes = all_workloads();

    // Baseline: sequential, untraced.
    let baseline: Vec<Vec<String>> = modes
        .iter()
        .map(|&w| {
            e.seeds
                .iter()
                .map(|&s| canonical_json(e.run_one(w, s).unwrap()))
                .collect()
        })
        .collect();

    // Same jobs through the shared work-queue at different pool sizes.
    for threads in [1, 4] {
        let many = e.run_many_on(&modes, threads).unwrap();
        for (w, (run, expect)) in modes.iter().zip(many.iter().zip(&baseline)) {
            let got: Vec<String> = run
                .reports
                .iter()
                .map(|r| canonical_json(r.clone()))
                .collect();
            assert_eq!(
                &got,
                expect,
                "{} must not depend on thread count ({threads})",
                w.name()
            );
        }
    }

    // Tracing attached: identical reports, merely observed.
    for (w, expect) in modes.iter().zip(&baseline) {
        let mut sys = System::new(&e.cfg, *w, e.seeds[0]).unwrap();
        sys.attach_tracer(Tracer::ring(1 << 12));
        let r = sys.run_measured(e.warmup, e.measure);
        assert_eq!(
            canonical_json(r),
            expect[0],
            "{} must not depend on tracing",
            w.name()
        );
    }
}

/// The flight recorder is an observability knob with the same
/// contract as tracing: attaching a sampler leaves the report
/// bit-identical, and the recorded time-series itself is invariant
/// across cycle fast-forwarding (skipped spans settle and boundary
/// samples still fire) and across the experiment driver's worker
/// thread count.
#[test]
fn sampled_series_is_invariant_across_skipping_and_threads() {
    use mixed_mode_multicore::mmm::Experiment;

    let mut e = Experiment::default();
    e.cfg.virt.timeslice_cycles = 120_000;
    e.warmup = 20_000;
    e.measure = 150_000;
    e.seeds = vec![7];
    let modes = [
        Workload::ReunionDmr(Benchmark::Apache),
        Workload::Consolidated {
            bench: Benchmark::Apache,
            policy: MixedPolicy::MmmTp,
        },
        Workload::SingleOsMixed(Benchmark::Apache),
    ];
    for w in modes {
        // Baseline: no sampler, skipping on.
        let plain = canonical_json(e.run_one(w, 7).unwrap());

        let mut es = e.clone();
        es.sample_interval = Some(25_000);
        let mut sampled = es.run_one(w, 7).unwrap();
        let series = sampled.series.take().expect("sampler attached");
        assert!(!series.samples.is_empty(), "{}: series recorded", w.name());
        assert_eq!(
            canonical_json(sampled),
            plain,
            "{}: sampling must not change the report",
            w.name()
        );

        // Fast-forwarding off: same report, same series.
        let mut eskip = es.clone();
        eskip.cycle_skipping = false;
        let mut noskip = eskip.run_one(w, 7).unwrap();
        assert_eq!(
            noskip.series.take().as_ref(),
            Some(&series),
            "{}: series must be skip-invariant",
            w.name()
        );
        assert_eq!(
            canonical_json(noskip),
            plain,
            "{}: skip-off must not change the report",
            w.name()
        );

        // Same job through the work-queue at different pool sizes.
        for threads in [1, 4] {
            let run = es.run_many_on(&[w], threads).unwrap().remove(0);
            assert_eq!(
                run.reports[0].series.as_ref(),
                Some(&series),
                "{}: series must not depend on thread count ({threads})",
                w.name()
            );
        }
    }
}

/// The self-profiler has the same contract as tracing and sampling:
/// it reads only the host clock, so reports *and* the sampled metrics
/// series stay bit-identical with the profiler on or off, and across
/// the experiment driver's worker thread count.
#[test]
fn report_and_series_are_invariant_under_profiling() {
    use mixed_mode_multicore::mmm::Experiment;

    let mut e = Experiment::default();
    e.cfg.virt.timeslice_cycles = 120_000;
    e.warmup = 20_000;
    e.measure = 150_000;
    e.seeds = vec![5];
    e.sample_interval = Some(25_000);
    let modes = [
        Workload::ReunionDmr(Benchmark::Apache),
        Workload::Consolidated {
            bench: Benchmark::Apache,
            policy: MixedPolicy::MmmTp,
        },
        Workload::SingleOsMixed(Benchmark::Apache),
    ];
    for w in modes {
        // Baseline: profiler off.
        let mut plain = e.run_one(w, 5).unwrap();
        let series = plain.series.take().expect("sampler attached");
        assert!(plain.profile.is_none(), "{}: profiler off", w.name());
        let plain_json = canonical_json(plain);

        // Profiler on: identical report and series, plus a profile
        // whose phases tile the measured window exactly.
        let mut ep = e.clone();
        ep.profile = true;
        let mut profiled = ep.run_one(w, 5).unwrap();
        let prof = profiled.profile.take().expect("profiler attached");
        assert_eq!(
            profiled.series.take().as_ref(),
            Some(&series),
            "{}: profiling must not change the series",
            w.name()
        );
        assert_eq!(
            canonical_json(profiled),
            plain_json,
            "{}: profiling must not change the report",
            w.name()
        );
        let nanos_sum: u64 = prof.phase_nanos.iter().map(|&(_, n)| n).sum();
        assert_eq!(
            nanos_sum,
            prof.total_nanos,
            "{}: phase shares must sum to 100% of the window",
            w.name()
        );
        assert_eq!(
            prof.advanced_cycles,
            e.measure,
            "{}: the profiler saw every measured cycle",
            w.name()
        );
        assert!(prof.ticks > 0, "{}: executed ticks recorded", w.name());

        // Same profiled job through the work-queue at different pool
        // sizes: still bit-identical to the unprofiled baseline.
        for threads in [1, 4] {
            let run = ep.run_many_on(&[w], threads).unwrap().remove(0);
            let mut r = run.reports[0].clone();
            assert_eq!(
                r.series.take().as_ref(),
                Some(&series),
                "{}: series must not depend on thread count ({threads})",
                w.name()
            );
            assert_eq!(
                canonical_json(r),
                plain_json,
                "{}: profiled report must not depend on thread count ({threads})",
                w.name()
            );
        }
    }
}
