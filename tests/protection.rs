//! End-to-end protection tests: the fault-containment story of the
//! paper, exercised with aggressive fault injection.

use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;

fn consolidated(policy: MixedPolicy) -> Workload {
    Workload::Consolidated {
        bench: Benchmark::Pgoltp,
        policy,
    }
}

#[test]
fn dmr_detects_every_fault_that_strikes_a_pair() {
    let cfg = SystemConfig::default();
    // All-DMR machine: every busy-core fault must surface as a
    // detected fingerprint mismatch.
    let mut sys = System::new(&cfg, Workload::ReunionDmr(Benchmark::Pmake), 1).unwrap();
    sys.enable_fault_injection(5e-6, 42);
    let r = sys.run_measured(50_000, 800_000);
    assert!(r.faults.injected > 10, "faults: {}", r.faults.injected);
    assert_eq!(
        r.faults.injected, r.faults.detected_by_dmr,
        "every core is paired: all faults detected ({:?})",
        r.faults
    );
    assert!(r.pairs.faults_detected >= r.faults.detected_by_dmr);
    // The machine survived: work continued after every recovery.
    assert!(r.total_user_commits() > 100_000);
}

#[test]
fn pab_blocks_wild_stores_aimed_at_reliable_memory() {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 150_000;
    let mut sys = System::new(&cfg, consolidated(MixedPolicy::MmmTp), 2).unwrap();
    // Reliable pages are ~5% of the wild-target space, so the rate and
    // horizon must yield enough wild stores for a hit to be certain.
    sys.enable_fault_injection(2e-5, 7);
    let r = sys.run_measured(50_000, 1_500_000);
    assert!(
        r.faults.wild_stores_blocked > 0,
        "some wild stores must target reliable pages: {:?}",
        r.faults
    );
    assert!(
        r.pab.violations >= r.faults.wild_stores_blocked,
        "each blocked store raised a PAB violation"
    );
    // In-pipeline stores of fault-free software never violate: the
    // only violations are the injected wild stores.
    assert_eq!(r.pab.violations, r.faults.wild_stores_blocked);
}

#[test]
fn wild_store_outcomes_track_the_protected_fraction() {
    // The reliable VM owns 1 GB, machine regions ~0.6 GB, the three
    // perf VM spans 3 GB of the ~33.6 GB wild-target space; most wild
    // stores land in unmapped/perf space and only the reliable slice
    // is blocked. With enough samples both outcomes appear.
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 150_000;
    let mut sys = System::new(&cfg, consolidated(MixedPolicy::MmmTp), 3).unwrap();
    sys.enable_fault_injection(2e-5, 11);
    let r = sys.run_measured(50_000, 1_500_000);
    assert!(r.faults.wild_stores_blocked > 0);
    assert!(r.faults.wild_stores_corrupting > 0);
    let total_wild = r.faults.wild_stores_blocked + r.faults.wild_stores_corrupting;
    assert!(total_wild > 10, "need samples: {total_wild}");
}

#[test]
fn privreg_corruption_is_caught_at_the_next_dmr_entry() {
    // Only PerfUser VCPUs re-enter DMR (at OS entries), so only the
    // single-OS mixed mode exercises the Enter-DMR verification that
    // catches privileged-register corruption. Apache enters the OS
    // every ~60k cycles, giving plenty of verification points.
    let cfg = SystemConfig::default();
    let mut sys = System::new(&cfg, Workload::SingleOsMixed(Benchmark::Apache), 4).unwrap();
    sys.enable_fault_injection(2e-5, 13);
    let r = sys.run_measured(50_000, 1_500_000);
    assert!(
        r.faults.privreg_caught_at_entry > 0,
        "per-syscall DMR entries verify privileged state: {:?}",
        r.faults
    );
    // Pure performance guests, by contrast, absorb such faults
    // silently (tolerated by contract).
    let mut cfg2 = SystemConfig::default();
    cfg2.virt.timeslice_cycles = 100_000;
    let mut sys2 = System::new(&cfg2, consolidated(MixedPolicy::MmmIpc), 4).unwrap();
    sys2.enable_fault_injection(2e-5, 13);
    let r2 = sys2.run_measured(50_000, 800_000);
    assert_eq!(
        r2.faults.privreg_caught_at_entry, 0,
        "performance-mode guests never verify: {:?}",
        r2.faults
    );
}

#[test]
fn per_vm_coverage_reflects_each_guest_contract() {
    use mmm_types::VmId;
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 150_000;
    let mut sys = System::new(&cfg, consolidated(MixedPolicy::MmmTp), 8).unwrap();
    let r = sys.run_measured(50_000, 600_000);
    assert!(
        (r.vm_dmr_coverage(VmId(0)) - 1.0).abs() < 1e-12,
        "the reliable guest runs fully covered: {}",
        r.vm_dmr_coverage(VmId(0))
    );
    for vm in [VmId(1), VmId(2)] {
        assert_eq!(
            r.vm_dmr_coverage(vm),
            0.0,
            "pure performance guests run fully unprotected"
        );
    }
    // Machine-wide coverage sits strictly between the extremes.
    let c = r.dmr_coverage();
    assert!((0.05..0.95).contains(&c), "mixed machine coverage: {c}");
}

#[test]
fn fault_free_runs_report_no_fault_activity() {
    let cfg = SystemConfig::default();
    let mut sys = System::new(&cfg, consolidated(MixedPolicy::MmmTp), 5).unwrap();
    let r = sys.run_measured(50_000, 300_000);
    assert_eq!(r.faults.injected, 0);
    assert_eq!(r.pab.violations, 0);
    assert_eq!(r.pairs.faults_detected, 0);
}

#[test]
fn pab_demap_keeps_verdicts_consistent() {
    use mixed_mode_multicore::mmm::{check_store, Pab, Pat};
    use mmm_types::{CoreId, PageAddr};

    let cfg = SystemConfig::default();
    let mut mem = mixed_mode_multicore::mem::MemorySystem::new(&cfg);
    let pab = std::cell::RefCell::new(Pab::new(cfg.pab));
    let mut pat = Pat::new();
    let page = PageAddr(12_345);
    let line = page.first_line();

    // Initially writable by anyone.
    let (_, v) = check_store(&pab, CoreId(0), line, &pat, &mut mem, 0);
    assert_eq!(v, mixed_mode_multicore::mmm::PabVerdict::Allowed);

    // System software reassigns the page to a reliable app: PAT
    // updated, TLB demapped, PAB invalidated via the demap hook.
    pat.set_reliable(page, true);
    pab.borrow_mut().on_demap(pat.backing_line(page));
    let (_, v) = check_store(&pab, CoreId(0), line, &pat, &mut mem, 1000);
    assert_eq!(
        v,
        mixed_mode_multicore::mmm::PabVerdict::Violation,
        "post-demap check sees the new PAT contents"
    );
}
