//! Golden-value regression pins.
//!
//! A cycle-level simulator's most dangerous failure mode is a silent
//! timing change: everything still "works", every trend test still
//! passes, but the numbers drifted and yesterday's calibration no
//! longer holds. These tests pin exact committed-instruction counts
//! for fixed `(configuration, seed, cycle-count)` triples, one per
//! scheduling mode.
//!
//! **If one of these fails after an intentional model change:** verify
//! the change, regenerate the pins
//! (`cargo run --release -p mmm-bench --example golden_gen`),
//! re-run the calibration probe (`... --example calib`) and re-derive
//! workload phase lengths if baseline IPC moved, update the values
//! below — and re-run the full evaluation suite so `results/` and
//! `EXPERIMENTS.md` stay truthful.

use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;

fn commits(w: Workload, seed: u64, warmup: u64, measure: u64, timeslice: u64) -> (u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = timeslice;
    let mut sys = System::new(&cfg, w, seed).expect("valid workload");
    let r = sys.run_measured(warmup, measure);
    (
        r.total_user_commits(),
        r.vcpus.iter().map(|v| v.os_commits).sum(),
    )
}

fn check(name: &str, got: (u64, u64), want: (u64, u64)) {
    assert_eq!(
        got, want,
        "{name}: (user, os) commit counts drifted — if the model change \
         was intentional, regenerate with `cargo run --release -p \
         mmm-bench --example golden_gen`, update this pin, and re-run \
         the calibration + evaluation suite"
    );
}

#[test]
fn golden_no_dmr_2x_oltp() {
    check(
        "no_dmr_2x_oltp",
        commits(
            Workload::NoDmr2x(Benchmark::Oltp),
            1,
            100_000,
            400_000,
            3_000_000,
        ),
        (1_774_489, 245_282),
    );
}

#[test]
fn golden_reunion_apache() {
    check(
        "reunion_apache",
        commits(
            Workload::ReunionDmr(Benchmark::Apache),
            7,
            100_000,
            400_000,
            3_000_000,
        ),
        (395_359, 309_219),
    );
}

#[test]
fn golden_mmm_tp_pmake() {
    check(
        "mmm_tp_pmake",
        commits(
            Workload::Consolidated {
                bench: Benchmark::Pmake,
                policy: MixedPolicy::MmmTp,
            },
            3,
            100_000,
            500_000,
            150_000,
        ),
        (2_021_074, 198_726),
    );
}

#[test]
fn golden_single_os_zeus() {
    check(
        "single_os_zeus",
        commits(
            Workload::SingleOsMixed(Benchmark::Zeus),
            11,
            100_000,
            400_000,
            3_000_000,
        ),
        (258_596, 384_655),
    );
}

#[test]
fn golden_overcommit_pgoltp() {
    check(
        "overcommit_pgoltp",
        commits(
            Workload::Overcommitted {
                bench: Benchmark::Pgoltp,
                reliable: 3,
                perf: 12,
            },
            5,
            100_000,
            400_000,
            200_000,
        ),
        (1_350_006, 174_326),
    );
}
