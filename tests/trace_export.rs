//! Golden-file test of the Chrome trace export.
//!
//! A short deterministic run of the consolidated server is traced and
//! rendered through [`mmm_trace::chrome_trace`]; the result must match
//! the checked-in `tests/data/trace_golden.json` byte for byte. This
//! pins the whole observability pipeline — event emission sites, ring
//! ordering, and the JSON serializer — so accidental drift in any layer
//! shows up in CI.
//!
//! After an *intentional* change to the trace format or the emission
//! sites, regenerate the golden file:
//!
//! ```text
//! MMM_BLESS=1 cargo test --release --test trace_export
//! ```

use mmm_core::{MixedPolicy, System, Workload};
use mmm_trace::{chrome_trace, Tracer};
use mmm_types::SystemConfig;
use mmm_workload::Benchmark;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/trace_golden.json");

/// A short consolidated-server run with fast gang switching, so the
/// trace exercises installs, evictions, mode transitions, SI stalls,
/// and phase boundaries inside a small horizon.
fn build_trace() -> String {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 5_000;
    let mut sys = System::new(
        &cfg,
        Workload::Consolidated {
            bench: Benchmark::Oltp,
            policy: MixedPolicy::MmmIpc,
        },
        1,
    )
    .expect("golden trace system builds");
    sys.attach_tracer(Tracer::ring(1 << 14));
    sys.run(12_000);
    chrome_trace(&sys.tracer().snapshot(), 16, sys.now())
}

#[test]
fn trace_json_matches_golden() {
    let got = build_trace();
    if std::env::var("MMM_BLESS").is_ok() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).expect(
        "tests/data/trace_golden.json missing — regenerate with \
         MMM_BLESS=1 cargo test --release --test trace_export",
    );
    if got != want {
        let at = got
            .bytes()
            .zip(want.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| got.len().min(want.len()));
        let lo = at.saturating_sub(80);
        panic!(
            "trace.json drifted from golden (got {} bytes, want {}, first \
             difference at byte {at}):\n  got:  ...{}\n  want: ...{}\n\
             If the change is intentional, regenerate with \
             MMM_BLESS=1 cargo test --release --test trace_export",
            got.len(),
            want.len(),
            &got[lo..(at + 80).min(got.len())],
            &want[lo..(at + 80).min(want.len())],
        );
    }
}

/// Tracing must be purely observational: a traced run and an untraced
/// run of the same seed produce bit-identical measurements.
#[test]
fn tracing_does_not_change_timing() {
    let cfg = SystemConfig::default();
    let w = Workload::Consolidated {
        bench: Benchmark::Apache,
        policy: MixedPolicy::MmmTp,
    };
    let run = |traced: bool| {
        let mut sys = System::new(&cfg, w, 5).unwrap();
        if traced {
            sys.attach_tracer(Tracer::ring(4096));
        }
        let r = sys.run_measured(10_000, 60_000);
        (
            r.total_user_commits(),
            r.cores.si_stall_cycles,
            r.mem.c2c_transfers,
            r.pairs.ops_compared,
        )
    };
    assert_eq!(run(false), run(true), "tracing altered simulated timing");
}

/// The self-profiler obeys the same "free when off, observational
/// when on" discipline as tracing: a profiled run and an unprofiled
/// run of the same seed produce bit-identical measurements (the
/// profiler reads only the host clock), and the profiled run carries
/// a phase attribution that tiles the measured window exactly.
#[test]
fn profiling_does_not_change_timing() {
    use mmm_trace::Profiler;

    let cfg = SystemConfig::default();
    let w = Workload::Consolidated {
        bench: Benchmark::Apache,
        policy: MixedPolicy::MmmTp,
    };
    let run = |profiled: bool| {
        let mut sys = System::new(&cfg, w, 5).unwrap();
        if profiled {
            sys.attach_profiler(Profiler::enabled());
        }
        let r = sys.run_measured(10_000, 60_000);
        if profiled {
            let prof = r.profile.as_ref().expect("profiled run has a profile");
            let nanos_sum: u64 = prof.phase_nanos.iter().map(|&(_, n)| n).sum();
            assert_eq!(nanos_sum, prof.total_nanos, "phases tile the window");
            assert!(prof.total_nanos > 0, "a measured window took host time");
            assert_eq!(prof.advanced_cycles, 60_000, "every cycle accounted");
        } else {
            assert!(r.profile.is_none(), "no profile without a profiler");
        }
        (
            r.total_user_commits(),
            r.cores.si_stall_cycles,
            r.mem.c2c_transfers,
            r.pairs.ops_compared,
        )
    };
    assert_eq!(run(false), run(true), "profiling altered simulated timing");
}

#[test]
fn trace_has_the_expected_shape() {
    let got = build_trace();
    assert!(got.starts_with("{\"traceEvents\":["));
    assert!(got.ends_with("\"displayTimeUnit\":\"ns\"}"));
    // Mode slices for the DMR guest and the performance guest both
    // appear, as do gang-switch transition slices.
    assert!(got.contains("\"dmr-vocal V0\""), "DMR mode track");
    assert!(got.contains("\"perf V"), "performance mode track");
    assert!(got.contains("\"leave_dmr\""), "transition slices");
    assert!(got.contains("\"thread_name\""), "track metadata");
}
