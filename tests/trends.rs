//! Cross-crate integration tests asserting the paper's qualitative
//! result shape at test scale (short runs, fixed seeds).
//!
//! These are the "direction" counterparts of the bench harness: who
//! wins, and in which order — not by how much.

use mixed_mode_multicore::mmm::{MixedPolicy, System, SystemReport, Workload};
use mixed_mode_multicore::prelude::*;
use mmm_types::VmId;

const WARMUP: u64 = 100_000;
const MEASURE: u64 = 600_000;

fn run(cfg: &SystemConfig, w: Workload, seed: u64) -> SystemReport {
    let mut sys = System::new(cfg, w, seed).expect("valid workload");
    sys.run_measured(WARMUP, MEASURE)
}

fn short_slice_cfg() -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 100_000;
    cfg
}

fn perf_guest_ipc(r: &SystemReport) -> f64 {
    let vcpus: Vec<_> = r.vcpus.iter().filter(|v| v.vm != VmId(0)).collect();
    vcpus
        .iter()
        .map(|v| v.user_commits as f64 / r.cycles as f64)
        .sum::<f64>()
        / vcpus.len() as f64
}

fn perf_guest_tp(r: &SystemReport) -> f64 {
    r.vcpus
        .iter()
        .filter(|v| v.vm != VmId(0))
        .map(|v| v.user_commits)
        .sum::<u64>() as f64
        / r.cycles as f64
}

#[test]
fn reunion_costs_ipc_and_throughput_versus_no_dmr() {
    let cfg = SystemConfig::default();
    for bench in [Benchmark::Apache, Benchmark::Pmake] {
        let no = run(&cfg, Workload::NoDmr(bench), 1);
        let re = run(&cfg, Workload::ReunionDmr(bench), 1);
        assert!(
            re.avg_user_ipc() < no.avg_user_ipc(),
            "{}: Reunion {:.3} must trail No DMR {:.3}",
            bench.name(),
            re.avg_user_ipc(),
            no.avg_user_ipc()
        );
    }
}

#[test]
fn no_dmr_2x_has_the_highest_throughput() {
    let cfg = SystemConfig::default();
    let bench = Benchmark::Pgoltp;
    let tp = |r: &SystemReport| r.total_user_commits() as f64 / r.cycles as f64;
    let t2x = tp(&run(&cfg, Workload::NoDmr2x(bench), 2));
    let tno = tp(&run(&cfg, Workload::NoDmr(bench), 2));
    let tre = tp(&run(&cfg, Workload::ReunionDmr(bench), 2));
    assert!(t2x > tno, "16 VCPUs out-produce 8: {t2x:.3} vs {tno:.3}");
    assert!(
        tno > tre,
        "No DMR out-produces Reunion: {tno:.3} vs {tre:.3}"
    );
}

#[test]
fn mixed_mode_policies_order_as_the_paper_reports() {
    // Timeslices long enough that transition costs and per-slice
    // cache warm-up do not swamp the policy differences (the paper
    // uses 3M-cycle slices; MMM-TP pays ~12k cycles per slice pair).
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 400_000;
    let bench = Benchmark::Pmake;
    let run = |w, seed| {
        let mut sys = System::new(&cfg, w, seed).expect("valid workload");
        sys.run_measured(400_000, 1_600_000)
    };
    let base = run(
        Workload::Consolidated {
            bench,
            policy: MixedPolicy::DmrBase,
        },
        3,
    );
    let ipc = run(
        Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmIpc,
        },
        3,
    );
    let tp = run(
        Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmTp,
        },
        3,
    );

    // Per-thread IPC of the performance guest: MMM-IPC is the best
    // (idle mutes, no extra cache pressure), MMM-TP still beats DMR.
    assert!(
        perf_guest_ipc(&ipc) > perf_guest_ipc(&base),
        "MMM-IPC perf IPC {:.4} must beat DMR Base {:.4}",
        perf_guest_ipc(&ipc),
        perf_guest_ipc(&base)
    );
    assert!(
        perf_guest_ipc(&tp) > perf_guest_ipc(&base),
        "MMM-TP perf IPC beats DMR Base"
    );
    assert!(
        perf_guest_ipc(&ipc) > perf_guest_ipc(&tp),
        "MMM-IPC per-thread IPC exceeds MMM-TP (more VCPUs share caches)"
    );

    // Throughput: MMM-TP > MMM-IPC > DMR Base.
    assert!(perf_guest_tp(&tp) > perf_guest_tp(&ipc));
    assert!(perf_guest_tp(&ipc) > perf_guest_tp(&base));

    // The reliable guest's service is approximately unchanged.
    let rel = |r: &SystemReport| r.vm_avg_user_ipc(VmId(0));
    for (name, r) in [("MMM-IPC", &ipc), ("MMM-TP", &tp)] {
        let ratio = rel(r) / rel(&base);
        assert!(
            (0.80..1.25).contains(&ratio),
            "{name}: reliable VM ratio {ratio:.3} strayed"
        );
    }
}

#[test]
fn leave_dmr_costs_more_than_enter_dmr_in_mmm_tp() {
    let cfg = short_slice_cfg();
    let r = run(
        &cfg,
        Workload::Consolidated {
            bench: Benchmark::Oltp,
            policy: MixedPolicy::MmmTp,
        },
        4,
    );
    assert!(r.transitions.enter.count() >= 2);
    assert!(r.transitions.leave.count() >= 2);
    assert!(
        r.transitions.leave.mean() > r.transitions.enter.mean() + 5_000.0,
        "flush-dominated leave ({:.0}) must far exceed enter ({:.0})",
        r.transitions.leave.mean(),
        r.transitions.enter.mean()
    );
    // And the flush walk itself is visible in the memory system.
    assert!(r.mem.flushes >= r.transitions.leave.count());
}

#[test]
fn serial_pab_lookup_never_beats_parallel() {
    use mmm_types::config::PabLookup;
    let bench = Benchmark::Pgbench;
    let cfg_par = short_slice_cfg();
    let mut cfg_ser = short_slice_cfg();
    cfg_ser.pab.lookup = PabLookup::Serial;
    let w = Workload::Consolidated {
        bench,
        policy: MixedPolicy::MmmTp,
    };
    let par = run(&cfg_par, w, 5);
    let ser = run(&cfg_ser, w, 5);
    assert!(
        perf_guest_tp(&ser) <= perf_guest_tp(&par) * 1.02,
        "serial PAB cannot outperform parallel: {:.4} vs {:.4}",
        perf_guest_tp(&ser),
        perf_guest_tp(&par)
    );
    // The reliable guest does not use the PAB: unchanged within noise.
    let rel_ratio = ser.vm_avg_user_ipc(VmId(0)) / par.vm_avg_user_ipc(VmId(0));
    assert!(
        (0.9..1.1).contains(&rel_ratio),
        "reliable VM must not see the PAB: {rel_ratio:.3}"
    );
}

#[test]
#[allow(clippy::field_reassign_with_default)]
fn tso_beats_sc_under_reunion() {
    // The paper attributes a large share of its Reunion overhead to
    // sequential consistency (Smolens: SC costs ~30% on average).
    use mmm_types::config::Consistency;
    let bench = Benchmark::Oltp;
    let mut cfg_sc = SystemConfig::default();
    cfg_sc.consistency = Consistency::Sc;
    let mut cfg_tso = SystemConfig::default();
    cfg_tso.consistency = Consistency::Tso;
    let sc = run(&cfg_sc, Workload::ReunionDmr(bench), 6);
    let tso = run(&cfg_tso, Workload::ReunionDmr(bench), 6);
    assert!(
        tso.avg_user_ipc() >= sc.avg_user_ipc(),
        "TSO Reunion {:.4} must not trail SC Reunion {:.4}",
        tso.avg_user_ipc(),
        sc.avg_user_ipc()
    );
}

#[test]
fn single_os_mixed_recovers_performance_on_user_dominated_workloads() {
    // Mixed-mode single-OS operation wins where user time dominates
    // (pmake: 312k user vs 47k OS cycles per round trip). For the
    // OS-dominated web servers the kernel still runs under DMR most
    // of the time, so the benefit is necessarily small — the paper's
    // §5.3 bound is about *switching* overhead, not total speedup.
    let cfg = SystemConfig::default();
    let bench = Benchmark::Pmake;
    let dmr = run(&cfg, Workload::ReunionDmr(bench), 7);
    let mixed = run(&cfg, Workload::SingleOsMixed(bench), 7);
    let tp = |r: &SystemReport| r.total_user_commits() as f64 / r.cycles as f64;
    assert!(
        tp(&mixed) > tp(&dmr),
        "mixed single-OS {:.4} must beat always-DMR {:.4} on pmake",
        tp(&mixed),
        tp(&dmr)
    );
    assert!(mixed.transitions.enter.count() > 0, "transitions happened");
    // Transition counts stay balanced (every enter eventually leaves).
    let diff = mixed
        .transitions
        .enter
        .count()
        .abs_diff(mixed.transitions.leave.count());
    assert!(diff <= 8, "enter/leave imbalance {diff} exceeds VCPU count");
}

#[test]
fn single_os_mixed_never_collapses_on_os_heavy_workloads() {
    // Even for Apache (OS-dominated), mixed mode must stay within a
    // modest band of always-DMR: the kernel runs DMR either way; the
    // differences are switch costs vs. solo user phases.
    let cfg = SystemConfig::default();
    let bench = Benchmark::Apache;
    let dmr = run(&cfg, Workload::ReunionDmr(bench), 7);
    let mixed = run(&cfg, Workload::SingleOsMixed(bench), 7);
    let tp = |r: &SystemReport| r.total_user_commits() as f64 / r.cycles as f64;
    let ratio = tp(&mixed) / tp(&dmr);
    assert!(
        (0.75..1.6).contains(&ratio),
        "mixed/all-DMR ratio {ratio:.3} out of plausible band"
    );
}
