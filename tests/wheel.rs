//! The event wheel is a pure throughput knob: jumping the clock to
//! the next scheduled wake source — including fault arrivals and
//! single-OS trap polls, which the pre-wheel fast-forward could not
//! skip over — must leave every report and every recorded metrics
//! series bit-identical, across the `MMM_EVENT_WHEEL` escape hatch
//! and the experiment driver's worker-thread count.

use mixed_mode_multicore::mmm::{Experiment, MixedPolicy, Workload};
use mixed_mode_multicore::prelude::*;

fn canonical_json(mut r: mixed_mode_multicore::mmm::SystemReport) -> String {
    r.wall_seconds = 0.0;
    r.to_json()
}

/// All comparisons live in one test function: the escape hatch is a
/// process-global environment variable, and concurrently running test
/// threads must not observe it mid-flight.
#[test]
fn event_wheel_is_a_pure_throughput_knob_under_injection() {
    let mut e = Experiment::default();
    e.cfg.virt.timeslice_cycles = 120_000;
    e.warmup = 20_000;
    e.measure = 150_000;
    e.seeds = vec![7];
    // Fault injection plus the flight recorder: the two subsystems the
    // wheel newly has to coordinate with (arrival events, interval
    // boundaries).
    e.fault_rate = Some(1e-5);
    e.sample_interval = Some(25_000);
    let modes = [
        Workload::ReunionDmr(Benchmark::Apache),
        Workload::Consolidated {
            bench: Benchmark::Apache,
            policy: MixedPolicy::MmmTp,
        },
        Workload::SingleOsMixed(Benchmark::Apache),
    ];

    // Baseline: wheel enabled (the default).
    assert!(
        std::env::var_os("MMM_EVENT_WHEEL").is_none(),
        "test requires a clean environment"
    );
    let baseline: Vec<(String, _)> = modes
        .iter()
        .map(|&w| {
            let mut r = e.run_one(w, 7).unwrap();
            let series = r.series.take().expect("sampler attached");
            (canonical_json(r), series)
        })
        .collect();

    // Skip machinery fully off: same reports, same series (the wheel
    // only ever picks the *next* cycle to simulate; simulated cycles
    // are identical).
    let mut noskip = e.clone();
    noskip.cycle_skipping = false;
    for (&w, (json, series)) in modes.iter().zip(&baseline) {
        let mut r = noskip.run_one(w, 7).unwrap();
        assert_eq!(
            r.series.take().as_ref(),
            Some(series),
            "{}: series must be skip-invariant",
            w.name()
        );
        assert_eq!(
            &canonical_json(r),
            json,
            "{}: skip-off must not change the report",
            w.name()
        );
    }

    // Escape hatch: wheel disabled by env, per-core skipping still on.
    std::env::set_var("MMM_EVENT_WHEEL", "off");
    for (&w, (json, series)) in modes.iter().zip(&baseline) {
        let mut r = e.run_one(w, 7).unwrap();
        assert_eq!(
            r.series.take().as_ref(),
            Some(series),
            "{}: series must be wheel-invariant",
            w.name()
        );
        assert_eq!(
            &canonical_json(r),
            json,
            "{}: MMM_EVENT_WHEEL=off must not change the report",
            w.name()
        );
    }
    // And through the work-queue at several pool sizes.
    for threads in [1, 4] {
        let many = e.run_many_on(&modes, threads).unwrap();
        for (run, (json, series)) in many.iter().zip(&baseline) {
            let mut r = run.reports[0].clone();
            assert_eq!(r.series.take().as_ref(), Some(series));
            assert_eq!(
                &canonical_json(r),
                json,
                "wheel-off reports must not depend on thread count ({threads})"
            );
        }
    }
    std::env::remove_var("MMM_EVENT_WHEEL");

    // Back on: still the baseline (the hatch leaves no residue).
    let mut r = e.run_one(modes[0], 7).unwrap();
    r.series.take();
    assert_eq!(canonical_json(r), baseline[0].0);
}

/// Pre-drawn geometric inter-arrival times are the same random
/// process as the per-cycle Bernoulli trials they replaced (the
/// geometric distribution *is* the gap distribution of a Bernoulli
/// stream). The two models draw different per-seed sequences, so the
/// equivalence is statistical: campaign totals must agree with each
/// other and with the analytic expectation within sampling noise.
#[test]
fn geometric_arrivals_match_bernoulli_statistics() {
    use mixed_mode_multicore::mmm::{ArrivalModel, System};

    let cfg = SystemConfig::default();
    let w = Workload::ReunionDmr(Benchmark::Oltp);
    let (warmup, measure) = (20_000u64, 400_000u64);
    let rate = 1e-4;

    let campaign = |model: ArrivalModel| -> (u64, u64) {
        let mut injected = 0;
        let mut detected = 0;
        for seed in [1, 2, 3] {
            let mut sys = System::new(&cfg, w, seed).unwrap();
            sys.set_cycle_skipping(true);
            sys.enable_fault_injection_with(rate, seed ^ 0xF417, model);
            let r = sys.run_measured(warmup, measure);
            injected += r.faults.injected;
            detected += r.faults.detected_by_dmr;
        }
        (injected, detected)
    };

    let (geo_inj, geo_det) = campaign(ArrivalModel::Geometric);
    let (ber_inj, ber_det) = campaign(ArrivalModel::Bernoulli);

    // ~1920 expected arrivals per campaign: sqrt-noise is ~2.3%, so a
    // 15% gate is far outside chance but catches any systematic skew
    // (off-by-one-cycle rates, double-draws, missed redraws).
    let expected = rate * cfg.cores as f64 * measure as f64 * 3.0;
    let within = |got: u64, want: f64, what: &str| {
        let rel = (got as f64 - want).abs() / want;
        assert!(
            rel < 0.15,
            "{what}: {got} vs expected {want:.0} ({:.1}% off)",
            rel * 100.0
        );
    };
    within(geo_inj, expected, "geometric injected");
    within(ber_inj, expected, "bernoulli injected");
    within(geo_inj, ber_inj as f64, "geometric vs bernoulli injected");
    // Every core is half of a busy DMR pair in this workload, so
    // detection tracks injection for both models.
    within(geo_det, geo_inj as f64, "geometric detected");
    within(ber_det, ber_inj as f64, "bernoulli detected");
}
