//! Robustness: the simulator must stay correct far from the paper's
//! configuration point — tiny machines, tiny caches, narrow cores,
//! extreme knobs.
#![allow(clippy::field_reassign_with_default)] // config-override style

use mixed_mode_multicore::mmm::{MixedPolicy, System, Workload};
use mixed_mode_multicore::prelude::*;
use mmm_types::config::CacheGeometry;

fn tiny_machine() -> SystemConfig {
    let mut cfg = SystemConfig::default();
    cfg.cores = 4;
    cfg.core.width = 1;
    cfg.core.window_entries = 16;
    cfg.core.load_queue = 4;
    cfg.core.store_queue = 4;
    cfg.mem.l1i = CacheGeometry::new(4 * 1024, 2).unwrap();
    cfg.mem.l1d = CacheGeometry::new(4 * 1024, 2).unwrap();
    cfg.mem.l2 = CacheGeometry::new(32 * 1024, 4).unwrap();
    cfg.mem.l3 = CacheGeometry::new(256 * 1024, 16).unwrap();
    cfg.virt.timeslice_cycles = 60_000;
    cfg
}

fn all_workloads() -> Vec<Workload> {
    let b = Benchmark::Apache;
    vec![
        Workload::NoDmr2x(b),
        Workload::NoDmr(b),
        Workload::ReunionDmr(b),
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::DmrBase,
        },
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::MmmIpc,
        },
        Workload::Consolidated {
            bench: b,
            policy: MixedPolicy::MmmTp,
        },
        Workload::SingleOsMixed(b),
        Workload::Overcommitted {
            bench: b,
            reliable: 1,
            perf: 4,
        },
    ]
}

#[test]
fn every_configuration_runs_on_a_four_core_machine() {
    let cfg = tiny_machine();
    for w in all_workloads() {
        let mut sys = System::new(&cfg, w, 1).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let r = sys.run_measured(30_000, 250_000);
        assert!(
            r.total_user_commits() > 1_000,
            "{} made no progress on the tiny machine: {}",
            w.name(),
            r.total_user_commits()
        );
    }
}

#[test]
fn single_wide_in_order_ish_core_still_progresses() {
    let mut cfg = SystemConfig::default();
    cfg.core.width = 1;
    cfg.core.window_entries = 4;
    cfg.core.load_queue = 2;
    cfg.core.store_queue = 2;
    let mut sys = System::new(&cfg, Workload::NoDmr(Benchmark::Pmake), 2).unwrap();
    let r = sys.run_measured(20_000, 200_000);
    let ipc = r.avg_user_ipc();
    assert!(ipc > 0.02, "narrow core IPC: {ipc}");
    assert!(ipc < 1.0, "a 1-wide core cannot exceed IPC 1: {ipc}");
}

#[test]
fn fault_injection_survives_the_tiny_machine() {
    let cfg = tiny_machine();
    let mut sys = System::new(
        &cfg,
        Workload::Consolidated {
            bench: Benchmark::Apache,
            policy: MixedPolicy::MmmTp,
        },
        3,
    )
    .unwrap();
    sys.enable_fault_injection(5e-5, 17);
    let r = sys.run_measured(30_000, 400_000);
    assert!(r.faults.injected > 10);
    assert!(r.total_user_commits() > 1_000, "machine survived the storm");
}

#[test]
fn extreme_reunion_knobs_do_not_deadlock() {
    let mut cfg = SystemConfig::default();
    cfg.cores = 4;
    cfg.reunion.fingerprint_latency = 200; // absurdly slow network
    cfg.reunion.fingerprint_interval = 1; // per-op exchange
    cfg.reunion.recovery_penalty = 1_000;
    let mut sys = System::new(&cfg, Workload::ReunionDmr(Benchmark::Zeus), 4).unwrap();
    let r = sys.run_measured(20_000, 300_000);
    assert!(
        r.total_user_commits() > 100,
        "slow fingerprints throttle but never deadlock: {}",
        r.total_user_commits()
    );
}

#[test]
fn zero_length_measurement_is_safe() {
    let cfg = SystemConfig::default();
    let mut sys = System::new(&cfg, Workload::NoDmr(Benchmark::Oltp), 5).unwrap();
    let r = sys.run_measured(10_000, 0);
    assert_eq!(r.total_user_commits(), 0);
    assert_eq!(r.avg_user_ipc(), 0.0);
    assert_eq!(r.dmr_coverage(), 0.0);
}

#[test]
fn odd_vcpu_overcommit_mixes() {
    // 5 reliable pairs (10 cores) + 9 perf = 19 demand on 16 cores.
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 50_000;
    let mut sys = System::new(
        &cfg,
        Workload::Overcommitted {
            bench: Benchmark::Pmake,
            reliable: 5,
            perf: 9,
        },
        6,
    )
    .unwrap();
    let r = sys.run_measured(50_000, 500_000);
    assert!(r.vcpus.iter().all(|v| v.user_commits > 0), "{:?}", r.vcpus);
}
