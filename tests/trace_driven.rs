//! Trace-driven execution: a recorded window replayed through a core
//! must behave exactly like the live stream that produced it.

use mixed_mode_multicore::cpu::{Core, ExecContext};
use mixed_mode_multicore::mem::MemorySystem;
use mixed_mode_multicore::prelude::*;
use mixed_mode_multicore::workload::{OpStream, Trace};
use mmm_types::{CoreId, VcpuId, VmId};

fn stream() -> OpStream {
    OpStream::new(Benchmark::Oltp.profile(), VmId(0), VcpuId(0), 42)
}

#[test]
fn replay_execution_matches_live_execution() {
    let cfg = SystemConfig::default();
    let cycles = 120_000u64;

    // Live run.
    let mut live_core = Core::new(CoreId(0), &cfg);
    let mut live_mem = MemorySystem::new(&cfg);
    live_core.set_context(ExecContext::new(stream()));
    for now in 0..cycles {
        live_core.tick(now, &mut live_mem);
    }

    // Trace-driven run over the same window (record more ops than the
    // live run can possibly commit).
    let trace = Trace::record(&mut stream(), 300_000);
    let mut replay_core = Core::new(CoreId(0), &cfg);
    let mut replay_mem = MemorySystem::new(&cfg);
    replay_core.set_context(ExecContext::from_replay(trace.replay()));
    for now in 0..cycles {
        replay_core.tick(now, &mut replay_mem);
    }

    assert_eq!(
        live_core.stats().commits(),
        replay_core.stats().commits(),
        "replay must be cycle-equivalent to the live stream"
    );
    assert_eq!(
        live_core.stats().commits_user,
        replay_core.stats().commits_user
    );
}

#[test]
fn looped_replay_sustains_execution_past_the_window() {
    let cfg = SystemConfig::default();
    // A short trace, looped: the core must keep committing well past
    // one window's worth of instructions.
    let trace = Trace::record(&mut stream(), 10_000);
    let mut core = Core::new(CoreId(0), &cfg);
    let mut mem = MemorySystem::new(&cfg);
    core.set_context(ExecContext::from_replay(trace.replay()));
    for now in 0..200_000u64 {
        core.tick(now, &mut mem);
    }
    assert!(
        core.stats().commits() > 20_000,
        "looping must outlast the window: {}",
        core.stats().commits()
    );
}

#[test]
fn trace_summary_reflects_the_profile() {
    let trace = Trace::record(&mut stream(), 100_000);
    let s = trace.summary();
    let p = Benchmark::Oltp.profile();
    let load_frac = s.loads as f64 / s.total as f64;
    // User phases dominate OLTP; the mix should be near the user mix.
    assert!(
        (load_frac - p.user.load_frac).abs() < 0.05,
        "load fraction {load_frac}"
    );
}
