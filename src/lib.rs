//! # Mixed-Mode Multicore Reliability — reproduction
//!
//! A cycle-level multicore simulator reproducing *Mixed-Mode Multicore
//! Reliability* (Philip M. Wells, Koushik Chakraborty, Gurindar S.
//! Sohi; ASPLOS 2009): a 16-core chip that runs some virtual CPUs
//! under Reunion dual-modular redundancy while others run at full
//! speed in performance mode, simultaneously and safely.
//!
//! This crate is a facade: it re-exports the workspace crates under
//! stable module names so applications depend on one crate.
//!
//! ```
//! use mixed_mode_multicore::prelude::*;
//!
//! let config = SystemConfig::default();
//! assert_eq!(config.cores, 16);
//! ```
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the system
//! inventory and the per-experiment index.

#![forbid(unsafe_code)]

/// Common identifiers, configuration, statistics, and RNG.
pub use mmm_types as types;

/// Statistical workload models (Apache, OLTP, pgoltp, pmake, pgbench,
/// Zeus) and the physical-address layout.
pub use mmm_workload as workload;

/// Memory hierarchy: write-through L1s, private L2s, shared exclusive
/// L3, MOSI directory, interconnect, DRAM.
pub use mmm_mem as mem;

/// Out-of-order core timing model.
pub use mmm_cpu as cpu;

/// Reunion dual-modular redundancy.
pub use mmm_reunion as reunion;

/// The Mixed-Mode Multicore itself: PAT/PAB protection, mode
/// transitions, virtualization, scheduling, fault injection, and the
/// full-system simulator.
pub use mmm_core as mmm;

/// Observability: cycle-stamped event tracing, the metrics registry,
/// and the JSON / Chrome trace-event exporters.
pub use mmm_trace as trace;

/// The names most applications need.
pub mod prelude {
    pub use mmm_types::{config::Consistency, CoreId, Cycle, DetRng, SystemConfig, VcpuId, VmId};
    pub use mmm_workload::{Benchmark, OpStream, WorkloadProfile};
}
