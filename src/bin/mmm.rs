//! `mmm` — command-line driver for the mixed-mode multicore simulator.
//!
//! Runs any of the paper's machine configurations on any workload and
//! prints the full report. Examples:
//!
//! ```sh
//! mmm --config reunion --bench apache --measure 2000000
//! mmm --config mmm-tp  --bench oltp   --seeds 3
//! mmm --config single-os --bench pmake --fault-rate 1e-6
//! mmm --list
//! ```

use std::process::ExitCode;

use mixed_mode_multicore::mmm::report::{fmt_cycles, print_table};
use mixed_mode_multicore::mmm::{Experiment, MixedPolicy, Workload};
use mixed_mode_multicore::prelude::*;
use mmm_types::VmId;

const USAGE: &str = "\
mmm — mixed-mode multicore simulator (ASPLOS 2009 reproduction)

USAGE:
    mmm [OPTIONS]

OPTIONS:
    --config <NAME>      machine configuration (default: mmm-tp)
                         no-dmr-2x | no-dmr | reunion |
                         dmr-base | mmm-ipc | mmm-tp | single-os |
                         overcommit (see --reliable/--perf)
    --reliable <N>       overcommit: reliable VCPUs (default: 2)
    --perf <N>           overcommit: performance VCPUs (default: 16)
    --bench <NAME>       workload (default: oltp)
                         apache | oltp | pgoltp | pmake | pgbench |
                         zeus | spec
    --warmup <CYCLES>    warm-up cycles (default: 500000)
    --measure <CYCLES>   measured cycles (default: 2000000)
    --seeds <N>          seeds to average over (default: 1)
    --timeslice <CYCLES> gang timeslice (default: 3000000, the paper's 1 ms)
    --fault-rate <RATE>  transient faults per core-cycle (default: off)
    --serial-pab         use the 2-cycle serial PAB lookup
    --tso                use TSO consistency instead of SC
    --list               list configurations and workloads
    --help               this text
";

fn parse_bench(s: &str) -> Option<Benchmark> {
    Some(match s.to_ascii_lowercase().as_str() {
        "apache" => Benchmark::Apache,
        "oltp" => Benchmark::Oltp,
        "pgoltp" => Benchmark::Pgoltp,
        "pmake" => Benchmark::Pmake,
        "pgbench" => Benchmark::Pgbench,
        "zeus" => Benchmark::Zeus,
        "spec" | "spec-like" => Benchmark::SpecLike,
        _ => return None,
    })
}

fn parse_config(s: &str, bench: Benchmark, reliable: u16, perf: u16) -> Option<Workload> {
    Some(match s.to_ascii_lowercase().as_str() {
        "overcommit" | "overcommitted" => Workload::Overcommitted {
            bench,
            reliable,
            perf,
        },
        "no-dmr-2x" | "nodmr2x" => Workload::NoDmr2x(bench),
        "no-dmr" | "nodmr" => Workload::NoDmr(bench),
        "reunion" | "dmr" => Workload::ReunionDmr(bench),
        "dmr-base" => Workload::Consolidated {
            bench,
            policy: MixedPolicy::DmrBase,
        },
        "mmm-ipc" => Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmIpc,
        },
        "mmm-tp" => Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmTp,
        },
        "single-os" => Workload::SingleOsMixed(bench),
        _ => return None,
    })
}

struct Args {
    config: String,
    bench: String,
    warmup: u64,
    measure: u64,
    seeds: u64,
    timeslice: u64,
    fault_rate: Option<f64>,
    serial_pab: bool,
    tso: bool,
    reliable: u16,
    perf: u16,
}

fn parse_args() -> Result<Option<Args>, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(argv: impl Iterator<Item = String>) -> Result<Option<Args>, String> {
    let mut args = Args {
        config: "mmm-tp".into(),
        bench: "oltp".into(),
        warmup: 500_000,
        measure: 2_000_000,
        seeds: 1,
        timeslice: 3_000_000,
        fault_rate: None,
        serial_pab: false,
        tso: false,
        reliable: 2,
        perf: 16,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                println!(
                    "configs:   no-dmr-2x no-dmr reunion dmr-base mmm-ipc mmm-tp \
                     single-os overcommit"
                );
                println!("workloads: apache oltp pgoltp pmake pgbench zeus spec");
                return Ok(None);
            }
            "--config" => args.config = value("--config")?,
            "--bench" => args.bench = value("--bench")?,
            "--warmup" => {
                args.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?
            }
            "--measure" => {
                args.measure = value("--measure")?
                    .parse()
                    .map_err(|e| format!("--measure: {e}"))?
            }
            "--seeds" => {
                args.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?
            }
            "--timeslice" => {
                args.timeslice = value("--timeslice")?
                    .parse()
                    .map_err(|e| format!("--timeslice: {e}"))?
            }
            "--fault-rate" => {
                args.fault_rate = Some(
                    value("--fault-rate")?
                        .parse()
                        .map_err(|e| format!("--fault-rate: {e}"))?,
                )
            }
            "--serial-pab" => args.serial_pab = true,
            "--tso" => args.tso = true,
            "--reliable" => {
                args.reliable = value("--reliable")?
                    .parse()
                    .map_err(|e| format!("--reliable: {e}"))?
            }
            "--perf" => {
                args.perf = value("--perf")?
                    .parse()
                    .map_err(|e| format!("--perf: {e}"))?
            }
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    Ok(Some(args))
}

#[allow(clippy::field_reassign_with_default)] // documented Experiment usage
fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(bench) = parse_bench(&args.bench) else {
        eprintln!("error: unknown workload {:?} (try --list)", args.bench);
        return ExitCode::FAILURE;
    };
    let Some(workload) = parse_config(&args.config, bench, args.reliable, args.perf) else {
        eprintln!("error: unknown config {:?} (try --list)", args.config);
        return ExitCode::FAILURE;
    };

    let mut e = Experiment::default();
    e.warmup = args.warmup;
    e.measure = args.measure;
    e.seeds = (1..=args.seeds.max(1)).collect();
    e.fault_rate = args.fault_rate;
    e.cfg.virt.timeslice_cycles = args.timeslice;
    if args.serial_pab {
        e.cfg.pab.lookup = mmm_types::config::PabLookup::Serial;
    }
    if args.tso {
        e.cfg.consistency = mmm_types::config::Consistency::Tso;
    }

    println!(
        "{} / {} — warmup {} + measure {} cycles, {} seed(s)",
        workload.name(),
        bench.name(),
        args.warmup,
        args.measure,
        e.seeds.len()
    );
    let run = match e.run_workload(workload) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };

    let (ipc, ipc_ci) = run.avg_user_ipc();
    let (tp, tp_ci) = run.throughput();
    println!("\nper-thread user IPC : {ipc:.4} ±{ipc_ci:.4}");
    println!("machine throughput  : {tp:.4} ±{tp_ci:.4} user instr/cycle");

    let r = &run.reports[0];
    let mut vm_rows = Vec::new();
    let mut vms: Vec<VmId> = r.vcpus.iter().map(|v| v.vm).collect();
    vms.sort_unstable();
    vms.dedup();
    for vm in vms {
        vm_rows.push(vec![
            vm.to_string(),
            r.vcpus.iter().filter(|v| v.vm == vm).count().to_string(),
            r.vm_user_commits(vm).to_string(),
            format!("{:.4}", r.vm_avg_user_ipc(vm)),
            format!("{:.1}%", r.vm_dmr_coverage(vm) * 100.0),
        ]);
    }
    print_table(
        "per-VM results (seed 1)",
        &["vm", "vcpus", "user instr", "avg user IPC", "DMR coverage"],
        &vm_rows,
    );

    if r.transitions.enter.count() + r.transitions.leave.count() > 0 {
        print_table(
            "mode transitions (seed 1)",
            &["kind", "count", "mean cycles"],
            &[
                vec![
                    "enter DMR".into(),
                    r.transitions.enter.count().to_string(),
                    fmt_cycles(r.transitions.enter.mean()),
                ],
                vec![
                    "leave DMR".into(),
                    r.transitions.leave.count().to_string(),
                    fmt_cycles(r.transitions.leave.mean()),
                ],
            ],
        );
    }
    if r.faults.injected > 0 {
        let f = r.faults;
        print_table(
            "fault outcomes (seed 1)",
            &["outcome", "count"],
            &[
                vec!["injected".into(), f.injected.to_string()],
                vec!["detected by DMR".into(), f.detected_by_dmr.to_string()],
                vec![
                    "wild stores blocked (PAB)".into(),
                    f.wild_stores_blocked.to_string(),
                ],
                vec![
                    "wild stores (perf pages)".into(),
                    f.wild_stores_corrupting.to_string(),
                ],
                vec![
                    "privreg caught at entry".into(),
                    f.privreg_caught_at_entry.to_string(),
                ],
                vec![
                    "silent (perf domain)".into(),
                    f.silent_perf_faults.to_string(),
                ],
                vec!["idle cores".into(), f.on_idle_core.to_string()],
            ],
        );
    }
    println!(
        "\ndiagnostics: SI-stall {:.1}%  window-full {:.1}%  C2C/ki {:.1}  \
         incoherence {}  DMR coverage {:.1}%",
        r.si_stall_fraction() * 100.0,
        r.window_full_fraction() * 100.0,
        r.c2c_per_kilo_instr(),
        r.pairs.input_incoherence,
        r.dmr_coverage() * 100.0,
    );
    if r.phases.user.count() + r.phases.os.count() > 0 {
        println!();
        print!("{}", r.phases.user.render("user-phase cycles"));
        print!("{}", r.phases.os.render("OS-phase cycles"));
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Option<Args>, String> {
        parse_args_from(words.iter().map(|w| w.to_string()))
    }

    #[test]
    fn defaults_parse() {
        let a = parse(&[]).unwrap().unwrap();
        assert_eq!(a.config, "mmm-tp");
        assert_eq!(a.bench, "oltp");
        assert_eq!(a.seeds, 1);
    }

    #[test]
    fn flags_override() {
        let a = parse(&[
            "--config",
            "reunion",
            "--bench",
            "zeus",
            "--seeds",
            "4",
            "--measure",
            "123",
            "--warmup",
            "45",
            "--timeslice",
            "999",
            "--fault-rate",
            "1e-6",
            "--serial-pab",
            "--tso",
            "--reliable",
            "3",
            "--perf",
            "11",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(a.config, "reunion");
        assert_eq!(a.bench, "zeus");
        assert_eq!(a.seeds, 4);
        assert_eq!(a.measure, 123);
        assert_eq!(a.warmup, 45);
        assert_eq!(a.timeslice, 999);
        assert_eq!(a.fault_rate, Some(1e-6));
        assert!(a.serial_pab && a.tso);
        assert_eq!((a.reliable, a.perf), (3, 11));
    }

    #[test]
    fn help_and_list_short_circuit() {
        assert!(parse(&["--help"]).unwrap().is_none());
        assert!(parse(&["--list"]).unwrap().is_none());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--seeds"]).is_err());
        assert!(parse(&["--seeds", "abc"]).is_err());
    }

    #[test]
    fn workload_and_bench_names_resolve() {
        for c in [
            "no-dmr-2x",
            "no-dmr",
            "reunion",
            "dmr-base",
            "mmm-ipc",
            "mmm-tp",
            "single-os",
            "overcommit",
        ] {
            assert!(
                parse_config(c, Benchmark::Apache, 2, 4).is_some(),
                "config {c}"
            );
        }
        assert!(parse_config("nope", Benchmark::Apache, 2, 4).is_none());
        for b in [
            "apache", "oltp", "pgoltp", "pmake", "pgbench", "zeus", "spec",
        ] {
            assert!(parse_bench(b).is_some(), "bench {b}");
        }
        assert!(parse_bench("nope").is_none());
    }
}
