//! High-level experiment driver.
//!
//! Reproduces the paper's methodology (§4.1): each configuration runs
//! for a warm-up period plus a measured period, repeated across
//! multiple seeds ("due to workload variability, we simulate multiple
//! runs and report average results with 95% confidence intervals"),
//! with *committed user instructions* as the work metric.
//!
//! Run lengths default to a laptop-scale budget and are overridable
//! through environment variables so the bench harness can scale up:
//!
//! * `MMM_WARMUP` — warm-up cycles per run (default 100 000);
//! * `MMM_MEASURE` — measured cycles per run (default 400 000;
//!   the paper used 100 M on a machine-room simulator);
//! * `MMM_SEEDS` — number of seeds (default 3);
//! * `MMM_THREADS` — worker threads for [`Experiment::run_many`]
//!   (default: available parallelism). Reports are bit-identical at
//!   any thread count — each run is a sealed deterministic simulation.
//! * `MMM_SAMPLE_INTERVAL` — flight-recorder sampling interval in
//!   simulated cycles (default: off). Sampling never changes
//!   simulated timing or reported metrics.
//! * `MMM_PROFILE` — self-profiler switch (default: off; any value
//!   but `0` or empty enables). Attributes host wall-time to hot-loop
//!   phases; never changes simulated timing or reported metrics.
//! * `MMM_FORENSICS` — fault-forensics switch (default: off; any
//!   value but `0` or empty enables). Gives every injected fault a
//!   causal lifecycle record ([`SystemReport::forensics`]); never
//!   changes simulated timing or reported metrics.

use std::sync::atomic::{AtomicUsize, Ordering};

use mmm_trace::{Forensics, Profiler, Sampler, FORENSICS_WINDOW};
use mmm_types::stats::mean_ci95;
use mmm_types::{Result, SystemConfig};

use crate::sched::Workload;
use crate::system::{System, SystemReport};

/// One experiment campaign: a configuration template plus run lengths.
///
/// ```
/// use mmm_core::{Experiment, Workload};
/// use mmm_workload::Benchmark;
///
/// let mut e = Experiment::default();
/// e.warmup = 5_000;
/// e.measure = 20_000;
/// e.seeds = vec![1, 2];
/// let run = e.run_workload(Workload::NoDmr(Benchmark::Pmake))?;
/// let (ipc, ci) = run.avg_user_ipc();
/// assert!(ipc > 0.0 && ci >= 0.0);
/// # Ok::<(), mmm_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Machine configuration template.
    pub cfg: SystemConfig,
    /// Warm-up cycles (excluded from measurement).
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Optional fault-injection rate (faults per core-cycle).
    pub fault_rate: Option<f64>,
    /// Flight-recorder sampling interval in simulated cycles (`None`:
    /// sampler off). When set, each run carries a
    /// [`SystemReport::series`] time-series.
    pub sample_interval: Option<u64>,
    /// Cycle fast-forwarding (default on). The determinism suite
    /// turns it off to prove results are skip-invariant.
    pub cycle_skipping: bool,
    /// Self-profiler switch (`MMM_PROFILE`; default off). When set,
    /// each run carries a [`SystemReport::profile`] with phase-level
    /// host-cost attribution. Profiling never changes simulated
    /// timing or reported metrics.
    pub profile: bool,
    /// Fault-forensics switch (`MMM_FORENSICS`; default off). When
    /// set, each run carries a [`SystemReport::forensics`] report with
    /// one causal lifecycle record per injected fault. Forensics never
    /// changes simulated timing or reported metrics.
    pub forensics: bool,
}

impl Default for Experiment {
    fn default() -> Self {
        Self {
            cfg: SystemConfig::default(),
            warmup: 100_000,
            measure: 400_000,
            seeds: vec![1, 2, 3],
            fault_rate: None,
            sample_interval: None,
            cycle_skipping: true,
            profile: false,
            forensics: false,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Experiment {
    /// Builds an experiment, honouring the `MMM_*` environment
    /// overrides.
    pub fn from_env() -> Self {
        let mut e = Experiment::default();
        e.warmup = env_u64("MMM_WARMUP", e.warmup);
        e.measure = env_u64("MMM_MEASURE", e.measure);
        let seeds = env_u64("MMM_SEEDS", e.seeds.len() as u64).max(1);
        e.seeds = (1..=seeds).collect();
        e.sample_interval = std::env::var("MMM_SAMPLE_INTERVAL")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &u64| n > 0);
        e.profile = std::env::var("MMM_PROFILE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        e.forensics = std::env::var("MMM_FORENSICS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        e
    }

    /// Runs one `(workload, seed)` pair.
    pub fn run_one(&self, workload: Workload, seed: u64) -> Result<SystemReport> {
        let mut sys = System::new(&self.cfg, workload, seed)?;
        if let Some(rate) = self.fault_rate {
            sys.enable_fault_injection(rate, seed ^ 0xF417);
        }
        if let Some(interval) = self.sample_interval {
            sys.attach_sampler(Sampler::every(interval));
        }
        if self.profile {
            sys.attach_profiler(Profiler::enabled());
        }
        if self.forensics {
            sys.attach_forensics(Forensics::enabled(
                self.cfg.cores as usize,
                FORENSICS_WINDOW,
            ));
        }
        sys.set_cycle_skipping(self.cycle_skipping);
        Ok(sys.run_measured(self.warmup, self.measure))
    }

    /// Runs one workload across all seeds (sequentially).
    pub fn run_workload(&self, workload: Workload) -> Result<RunResult> {
        let reports = self
            .seeds
            .iter()
            .map(|&s| self.run_one(workload, s))
            .collect::<Result<Vec<_>>>()?;
        Ok(RunResult { workload, reports })
    }

    /// Runs many workloads across a fixed pool of worker threads.
    ///
    /// Each `(workload, seed)` pair is one job on a shared atomic
    /// work-queue: workers claim the next job index with a
    /// `fetch_add`, so a long run never strands the rest of a batch
    /// behind it (the old implementation dispatched in fixed-size
    /// chunks and barriered between chunks). The pool size defaults to
    /// available parallelism and is overridable with `MMM_THREADS`;
    /// results are slotted by job index, so the output — like every
    /// simulated run — is independent of the thread count.
    pub fn run_many(&self, workloads: &[Workload]) -> Result<Vec<RunResult>> {
        let default_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let threads = env_u64("MMM_THREADS", default_threads as u64).max(1) as usize;
        self.run_many_on(workloads, threads)
    }

    /// [`Experiment::run_many`] with an explicit worker-thread count
    /// (bypassing the `MMM_THREADS` lookup).
    pub fn run_many_on(&self, workloads: &[Workload], threads: usize) -> Result<Vec<RunResult>> {
        let jobs: Vec<(usize, usize, Workload, u64)> = workloads
            .iter()
            .enumerate()
            .flat_map(|(i, &w)| {
                self.seeds
                    .iter()
                    .enumerate()
                    .map(move |(j, &s)| (i, j, w, s))
            })
            .collect();
        let outputs = run_queue(jobs.len(), threads, |k| {
            let (i, j, w, s) = jobs[k];
            (i, j, self.run_one(w, s))
        });
        let mut results: Vec<Vec<Option<SystemReport>>> =
            vec![vec![None; self.seeds.len()]; workloads.len()];
        for (i, j, report) in outputs {
            results[i][j] = Some(report?);
        }
        Ok(workloads
            .iter()
            .zip(results)
            .map(|(&workload, reports)| RunResult {
                workload,
                reports: reports.into_iter().flatten().collect(),
            })
            .collect())
    }
}

/// Runs `count` jobs through a fixed pool of worker threads claiming
/// job indices off a shared atomic counter — the work-queue behind
/// [`Experiment::run_many_on`] and [`run_cells`]. Results come back
/// unordered (tagged by whatever `job` returns); callers slot them by
/// index, so output is independent of the thread count.
fn run_queue<T: Send>(count: usize, threads: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let threads = threads.max(1).min(count.max(1));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, job) = (&next, &job);
                scope.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= count {
                            break;
                        }
                        done.push(job(k));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    })
}

/// One fully-parameterized campaign cell: an [`Experiment`] template
/// (its own `SystemConfig`, cycle budgets, seeds, and fault rate)
/// bound to one [`Workload`]. Unlike [`Experiment::run_many`], where
/// every workload shares a single configuration, each cell carries its
/// own — this is the unit of a design-space sweep (PAB geometry, pair
/// topology, scheduler mode, fault rate, switch interval all vary per
/// cell).
#[derive(Clone, Debug)]
pub struct Cell {
    /// The experiment template this cell runs under.
    pub experiment: Experiment,
    /// The workload configuration.
    pub workload: Workload,
}

impl Cell {
    /// Runs the cell's seeds sequentially (cross-cell parallelism is
    /// [`run_cells`]' job).
    pub fn run(&self) -> Result<RunResult> {
        self.experiment.run_workload(self.workload)
    }
}

/// Runs a batch of heterogeneous [`Cell`]s across the shared atomic
/// work-queue. The cell — not the `(workload, seed)` pair — is the job
/// granularity, so `on_complete` fires exactly once per finished cell
/// (from a worker thread, in completion order, with the cell's
/// `Ok`/`Err` outcome) and a campaign can checkpoint or log each cell
/// the moment it is done. Results are slotted by cell index: the
/// returned vector is independent of the thread count and of
/// completion order.
pub fn run_cells<F>(cells: &[Cell], threads: usize, on_complete: F) -> Result<Vec<RunResult>>
where
    F: Fn(usize, std::result::Result<&RunResult, &mmm_types::Error>) + Sync,
{
    let outputs = run_queue(cells.len(), threads, |k| {
        let result = cells[k].run();
        on_complete(k, result.as_ref());
        (k, result)
    });
    let mut results: Vec<Option<RunResult>> = (0..cells.len()).map(|_| None).collect();
    for (k, result) in outputs {
        results[k] = Some(result?);
    }
    Ok(results.into_iter().flatten().collect())
}

/// All seeds' reports for one workload.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The configuration that ran.
    pub workload: Workload,
    /// One report per seed.
    pub reports: Vec<SystemReport>,
}

impl RunResult {
    /// Mean and 95% CI half-width of an arbitrary per-report metric.
    pub fn metric<F: Fn(&SystemReport) -> f64>(&self, f: F) -> (f64, f64) {
        let samples: Vec<f64> = self.reports.iter().map(f).collect();
        mean_ci95(&samples)
    }

    /// Machine-wide average per-VCPU user IPC.
    pub fn avg_user_ipc(&self) -> (f64, f64) {
        self.metric(|r| r.avg_user_ipc())
    }

    /// Machine-wide user instructions per cycle (throughput).
    pub fn throughput(&self) -> (f64, f64) {
        self.metric(|r| r.total_user_commits() as f64 / r.cycles as f64)
    }

    /// Per-thread user IPC of one VM.
    pub fn vm_ipc(&self, vm: mmm_types::VmId) -> (f64, f64) {
        self.metric(|r| r.vm_avg_user_ipc(vm))
    }

    /// User-instruction throughput of one VM.
    pub fn vm_throughput(&self, vm: mmm_types::VmId) -> (f64, f64) {
        self.metric(|r| r.vm_user_commits(vm) as f64 / r.cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::Benchmark;

    fn tiny() -> Experiment {
        Experiment {
            warmup: 5_000,
            measure: 40_000,
            seeds: vec![1, 2],
            ..Default::default()
        }
    }

    #[test]
    fn run_workload_produces_one_report_per_seed() {
        let e = tiny();
        let r = e.run_workload(Workload::NoDmr(Benchmark::Pmake)).unwrap();
        assert_eq!(r.reports.len(), 2);
        let (ipc, _) = r.avg_user_ipc();
        assert!(ipc > 0.0);
    }

    #[test]
    fn run_many_matches_sequential() {
        let e = tiny();
        let seq = e.run_workload(Workload::NoDmr(Benchmark::Pmake)).unwrap();
        let par = e
            .run_many(&[Workload::NoDmr(Benchmark::Pmake)])
            .unwrap()
            .remove(0);
        assert_eq!(
            seq.reports[0].total_user_commits(),
            par.reports[0].total_user_commits(),
            "parallel execution must be bit-identical"
        );
    }

    #[test]
    fn work_queue_is_thread_count_independent() {
        let e = tiny();
        let wls = [
            Workload::NoDmr(Benchmark::Pmake),
            Workload::NoDmr(Benchmark::Oltp),
        ];
        let one = e.run_many_on(&wls, 1).unwrap();
        let many = e.run_many_on(&wls, 3).unwrap();
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.reports.len(), b.reports.len());
            for (ra, rb) in a.reports.iter().zip(&b.reports) {
                assert_eq!(ra.total_user_commits(), rb.total_user_commits());
                assert_eq!(ra.cycles, rb.cycles);
            }
        }
    }

    #[test]
    fn run_cells_matches_sequential_and_reports_completions() {
        use std::sync::Mutex;
        let mut small = tiny();
        small.seeds = vec![1];
        let mut other = small.clone();
        other.cfg.pab.entries = 64;
        let cells = [
            Cell {
                experiment: small.clone(),
                workload: Workload::NoDmr(Benchmark::Pmake),
            },
            Cell {
                experiment: other,
                workload: Workload::ReunionDmr(Benchmark::Pmake),
            },
        ];
        let done = Mutex::new(Vec::new());
        let par = run_cells(&cells, 2, |i, run| {
            done.lock()
                .unwrap()
                .push((i, run.expect("cell runs clean").reports.len()));
        })
        .unwrap();
        let mut done = done.into_inner().unwrap();
        done.sort_unstable();
        assert_eq!(done, vec![(0, 1), (1, 1)], "one completion per cell");
        // Slotted by cell index and bit-identical to sequential runs.
        for (cell, run) in cells.iter().zip(&par) {
            let seq = cell.run().unwrap();
            assert_eq!(seq.workload, run.workload);
            assert_eq!(
                seq.reports[0].total_user_commits(),
                run.reports[0].total_user_commits()
            );
            assert_eq!(seq.reports[0].cycles, run.reports[0].cycles);
        }
        // Thread count never changes the slotted output.
        let one = run_cells(&cells, 1, |_, _| {}).unwrap();
        for (a, b) in par.iter().zip(&one) {
            assert_eq!(
                a.reports[0].total_user_commits(),
                b.reports[0].total_user_commits()
            );
        }
    }

    #[test]
    fn metric_ci_is_finite() {
        let e = tiny();
        let r = e.run_workload(Workload::NoDmr(Benchmark::Pmake)).unwrap();
        let (m, hw) = r.throughput();
        assert!(m.is_finite() && hw.is_finite());
        assert!(m > 0.0);
    }

    #[test]
    fn sampling_and_skip_are_observability_knobs() {
        let w = Workload::NoDmr(Benchmark::Pmake);
        let mut e = tiny();
        let mut plain = e.run_one(w, 1).unwrap();
        e.sample_interval = Some(10_000);
        e.cycle_skipping = false;
        let mut sampled = e.run_one(w, 1).unwrap();
        // Wall timing (and the gauge derived from it) is the one
        // host-dependent field; zero it before comparing.
        plain.wall_seconds = 0.0;
        sampled.wall_seconds = 0.0;
        let series = sampled.series.take().expect("sampler attached");
        assert_eq!(
            plain.to_json(),
            sampled.to_json(),
            "sampling + skip-off must not change the report"
        );
        assert_eq!(series.interval, 10_000);
        assert_eq!(series.samples.len(), 4, "40k measured / 10k cadence");
        assert!(series.samples.iter().all(|s| !s.counters.is_empty()));
    }

    #[test]
    fn env_defaults_are_sane() {
        let e = Experiment::from_env();
        assert!(e.warmup > 0 && e.measure > 0 && !e.seeds.is_empty());
    }

    #[test]
    fn forensics_is_an_observability_knob() {
        // The golden-report constraint: metrics, counters, and cycle
        // counts are bit-identical with forensics on or off, and the
        // forensics report accounts for every injected fault.
        let w = Workload::ReunionDmr(Benchmark::Pmake);
        let mut e = tiny();
        e.fault_rate = Some(2e-5);
        let mut plain = e.run_one(w, 1).unwrap();
        e.forensics = true;
        let mut traced = e.run_one(w, 1).unwrap();
        plain.wall_seconds = 0.0;
        traced.wall_seconds = 0.0;
        let forensics = traced.forensics.take().expect("forensics attached");
        assert_eq!(
            plain.to_json(),
            traced.to_json(),
            "forensics must not change the report"
        );
        let tel = traced.fault_telemetry.as_ref().expect("injector attached");
        let injected: u64 = tel.sites().map(|(_, s)| s.injected).sum();
        assert_eq!(
            forensics.records.len() as u64,
            injected,
            "one record per injected fault"
        );
        assert!(injected > 0, "test must exercise the fault path");
    }

    #[test]
    fn forensics_stream_is_thread_count_invariant() {
        // The forensics JSONL, like every report, must be bit-identical
        // across MMM_THREADS values: runs are sealed deterministic
        // simulations slotted by job index.
        let mut e = tiny();
        e.fault_rate = Some(2e-5);
        e.forensics = true;
        let wls = [
            Workload::ReunionDmr(Benchmark::Pmake),
            Workload::ReunionDmr(Benchmark::Oltp),
        ];
        let render = |results: Vec<RunResult>| -> Vec<String> {
            results
                .into_iter()
                .flat_map(|r| r.reports)
                .map(|mut rep| {
                    rep.forensics
                        .take()
                        .expect("forensics attached")
                        .jsonl(0, "cfg", "bench", "sched")
                        .join("\n")
                })
                .collect()
        };
        let one = render(e.run_many_on(&wls, 1).unwrap());
        let many = render(e.run_many_on(&wls, 3).unwrap());
        assert_eq!(one, many, "forensics stream must be thread-invariant");
        assert!(
            one.iter().any(|s| s.lines().count() > 1),
            "at least one run must have recorded a fault"
        );
    }
}
