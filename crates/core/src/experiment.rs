//! High-level experiment driver.
//!
//! Reproduces the paper's methodology (§4.1): each configuration runs
//! for a warm-up period plus a measured period, repeated across
//! multiple seeds ("due to workload variability, we simulate multiple
//! runs and report average results with 95% confidence intervals"),
//! with *committed user instructions* as the work metric.
//!
//! Run lengths default to a laptop-scale budget and are overridable
//! through environment variables so the bench harness can scale up:
//!
//! * `MMM_WARMUP` — warm-up cycles per run (default 100 000);
//! * `MMM_MEASURE` — measured cycles per run (default 400 000;
//!   the paper used 100 M on a machine-room simulator);
//! * `MMM_SEEDS` — number of seeds (default 3).

use mmm_types::stats::mean_ci95;
use mmm_types::{Result, SystemConfig};

use crate::sched::Workload;
use crate::system::{System, SystemReport};

/// One experiment campaign: a configuration template plus run lengths.
///
/// ```
/// use mmm_core::{Experiment, Workload};
/// use mmm_workload::Benchmark;
///
/// let mut e = Experiment::default();
/// e.warmup = 5_000;
/// e.measure = 20_000;
/// e.seeds = vec![1, 2];
/// let run = e.run_workload(Workload::NoDmr(Benchmark::Pmake))?;
/// let (ipc, ci) = run.avg_user_ipc();
/// assert!(ipc > 0.0 && ci >= 0.0);
/// # Ok::<(), mmm_types::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Machine configuration template.
    pub cfg: SystemConfig,
    /// Warm-up cycles (excluded from measurement).
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Optional fault-injection rate (faults per core-cycle).
    pub fault_rate: Option<f64>,
}

impl Default for Experiment {
    fn default() -> Self {
        Self {
            cfg: SystemConfig::default(),
            warmup: 100_000,
            measure: 400_000,
            seeds: vec![1, 2, 3],
            fault_rate: None,
        }
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Experiment {
    /// Builds an experiment, honouring the `MMM_*` environment
    /// overrides.
    pub fn from_env() -> Self {
        let mut e = Experiment::default();
        e.warmup = env_u64("MMM_WARMUP", e.warmup);
        e.measure = env_u64("MMM_MEASURE", e.measure);
        let seeds = env_u64("MMM_SEEDS", e.seeds.len() as u64).max(1);
        e.seeds = (1..=seeds).collect();
        e
    }

    /// Runs one `(workload, seed)` pair.
    pub fn run_one(&self, workload: Workload, seed: u64) -> Result<SystemReport> {
        let mut sys = System::new(&self.cfg, workload, seed)?;
        if let Some(rate) = self.fault_rate {
            sys.enable_fault_injection(rate, seed ^ 0xF417);
        }
        Ok(sys.run_measured(self.warmup, self.measure))
    }

    /// Runs one workload across all seeds (sequentially).
    pub fn run_workload(&self, workload: Workload) -> Result<RunResult> {
        let reports = self
            .seeds
            .iter()
            .map(|&s| self.run_one(workload, s))
            .collect::<Result<Vec<_>>>()?;
        Ok(RunResult { workload, reports })
    }

    /// Runs many workloads, one OS thread per `(workload, seed)` pair,
    /// bounded by available parallelism.
    pub fn run_many(&self, workloads: &[Workload]) -> Result<Vec<RunResult>> {
        let jobs: Vec<(usize, Workload, u64)> = workloads
            .iter()
            .enumerate()
            .flat_map(|(i, &w)| self.seeds.iter().map(move |&s| (i, w, s)))
            .collect();
        let max_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut results: Vec<Vec<Option<SystemReport>>> =
            vec![vec![None; self.seeds.len()]; workloads.len()];
        for chunk in jobs.chunks(max_threads) {
            let outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = chunk
                    .iter()
                    .map(|&(i, w, s)| {
                        let me = self.clone();
                        scope.spawn(move || (i, s, me.run_one(w, s)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("experiment thread panicked"))
                    .collect::<Vec<_>>()
            });
            for (i, s, report) in outputs {
                let seed_idx = self.seeds.iter().position(|&x| x == s).expect("seed known");
                results[i][seed_idx] = Some(report?);
            }
        }
        Ok(workloads
            .iter()
            .zip(results)
            .map(|(&workload, reports)| RunResult {
                workload,
                reports: reports.into_iter().flatten().collect(),
            })
            .collect())
    }
}

/// All seeds' reports for one workload.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The configuration that ran.
    pub workload: Workload,
    /// One report per seed.
    pub reports: Vec<SystemReport>,
}

impl RunResult {
    /// Mean and 95% CI half-width of an arbitrary per-report metric.
    pub fn metric<F: Fn(&SystemReport) -> f64>(&self, f: F) -> (f64, f64) {
        let samples: Vec<f64> = self.reports.iter().map(f).collect();
        mean_ci95(&samples)
    }

    /// Machine-wide average per-VCPU user IPC.
    pub fn avg_user_ipc(&self) -> (f64, f64) {
        self.metric(|r| r.avg_user_ipc())
    }

    /// Machine-wide user instructions per cycle (throughput).
    pub fn throughput(&self) -> (f64, f64) {
        self.metric(|r| r.total_user_commits() as f64 / r.cycles as f64)
    }

    /// Per-thread user IPC of one VM.
    pub fn vm_ipc(&self, vm: mmm_types::VmId) -> (f64, f64) {
        self.metric(|r| r.vm_avg_user_ipc(vm))
    }

    /// User-instruction throughput of one VM.
    pub fn vm_throughput(&self, vm: mmm_types::VmId) -> (f64, f64) {
        self.metric(|r| r.vm_user_commits(vm) as f64 / r.cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::Benchmark;

    fn tiny() -> Experiment {
        Experiment {
            warmup: 5_000,
            measure: 40_000,
            seeds: vec![1, 2],
            ..Default::default()
        }
    }

    #[test]
    fn run_workload_produces_one_report_per_seed() {
        let e = tiny();
        let r = e.run_workload(Workload::NoDmr(Benchmark::Pmake)).unwrap();
        assert_eq!(r.reports.len(), 2);
        let (ipc, _) = r.avg_user_ipc();
        assert!(ipc > 0.0);
    }

    #[test]
    fn run_many_matches_sequential() {
        let e = tiny();
        let seq = e.run_workload(Workload::NoDmr(Benchmark::Pmake)).unwrap();
        let par = e
            .run_many(&[Workload::NoDmr(Benchmark::Pmake)])
            .unwrap()
            .remove(0);
        assert_eq!(
            seq.reports[0].total_user_commits(),
            par.reports[0].total_user_commits(),
            "parallel execution must be bit-identical"
        );
    }

    #[test]
    fn metric_ci_is_finite() {
        let e = tiny();
        let r = e.run_workload(Workload::NoDmr(Benchmark::Pmake)).unwrap();
        let (m, hw) = r.throughput();
        assert!(m.is_finite() && hw.is_finite());
        assert!(m > 0.0);
    }

    #[test]
    fn env_defaults_are_sane() {
        let e = Experiment::from_env();
        assert!(e.warmup > 0 && e.measure > 0 && !e.seeds.is_empty());
    }
}
