//! Workload and scheduling specifications for the paper's
//! configurations.
//!
//! A [`Workload`] names one machine configuration from the evaluation:
//! the three Fig 5 systems (`No DMR 2X`, `No DMR`, `Reunion`), the
//! three Fig 6 consolidated-server policies (`DMR Base`, `MMM-IPC`,
//! `MMM-TP`), and the single-OS mixed-mode system of §5.3 in which a
//! performance application transitions to reliable mode at every OS
//! entry.

use mmm_types::{Error, Result, SystemConfig, VcpuId, VmId};
use mmm_workload::Benchmark;

use crate::mode::RelMode;

/// How a consolidated server handles its performance guest (Fig 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MixedPolicy {
    /// Traditional DMR: every guest runs redundantly — the baseline.
    DmrBase,
    /// MMM-IPC: the performance guest runs one VCPU per vocal core;
    /// the redundant cores idle.
    MmmIpc,
    /// MMM-TP: the performance guest(s) run independent VCPUs on all
    /// cores, via multicore virtualization (overcommit).
    MmmTp,
}

impl MixedPolicy {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MixedPolicy::DmrBase => "DMR Base",
            MixedPolicy::MmmIpc => "MMM-IPC",
            MixedPolicy::MmmTp => "MMM-TP",
        }
    }
}

/// One machine configuration of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Fig 5 `No DMR 2X`: 16 independent VCPUs on 16 cores, no
    /// redundancy (the throughput-normalization baseline).
    NoDmr2x(Benchmark),
    /// Fig 5 `No DMR`: 8 VCPUs on 8 cores; the other 8 cores idle.
    NoDmr(Benchmark),
    /// Fig 5 `Reunion`: the same 8 VCPUs run redundantly across all
    /// 16 cores.
    ReunionDmr(Benchmark),
    /// Fig 6: a consolidated server with one reliable guest VM
    /// (8 VCPUs) and one performance guest, gang-scheduled with 1 ms
    /// timeslices.
    Consolidated {
        /// The application both guests run.
        bench: Benchmark,
        /// Performance-guest policy.
        policy: MixedPolicy,
    },
    /// §5.3: a single-OS system where 8 `PerfUser` VCPUs run solo in
    /// user mode and transition to DMR on every OS entry.
    SingleOsMixed(Benchmark),
    /// §3.5 / Figure 4: an overcommitted MMM. `reliable` VCPUs
    /// requiring DMR pairs and `perf` VCPUs requiring single cores are
    /// exposed to system software; when their demand exceeds the 16
    /// physical cores, the virtualization layer pauses VCPUs and
    /// rotates them fairly each quantum.
    Overcommitted {
        /// The application every VCPU runs.
        bench: Benchmark,
        /// VCPUs requiring reliable (DMR) execution.
        reliable: u16,
        /// VCPUs requiring performance execution.
        perf: u16,
    },
}

/// Everything the system needs to instantiate one VCPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcpuSpec {
    /// System-wide VCPU id.
    pub vcpu: VcpuId,
    /// Owning VM.
    pub vm: VmId,
    /// Reliability-mode register value.
    pub mode: RelMode,
    /// Application profile this VCPU executes.
    pub bench: Benchmark,
}

impl Workload {
    /// The benchmark under test.
    pub fn benchmark(self) -> Benchmark {
        match self {
            Workload::NoDmr2x(b)
            | Workload::NoDmr(b)
            | Workload::ReunionDmr(b)
            | Workload::SingleOsMixed(b) => b,
            Workload::Consolidated { bench, .. } => bench,
            Workload::Overcommitted { bench, .. } => bench,
        }
    }

    /// Display name of the configuration.
    pub fn name(self) -> &'static str {
        match self {
            Workload::NoDmr2x(_) => "No DMR 2X",
            Workload::NoDmr(_) => "No DMR",
            Workload::ReunionDmr(_) => "Reunion",
            Workload::Consolidated { policy, .. } => policy.name(),
            Workload::SingleOsMixed(_) => "Single-OS MMM",
            Workload::Overcommitted { .. } => "Overcommitted MMM",
        }
    }

    /// Scheduler family driving this configuration. Part of a run's
    /// identity block: runs under different schedulers are not
    /// comparable metric-for-metric, and `mmm-inspect` refuses to
    /// diff them.
    pub fn scheduler_name(self) -> &'static str {
        match self {
            Workload::NoDmr2x(_) | Workload::NoDmr(_) | Workload::ReunionDmr(_) => "static",
            Workload::Consolidated { .. } => "gang",
            Workload::Overcommitted { .. } => "overcommit",
            Workload::SingleOsMixed(_) => "single-os",
        }
    }

    /// Gang-scheduling policy, if this configuration time-slices VMs.
    pub fn gang_policy(self) -> Option<MixedPolicy> {
        match self {
            Workload::Consolidated { policy, .. } => Some(policy),
            _ => None,
        }
    }

    /// The VCPUs of this configuration.
    ///
    /// Numbering follows the paper's topologies: the (reliable) first
    /// VM holds VCPUs `0..pairs`; a performance guest holds
    /// `pairs..2*pairs`; MMM-TP's second co-scheduled performance
    /// guest (§4.1: "we implement the 16 VCPU guest as two
    /// co-scheduled 8 VCPU guests running the same application") holds
    /// `2*pairs..3*pairs` in its own VM.
    pub fn vcpu_specs(self, cfg: &SystemConfig) -> Result<Vec<VcpuSpec>> {
        let pairs = cfg.pairs() as u16;
        let bench = self.benchmark();
        let spec = |vcpu: u16, vm: u16, mode: RelMode| VcpuSpec {
            vcpu: VcpuId(vcpu),
            vm: VmId(vm),
            mode,
            bench,
        };
        let out = match self {
            Workload::NoDmr2x(_) => (0..cfg.cores as u16)
                .map(|i| spec(i, 0, RelMode::Performance))
                .collect(),
            Workload::NoDmr(_) => (0..pairs)
                .map(|i| spec(i, 0, RelMode::Performance))
                .collect(),
            Workload::ReunionDmr(_) => (0..pairs).map(|i| spec(i, 0, RelMode::Reliable)).collect(),
            Workload::Consolidated { policy, .. } => {
                let mut v: Vec<VcpuSpec> =
                    (0..pairs).map(|i| spec(i, 0, RelMode::Reliable)).collect();
                let perf_mode = match policy {
                    MixedPolicy::DmrBase => RelMode::Reliable,
                    _ => RelMode::Performance,
                };
                v.extend((0..pairs).map(|i| spec(pairs + i, 1, perf_mode)));
                if policy == MixedPolicy::MmmTp {
                    v.extend((0..pairs).map(|i| spec(2 * pairs + i, 2, perf_mode)));
                }
                v
            }
            Workload::SingleOsMixed(_) => {
                (0..pairs).map(|i| spec(i, 0, RelMode::PerfUser)).collect()
            }
            Workload::Overcommitted { reliable, perf, .. } => {
                // The address layout fits 24 private heaps per VM span;
                // reliable VCPUs live in VM 0, performance VCPUs in
                // VM 1.
                if reliable + perf > 24 {
                    return Err(Error::topology("overcommitted topology exceeds 24 VCPUs"));
                }
                if reliable == 0 && perf == 0 {
                    return Err(Error::topology("no VCPUs requested"));
                }
                let mut v: Vec<VcpuSpec> = (0..reliable)
                    .map(|i| spec(i, 0, RelMode::Reliable))
                    .collect();
                v.extend((0..perf).map(|i| spec(reliable + i, 1, RelMode::Performance)));
                v
            }
        };
        if out.is_empty() {
            return Err(Error::topology("workload produced no VCPUs"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn fig5_topologies() {
        let c = cfg();
        assert_eq!(
            Workload::NoDmr2x(Benchmark::Apache)
                .vcpu_specs(&c)
                .unwrap()
                .len(),
            16
        );
        assert_eq!(
            Workload::NoDmr(Benchmark::Apache)
                .vcpu_specs(&c)
                .unwrap()
                .len(),
            8
        );
        let reunion = Workload::ReunionDmr(Benchmark::Apache)
            .vcpu_specs(&c)
            .unwrap();
        assert_eq!(reunion.len(), 8);
        assert!(reunion.iter().all(|s| s.mode == RelMode::Reliable));
    }

    #[test]
    fn consolidated_topologies() {
        let c = cfg();
        for (policy, total, vms) in [
            (MixedPolicy::DmrBase, 16, 2),
            (MixedPolicy::MmmIpc, 16, 2),
            (MixedPolicy::MmmTp, 24, 3),
        ] {
            let specs = Workload::Consolidated {
                bench: Benchmark::Oltp,
                policy,
            }
            .vcpu_specs(&c)
            .unwrap();
            assert_eq!(specs.len(), total, "{policy:?}");
            let vm_count = specs
                .iter()
                .map(|s| s.vm)
                .collect::<std::collections::HashSet<_>>()
                .len();
            assert_eq!(vm_count, vms, "{policy:?}");
            // VM 0 is always reliable.
            assert!(specs
                .iter()
                .filter(|s| s.vm == VmId(0))
                .all(|s| s.mode == RelMode::Reliable));
        }
    }

    #[test]
    fn dmr_base_runs_everything_reliable() {
        let specs = Workload::Consolidated {
            bench: Benchmark::Zeus,
            policy: MixedPolicy::DmrBase,
        }
        .vcpu_specs(&cfg())
        .unwrap();
        assert!(specs.iter().all(|s| s.mode == RelMode::Reliable));
    }

    #[test]
    fn single_os_uses_perf_user() {
        let specs = Workload::SingleOsMixed(Benchmark::Pgbench)
            .vcpu_specs(&cfg())
            .unwrap();
        assert_eq!(specs.len(), 8);
        assert!(specs.iter().all(|s| s.mode == RelMode::PerfUser));
    }

    #[test]
    fn vcpu_ids_are_unique() {
        for policy in [
            MixedPolicy::DmrBase,
            MixedPolicy::MmmIpc,
            MixedPolicy::MmmTp,
        ] {
            let specs = Workload::Consolidated {
                bench: Benchmark::Apache,
                policy,
            }
            .vcpu_specs(&cfg())
            .unwrap();
            let ids: std::collections::HashSet<_> = specs.iter().map(|s| s.vcpu).collect();
            assert_eq!(ids.len(), specs.len());
        }
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Workload::NoDmr2x(Benchmark::Apache).name(), "No DMR 2X");
        assert_eq!(
            Workload::Consolidated {
                bench: Benchmark::Apache,
                policy: MixedPolicy::MmmTp
            }
            .name(),
            "MMM-TP"
        );
    }

    #[test]
    fn scheduler_families_cover_every_workload() {
        assert_eq!(
            Workload::NoDmr2x(Benchmark::Apache).scheduler_name(),
            "static"
        );
        assert_eq!(
            Workload::ReunionDmr(Benchmark::Oltp).scheduler_name(),
            "static"
        );
        assert_eq!(
            Workload::Consolidated {
                bench: Benchmark::Oltp,
                policy: MixedPolicy::MmmIpc
            }
            .scheduler_name(),
            "gang"
        );
        assert_eq!(
            Workload::Overcommitted {
                bench: Benchmark::Oltp,
                reliable: 2,
                perf: 4
            }
            .scheduler_name(),
            "overcommit"
        );
        assert_eq!(
            Workload::SingleOsMixed(Benchmark::Apache).scheduler_name(),
            "single-os"
        );
    }
}
