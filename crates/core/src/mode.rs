//! The per-VCPU reliability-mode register (paper §3.3).
//!
//! The chip exposes one 2-bit register per VCPU, writable only by
//! privileged software, selecting one of three operating modes. The
//! paper's evaluation mixes [`RelMode::Reliable`] and
//! [`RelMode::PerfUser`] (the third mode, full performance even for
//! privileged code, exists in the interface but is never safe for the
//! highest privilege level, which must always run reliably — §3.4.2).

/// Operating mode requested for a VCPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelMode {
    /// Operate with high reliability: the VCPU always executes on a
    /// DMR pair.
    Reliable,
    /// Operate with high performance even when executing privileged
    /// code. Only meaningful where the software above this VCPU (a
    /// VMM) is itself protected; a consolidated server uses this for
    /// performance guest VMs, treating the whole guest (OS included)
    /// as one unprotected entity (§3.4.2).
    Performance,
    /// Operate with high performance only while executing
    /// non-privileged (user / guest) software; privileged execution
    /// forces a transition to reliable mode (§3.3, mode 3). This is
    /// the mode a single-OS mixed-mode system uses for performance
    /// applications.
    PerfUser,
}

impl RelMode {
    /// Whether user-level code of this VCPU may run without DMR.
    pub fn user_unprotected(self) -> bool {
        matches!(self, RelMode::Performance | RelMode::PerfUser)
    }

    /// Whether OS entry on this VCPU forces a switch to reliable mode.
    pub fn traps_to_reliable(self) -> bool {
        self == RelMode::PerfUser
    }

    /// Encodes to the architectural 2-bit value.
    pub fn encode(self) -> u8 {
        match self {
            RelMode::Reliable => 0b01,
            RelMode::Performance => 0b10,
            RelMode::PerfUser => 0b11,
        }
    }

    /// Decodes the architectural 2-bit value.
    pub fn decode(bits: u8) -> Option<RelMode> {
        match bits {
            0b01 => Some(RelMode::Reliable),
            0b10 => Some(RelMode::Performance),
            0b11 => Some(RelMode::PerfUser),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for m in [RelMode::Reliable, RelMode::Performance, RelMode::PerfUser] {
            assert_eq!(RelMode::decode(m.encode()), Some(m));
        }
        assert_eq!(RelMode::decode(0), None);
    }

    #[test]
    fn protection_predicates() {
        assert!(!RelMode::Reliable.user_unprotected());
        assert!(RelMode::Performance.user_unprotected());
        assert!(RelMode::PerfUser.user_unprotected());
        assert!(RelMode::PerfUser.traps_to_reliable());
        assert!(!RelMode::Performance.traps_to_reliable());
        assert!(!RelMode::Reliable.traps_to_reliable());
    }
}
