//! The Protection Assistance Table (paper §3.4.1).
//!
//! "Similar to an inverse page table: for each physical page in the
//! system, a '1' entry indicates that page can only be accessed by
//! applications executing in reliable mode, and a '0' entry indicates
//! that page can potentially be accessed by any software." One bit per
//! 8 KB page; the table lives in cacheable physical memory and is
//! maintained by system software (the VMM updates it alongside its
//! page tables).
//!
//! The PAT content is the architectural source of truth; the per-core
//! [`crate::pab::Pab`] caches 64-byte lines of it.

use mmm_types::LineAddr;
use mmm_types::PageAddr;
use mmm_workload::AddressLayout;
use std::collections::HashMap;

/// Pages covered by one 64-byte PAT line (64 B × 8 bits).
pub const PAGES_PER_PAT_LINE: u64 = 512;

/// The in-memory protection bitmap.
///
/// Sparse: groups of 512 pages materialize on first write, matching
/// how system software would lazily allocate PAT backing pages.
#[derive(Clone, Debug, Default)]
pub struct Pat {
    /// Page-group index (`page / 512`) → 512-bit bitmap (8 × u64).
    groups: HashMap<u64, [u64; 8]>,
    layout: AddressLayout,
}

impl Pat {
    /// Creates an empty PAT: no page is marked reliable-only.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a single page.
    pub fn set_reliable(&mut self, page: PageAddr, reliable: bool) {
        let group = self.groups.entry(page.0 / PAGES_PER_PAT_LINE).or_default();
        let bit = page.0 % PAGES_PER_PAT_LINE;
        let (word, mask) = ((bit / 64) as usize, 1u64 << (bit % 64));
        if reliable {
            group[word] |= mask;
        } else {
            group[word] &= !mask;
        }
    }

    /// Marks a contiguous page range (system software marking a VM's
    /// whole allocation).
    pub fn set_range_reliable(&mut self, pages: std::ops::Range<u64>, reliable: bool) {
        for p in pages {
            self.set_reliable(PageAddr(p), reliable);
        }
    }

    /// Whether `page` may only be written by reliable-mode software.
    pub fn is_reliable(&self, page: PageAddr) -> bool {
        self.groups
            .get(&(page.0 / PAGES_PER_PAT_LINE))
            .map(|g| {
                let bit = page.0 % PAGES_PER_PAT_LINE;
                g[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
            })
            .unwrap_or(false)
    }

    /// Physical line of the PAT backing store holding `page`'s bit —
    /// the address a PAB miss fetches through the cache hierarchy.
    pub fn backing_line(&self, page: PageAddr) -> LineAddr {
        self.layout.pat_line_for(page)
    }

    /// Bytes of PAT backing store materialized so far (diagnostics;
    /// the paper sizes the full table at 16 MB per TB of physical
    /// memory).
    pub fn resident_bytes(&self) -> u64 {
        self.groups.len() as u64 * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unprotected() {
        let pat = Pat::new();
        assert!(!pat.is_reliable(PageAddr(0)));
        assert!(!pat.is_reliable(PageAddr(123_456)));
    }

    #[test]
    fn set_and_clear_single_pages() {
        let mut pat = Pat::new();
        pat.set_reliable(PageAddr(1000), true);
        assert!(pat.is_reliable(PageAddr(1000)));
        assert!(!pat.is_reliable(PageAddr(999)));
        assert!(!pat.is_reliable(PageAddr(1001)));
        pat.set_reliable(PageAddr(1000), false);
        assert!(!pat.is_reliable(PageAddr(1000)));
    }

    #[test]
    fn range_marking() {
        let mut pat = Pat::new();
        pat.set_range_reliable(5000..5100, true);
        assert!(pat.is_reliable(PageAddr(5000)));
        assert!(pat.is_reliable(PageAddr(5099)));
        assert!(!pat.is_reliable(PageAddr(4999)));
        assert!(!pat.is_reliable(PageAddr(5100)));
    }

    #[test]
    fn bits_across_word_and_group_boundaries() {
        let mut pat = Pat::new();
        for p in [63u64, 64, 511, 512, 513] {
            pat.set_reliable(PageAddr(p), true);
            assert!(pat.is_reliable(PageAddr(p)), "page {p}");
        }
        // Neighbours unaffected.
        assert!(!pat.is_reliable(PageAddr(62)));
        assert!(!pat.is_reliable(PageAddr(65)));
        assert!(!pat.is_reliable(PageAddr(510)));
        assert!(!pat.is_reliable(PageAddr(514)));
    }

    #[test]
    fn backing_lines_group_512_pages() {
        let pat = Pat::new();
        assert_eq!(
            pat.backing_line(PageAddr(0)),
            pat.backing_line(PageAddr(511))
        );
        assert_ne!(
            pat.backing_line(PageAddr(511)),
            pat.backing_line(PageAddr(512))
        );
    }

    #[test]
    fn resident_bytes_grow_lazily() {
        let mut pat = Pat::new();
        assert_eq!(pat.resident_bytes(), 0);
        pat.set_reliable(PageAddr(0), true);
        pat.set_reliable(PageAddr(511), true);
        assert_eq!(pat.resident_bytes(), 64);
        pat.set_reliable(PageAddr(512), true);
        assert_eq!(pat.resident_bytes(), 128);
    }
}
