//! Plain-text table rendering for the experiment harnesses.
//!
//! The bin targets in `mmm-bench` print tables shaped like the paper's
//! figures (one row per benchmark, one column per configuration) using
//! these helpers.

use std::fmt::Write as _;

/// Formats `mean ± half-width`.
pub fn fmt_ci(mean: f64, half_width: f64) -> String {
    if half_width > 0.0 {
        format!("{mean:.3} ±{half_width:.3}")
    } else {
        format!("{mean:.3}")
    }
}

/// Formats a ratio as `1.87x`.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats cycles compactly (`2.3k`, `10.4k`, `1.2M`).
pub fn fmt_cycles(c: f64) -> String {
    if c >= 1e6 {
        format!("{:.1}M", c / 1e6)
    } else if c >= 1e3 {
        format!("{:.1}k", c / 1e3)
    } else {
        format!("{c:.0}")
    }
}

/// Renders an aligned text table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            } else {
                widths.push(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(header_line, "{h:<w$}  ", w = w);
    }
    let _ = writeln!(out, "{}", header_line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Prints a rendered table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(title, headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_formatting() {
        assert_eq!(fmt_ci(0.5, 0.0), "0.500");
        assert_eq!(fmt_ci(0.5, 0.01), "0.500 ±0.010");
    }

    #[test]
    fn ratio_and_cycles() {
        assert_eq!(fmt_ratio(1.872), "1.87x");
        assert_eq!(fmt_cycles(2_300.0), "2.3k");
        assert_eq!(fmt_cycles(10_400.0), "10.4k");
        assert_eq!(fmt_cycles(1_200_000.0), "1.2M");
        assert_eq!(fmt_cycles(42.0), "42");
    }

    #[test]
    fn rows_wider_than_header_keep_all_cells() {
        let s = render_table(
            "W",
            &["a"],
            &[vec!["x".into(), "extra-cell".into(), "tail".into()]],
        );
        assert!(s.contains("extra-cell"), "extra cells must render: {s}");
        assert!(s.contains("tail"), "all trailing cells must render: {s}");
    }

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            "T",
            &["bench", "value"],
            &[
                vec!["Apache".into(), "1.00".into()],
                vec!["pgbench-long".into(), "2.00".into()],
            ],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("Apache"));
        assert!(s.contains("pgbench-long"));
        // Header aligned to widest cell.
        let lines: Vec<&str> = s.lines().collect();
        let header_idx = lines.iter().position(|l| l.starts_with("bench")).unwrap();
        assert!(lines[header_idx].contains("value"));
    }
}
