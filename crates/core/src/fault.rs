//! Transient-fault injection.
//!
//! The paper's performance evaluation is fault-free, but its entire
//! design exists to survive faults: DMR detects them through
//! fingerprint mismatches, and the PAB blocks performance-mode *wild
//! stores* — the §3.4.1 scenario where "a bit flip in the privileged
//! mode bit, checking logic, or TLB array can result in the successful
//! translation of an invalid virtual address", letting even correct
//! software write physical addresses it does not own.
//!
//! The injector draws fault events as a Poisson process over
//! core-cycles and classifies each by site. The *effects* are applied
//! by the [`crate::system::System`], which knows each core's current
//! role:
//!
//! * any fault on a DMR core → fingerprint mismatch → detected and
//!   recovered by Reunion;
//! * a TLB/permission fault on a performance core → a wild store to a
//!   random physical page, checked by the PAB: blocked (exception) if
//!   the page is reliable-only, silent corruption of the performance
//!   domain otherwise;
//! * a privileged-register fault on a performance core → corrupt state
//!   that the Enter-DMR verification step catches at the next mode
//!   transition (§3.4.3);
//! * a core-logic fault on a performance core → silent corruption,
//!   tolerated by assumption for performance applications;
//! * a fault on an idle core → no effect.

use mmm_types::stats::Log2Histogram;
use mmm_types::{CoreId, Cycle, DetRng};

/// Hardware site struck by a transient fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Combinational logic inside the core (datapath, control).
    CoreLogic,
    /// TLB array or permission-checking logic.
    TlbPermission,
    /// A privileged register.
    PrivReg,
}

impl FaultSite {
    /// Stable lowercase label used in metric names and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::CoreLogic => "core_logic",
            FaultSite::TlbPermission => "tlb_permission",
            FaultSite::PrivReg => "priv_reg",
        }
    }

    /// All sites, in label order of the campaign report.
    pub fn all() -> [FaultSite; 3] {
        [
            FaultSite::CoreLogic,
            FaultSite::TlbPermission,
            FaultSite::PrivReg,
        ]
    }
}

/// Per-site campaign telemetry: outcome tallies plus the
/// injection-to-detection latency distribution for the detected ones.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SiteTelemetry {
    /// Faults injected at this site.
    pub injected: u64,
    /// Faults whose effect was caught by a hardware check (DMR
    /// fingerprint mismatch, PAB block, Enter-DMR verification).
    pub detected: u64,
    /// Faults with no architectural effect (idle core, or a silent
    /// performance-domain upset tolerated by assumption).
    pub masked: u64,
    /// Faults that corrupted state no check covers (wild stores into
    /// unprotected performance-domain pages).
    pub escaped: u64,
    /// Injection-to-detection latency in cycles, one observation per
    /// detected fault whose detection event could be attributed back
    /// to its injection (coincident injections merge into one
    /// detection, so `detection_latency.count() <= detected`).
    pub detection_latency: Log2Histogram,
}

impl SiteTelemetry {
    /// Adds another site's tallies and latency distribution.
    pub fn merge(&mut self, o: &SiteTelemetry) {
        self.injected += o.injected;
        self.detected += o.detected;
        self.masked += o.masked;
        self.escaped += o.escaped;
        self.detection_latency.merge(&o.detection_latency);
    }
}

/// Whole-campaign telemetry: one [`SiteTelemetry`] per fault site.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignTelemetry {
    /// Core-logic faults.
    pub core_logic: SiteTelemetry,
    /// TLB/permission faults.
    pub tlb_permission: SiteTelemetry,
    /// Privileged-register faults.
    pub priv_reg: SiteTelemetry,
}

impl CampaignTelemetry {
    /// The telemetry slot for `site`.
    pub fn site(&self, site: FaultSite) -> &SiteTelemetry {
        match site {
            FaultSite::CoreLogic => &self.core_logic,
            FaultSite::TlbPermission => &self.tlb_permission,
            FaultSite::PrivReg => &self.priv_reg,
        }
    }

    /// The mutable telemetry slot for `site`.
    pub fn site_mut(&mut self, site: FaultSite) -> &mut SiteTelemetry {
        match site {
            FaultSite::CoreLogic => &mut self.core_logic,
            FaultSite::TlbPermission => &mut self.tlb_permission,
            FaultSite::PrivReg => &mut self.priv_reg,
        }
    }

    /// All `(site, telemetry)` pairs in report order.
    pub fn sites(&self) -> impl Iterator<Item = (FaultSite, &SiteTelemetry)> {
        FaultSite::all().into_iter().map(move |s| (s, self.site(s)))
    }

    /// Merges another campaign's telemetry site by site (multi-seed
    /// aggregation).
    pub fn merge(&mut self, o: &CampaignTelemetry) {
        self.core_logic.merge(&o.core_logic);
        self.tlb_permission.merge(&o.tlb_permission);
        self.priv_reg.merge(&o.priv_reg);
    }
}

/// Outcome counters for injected faults.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults injected in total.
    pub injected: u64,
    /// Faults striking DMR cores, detected via fingerprint mismatch.
    pub detected_by_dmr: u64,
    /// Wild stores blocked by the PAB before reaching the L2.
    pub wild_stores_blocked: u64,
    /// Wild stores that hit unprotected (performance-domain) pages.
    pub wild_stores_corrupting: u64,
    /// Privileged-register corruptions caught by Enter-DMR
    /// verification.
    pub privreg_caught_at_entry: u64,
    /// Core-logic faults in performance mode (silent, tolerated).
    pub silent_perf_faults: u64,
    /// Faults striking idle cores (no architectural effect).
    pub on_idle_core: u64,
}

impl FaultStats {
    /// Faults whose effect was contained away from reliable software
    /// (everything except wild stores that corrupted an unprotected
    /// page and silent performance-domain faults, which are tolerated
    /// by assumption).
    pub fn contained(&self) -> u64 {
        self.detected_by_dmr
            + self.wild_stores_blocked
            + self.privreg_caught_at_entry
            + self.on_idle_core
    }
}

/// How the injector turns the fault *rate* into fault *events*.
///
/// Both models realize the same machine-level Bernoulli process
/// (probability `rate × cores` of one fault per cycle); they differ
/// only in how many RNG draws — and, downstream, how many simulated
/// cycles — that realization costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Pre-drawn geometric inter-arrival events: one draw per fault
    /// arrival, and [`FaultInjector::next_at`] announces the arrival
    /// cycle in advance so the system's event wheel can fast-forward
    /// straight to it. The geometric inter-arrival time is exactly the
    /// gap distribution of per-cycle Bernoulli trials, so the two
    /// models are statistically indistinguishable (asserted, with
    /// tolerance, by `tests/event_wheel.rs`).
    #[default]
    Geometric,
    /// The reference realization: one Bernoulli trial every cycle.
    /// [`FaultInjector::next_at`] pins the event wheel to the next
    /// cycle, forcing the per-cycle simulation the geometric model
    /// exists to avoid. Kept as the statistical baseline the
    /// equivalence test measures the geometric model against.
    Bernoulli,
}

/// Poisson fault-event source.
#[derive(Debug)]
pub struct FaultInjector {
    rng: DetRng,
    rate_per_core_cycle: f64,
    cores: u32,
    model: ArrivalModel,
    /// Next arrival under [`ArrivalModel::Geometric`] (unused for
    /// Bernoulli, whose arrivals are drawn cycle by cycle).
    next_at: Cycle,
    /// Outcome counters, updated by the `System` as effects apply.
    pub stats: FaultStats,
    /// Per-site campaign telemetry, updated alongside `stats`.
    pub telemetry: CampaignTelemetry,
}

impl FaultInjector {
    /// Creates an injector with the given per-core-per-cycle fault
    /// rate, drawing geometric inter-arrival events.
    pub fn new(rate_per_core_cycle: f64, cores: u32, seed: u64) -> Self {
        Self::with_model(rate_per_core_cycle, cores, seed, ArrivalModel::Geometric)
    }

    /// Creates an injector with an explicit [`ArrivalModel`].
    pub fn with_model(
        rate_per_core_cycle: f64,
        cores: u32,
        seed: u64,
        model: ArrivalModel,
    ) -> Self {
        assert!(rate_per_core_cycle > 0.0, "rate must be positive");
        let mut rng = DetRng::new(seed, 0xFA17);
        let first = match model {
            ArrivalModel::Geometric => rng.geometric(rate_per_core_cycle * cores as f64),
            ArrivalModel::Bernoulli => 0,
        };
        Self {
            rng,
            rate_per_core_cycle,
            cores,
            model,
            next_at: first,
            stats: FaultStats::default(),
            telemetry: CampaignTelemetry::default(),
        }
    }

    /// The arrival model in use.
    pub fn model(&self) -> ArrivalModel {
        self.model
    }

    /// The earliest cycle after `now` at which a fault can strike —
    /// the deadline this injector registers with the event wheel. The
    /// geometric model knows its next arrival exactly; the Bernoulli
    /// reference draws every cycle, so its answer is always the next
    /// cycle (pinning the clock to per-cycle simulation).
    pub fn next_event(&self, now: Cycle) -> Cycle {
        match self.model {
            ArrivalModel::Geometric => self.next_at.max(now + 1),
            ArrivalModel::Bernoulli => now + 1,
        }
    }

    /// Cycle of the next fault event (geometric model only; the
    /// Bernoulli reference does not know its arrivals in advance).
    pub fn next_at(&self) -> Cycle {
        self.next_at
    }

    /// If a fault strikes at `now`, returns the struck core and site
    /// and (for the geometric model) schedules the next arrival.
    pub fn poll(&mut self, now: Cycle) -> Option<(CoreId, FaultSite)> {
        match self.model {
            ArrivalModel::Geometric => {
                if now < self.next_at {
                    return None;
                }
                self.next_at = now
                    + self
                        .rng
                        .geometric(self.rate_per_core_cycle * self.cores as f64);
            }
            ArrivalModel::Bernoulli => {
                if !self
                    .rng
                    .chance(self.rate_per_core_cycle * self.cores as f64)
                {
                    return None;
                }
            }
        }
        self.stats.injected += 1;
        let core = CoreId(self.rng.below(self.cores as u64) as u16);
        // Site mix: logic faults dominate projected future rates
        // (Shivakumar et al., cited in §3.1); TLB/permission and
        // privileged-register upsets are rarer.
        let r = self.rng.unit();
        let site = if r < 0.6 {
            FaultSite::CoreLogic
        } else if r < 0.9 {
            FaultSite::TlbPermission
        } else {
            FaultSite::PrivReg
        };
        Some((core, site))
    }

    /// Draws a wild-store target page in `[0, max_page)`.
    pub fn draw_wild_page(&mut self, max_page: u64) -> u64 {
        self.rng.below(max_page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_roughly_respected() {
        let mut inj = FaultInjector::new(1e-4, 16, 7);
        let mut count = 0;
        for now in 0..200_000u64 {
            if inj.poll(now).is_some() {
                count += 1;
            }
        }
        // Expected 16 * 1e-4 * 200k = 320.
        assert!((200..500).contains(&count), "fault count {count}");
    }

    #[test]
    fn cores_and_sites_are_spread() {
        let mut inj = FaultInjector::new(1e-3, 16, 9);
        let mut cores = std::collections::HashSet::new();
        let mut sites = std::collections::HashSet::new();
        for now in 0..100_000u64 {
            if let Some((c, s)) = inj.poll(now) {
                cores.insert(c);
                sites.insert(s);
            }
        }
        assert!(cores.len() >= 12, "core spread {}", cores.len());
        assert_eq!(sites.len(), 3);
    }

    #[test]
    fn no_fault_before_next_at() {
        let mut inj = FaultInjector::new(1e-6, 16, 1);
        let at = inj.next_at();
        for now in 0..at.min(10_000) {
            assert!(inj.poll(now).is_none());
        }
    }

    #[test]
    fn contained_summary() {
        let s = FaultStats {
            injected: 10,
            detected_by_dmr: 4,
            wild_stores_blocked: 2,
            privreg_caught_at_entry: 1,
            on_idle_core: 1,
            wild_stores_corrupting: 1,
            silent_perf_faults: 1,
        };
        assert_eq!(s.contained(), 8);
    }

    #[test]
    fn telemetry_site_slots_and_labels() {
        let mut t = CampaignTelemetry::default();
        t.site_mut(FaultSite::PrivReg).detected += 1;
        t.site_mut(FaultSite::PrivReg).detection_latency.record(42);
        assert_eq!(t.site(FaultSite::PrivReg).detected, 1);
        assert_eq!(t.site(FaultSite::PrivReg).detection_latency.count(), 1);
        assert_eq!(t.site(FaultSite::CoreLogic).detected, 0);
        let labels: Vec<&str> = t.sites().map(|(s, _)| s.label()).collect();
        assert_eq!(labels, ["core_logic", "tlb_permission", "priv_reg"]);
    }

    #[test]
    fn wild_pages_in_range() {
        let mut inj = FaultInjector::new(1e-3, 4, 2);
        for _ in 0..1000 {
            assert!(inj.draw_wild_page(500) < 500);
        }
    }

    #[test]
    fn coincident_injections_merge_into_one_latency() {
        // Two faults striking a DMR core inside the same service
        // window both count as detected, but the second merges into
        // the first's armed fingerprint divergence: only one latency
        // observation is attributed, pinning the documented
        // `detection_latency.count() <= detected` contract.
        use crate::sched::Workload;
        use crate::system::System;
        use mmm_types::SystemConfig;
        use mmm_workload::Benchmark;

        let mut sys = System::new(
            &SystemConfig::default(),
            Workload::ReunionDmr(Benchmark::Pmake),
            1,
        )
        .unwrap();
        // A vanishing rate (mean inter-arrival ~6e7 cycles, three
        // orders beyond the run): the injector's own arrivals never
        // fire, so the only faults are the manual strikes below.
        sys.enable_fault_injection(1e-9, 7);
        sys.run(20_000);
        let (vocal, _) = sys.first_pair_cores().expect("ReunionDmr couples a pair");
        let now = sys.now();
        sys.apply_fault(vocal, FaultSite::CoreLogic, now);
        sys.apply_fault(vocal, FaultSite::CoreLogic, now);
        // Run on so the pair services the armed mismatch and the
        // latency is attributed back to the first injection.
        sys.run(20_000);
        let report = sys.report(40_000);
        let tel = report.fault_telemetry.expect("injector attached");
        let site = tel.site(FaultSite::CoreLogic);
        assert_eq!(site.injected, 2);
        assert_eq!(site.detected, 2, "both faults detected by DMR");
        assert_eq!(
            site.detection_latency.count(),
            1,
            "merged injection contributes no separate latency"
        );
    }
}
