//! Virtualized VCPUs: the unit the chip schedules onto cores.
//!
//! The chip exposes VCPUs to system software and maps them onto
//! physical cores itself (paper §3.5): one core in performance mode, a
//! vocal/mute pair in reliable mode, or parked (paused) when the
//! machine is overcommitted and no cores are free.

use mmm_cpu::ExecContext;
use mmm_types::{CoreId, VcpuId, VmId};

use crate::mode::RelMode;

/// Where a VCPU's computation currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// Not running; architected state parked in the scratchpad.
    Parked,
    /// Running in performance mode on one core.
    Solo(CoreId),
    /// Running redundantly on a DMR pair.
    Dmr {
        /// The coherent master core.
        vocal: CoreId,
        /// The incoherent checker core.
        mute: CoreId,
    },
}

impl Assignment {
    /// Cores occupied by this assignment.
    pub fn cores(self) -> impl Iterator<Item = CoreId> {
        let (a, b) = match self {
            Assignment::Parked => (None, None),
            Assignment::Solo(c) => (Some(c), None),
            Assignment::Dmr { vocal, mute } => (Some(vocal), Some(mute)),
        };
        a.into_iter().chain(b)
    }

    /// Whether the VCPU is currently executing.
    pub fn is_running(self) -> bool {
        self != Assignment::Parked
    }
}

/// One virtual processor.
#[derive(Debug)]
pub struct Vcpu {
    /// Architectural identifier.
    pub id: VcpuId,
    /// Owning VM (or the single OS image).
    pub vm: VmId,
    /// The reliability-mode register (paper §3.3), written by
    /// privileged software.
    pub mode: RelMode,
    /// Architected context while parked (held by a core otherwise).
    pub parked_ctx: Option<ExecContext>,
    /// Current mapping onto cores.
    pub assignment: Assignment,
}

impl Vcpu {
    /// Creates a parked VCPU holding `ctx`.
    pub fn new(id: VcpuId, vm: VmId, mode: RelMode, ctx: ExecContext) -> Self {
        Self {
            id,
            vm,
            mode,
            parked_ctx: Some(ctx),
            assignment: Assignment::Parked,
        }
    }

    /// Committed user instructions, wherever the context lives. When
    /// the VCPU is running, the caller must pass the core-resident
    /// context's counters via [`Vcpu::parked_ctx`] being `None` — use
    /// `System`-level accounting instead; this accessor covers parked
    /// VCPUs only.
    pub fn parked_user_commits(&self) -> Option<u64> {
        self.parked_ctx.as_ref().map(|c| c.user_commits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::{Benchmark, OpStream};

    #[test]
    fn assignment_cores() {
        assert_eq!(Assignment::Parked.cores().count(), 0);
        assert!(!Assignment::Parked.is_running());
        let solo = Assignment::Solo(CoreId(3));
        assert_eq!(solo.cores().collect::<Vec<_>>(), vec![CoreId(3)]);
        assert!(solo.is_running());
        let dmr = Assignment::Dmr {
            vocal: CoreId(0),
            mute: CoreId(1),
        };
        assert_eq!(dmr.cores().collect::<Vec<_>>(), vec![CoreId(0), CoreId(1)]);
    }

    #[test]
    fn new_vcpu_is_parked_with_context() {
        let ctx = ExecContext::new(OpStream::new(
            Benchmark::Apache.profile(),
            VmId(1),
            VcpuId(4),
            3,
        ));
        let v = Vcpu::new(VcpuId(4), VmId(1), RelMode::Reliable, ctx);
        assert_eq!(v.assignment, Assignment::Parked);
        assert_eq!(v.parked_user_commits(), Some(0));
        assert_eq!(v.mode, RelMode::Reliable);
    }
}
