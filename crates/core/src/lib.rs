//! The Mixed-Mode Multicore (MMM).
//!
//! This crate is the paper's primary contribution: a 16-core chip
//! that runs some VCPUs under Reunion dual-modular redundancy while
//! others run at full speed in performance mode — simultaneously,
//! while protecting the reliable software from any hardware fault that
//! strikes while performance-mode software is running.
//!
//! The pieces, in paper order:
//!
//! * [`mode`] — the per-VCPU 2-bit reliability-mode register exposed
//!   through the ISA (§3.3);
//! * [`pat`] — the Protection Assistance Table, an inverse-page-table
//!   bitmap in cacheable memory maintained by system software (§3.4.1);
//! * [`pab`] — the Protection Assistance Buffer, a small per-core
//!   hardware cache of PAT entries that re-validates the permission of
//!   every performance-mode store write-through, in parallel with or
//!   serially before the L2 access (§3.4.1, §5.2);
//! * [`vcpu`] / [`transition`] — virtualized VCPU state and the
//!   hardware state machine that enters and leaves DMR mode, staging
//!   and *verifying* privileged state through a scratchpad region
//!   (§3.4.3);
//! * [`sched`] — the schedulers: always-DMR (the baseline), MMM-IPC
//!   (idle the mute), and MMM-TP (overcommit VCPUs onto freed cores
//!   through multicore virtualization, §3.5);
//! * [`fault`] — a transient-fault injector exercising the protection
//!   paths (DMR detection, PAB wild-store blocking);
//! * [`wheel`] — the event wheel: the registry of future wake sources
//!   (timeslice boundaries, sample boundaries, fault arrivals,
//!   single-OS trap polls) that lets the system clock jump straight
//!   to the next event in every mode;
//! * [`system`] — the full-system cycle-level simulator;
//! * [`experiment`] / [`report`] — the harness that reproduces every
//!   table and figure of the paper's evaluation (see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod fault;
pub mod mode;
pub mod pab;
pub mod pat;
pub mod report;
pub mod sched;
pub mod system;
pub mod transition;
pub mod vcpu;
pub mod wheel;

pub use experiment::{run_cells, Cell, Experiment, RunResult};
pub use fault::{ArrivalModel, FaultInjector, FaultSite, FaultStats};
pub use mode::RelMode;
pub use pab::{check_store, Pab, PabStats, PabVerdict};
pub use pat::Pat;
pub use sched::{MixedPolicy, VcpuSpec, Workload};
pub use system::{System, SystemReport, VcpuSlice};
pub use transition::{TransitionEngine, TransitionStats};
pub use vcpu::{Assignment, Vcpu};
pub use wheel::{EventWheel, WakeSource};
