//! The mode-transition state machine (paper §3.4.3).
//!
//! Each core contains a small hardware state machine that performs the
//! steps of entering and leaving DMR mode. State is staged through a
//! reserved *scratchpad* region of physical memory: every VCPU owns
//! two copies there — copy 0 written by the vocal (or a solo core),
//! copy 1 the mute's redundant copy used to *verify* the vocal's
//! privileged state when re-entering DMR, preventing faults that
//! occurred during performance mode from being laundered into
//! reliable execution.
//!
//! All staging traffic is issued as ordinary coherent loads and stores
//! (even from a mute core — the paper's per-line coherent bit exists
//! exactly for this), so transition cost responds to real cache
//! state: warm scratchpad lines make switches cheap, cross-core
//! transfers surface as 3-hop C2C latencies, and the MMM-TP mute-cache
//! flush walks the L2 at one line per cycle.

use mmm_mem::request::store_token;
use mmm_mem::MemorySystem;
use mmm_types::config::{ReunionConfig, VirtConfig};
use mmm_types::stats::{Log2Histogram, RunningStat};
use mmm_types::{CoreId, Cycle, VcpuId};
use mmm_workload::AddressLayout;

/// Counters and distributions for mode transitions (Table 1).
///
/// Each transition kind keeps both a [`RunningStat`] (mean/CI for the
/// tables) and a [`Log2Histogram`] of the same cycle costs — the
/// histogram feeds the flight recorder, whose interval deltas need
/// mergeable buckets rather than running moments.
#[derive(Clone, Debug, Default)]
pub struct TransitionStats {
    /// Enter-DMR events and their cycle costs.
    pub enter: RunningStat,
    /// Leave-DMR events and their cycle costs.
    pub leave: RunningStat,
    /// DMR-to-DMR VCPU switches (gang boundaries without a mode
    /// change).
    pub dmr_switch: RunningStat,
    /// Performance-to-performance VCPU switches.
    pub perf_switch: RunningStat,
    /// Enter-DMR cycle costs as a histogram.
    pub enter_hist: Log2Histogram,
    /// Leave-DMR cycle costs as a histogram.
    pub leave_hist: Log2Histogram,
    /// DMR-to-DMR switch cycle costs as a histogram.
    pub dmr_switch_hist: Log2Histogram,
    /// Performance-switch cycle costs as a histogram.
    pub perf_switch_hist: Log2Histogram,
}

impl TransitionStats {
    /// Records one enter-DMR cost.
    fn push_enter(&mut self, cycles: Cycle) {
        self.enter.push(cycles as f64);
        self.enter_hist.record(cycles);
    }

    /// Records one leave-DMR cost.
    fn push_leave(&mut self, cycles: Cycle) {
        self.leave.push(cycles as f64);
        self.leave_hist.record(cycles);
    }

    /// Records one DMR-to-DMR switch cost.
    fn push_dmr_switch(&mut self, cycles: Cycle) {
        self.dmr_switch.push(cycles as f64);
        self.dmr_switch_hist.record(cycles);
    }

    /// Records one performance-switch cost.
    fn push_perf_switch(&mut self, cycles: Cycle) {
        self.perf_switch.push(cycles as f64);
        self.perf_switch_hist.record(cycles);
    }
}

/// The transition engine: computes transition completion times by
/// issuing the staging traffic against the real memory system.
#[derive(Debug)]
pub struct TransitionEngine {
    layout: AddressLayout,
    virt: VirtConfig,
    reunion: ReunionConfig,
    /// Monotonic token sequence for scratchpad stores (distinct from
    /// any program store).
    token_seq: u64,
    /// Accumulated statistics.
    pub stats: TransitionStats,
}

impl TransitionEngine {
    /// Creates the engine.
    pub fn new(virt: VirtConfig, reunion: ReunionConfig) -> Self {
        Self {
            layout: AddressLayout::new(),
            virt,
            reunion,
            token_seq: 1 << 60,
            stats: TransitionStats::default(),
        }
    }

    /// Stores one copy of `vcpu`'s architected state from `core` into
    /// the scratchpad; returns the completion cycle.
    pub fn save_state(
        &mut self,
        mem: &mut MemorySystem,
        core: CoreId,
        vcpu: VcpuId,
        copy: u8,
        start: Cycle,
    ) -> Cycle {
        let lines = self
            .layout
            .scratchpad_lines(vcpu, copy, self.virt.vcpu_state_bytes);
        let interval = self.virt.state_op_interval_cycles as Cycle;
        let mut done = start;
        for (i, line) in lines.into_iter().enumerate() {
            let issue = start + i as Cycle * interval;
            self.token_seq += 1;
            let token = store_token(vcpu, line, self.token_seq);
            let acq = mem.store_acquire(core, line, true, issue);
            let acc = mem.store_commit(core, line, token, true, acq.complete_at);
            done = done.max(acc.complete_at);
        }
        done
    }

    /// Loads one copy of `vcpu`'s state into `core`; returns the
    /// completion cycle. Line transfers are pipelined at the state
    /// machine's issue interval.
    pub fn load_state(
        &mut self,
        mem: &mut MemorySystem,
        core: CoreId,
        vcpu: VcpuId,
        copy: u8,
        start: Cycle,
    ) -> Cycle {
        let lines = self
            .layout
            .scratchpad_lines(vcpu, copy, self.virt.vcpu_state_bytes);
        let interval = self.virt.state_op_interval_cycles as Cycle;
        let mut done = start;
        for (i, line) in lines.into_iter().enumerate() {
            let issue = start + i as Cycle * interval;
            let acc = mem.load(core, line, true, issue);
            done = done.max(acc.complete_at);
        }
        done
    }

    /// Loads one copy of `vcpu`'s state *serially* — each line
    /// transfer starts only when the previous one completed. This is
    /// the mute's Enter-DMR verification walk: privileged registers
    /// are compared group by group against the redundant copy, so the
    /// walk cannot be pipelined (paper §3.4.3).
    pub fn load_state_serial(
        &mut self,
        mem: &mut MemorySystem,
        core: CoreId,
        vcpu: VcpuId,
        copy: u8,
        start: Cycle,
    ) -> Cycle {
        let lines = self
            .layout
            .scratchpad_lines(vcpu, copy, self.virt.vcpu_state_bytes);
        let mut t = start;
        for line in lines {
            t = mem.load(core, line, true, t).complete_at;
        }
        t
    }

    fn machine(&self) -> Cycle {
        self.virt.transition_machine_cycles as Cycle
    }

    fn sync(&self) -> Cycle {
        self.reunion.sync_latency as Cycle
    }

    fn verify(&self) -> Cycle {
        // The mute verifies the vocal's privileged registers against
        // its own redundant copy: one fingerprint round trip.
        2 * self.reunion.fingerprint_latency as Cycle
    }

    /// Enters DMR mode on a (vocal, mute) core pair (paper §3.4.3):
    ///
    /// 1. each core saves the state of the performance VCPU it was
    ///    running (`outgoing`; in MMM-TP the mute may have run an
    ///    independent VCPU),
    /// 2. the vocal loads the incoming reliable VCPU's state (its own
    ///    saved copy 0),
    /// 3. the mute loads its own redundant copy 1, then the vocal's
    ///    copy 0, and verifies the privileged registers against its
    ///    copy.
    ///
    /// Returns the cycle at which the pair may begin redundant
    /// execution.
    pub fn enter_dmr(
        &mut self,
        mem: &mut MemorySystem,
        vocal: CoreId,
        mute: CoreId,
        outgoing: &[(CoreId, VcpuId)],
        incoming: VcpuId,
        now: Cycle,
    ) -> Cycle {
        let t0 = now + self.machine();
        let mut saved = t0;
        for &(core, vcpu) in outgoing {
            // Saves on distinct cores overlap; the state machine joins
            // on the slowest.
            saved = saved.max(self.save_state(mem, core, vcpu, 0, t0));
        }
        let t1 = saved + self.sync();
        let vocal_done = self.load_state(mem, vocal, incoming, 0, t1);
        // The mute walks both copies serially (register group by
        // register group) but the two walks proceed in parallel — its
        // own redundant copy and the vocal's copy stream through
        // independent base registers — joining at the verification.
        let mute_own = self.load_state_serial(mem, mute, incoming, 1, t1);
        let mute_vocal_copy = self.load_state_serial(mem, mute, incoming, 0, t1);
        let done = vocal_done.max(mute_own.max(mute_vocal_copy) + self.verify());
        self.stats.push_enter(done - now);
        done
    }

    /// Leaves DMR mode on a pair (paper §3.4.3): synchronize, save the
    /// vocal's state (copy 0) and the mute's redundant copy (copy 1),
    /// flush the mute's cache of incoherent lines if requested
    /// (required in MMM-TP, where an independent VCPU will use the
    /// mute core coherently), and load the state of the incoming
    /// performance VCPU(s).
    #[allow(clippy::too_many_arguments)] // a hardware state-machine spec
    pub fn leave_dmr(
        &mut self,
        mem: &mut MemorySystem,
        vocal: CoreId,
        mute: CoreId,
        outgoing: VcpuId,
        incoming: &[(CoreId, VcpuId)],
        flush_mute: bool,
        now: Cycle,
    ) -> Cycle {
        let t0 = now + self.machine() + self.sync();
        // Each core's transition state machine runs its own chain:
        // save the outgoing copy, (on the mute) flush incoherent
        // lines, then restore the incoming VCPU register group by
        // register group. The chains proceed in parallel; the pair
        // rejoins when the slower finishes.
        let vocal_saved = self.save_state(mem, vocal, outgoing, 0, t0);
        let mute_saved = self.save_state(mem, mute, outgoing, 1, t0);
        let mute_ready = if flush_mute {
            mem.flush_mute(mute, mute_saved).complete_at
        } else {
            mute_saved
        };
        let mut done = vocal_saved.max(mute_ready);
        for &(core, vcpu) in incoming {
            // Restoring performance state is not a verification: the
            // state machine streams the lines pipelined.
            let start = if core == vocal {
                vocal_saved
            } else {
                mute_ready
            };
            done = done.max(self.load_state(mem, core, vcpu, 0, start));
        }
        if std::env::var_os("MMM_DEBUG_TRANS").is_some() {
            eprintln!(
                "leave: now={now} saved=({},{}) flushed_to={} done={} (+{})",
                vocal_saved - now,
                mute_saved - now,
                mute_ready - now,
                done - now,
                done - vocal_saved.max(mute_ready),
            );
        }
        self.stats.push_leave(done - now);
        done
    }

    /// Switches a DMR pair between two reliable VCPUs (gang boundary,
    /// no mode change): save both copies of the outgoing, load both
    /// copies of the incoming, verify.
    pub fn dmr_switch(
        &mut self,
        mem: &mut MemorySystem,
        vocal: CoreId,
        mute: CoreId,
        outgoing: Option<VcpuId>,
        incoming: VcpuId,
        now: Cycle,
    ) -> Cycle {
        let t0 = now + self.machine() + self.sync();
        let saved = match outgoing {
            Some(out) => {
                let v = self.save_state(mem, vocal, out, 0, t0);
                let m = self.save_state(mem, mute, out, 1, t0);
                v.max(m)
            }
            None => t0,
        };
        let v = self.load_state(mem, vocal, incoming, 0, saved);
        let m = self.load_state(mem, mute, incoming, 1, saved);
        let done = v.max(m) + self.verify();
        self.stats.push_dmr_switch(done - now);
        done
    }

    /// The restore half of a DMR installation (used by the
    /// overcommit scheduler, which charges eviction saves
    /// separately): the vocal streams the incoming VCPU's state while
    /// the mute walks and verifies both copies.
    pub fn restore_dmr(
        &mut self,
        mem: &mut MemorySystem,
        vocal: CoreId,
        mute: CoreId,
        incoming: VcpuId,
        start: Cycle,
    ) -> Cycle {
        let t0 = start + self.machine() + self.sync();
        let v = self.load_state(mem, vocal, incoming, 0, t0);
        let m_own = self.load_state_serial(mem, mute, incoming, 1, t0);
        let m_vocal = self.load_state_serial(mem, mute, incoming, 0, t0);
        let done = v.max(m_own.max(m_vocal) + self.verify());
        self.stats.push_dmr_switch(done - start);
        done
    }

    /// The restore half of a performance-mode installation.
    pub fn restore_solo(
        &mut self,
        mem: &mut MemorySystem,
        core: CoreId,
        incoming: VcpuId,
        start: Cycle,
    ) -> Cycle {
        let t0 = start + self.machine();
        let done = self.load_state(mem, core, incoming, 0, t0);
        self.stats.push_perf_switch(done - start);
        done
    }

    /// Switches a performance-mode core between two VCPUs.
    pub fn perf_switch(
        &mut self,
        mem: &mut MemorySystem,
        core: CoreId,
        outgoing: Option<VcpuId>,
        incoming: VcpuId,
        now: Cycle,
    ) -> Cycle {
        let t0 = now + self.machine();
        let saved = match outgoing {
            Some(out) => self.save_state(mem, core, out, 0, t0),
            None => t0,
        };
        let done = self.load_state(mem, core, incoming, 0, saved);
        self.stats.push_perf_switch(done - now);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::SystemConfig;

    fn engine() -> (TransitionEngine, MemorySystem) {
        let cfg = SystemConfig::default();
        (
            TransitionEngine::new(cfg.virt, cfg.reunion),
            MemorySystem::new(&cfg),
        )
    }

    const VOCAL: CoreId = CoreId(0);
    const MUTE: CoreId = CoreId(1);
    const V_REL: VcpuId = VcpuId(0);
    const V_PERF: VcpuId = VcpuId(8);

    #[test]
    fn save_then_load_is_cheaper_warm() {
        let (mut e, mut mem) = engine();
        let cold_save = e.save_state(&mut mem, VOCAL, V_REL, 0, 0);
        let warm_save = e.save_state(&mut mem, VOCAL, V_REL, 0, cold_save);
        assert!(warm_save - cold_save <= cold_save, "warm save not slower");
        let load_done = e.load_state(&mut mem, VOCAL, V_REL, 0, warm_save);
        // 36 lines at 8-cycle intervals plus an L1/L2 hit.
        assert!(load_done - warm_save >= 36 * 8 - 8);
        assert!(load_done - warm_save < 1_000, "warm load is fast");
    }

    #[test]
    fn enter_dmr_cost_is_in_the_papers_range() {
        let (mut e, mut mem) = engine();
        // Warm up: a previous leave wrote the reliable VCPU's state.
        e.save_state(&mut mem, VOCAL, V_REL, 0, 0);
        e.save_state(&mut mem, MUTE, V_REL, 1, 0);
        let now = 100_000;
        let done = e.enter_dmr(&mut mem, VOCAL, MUTE, &[(VOCAL, V_PERF)], V_REL, now);
        let cost = done - now;
        // Table 1: ~2.2–2.4k cycles. Accept a generous band here; the
        // bench harness checks the calibrated value.
        assert!((500..6_000).contains(&cost), "enter cost {cost}");
        assert_eq!(e.stats.enter.count(), 1);
    }

    #[test]
    fn leave_dmr_with_flush_is_dominated_by_the_l2_walk() {
        let (mut e, mut mem) = engine();
        let now = 50_000;
        let done = e.leave_dmr(&mut mem, VOCAL, MUTE, V_REL, &[(VOCAL, V_PERF)], true, now);
        let cost = done - now;
        // The 8192-slot L2 walk at 1 line/cycle gives ~8.2k; with
        // state staging the paper reports ~9.9–10.4k warm. This unit
        // test runs fully cold (every scratchpad line misses to DRAM
        // serially), so allow a wider upper bound; the bench harness
        // checks the warm value.
        assert!(cost >= 8_192, "flush walk must dominate: {cost}");
        assert!(cost < 25_000, "leave cost {cost}");
        assert_eq!(e.stats.leave.count(), 1);
    }

    #[test]
    fn leave_without_flush_is_much_cheaper() {
        // Warm the incoming VCPU's scratchpad so the serial restore
        // walk is cache-resident (as in steady-state operation) and
        // the flush-walk difference is visible.
        let run = |flush: bool| {
            let (mut e, mut mem) = engine();
            e.save_state(&mut mem, VOCAL, V_PERF, 0, 0);
            // With the flush, the restore happens on the mute core so
            // it is ordered behind the walk.
            let done = e.leave_dmr(
                &mut mem,
                VOCAL,
                MUTE,
                V_REL,
                &[(MUTE, V_PERF)],
                flush,
                10_000,
            );
            done - 10_000
        };
        let with_flush = run(true);
        let without = run(false);
        assert!(
            with_flush > without + 7_000,
            "flush should cost ~8k: {with_flush} vs {without}"
        );
    }

    #[test]
    fn dmr_switch_saves_and_restores_both_sides() {
        let (mut e, mut mem) = engine();
        let done = e.dmr_switch(&mut mem, VOCAL, MUTE, Some(V_REL), VcpuId(1), 0);
        assert!(done > 0);
        assert_eq!(e.stats.dmr_switch.count(), 1);
        // Cold first switch is the most expensive; a warm switch of
        // the same VCPUs is cheaper or equal.
        let done2 = e.dmr_switch(&mut mem, VOCAL, MUTE, Some(VcpuId(1)), V_REL, done);
        assert!(done2 - done <= done);
    }

    #[test]
    fn perf_switch_is_cheapest() {
        let (mut e, mut mem) = engine();
        let perf = e.perf_switch(&mut mem, VOCAL, Some(V_PERF), VcpuId(9), 0);
        let (mut e2, mut mem2) = engine();
        let dmr = e2.dmr_switch(&mut mem2, VOCAL, MUTE, Some(V_REL), VcpuId(1), 0);
        assert!(perf < dmr, "perf switch {perf} !< dmr switch {dmr}");
    }

    #[test]
    fn scratchpad_traffic_counts_as_memory_traffic() {
        let (mut e, mut mem) = engine();
        let before = mem.stats().dram_reads + mem.stats().l2_misses;
        e.enter_dmr(&mut mem, VOCAL, MUTE, &[(VOCAL, V_PERF)], V_REL, 0);
        let after = mem.stats().dram_reads + mem.stats().l2_misses;
        assert!(after > before, "staging traffic is real memory traffic");
    }
}
