//! The full-system simulator: cores, memory, DMR pairs, PAT/PAB,
//! transition engine, scheduler, and fault injector, advanced one
//! cycle at a time.
//!
//! A [`System`] is built from a [`SystemConfig`] and a
//! [`Workload`] (one of the paper's machine configurations) and run
//! for a warm-up period followed by a measured period, yielding a
//! [`SystemReport`] with the quantities the paper's figures plot.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mmm_cpu::{Boundary, Core, CoreStats, ExecContext, Filter, PabPort, PhaseTracker};
use mmm_mem::request::store_token;
use mmm_mem::{MemStats, MemorySystem};
use mmm_reunion::{DmrPair, PairStats};
use mmm_trace::{
    Event, Forensics, ForensicsReport, Json, MetricsRegistry, MetricsSeries, ProfPhase,
    ProfileReport, Profiler, Sampler, SchedAction, Tracer, TransitionKind,
};
use mmm_types::ids::{PAGE_BYTES, PAGE_SHIFT};
use mmm_types::{CoreId, Cycle, PageAddr, Result, SystemConfig, VcpuId, VmId};
use mmm_workload::layout::{PAT_BASE, SCRATCHPAD_BASE};
use mmm_workload::{AddressLayout, OpStream};

use crate::fault::{ArrivalModel, CampaignTelemetry, FaultInjector, FaultSite, FaultStats};
use crate::mode::RelMode;
use crate::pab::{Pab, PabStats};
use crate::pat::Pat;
use crate::sched::{MixedPolicy, Workload};
use crate::transition::{TransitionEngine, TransitionStats};
use crate::vcpu::{Assignment, Vcpu};
use crate::wheel::{EventWheel, WakeSource};

/// Per-VCPU commit counts over the measured period.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcpuSlice {
    /// VCPU id.
    pub vcpu: VcpuId,
    /// Owning VM.
    pub vm: VmId,
    /// User instructions committed (the paper's work metric).
    pub user_commits: u64,
    /// OS instructions committed.
    pub os_commits: u64,
    /// Instructions committed without DMR protection.
    pub unprotected_commits: u64,
}

/// Everything measured over one run.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Configuration label (paper figure legend).
    pub config: &'static str,
    /// Benchmark label.
    pub benchmark: &'static str,
    /// Scheduler family of the workload (`static`, `gang`,
    /// `overcommit`, `single-os`). Part of the run-identity block:
    /// runs under different schedulers are not comparable
    /// metric-for-metric.
    pub scheduler: &'static str,
    /// Number of simulated hardware threads (VCPUs) the workload
    /// exposes — the second identity field `mmm-inspect` checks
    /// before diffing two runs.
    pub threads: u64,
    /// Measured cycles.
    pub cycles: u64,
    /// Per-VCPU commit counts.
    pub vcpus: Vec<VcpuSlice>,
    /// Machine-wide memory counters.
    pub mem: MemStats,
    /// Aggregated core counters.
    pub cores: CoreStats,
    /// Aggregated Reunion pair counters.
    pub pairs: PairStats,
    /// Mode-transition statistics (Table 1).
    pub transitions: TransitionStats,
    /// Fault-injection outcomes (zero when injection is off).
    pub faults: FaultStats,
    /// Aggregated PAB counters.
    pub pab: PabStats,
    /// Mean cycles per user phase (Table 2).
    pub phase_user_mean: f64,
    /// Mean cycles per OS phase (Table 2).
    pub phase_os_mean: f64,
    /// Full user/OS phase-duration distributions (merged across
    /// cores).
    pub phases: PhaseTracker,
    /// Wall-clock seconds spent simulating the measured period, or
    /// 0.0 when the run was not timed. Host-dependent: excluded from
    /// determinism comparisons and from the JSON export unless set.
    pub wall_seconds: f64,
    /// Per-fault-site campaign telemetry (`None` when injection is
    /// off).
    pub fault_telemetry: Option<CampaignTelemetry>,
    /// Flight-recorder time-series over the measured period (`None`
    /// unless a sampler was attached). Deliberately excluded from
    /// [`SystemReport::to_json`] so golden reports stay bit-identical
    /// with sampling on or off; exported separately as JSONL.
    pub series: Option<MetricsSeries>,
    /// Self-profiler host-cost attribution over the measured period
    /// (`None` unless a profiler was attached). Host-dependent, like
    /// `wall_seconds`: deliberately excluded from
    /// [`SystemReport::to_json`] so golden reports stay bit-identical
    /// with profiling on or off; exported separately via the bench
    /// harness.
    pub profile: Option<ProfileReport>,
    /// Per-injection fault forensics over the measured period (`None`
    /// unless a forensics recorder was attached). Like `series` and
    /// `profile`, deliberately excluded from [`SystemReport::to_json`]
    /// so golden reports stay bit-identical with forensics on or off;
    /// exported separately as `*.faults.jsonl`.
    pub forensics: Option<ForensicsReport>,
}

impl SystemReport {
    /// Total user instructions committed by a VM.
    pub fn vm_user_commits(&self, vm: VmId) -> u64 {
        self.vcpus
            .iter()
            .filter(|v| v.vm == vm)
            .map(|v| v.user_commits)
            .sum()
    }

    /// Average per-VCPU user IPC of a VM — the paper's per-thread
    /// metric (user commits divided by total cycles).
    pub fn vm_avg_user_ipc(&self, vm: VmId) -> f64 {
        let vcpus: Vec<_> = self.vcpus.iter().filter(|v| v.vm == vm).collect();
        if vcpus.is_empty() || self.cycles == 0 {
            return 0.0;
        }
        vcpus
            .iter()
            .map(|v| v.user_commits as f64 / self.cycles as f64)
            .sum::<f64>()
            / vcpus.len() as f64
    }

    /// Machine-wide user instructions committed (throughput
    /// numerator).
    pub fn total_user_commits(&self) -> u64 {
        self.vcpus.iter().map(|v| v.user_commits).sum()
    }

    /// Machine-wide average per-VCPU user IPC.
    pub fn avg_user_ipc(&self) -> f64 {
        if self.vcpus.is_empty() || self.cycles == 0 {
            return 0.0;
        }
        self.vcpus
            .iter()
            .map(|v| v.user_commits as f64 / self.cycles as f64)
            .sum::<f64>()
            / self.vcpus.len() as f64
    }

    /// Fraction of active core cycles stalled on serializing
    /// instructions (paper §5.1: 15–46% under Reunion).
    pub fn si_stall_fraction(&self) -> f64 {
        if self.cores.active_cycles == 0 {
            return 0.0;
        }
        self.cores.si_stall_cycles as f64 / self.cores.active_cycles as f64
    }

    /// Fraction of active core cycles with a full instruction window.
    pub fn window_full_fraction(&self) -> f64 {
        if self.cores.active_cycles == 0 {
            return 0.0;
        }
        self.cores.window_full_cycles as f64 / self.cores.active_cycles as f64
    }

    /// C2C transfers per 1000 committed instructions.
    pub fn c2c_per_kilo_instr(&self) -> f64 {
        let commits = self.cores.commits();
        if commits == 0 {
            return 0.0;
        }
        self.mem.c2c_transfers as f64 * 1000.0 / commits as f64
    }

    /// Fraction of one VM's committed instructions executed under DMR
    /// protection. 1.0 for a reliable guest, 0.0 for a pure
    /// performance guest, in between for `PerfUser` VCPUs.
    pub fn vm_dmr_coverage(&self, vm: VmId) -> f64 {
        let (commits, unprotected) = self
            .vcpus
            .iter()
            .filter(|v| v.vm == vm)
            .fold((0u64, 0u64), |(c, u), v| {
                (c + v.user_commits + v.os_commits, u + v.unprotected_commits)
            });
        if commits == 0 {
            return 0.0;
        }
        1.0 - unprotected as f64 / commits as f64
    }

    /// Fraction of committed instructions executed under DMR
    /// protection — the machine's reliability coverage. 1.0 for
    /// all-DMR systems, 0.0 for the non-redundant baselines, and in
    /// between for mixed-mode operation (where privileged work is
    /// always inside the covered fraction).
    pub fn dmr_coverage(&self) -> f64 {
        let commits = self.cores.commits();
        if commits == 0 {
            return 0.0;
        }
        1.0 - self.cores.commits_unprotected as f64 / commits as f64
    }

    /// Exports every counter, distribution, and derived quantity into
    /// a flat [`MetricsRegistry`] (`core.*`, `mem.*`, `reunion.*`,
    /// `transition.*`, `fault.*`, `pab.*`, `phase.*`). Registries from
    /// several runs can be [`MetricsRegistry::merge`]d; the derived
    /// gauges are per-run and overwrite on merge.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.count("run.cycles", self.cycles);

        let c = &self.cores;
        m.count("core.active_cycles", c.active_cycles);
        m.count("core.os_cycles", c.os_cycles);
        m.count("core.commits_user", c.commits_user);
        m.count("core.commits_os", c.commits_os);
        m.count("core.commits_unprotected", c.commits_unprotected);
        m.count("core.window_full_cycles", c.window_full_cycles);
        m.count("core.lsq_full_cycles", c.lsq_full_cycles);
        m.count("core.si_stall_cycles", c.si_stall_cycles);
        m.count("core.fetch_stall_cycles", c.fetch_stall_cycles);
        m.count("core.mispredict_stall_cycles", c.mispredict_stall_cycles);
        m.count("core.check_wait_cycles", c.check_wait_cycles);
        m.count("core.loads", c.loads);
        m.count("core.stores", c.stores);
        m.count("core.serializing", c.serializing);
        m.count("core.mispredicts", c.mispredicts);
        m.count("core.squashes", c.squashes);

        let mm = &self.mem;
        m.count("mem.l1i_hits", mm.l1i_hits);
        m.count("mem.l1i_misses", mm.l1i_misses);
        m.count("mem.l1d_hits", mm.l1d_hits);
        m.count("mem.l1d_misses", mm.l1d_misses);
        m.count("mem.l2_hits", mm.l2_hits);
        m.count("mem.l2_misses", mm.l2_misses);
        m.count("mem.l3_hits", mm.l3_hits);
        m.count("mem.c2c_transfers", mm.c2c_transfers);
        m.count("mem.dram_reads", mm.dram_reads);
        m.count("mem.upgrades", mm.upgrades);
        m.count("mem.invalidations", mm.invalidations);
        m.count("mem.incoherent_fills", mm.incoherent_fills);
        m.count("mem.stale_mute_hits", mm.stale_mute_hits);
        m.count("mem.writebacks", mm.writebacks);
        m.count("mem.flushes", mm.flushes);
        m.count("mem.flush_cycles", mm.flush_cycles);
        m.count("mem.bank_queue_cycles", mm.bank_queue_cycles);
        m.merge_histogram("mem.sharer_walk", &mm.sharer_walk);

        let p = &self.pairs;
        m.count("reunion.ops_compared", p.ops_compared);
        m.count("reunion.input_incoherence", p.input_incoherence);
        m.count("reunion.faults_detected", p.faults_detected);
        m.count("reunion.recovery_cycles", p.recovery_cycles);
        m.merge_histogram("reunion.channel_occupancy", &p.occupancy);
        m.merge_histogram("reunion.commit_burst", &p.commit_burst);

        let f = &self.faults;
        m.count("fault.injected", f.injected);
        m.count("fault.detected_by_dmr", f.detected_by_dmr);
        m.count("fault.wild_stores_blocked", f.wild_stores_blocked);
        m.count("fault.wild_stores_corrupting", f.wild_stores_corrupting);
        m.count("fault.privreg_caught_at_entry", f.privreg_caught_at_entry);
        m.count("fault.silent_perf_faults", f.silent_perf_faults);
        m.count("fault.on_idle_core", f.on_idle_core);
        if let Some(tel) = &self.fault_telemetry {
            for (site, s) in tel.sites() {
                let l = site.label();
                m.count(&format!("fault.site.{l}.injected"), s.injected);
                m.count(&format!("fault.site.{l}.detected"), s.detected);
                m.count(&format!("fault.site.{l}.masked"), s.masked);
                m.count(&format!("fault.site.{l}.escaped"), s.escaped);
                m.merge_histogram(
                    &format!("fault.site.{l}.detection_latency_cycles"),
                    &s.detection_latency,
                );
            }
        }

        let b = &self.pab;
        m.count("pab.lookups", b.lookups);
        m.count("pab.hits", b.hits);
        m.count("pab.misses", b.misses);
        m.count("pab.violations", b.violations);
        m.count("pab.demap_invalidations", b.demap_invalidations);
        m.merge_histogram("pab.serialization_penalty_cycles", &b.serialization_penalty);

        let t = &self.transitions;
        m.merge_stat("transition.enter_dmr", &t.enter);
        m.merge_stat("transition.leave_dmr", &t.leave);
        m.merge_stat("transition.dmr_switch", &t.dmr_switch);
        m.merge_stat("transition.perf_switch", &t.perf_switch);
        m.merge_histogram("transition.enter_dmr_cycles", &t.enter_hist);
        m.merge_histogram("transition.leave_dmr_cycles", &t.leave_hist);
        m.merge_histogram("transition.dmr_switch_cycles", &t.dmr_switch_hist);
        m.merge_histogram("transition.perf_switch_cycles", &t.perf_switch_hist);

        m.merge_histogram("phase.user_cycles", &self.phases.user);
        m.merge_histogram("phase.os_cycles", &self.phases.os);

        if self.wall_seconds > 0.0 {
            m.gauge(
                "run.sim_cycles_per_sec",
                self.cycles as f64 / self.wall_seconds,
            );
        }
        m.gauge("run.avg_user_ipc", self.avg_user_ipc());
        m.gauge("run.dmr_coverage", self.dmr_coverage());
        m.gauge("run.si_stall_fraction", self.si_stall_fraction());
        m.gauge("run.window_full_fraction", self.window_full_fraction());
        m.gauge("run.c2c_per_kilo_instr", self.c2c_per_kilo_instr());
        m.gauge("phase.user_mean_cycles", self.phase_user_mean);
        m.gauge("phase.os_mean_cycles", self.phase_os_mean);
        m
    }

    /// The whole report as one JSON object (one JSONL line): identity
    /// fields, per-VCPU commits, and the flat metrics registry. Stable
    /// across runs with the same seed except `run.sim_cycles_per_sec`,
    /// the wall-clock throughput gauge (host-dependent by design;
    /// absent when the run was not timed).
    pub fn to_json(&self) -> String {
        let vcpus = Json::Arr(
            self.vcpus
                .iter()
                .map(|v| {
                    Json::obj([
                        ("vcpu", Json::U64(v.vcpu.0 as u64)),
                        ("vm", Json::U64(v.vm.0 as u64)),
                        ("user_commits", Json::U64(v.user_commits)),
                        ("os_commits", Json::U64(v.os_commits)),
                        ("unprotected_commits", Json::U64(v.unprotected_commits)),
                    ])
                })
                .collect(),
        );
        Json::obj([
            ("config", Json::str(self.config)),
            ("benchmark", Json::str(self.benchmark)),
            ("scheduler", Json::str(self.scheduler)),
            ("threads", Json::U64(self.threads)),
            ("cycles", Json::U64(self.cycles)),
            ("vcpus", vcpus),
            ("metrics", self.metrics().to_json()),
        ])
        .render()
    }
}

/// The machine.
///
/// ```
/// use mmm_core::{System, Workload};
/// use mmm_types::SystemConfig;
/// use mmm_workload::Benchmark;
///
/// // The paper's 16-core machine, running 8 OLTP VCPUs under
/// // Reunion DMR.
/// let cfg = SystemConfig::default();
/// let mut sys = System::new(&cfg, Workload::ReunionDmr(Benchmark::Oltp), 1)?;
/// let report = sys.run_measured(5_000, 20_000);
/// assert!(report.total_user_commits() > 0);
/// assert_eq!(report.dmr_coverage(), 1.0); // everything ran redundantly
/// # Ok::<(), mmm_types::Error>(())
/// ```
pub struct System {
    cfg: SystemConfig,
    workload: Workload,
    layout: AddressLayout,
    cores: Vec<Core>,
    mem: MemorySystem,
    vcpus: Vec<Vcpu>,
    /// Active DMR pairs by pair slot (slot p = cores 2p, 2p+1).
    pairs: Vec<Option<DmrPair>>,
    pat: Rc<RefCell<Pat>>,
    pabs: Vec<Rc<RefCell<Pab>>>,
    engine: TransitionEngine,
    injector: Option<FaultInjector>,
    /// Privileged-register corruption armed per VCPU, holding the
    /// injection cycle (detected at the next Enter-DMR verification,
    /// which charges the injection-to-detection latency) and the
    /// forensic record id when forensics is on.
    privreg_armed: Vec<Option<(Cycle, Option<u64>)>>,
    /// Injection cycles, sites, and forensic record ids of DMR faults
    /// armed per pair slot, awaiting their fingerprint-mismatch
    /// detection so campaign telemetry can attribute the detection
    /// latency.
    dmr_inject_pending: Vec<VecDeque<(Cycle, FaultSite, Option<u64>)>>,
    cycle: Cycle,
    slice_parity: u8,
    /// Rotation order for the overcommit scheduler (paper §3.5 /
    /// Figure 4): previously paused VCPUs move to the front each
    /// quantum.
    overcommit_order: Vec<VcpuId>,
    /// Pair-channel counters accumulated from decoupled pairs.
    retired_pair_stats: PairStats,
    /// Phase trackers harvested from cores at reset/report.
    fault_token_seq: u64,
    /// Event tracer handle (off by default; clones are distributed to
    /// cores and live pairs by [`System::attach_tracer`]).
    tracer: Tracer,
    /// Flight-recorder sampler (off by default; see
    /// [`System::attach_sampler`]).
    sampler: Sampler,
    /// Self-profiler (off by default; see [`System::attach_profiler`]).
    /// Clones are distributed to every component that hosts a probe.
    profiler: Profiler,
    /// Fault forensics recorder (off by default; see
    /// [`System::attach_forensics`]). Clones are distributed to cores
    /// and live pairs for black-box context recording.
    forensics: Forensics,
    /// The registry of future system-level wake sources: the timeslice
    /// boundary, the sampler boundary, the next fault arrival, and the
    /// single-OS trap poll. Sources that cannot act stay parked at
    /// `Cycle::MAX` and never pin the clock, so the hot path pays a
    /// four-way min and nothing else.
    wheel: EventWheel,
    /// Cycle at which the measured period began; sample timestamps
    /// are relative to it.
    measure_start: Cycle,
    /// Cycle fast-forwarding enabled (default). The cross-variant
    /// determinism tests turn it off to prove reports and sampled
    /// series are identical either way.
    skip_enabled: bool,
    /// Event-wheel escape hatch, read from `MMM_EVENT_WHEEL` at
    /// construction (`off`/`0` disables). Distinct from
    /// [`System::set_cycle_skipping`], which the experiment harness
    /// drives programmatically and would clobber an env-only flag.
    /// With the wheel off the clock ticks every cycle; reports and
    /// sampled series are identical either way.
    wheel_enabled: bool,
}

impl System {
    /// Builds the machine for one workload configuration.
    pub fn new(cfg: &SystemConfig, workload: Workload, seed: u64) -> Result<Self> {
        cfg.validate()?;
        let layout = AddressLayout::new();
        let mem = MemorySystem::new(cfg);
        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|i| Core::new(CoreId(i as u16), cfg))
            .collect();
        for c in &mut cores {
            c.enable_phase_tracking();
        }
        let specs = workload.vcpu_specs(cfg)?;
        let vcpus: Vec<Vcpu> = specs
            .iter()
            .map(|s| {
                let stream = OpStream::new(s.bench.profile(), s.vm, s.vcpu, seed);
                Vcpu::new(s.vcpu, s.vm, s.mode, ExecContext::new(stream))
            })
            .collect();

        // System software initializes the PAT: machine-owned regions
        // (scratchpad, PAT backing store) and every reliable VM's span
        // are writable only in reliable mode.
        let mut pat = Pat::new();
        let machine_first = SCRATCHPAD_BASE >> PAGE_SHIFT;
        let machine_last = (PAT_BASE + (64 << 20)) >> PAGE_SHIFT;
        pat.set_range_reliable(machine_first..machine_last, true);
        let mut reliable_vms: Vec<VmId> = vcpus
            .iter()
            .filter(|v| v.mode == RelMode::Reliable)
            .map(|v| v.vm)
            .collect();
        reliable_vms.sort_unstable();
        reliable_vms.dedup();
        for vm in reliable_vms {
            pat.set_range_reliable(layout.vm_pages(vm), true);
        }

        let pabs = (0..cfg.cores)
            .map(|_| Rc::new(RefCell::new(Pab::new(cfg.pab))))
            .collect();
        let n_vcpus = vcpus.len();
        // The timeslice boundary only drives gang and overcommit
        // scheduling; for every other workload it stays parked.
        let mut wheel = EventWheel::new();
        if workload.gang_policy().is_some() || matches!(workload, Workload::Overcommitted { .. }) {
            wheel.schedule(WakeSource::Slice, cfg.virt.timeslice_cycles);
        }
        // The single-OS trap poll inspects boundary state that only
        // core ticks can change; start it due so the first tick
        // computes the real deadline.
        if matches!(workload, Workload::SingleOsMixed(_)) {
            wheel.schedule(WakeSource::SingleOsPoll, 0);
        }
        let wheel_enabled =
            std::env::var("MMM_EVENT_WHEEL").map_or(true, |v| v != "off" && v != "0");
        let mut sys = System {
            cfg: cfg.clone(),
            workload,
            layout,
            cores,
            mem,
            vcpus,
            pairs: (0..cfg.pairs()).map(|_| None).collect(),
            pat: Rc::new(RefCell::new(pat)),
            pabs,
            engine: TransitionEngine::new(cfg.virt, cfg.reunion),
            injector: None,
            privreg_armed: vec![None; n_vcpus],
            dmr_inject_pending: (0..cfg.pairs()).map(|_| VecDeque::new()).collect(),
            cycle: 0,
            slice_parity: 0,
            overcommit_order: Vec::new(),
            retired_pair_stats: PairStats::default(),
            fault_token_seq: 1 << 61,
            tracer: Tracer::off(),
            sampler: Sampler::off(),
            profiler: Profiler::off(),
            forensics: Forensics::off(),
            wheel,
            measure_start: 0,
            skip_enabled: true,
            wheel_enabled,
        };
        sys.prewarm_scratchpad();
        sys.install_initial_assignments();
        Ok(sys)
    }

    /// Writes every VCPU's boot state into the scratchpad before the
    /// simulation starts. The architected state exists from boot on a
    /// real machine; without this, the first mode transition would
    /// pay a wholly artificial cold-DRAM walk.
    fn prewarm_scratchpad(&mut self) {
        let pairs = self.cfg.pairs() as usize;
        let ids: Vec<VcpuId> = self.vcpus.iter().map(|v| v.id).collect();
        for vcpu in ids {
            let slot = vcpu.index() % pairs;
            let vocal = CoreId(2 * slot as u16);
            let mute = CoreId(2 * slot as u16 + 1);
            self.engine.save_state(&mut self.mem, vocal, vcpu, 0, 0);
            self.engine.save_state(&mut self.mem, mute, vcpu, 1, 0);
        }
        self.mem.reset_stats();
    }

    /// Enables transient-fault injection at `rate` faults per core per
    /// cycle, with arrivals pre-drawn as geometric inter-arrival
    /// events so the event wheel can jump straight to each strike.
    pub fn enable_fault_injection(&mut self, rate: f64, seed: u64) {
        self.enable_fault_injection_with(rate, seed, ArrivalModel::Geometric);
    }

    /// Enables transient-fault injection with an explicit
    /// [`ArrivalModel`]. The Bernoulli reference model draws one trial
    /// every cycle (pinning the clock to per-cycle simulation); the
    /// statistical-equivalence test uses it as the baseline the
    /// geometric model is measured against.
    pub fn enable_fault_injection_with(&mut self, rate: f64, seed: u64, model: ArrivalModel) {
        let inj = FaultInjector::with_model(rate, self.cfg.cores, seed, model);
        self.wheel
            .schedule(WakeSource::Fault, inj.next_event(self.cycle));
        self.injector = Some(inj);
    }

    /// Attaches an event tracer: clones of the handle are distributed
    /// to every core and every live DMR pair, and the current VCPU
    /// placement is re-emitted as install decisions so per-core
    /// timelines open correctly mid-run. Tracing is purely
    /// observational — it never changes simulated timing.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
        for c in &mut self.cores {
            c.set_tracer(self.tracer.clone());
        }
        for pair in self.pairs.iter_mut().flatten() {
            pair.set_tracer(self.tracer.clone());
        }
        let now = self.cycle;
        for v in &self.vcpus {
            match v.assignment {
                Assignment::Parked => {}
                Assignment::Solo(core) => {
                    self.tracer.emit(now, || Event::SchedDecision {
                        action: SchedAction::InstallSolo,
                        core,
                        partner: None,
                        vcpu: Some(v.id),
                    });
                }
                Assignment::Dmr { vocal, mute } => {
                    self.tracer.emit(now, || Event::SchedDecision {
                        action: SchedAction::InstallDmr,
                        core: vocal,
                        partner: Some(mute),
                        vcpu: Some(v.id),
                    });
                }
            }
        }
    }

    /// The attached tracer (off unless [`System::attach_tracer`] was
    /// called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches a flight-recorder sampler: every `interval` simulated
    /// cycles the machine settles its cores and snapshots the full
    /// metrics registry into a time-series (counter deltas, gauge
    /// last-values, histogram interval deltas). The sampler is rebased
    /// to the current counters so the first sample covers only
    /// post-attach activity. Sampling is purely observational — it
    /// never changes simulated timing — and with the sampler off the
    /// hot path pays a single always-false comparison.
    pub fn attach_sampler(&mut self, sampler: Sampler) {
        self.sampler = sampler;
        if self.sampler.interval().is_some() {
            let snapshot = self
                .report(self.cycle.saturating_sub(self.measure_start))
                .metrics();
            self.sampler.rebase(&snapshot);
        }
        // `next_boundary` parks the slot at `Cycle::MAX` when sampling
        // is off.
        self.wheel
            .schedule(WakeSource::Sample, self.sampler.next_boundary(self.cycle));
    }

    /// The attached sampler (off unless [`System::attach_sampler`]
    /// was called).
    pub fn sampler(&self) -> &Sampler {
        &self.sampler
    }

    /// Attaches a self-profiler: clones of the handle are distributed
    /// to every core, every parked and installed context's op source,
    /// every live DMR pair, and the memory system, so host wall-time
    /// spent in each hot-loop phase is attributed exclusively.
    /// Profiling is purely observational — it reads only the host
    /// clock and never touches simulated state, so reports and
    /// sampled series are bit-identical with it on or off.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
        for c in &mut self.cores {
            c.set_profiler(self.profiler.clone());
        }
        for v in &mut self.vcpus {
            if let Some(ctx) = v.parked_ctx.as_mut() {
                ctx.set_profiler(self.profiler.clone());
            }
        }
        for pair in self.pairs.iter_mut().flatten() {
            pair.set_profiler(self.profiler.clone());
        }
        self.mem.set_profiler(self.profiler.clone());
    }

    /// The attached profiler (off unless [`System::attach_profiler`]
    /// was called).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Attaches a fault-forensics recorder: every injected fault gets
    /// a causal lifecycle record, and clones of the handle are
    /// distributed to every core and every live DMR pair so per-core
    /// black-box rings capture context for escape dumps. Forensics is
    /// purely observational — it never changes simulated timing,
    /// counters, or reports.
    pub fn attach_forensics(&mut self, forensics: Forensics) {
        self.forensics = forensics;
        for c in &mut self.cores {
            c.set_forensics(self.forensics.clone());
        }
        for pair in self.pairs.iter_mut().flatten() {
            pair.set_forensics(self.forensics.clone());
        }
    }

    /// The attached forensics recorder (off unless
    /// [`System::attach_forensics`] was called).
    pub fn forensics(&self) -> &Forensics {
        &self.forensics
    }

    /// Enables or disables cycle fast-forwarding (on by default).
    /// Disabling it forces the simulator to tick every cycle; reports
    /// and sampled series are identical either way, which the
    /// cross-variant determinism tests assert.
    pub fn set_cycle_skipping(&mut self, on: bool) {
        self.skip_enabled = on;
    }

    /// Takes one flight-recorder sample at `now`: settles every
    /// core's pending skipped-cycle charges (settling is
    /// simulation-state-neutral) so the snapshot is exact, then
    /// records the registry delta at a timestamp relative to the
    /// start of the measured period.
    fn take_sample(&mut self, now: Cycle) {
        let _prof = self.profiler.enter(ProfPhase::Sampler);
        for c in &mut self.cores {
            c.settle_to(now);
        }
        let rel = now.saturating_sub(self.measure_start);
        let snapshot = self.report(rel).metrics();
        self.sampler.record(rel, &snapshot);
        self.wheel
            .schedule(WakeSource::Sample, self.sampler.next_boundary(now));
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// The workload being run.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    // ----- assignment plumbing ------------------------------------------------

    fn vcpu_index(&self, id: VcpuId) -> usize {
        self.vcpus
            .iter()
            .position(|v| v.id == id)
            .expect("vcpu exists")
    }

    fn park_context(&mut self, vcpu: VcpuId, ctx: ExecContext) {
        let i = self.vcpu_index(vcpu);
        self.vcpus[i].parked_ctx = Some(ctx);
        self.vcpus[i].assignment = Assignment::Parked;
    }

    fn unpark_context(&mut self, vcpu: VcpuId) -> ExecContext {
        let i = self.vcpu_index(vcpu);
        self.vcpus[i]
            .parked_ctx
            .take()
            .expect("parked vcpu has a context")
    }

    /// Installs a VCPU solo on a core, in performance mode. `with_pab`
    /// fits the core with the PAB store filter (mixed-mode machines);
    /// the plain baselines run without one.
    fn install_solo(&mut self, vcpu: VcpuId, core: CoreId, with_pab: bool, ready_at: Cycle) {
        let ctx = self.unpark_context(vcpu);
        let c = &mut self.cores[core.index()];
        c.set_context(ctx);
        c.set_coherent(true);
        c.set_gate(None);
        c.set_store_filter(if with_pab {
            Filter::Pab(PabPort::new(
                Rc::clone(&self.pabs[core.index()]),
                self.layout,
            ))
        } else {
            Filter::None
        });
        c.stall_until(ready_at);
        let i = self.vcpu_index(vcpu);
        self.vcpus[i].assignment = Assignment::Solo(core);
        self.tracer.emit(ready_at, || Event::SchedDecision {
            action: SchedAction::InstallSolo,
            core,
            partner: None,
            vcpu: Some(vcpu),
        });
    }

    /// Installs a VCPU on a DMR pair slot. The mute's incoherent
    /// leftovers from any previous stint are flash-invalidated so
    /// long-stale data does not masquerade as input incoherence.
    fn install_dmr(&mut self, vcpu: VcpuId, slot: usize, ready_at: Cycle) {
        let ctx = self.unpark_context(vcpu);
        let (vc, mc) = (slot * 2, slot * 2 + 1);
        self.mem.flash_invalidate_incoherent(CoreId(mc as u16));
        let (left, right) = self.cores.split_at_mut(mc);
        let vocal = &mut left[vc];
        let mute = &mut right[0];
        vocal.set_store_filter(Filter::None);
        mute.set_store_filter(Filter::None);
        let mut pair = DmrPair::couple(vocal, mute, ctx, &self.cfg.reunion);
        pair.set_tracer(self.tracer.clone());
        pair.set_profiler(self.profiler.clone());
        pair.set_forensics(self.forensics.clone());
        vocal.stall_until(ready_at);
        mute.stall_until(ready_at);
        self.pairs[slot] = Some(pair);
        let i = self.vcpu_index(vcpu);
        self.vcpus[i].assignment = Assignment::Dmr {
            vocal: CoreId(vc as u16),
            mute: CoreId(mc as u16),
        };
        self.tracer.emit(ready_at, || Event::SchedDecision {
            action: SchedAction::InstallDmr,
            core: CoreId(vc as u16),
            partner: Some(CoreId(mc as u16)),
            vcpu: Some(vcpu),
        });
    }

    /// Removes the VCPU running on a pair slot, parking its context.
    fn evict_dmr(&mut self, slot: usize, now: Cycle) -> VcpuId {
        let pair = self.pairs[slot].take().expect("slot holds a pair");
        self.retired_pair_stats.merge_from(&pair.stats());
        // An armed fault detects during decouple's final comparison;
        // its latency cannot be attributed to a service round, so the
        // pending record is dropped (latency count <= detected).
        self.dmr_inject_pending[slot].clear();
        let (vc, mc) = (slot * 2, slot * 2 + 1);
        let (left, right) = self.cores.split_at_mut(mc);
        let ctx = pair.decouple(&mut left[vc], &mut right[0], now);
        let vcpu = self
            .vcpus
            .iter()
            .find(|v| {
                v.assignment
                    == Assignment::Dmr {
                        vocal: CoreId(vc as u16),
                        mute: CoreId(mc as u16),
                    }
            })
            .map(|v| v.id)
            .expect("pair slot maps to a vcpu");
        self.park_context(vcpu, ctx);
        self.tracer.emit(now, || Event::SchedDecision {
            action: SchedAction::EvictDmr,
            core: CoreId(vc as u16),
            partner: Some(CoreId(mc as u16)),
            vcpu: Some(vcpu),
        });
        vcpu
    }

    /// Removes the VCPU running solo on a core, parking its context.
    fn evict_solo(&mut self, core: CoreId, now: Cycle) -> VcpuId {
        let ctx = self.cores[core.index()]
            .take_context(now)
            .expect("core is busy");
        self.cores[core.index()].set_store_filter(Filter::None);
        let vcpu = self
            .vcpus
            .iter()
            .find(|v| v.assignment == Assignment::Solo(core))
            .map(|v| v.id)
            .expect("solo core maps to a vcpu");
        self.park_context(vcpu, ctx);
        self.tracer.emit(now, || Event::SchedDecision {
            action: SchedAction::EvictSolo,
            core,
            partner: None,
            vcpu: Some(vcpu),
        });
        vcpu
    }

    fn install_initial_assignments(&mut self) {
        let pairs = self.cfg.pairs() as usize;
        match self.workload {
            Workload::NoDmr2x(_) => {
                for i in 0..self.cfg.cores as usize {
                    self.install_solo(VcpuId(i as u16), CoreId(i as u16), false, 0);
                }
            }
            Workload::NoDmr(_) => {
                for i in 0..pairs {
                    self.install_solo(VcpuId(i as u16), CoreId(i as u16), false, 0);
                }
            }
            Workload::ReunionDmr(_) => {
                for p in 0..pairs {
                    self.install_dmr(VcpuId(p as u16), p, 0);
                }
            }
            Workload::Consolidated { .. } => {
                // Slice parity 0: the reliable VM runs first.
                for p in 0..pairs {
                    self.install_dmr(VcpuId(p as u16), p, 0);
                }
            }
            Workload::SingleOsMixed(_) => {
                for p in 0..pairs {
                    let vocal = CoreId(2 * p as u16);
                    self.install_solo(VcpuId(p as u16), vocal, true, 0);
                    self.cores[vocal.index()].set_traps(true, false);
                }
            }
            Workload::Overcommitted { .. } => {
                self.overcommit_order = self.vcpus.iter().map(|v| v.id).collect();
                self.overcommit_switch(0);
            }
        }
    }

    // ----- overcommit scheduling (paper §3.5 / Figure 4) ----------------------

    /// Recomputes VCPU placement for the next quantum: reliable VCPUs
    /// claim whole pair slots, performance VCPUs single cores;
    /// whoever does not fit is paused and moves to the front of the
    /// order for the next quantum. Placement prefers a VCPU's current
    /// cores, so an under-committed machine reaches a stable
    /// assignment with no migration churn.
    fn overcommit_switch(&mut self, now: Cycle) {
        let n_cores = self.cfg.cores as usize;
        let pairs = self.cfg.pairs() as usize;
        self.tracer.emit(now, || Event::SchedDecision {
            action: SchedAction::OvercommitSwitch,
            core: CoreId(0),
            partner: None,
            vcpu: None,
        });
        // Previously paused VCPUs get priority.
        let old_order = std::mem::take(&mut self.overcommit_order);
        let parked_first: Vec<VcpuId> = old_order
            .iter()
            .copied()
            .filter(|&v| self.vcpus[self.vcpu_index(v)].assignment == Assignment::Parked)
            .chain(
                old_order
                    .iter()
                    .copied()
                    .filter(|&v| self.vcpus[self.vcpu_index(v)].assignment != Assignment::Parked),
            )
            .collect();
        self.overcommit_order = parked_first.clone();

        // Plan placement.
        let mut core_used = vec![false; n_cores];
        let mut plan: Vec<(VcpuId, Assignment)> = Vec::with_capacity(parked_first.len());
        for &v in &parked_first {
            let i = self.vcpu_index(v);
            let current = self.vcpus[i].assignment;
            let a = match self.vcpus[i].mode {
                RelMode::Reliable => {
                    // Prefer the current pair; else the lowest free pair.
                    let preferred = match current {
                        Assignment::Dmr { vocal, .. } => Some(vocal.index() / 2),
                        _ => None,
                    };
                    let slot = preferred
                        .filter(|&p| !core_used[2 * p] && !core_used[2 * p + 1])
                        .or_else(|| {
                            (0..pairs).find(|&p| !core_used[2 * p] && !core_used[2 * p + 1])
                        });
                    match slot {
                        Some(p) => {
                            core_used[2 * p] = true;
                            core_used[2 * p + 1] = true;
                            Assignment::Dmr {
                                vocal: CoreId((2 * p) as u16),
                                mute: CoreId((2 * p + 1) as u16),
                            }
                        }
                        None => Assignment::Parked,
                    }
                }
                _ => {
                    // Prefer the current core; else the highest free
                    // core (keeps low pairs unfragmented for reliable
                    // VCPUs).
                    let preferred = match current {
                        Assignment::Solo(c) => Some(c.index()),
                        _ => None,
                    };
                    let core = preferred
                        .filter(|&c| !core_used[c])
                        .or_else(|| (0..n_cores).rev().find(|&c| !core_used[c]));
                    match core {
                        Some(c) => {
                            core_used[c] = true;
                            Assignment::Solo(CoreId(c as u16))
                        }
                        None => Assignment::Parked,
                    }
                }
            };
            plan.push((v, a));
        }

        // Which cores are currently serving as mutes (their caches
        // hold incoherent data)?
        let mut was_mute = vec![false; n_cores];
        for v in &self.vcpus {
            if let Assignment::Dmr { mute, .. } = v.assignment {
                was_mute[mute.index()] = true;
            }
        }

        // Evict everything that moves, charging the state saves.
        let mut busy: Vec<Cycle> = vec![now; n_cores];
        for &(v, new_a) in &plan {
            let i = self.vcpu_index(v);
            let old = self.vcpus[i].assignment;
            if old == new_a {
                continue;
            }
            match old {
                Assignment::Parked => {}
                Assignment::Solo(c) => {
                    let out = self.evict_solo(c, now);
                    debug_assert_eq!(out, v);
                    busy[c.index()] = self.engine.save_state(&mut self.mem, c, v, 0, now);
                }
                Assignment::Dmr { vocal, mute } => {
                    let out = self.evict_dmr(vocal.index() / 2, now);
                    debug_assert_eq!(out, v);
                    busy[vocal.index()] = self.engine.save_state(&mut self.mem, vocal, v, 0, now);
                    busy[mute.index()] = self.engine.save_state(&mut self.mem, mute, v, 1, now);
                }
            }
        }

        // Former mute caches being repurposed for coherent execution
        // must flush their incoherent contents (paper §3.4.3).
        for &(_, new_a) in &plan {
            for core in new_a.cores() {
                let idx = core.index();
                let becomes_mute = matches!(new_a, Assignment::Dmr { mute, .. } if mute == core);
                if was_mute[idx] && !becomes_mute {
                    busy[idx] = self.mem.flush_mute(core, busy[idx]).complete_at;
                    was_mute[idx] = false;
                }
            }
        }

        // Install.
        for (v, new_a) in plan {
            let i = self.vcpu_index(v);
            if self.vcpus[i].assignment == new_a {
                continue; // still running where it was
            }
            match new_a {
                Assignment::Parked => {}
                Assignment::Solo(c) => {
                    let ready = self
                        .engine
                        .restore_solo(&mut self.mem, c, v, busy[c.index()]);
                    self.tracer.emit(now, || Event::ModeTransition {
                        core: c,
                        kind: TransitionKind::PerfSwitch,
                        done: ready,
                    });
                    self.install_solo(v, c, true, ready);
                }
                Assignment::Dmr { vocal, mute } => {
                    let start = busy[vocal.index()].max(busy[mute.index()]);
                    let ready = self
                        .engine
                        .restore_dmr(&mut self.mem, vocal, mute, v, start);
                    self.tracer.emit(now, || Event::ModeTransition {
                        core: vocal,
                        kind: TransitionKind::DmrSwitch,
                        done: ready,
                    });
                    self.check_privreg_on_entry(v, vocal);
                    self.install_dmr(v, vocal.index() / 2, ready);
                }
            }
        }
    }

    // ----- gang scheduling (consolidated server) ------------------------------

    fn gang_switch(&mut self, policy: MixedPolicy, now: Cycle) {
        let pairs = self.cfg.pairs() as usize;
        let incoming_parity = 1 - self.slice_parity;
        self.tracer.emit(now, || Event::SchedDecision {
            action: SchedAction::GangSwitch,
            core: CoreId(0),
            partner: None,
            vcpu: None,
        });
        for p in 0..pairs {
            let vocal = CoreId(2 * p as u16);
            let mute = CoreId(2 * p as u16 + 1);
            let rel_vcpu = VcpuId(p as u16);
            let perf_vcpu = VcpuId((pairs + p) as u16);
            let perf2_vcpu = VcpuId((2 * pairs + p) as u16);
            let ready_at = if incoming_parity == 1 {
                // Reliable VM leaves; performance VM enters.
                let out = self.evict_dmr(p, now);
                debug_assert_eq!(out, rel_vcpu);
                match policy {
                    MixedPolicy::DmrBase => {
                        let t = self.engine.dmr_switch(
                            &mut self.mem,
                            vocal,
                            mute,
                            Some(rel_vcpu),
                            perf_vcpu,
                            now,
                        );
                        self.tracer.emit(now, || Event::ModeTransition {
                            core: vocal,
                            kind: TransitionKind::DmrSwitch,
                            done: t,
                        });
                        self.check_privreg_on_entry(perf_vcpu, vocal);
                        self.install_dmr(perf_vcpu, p, t);
                        continue;
                    }
                    MixedPolicy::MmmIpc => {
                        let t = self.engine.leave_dmr(
                            &mut self.mem,
                            vocal,
                            mute,
                            rel_vcpu,
                            &[(vocal, perf_vcpu)],
                            false,
                            now,
                        );
                        self.tracer.emit(now, || Event::ModeTransition {
                            core: vocal,
                            kind: TransitionKind::LeaveDmr,
                            done: t,
                        });
                        self.install_solo(perf_vcpu, vocal, true, t);
                        continue;
                    }
                    MixedPolicy::MmmTp => {
                        let t = self.engine.leave_dmr(
                            &mut self.mem,
                            vocal,
                            mute,
                            rel_vcpu,
                            &[(vocal, perf_vcpu), (mute, perf2_vcpu)],
                            true,
                            now,
                        );
                        self.tracer.emit(now, || Event::ModeTransition {
                            core: vocal,
                            kind: TransitionKind::LeaveDmr,
                            done: t,
                        });
                        self.install_solo(perf_vcpu, vocal, true, t);
                        self.install_solo(perf2_vcpu, mute, true, t);
                        continue;
                    }
                }
            } else {
                // Performance VM leaves; reliable VM enters.
                match policy {
                    MixedPolicy::DmrBase => {
                        let out = self.evict_dmr(p, now);
                        debug_assert_eq!(out, perf_vcpu);

                        let t = self.engine.dmr_switch(
                            &mut self.mem,
                            vocal,
                            mute,
                            Some(perf_vcpu),
                            rel_vcpu,
                            now,
                        );
                        self.tracer.emit(now, || Event::ModeTransition {
                            core: vocal,
                            kind: TransitionKind::DmrSwitch,
                            done: t,
                        });
                        t
                    }
                    MixedPolicy::MmmIpc => {
                        let out = self.evict_solo(vocal, now);
                        debug_assert_eq!(out, perf_vcpu);
                        let t = self.engine.enter_dmr(
                            &mut self.mem,
                            vocal,
                            mute,
                            &[(vocal, perf_vcpu)],
                            rel_vcpu,
                            now,
                        );
                        self.tracer.emit(now, || Event::ModeTransition {
                            core: vocal,
                            kind: TransitionKind::EnterDmr,
                            done: t,
                        });
                        t
                    }
                    MixedPolicy::MmmTp => {
                        let o1 = self.evict_solo(vocal, now);
                        let o2 = self.evict_solo(mute, now);
                        debug_assert_eq!((o1, o2), (perf_vcpu, perf2_vcpu));
                        let t = self.engine.enter_dmr(
                            &mut self.mem,
                            vocal,
                            mute,
                            &[(vocal, perf_vcpu), (mute, perf2_vcpu)],
                            rel_vcpu,
                            now,
                        );
                        self.tracer.emit(now, || Event::ModeTransition {
                            core: vocal,
                            kind: TransitionKind::EnterDmr,
                            done: t,
                        });
                        t
                    }
                }
            };
            self.check_privreg_on_entry(rel_vcpu, vocal);
            self.install_dmr(rel_vcpu, p, ready_at);
        }
        self.slice_parity = incoming_parity;
    }

    /// Enter-DMR verification: a privileged-register corruption armed
    /// while the VCPU ran unprotected is caught here (paper §3.4.3).
    /// `vocal` is the pair's vocal core, for event attribution.
    fn check_privreg_on_entry(&mut self, vcpu: VcpuId, vocal: CoreId) {
        let i = self.vcpu_index(vcpu);
        if let Some((armed_at, rec)) = self.privreg_armed[i].take() {
            let latency = self.cycle.saturating_sub(armed_at);
            if let Some(inj) = self.injector.as_mut() {
                inj.stats.privreg_caught_at_entry += 1;
                let tel = inj.telemetry.site_mut(FaultSite::PrivReg);
                tel.detected += 1;
                tel.detection_latency.record(latency);
            }
            self.forensics.link(rec, self.cycle, || {
                format!("enter_dmr_verification vcpu={} latency={latency}", vcpu.0)
            });
            self.forensics.detected(rec, "enter_dmr", Some(latency));
            self.tracer.emit(self.cycle, || Event::FaultMasked {
                core: vocal,
                site: "priv_reg",
                reason: "enter_dmr_verification",
            });
        }
    }

    // ----- single-OS mixed mode (per-syscall transitions, §5.3) ---------------

    fn poll_single_os(&mut self, now: Cycle) {
        let pairs = self.cfg.pairs() as usize;
        for p in 0..pairs {
            let vocal = CoreId(2 * p as u16);
            let mute = CoreId(2 * p as u16 + 1);
            let vcpu = VcpuId(p as u16);
            if self.pairs[p].is_none() {
                // Performance mode: wait for an OS-entry trap.
                let c = &self.cores[vocal.index()];
                if c.pending_boundary() == Some(Boundary::EnterOs)
                    && c.window_empty()
                    && now >= c.stalled_until()
                {
                    let out = self.evict_solo(vocal, now);
                    debug_assert_eq!(out, vcpu);
                    let t = self.engine.enter_dmr(
                        &mut self.mem,
                        vocal,
                        mute,
                        &[(vocal, vcpu)],
                        vcpu,
                        now,
                    );
                    self.tracer.emit(now, || Event::SchedDecision {
                        action: SchedAction::SingleOsPoll,
                        core: vocal,
                        partner: Some(mute),
                        vcpu: Some(vcpu),
                    });
                    self.tracer.emit(now, || Event::ModeTransition {
                        core: vocal,
                        kind: TransitionKind::EnterDmr,
                        done: t,
                    });
                    self.check_privreg_on_entry(vcpu, vocal);
                    self.install_dmr(vcpu, p, t);
                    self.cores[vocal.index()].set_traps(false, true);
                    self.cores[mute.index()].set_traps(false, true);
                }
            } else {
                // Reliable mode: wait for both cores to reach the OS
                // exit.
                let v = &self.cores[vocal.index()];
                let m = &self.cores[mute.index()];
                if v.pending_boundary() == Some(Boundary::ExitOs)
                    && m.pending_boundary() == Some(Boundary::ExitOs)
                    && v.window_empty()
                    && m.window_empty()
                {
                    let out = self.evict_dmr(p, now);
                    debug_assert_eq!(out, vcpu);
                    // MMM-IPC-style single-OS operation: the mute goes
                    // idle, no cache flush (its incoherent lines heal
                    // through Reunion recovery on the next DMR stint).
                    let t = self.engine.leave_dmr(
                        &mut self.mem,
                        vocal,
                        mute,
                        vcpu,
                        &[(vocal, vcpu)],
                        false,
                        now,
                    );
                    self.tracer.emit(now, || Event::SchedDecision {
                        action: SchedAction::SingleOsPoll,
                        core: vocal,
                        partner: Some(mute),
                        vcpu: Some(vcpu),
                    });
                    self.tracer.emit(now, || Event::ModeTransition {
                        core: vocal,
                        kind: TransitionKind::LeaveDmr,
                        done: t,
                    });
                    self.install_solo(vcpu, vocal, true, t);
                    self.cores[vocal.index()].set_traps(true, false);
                    self.cores[mute.index()].set_traps(false, false);
                }
            }
        }
    }

    // ----- fault application ---------------------------------------------------

    pub(crate) fn apply_fault(&mut self, core: CoreId, site: FaultSite, now: Cycle) {
        let label = site.label();
        self.tracer
            .emit(now, || Event::FaultInjected { core, site: label });
        if let Some(inj) = self.injector.as_mut() {
            inj.telemetry.site_mut(site).injected += 1;
        }
        // DMR cores: any fault surfaces as a fingerprint mismatch.
        let in_pair = self.pairs.iter().position(|p| {
            p.as_ref()
                .is_some_and(|p| p.vocal() == core || p.mute() == core)
        });
        // Open the forensic record, classifying the core's role at the
        // injection instant, and stamp the injection into the struck
        // core's black-box ring (so an escape's dump is never empty).
        let mode = match in_pair {
            Some(slot) => {
                let p = self.pairs[slot].as_ref().expect("slot holds a pair");
                if p.vocal() == core {
                    "dmr_vocal"
                } else {
                    "dmr_mute"
                }
            }
            None if !self.cores[core.index()].is_busy() => "idle",
            None => "perf",
        };
        let rec = self.forensics.open(now, core, label, mode);
        self.forensics
            .note(now, || Event::FaultInjected { core, site: label });
        if let Some(slot) = in_pair {
            let pair = self.pairs[slot].as_ref().expect("slot holds a pair");
            // A fault injected while a mismatch is already armed
            // merges into that one detection; only a newly armed
            // fault gets its own latency observation.
            if pair.inject_fault() {
                self.dmr_inject_pending[slot].push_back((now, site, rec));
                self.forensics
                    .link(rec, now, || "fingerprint_divergence_armed".to_string());
            } else {
                self.forensics.link(rec, now, || {
                    "merged_into_armed_divergence (no separate latency)".to_string()
                });
            }
            if let Some(inj) = self.injector.as_mut() {
                inj.stats.detected_by_dmr += 1;
                inj.telemetry.site_mut(site).detected += 1;
            }
            // Detection by the fingerprint check is certain; the exact
            // latency is attributed when the pair services the
            // mismatch (merged injections keep a `null` latency).
            self.forensics.detected(rec, "dmr", None);
            self.tracer.emit(now, || Event::FaultMasked {
                core,
                site: label,
                reason: "dmr_detected",
            });
            return;
        }
        if !self.cores[core.index()].is_busy() {
            if let Some(inj) = self.injector.as_mut() {
                inj.stats.on_idle_core += 1;
                inj.telemetry.site_mut(site).masked += 1;
            }
            self.forensics.masked(rec, "idle");
            self.tracer.emit(now, || Event::FaultMasked {
                core,
                site: label,
                reason: "idle",
            });
            return;
        }
        // Performance-mode core.
        match site {
            FaultSite::CoreLogic => {
                if let Some(inj) = self.injector.as_mut() {
                    inj.stats.silent_perf_faults += 1;
                    inj.telemetry.site_mut(site).masked += 1;
                }
                self.forensics.masked(rec, "silent_perf_fault");
            }
            FaultSite::PrivReg => {
                let i = self
                    .vcpus
                    .iter()
                    .position(|v| v.assignment == Assignment::Solo(core))
                    .expect("busy non-DMR core runs a solo vcpu");
                if self.vcpus[i].mode == RelMode::PerfUser {
                    // This VCPU re-enters DMR at its next OS entry,
                    // where the mute's verification walk catches the
                    // corruption (paper §3.4.3). A re-arm while armed
                    // merges into the first injection's detection.
                    if self.privreg_armed[i].is_none() {
                        self.privreg_armed[i] = Some((now, rec));
                        let vcpu = self.vcpus[i].id;
                        self.forensics.link(rec, now, || {
                            format!("privreg_armed vcpu={} awaiting enter_dmr", vcpu.0)
                        });
                    } else {
                        // The armed corruption's eventual detection
                        // belongs to the first injection; this one
                        // stays terminally unattributed.
                        self.forensics.pending(rec, "merged_into_armed_privreg");
                    }
                } else {
                    // A pure performance guest never re-enters DMR:
                    // the corruption stays inside the unprotected
                    // domain, tolerated by contract.
                    if let Some(inj) = self.injector.as_mut() {
                        inj.stats.silent_perf_faults += 1;
                        inj.telemetry.site_mut(site).masked += 1;
                    }
                    self.forensics.masked(rec, "unprotected_guest");
                }
            }
            FaultSite::TlbPermission => {
                // A wild store: the faulty translation produced an
                // arbitrary physical address. The PAB is the last line
                // of defense.
                let max_page = (PAT_BASE + (64 << 20)) / PAGE_BYTES;
                let inj = self.injector.as_mut().expect("fault path has injector");
                let page = PageAddr(inj.draw_wild_page(max_page));
                let line = page.first_line();
                // Forensic context reads are pure observation: the
                // wild page's TLB residency and the PAB occupancy on
                // the striking core.
                if self.forensics.is_on() {
                    let c = &self.cores[core.index()];
                    let resident = c.tlb_resident(page);
                    let tlb_occ = c.tlb_occupancy();
                    let pab_occ = self.pabs[core.index()].borrow().occupancy();
                    self.forensics.link(rec, now, || {
                        format!(
                            "wild_store page={} tlb_resident={resident} \
                             tlb_occupancy={tlb_occ} pab_occupancy={pab_occ}",
                            page.0
                        )
                    });
                }
                let pab_hits_before = if self.forensics.is_on() {
                    self.pabs[core.index()].borrow().stats().hits
                } else {
                    0
                };
                let pat = self.pat.borrow();
                let (ready, verdict) = crate::pab::check_store(
                    &self.pabs[core.index()],
                    core,
                    line,
                    &pat,
                    &mut self.mem,
                    now,
                );
                drop(pat);
                if self.forensics.is_on() {
                    let hit = self.pabs[core.index()].borrow().stats().hits > pab_hits_before;
                    let lookup = if hit { "hit" } else { "miss" };
                    self.forensics.link(rec, ready, || {
                        format!("pab_lookup={lookup} store_ready={ready}")
                    });
                }
                let inj = self.injector.as_mut().expect("fault path has injector");
                match verdict {
                    crate::pab::PabVerdict::Violation => {
                        inj.stats.wild_stores_blocked += 1;
                        let tel = inj.telemetry.site_mut(site);
                        tel.detected += 1;
                        tel.detection_latency.record(ready.saturating_sub(now));
                        self.forensics.link(rec, ready, || {
                            "pab_violation exception_before_l2".to_string()
                        });
                        self.forensics
                            .detected(rec, "pab", Some(ready.saturating_sub(now)));
                        self.forensics
                            .note(now, || Event::PabDeny { core, page: page.0 });
                        self.tracer
                            .emit(now, || Event::PabDeny { core, page: page.0 });
                        self.tracer.emit(now, || Event::FaultMasked {
                            core,
                            site: label,
                            reason: "pab_blocked",
                        });
                    }
                    crate::pab::PabVerdict::Allowed => {
                        inj.stats.wild_stores_corrupting += 1;
                        inj.telemetry.site_mut(site).escaped += 1;
                        self.fault_token_seq += 1;
                        let token = store_token(VcpuId(u16::MAX), line, self.fault_token_seq);
                        self.mem.store_commit(core, line, token, true, ready);
                        self.forensics.link(rec, ready, || {
                            format!("corruption_committed line={} page={}", line.0, page.0)
                        });
                        self.forensics.escaped(rec, vec![page.0]);
                    }
                }
            }
        }
    }

    // ----- main loop ------------------------------------------------------------

    /// Advances the machine one cycle.
    pub fn tick(&mut self) {
        let now = self.cycle;
        {
            // Wake-slot checks and the fault-arrival poll are wheel
            // bookkeeping; the handlers they trigger carve out their
            // own nested phases.
            let _prof = self.profiler.enter(ProfPhase::Wheel);
            if now >= self.wheel.at(WakeSource::Sample) {
                self.profiler.wake_hit(WakeSource::Sample as usize);
                // Reschedules its own slot.
                self.take_sample(now);
            }
            if now >= self.wheel.at(WakeSource::Slice) {
                self.profiler.wake_hit(WakeSource::Slice as usize);
                let next = self.wheel.at(WakeSource::Slice) + self.cfg.virt.timeslice_cycles;
                {
                    let _prof = self.profiler.enter(ProfPhase::Sched);
                    if let Some(policy) = self.workload.gang_policy() {
                        self.gang_switch(policy, now);
                    } else {
                        self.overcommit_switch(now);
                    }
                }
                self.wheel.schedule(WakeSource::Slice, next);
            }
            if now >= self.wheel.at(WakeSource::SingleOsPoll) {
                self.profiler.wake_hit(WakeSource::SingleOsPoll as usize);
                let _prof = self.profiler.enter(ProfPhase::Sched);
                self.poll_single_os(now);
            }
            if let Some(inj) = self.injector.as_mut() {
                if let Some((core, site)) = inj.poll(now) {
                    self.profiler.wake_hit(WakeSource::Fault as usize);
                    let _prof = self.profiler.enter(ProfPhase::Sched);
                    self.apply_fault(core, site, now);
                }
            }
        }
        let mut min_wake = Cycle::MAX;
        let mut awake: u64 = 0;
        {
            // Attribute the scan over cores and pairs — wake-hint
            // checks, occupancy accounting, service-flag sweeps — to
            // the core-loop bookkeeping phase; the core/mem/op-gen and
            // pair-service probes nest inside and subtract themselves.
            let _prof = self.profiler.enter(ProfPhase::CoreLoop);
            for c in &mut self.cores {
                // Cores that proved themselves blocked (or idle) until a
                // future cycle are skipped entirely; they settle their
                // skipped-cycle counters when they next run.
                let hint = c.wake_hint();
                if now < hint {
                    min_wake = min_wake.min(hint);
                    continue;
                }
                awake += 1;
                c.tick(now, &mut self.mem);
                min_wake = min_wake.min(c.wake_hint());
            }
            self.profiler.occupancy(awake);
            for (slot, pair) in self.pairs.iter().enumerate() {
                let Some(pair) = pair else { continue };
                // The dirty flag only rises during core ticks, so a clean
                // pair has nothing queued — skip the channel call.
                if !pair.needs_service() {
                    continue;
                }
                for detected_at in pair.service(&mut self.mem) {
                    // A fingerprint mismatch caused by an injected fault:
                    // attribute the detection back to its injection for
                    // the campaign latency histogram.
                    if let Some((injected_at, site, rec)) =
                        self.dmr_inject_pending[slot].pop_front()
                    {
                        if let Some(inj) = self.injector.as_mut() {
                            inj.telemetry
                                .site_mut(site)
                                .detection_latency
                                .record(detected_at.saturating_sub(injected_at));
                        }
                        self.forensics.attribute_latency(rec, detected_at);
                    }
                }
            }
        }
        // Re-register the event sources whose deadlines this tick may
        // have moved: the next fault arrival (re-drawn by `poll`) and
        // the single-OS trap poll (its boundary/drain/stall conditions
        // only change during core ticks, so recomputing here — after
        // the core loop — is exact).
        {
            let _prof = self.profiler.enter(ProfPhase::Wheel);
            if let Some(inj) = &self.injector {
                self.wheel.schedule(WakeSource::Fault, inj.next_event(now));
            }
            if matches!(self.workload, Workload::SingleOsMixed(_)) {
                let at = self.next_single_os_poll(now);
                self.wheel.schedule(WakeSource::SingleOsPoll, at);
            }
        }
        let next = {
            let _prof = self.profiler.enter(ProfPhase::FastForward);
            self.fast_forward(now, min_wake)
        };
        self.profiler.advance(next - now);
        self.cycle = next;
    }

    /// The earliest future cycle at which [`System::poll_single_os`]
    /// could fire a per-syscall mode transition, given current core
    /// state: a performance-mode pair needs its vocal parked at an
    /// OS-entry trap with a drained window and any external stall
    /// expired; a reliable-mode pair needs *both* cores parked at the
    /// OS exit with drained windows. `Cycle::MAX` when no pair can
    /// transition without further core activity — and core activity
    /// already pins the clock through the wake hints.
    fn next_single_os_poll(&self, now: Cycle) -> Cycle {
        let pairs = self.cfg.pairs() as usize;
        let mut earliest = Cycle::MAX;
        for p in 0..pairs {
            let vocal = &self.cores[2 * p];
            let at = if self.pairs[p].is_none() {
                vocal.boundary_ready_at(Boundary::EnterOs, now)
            } else {
                let mute = &self.cores[2 * p + 1];
                // Both sides must be ready; `max` stays `Cycle::MAX`
                // until the later of the two is.
                vocal
                    .boundary_ready_at(Boundary::ExitOs, now)
                    .max(mute.boundary_ready_at(Boundary::ExitOs, now))
            };
            earliest = earliest.min(at);
        }
        earliest
    }

    /// The next cycle the machine must actually simulate: `now + 1`,
    /// or later when every core is provably asleep beyond it and no
    /// event-wheel source fires in between. Ticks inside the jumped
    /// span would run zero cores, service nothing, and dispatch no
    /// event — each core settles its skipped-cycle counters itself, so
    /// the reports are identical either way. Every workload mode jumps:
    /// fault arrivals are pre-drawn events, the single-OS trap poll
    /// registers the earliest cycle its conditions could hold, and
    /// timeslice/sample boundaries sit in their wheel slots.
    fn fast_forward(&self, now: Cycle, min_wake: Cycle) -> Cycle {
        if !self.skip_enabled || !self.wheel_enabled || min_wake <= now + 1 {
            return now + 1;
        }
        self.wheel.next_event(now + 1, min_wake)
    }

    /// Runs for `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            self.tick();
        }
        // A fast-forward may overshoot the run boundary; nothing
        // happens in the overshot span, so resuming at `end` is exact.
        self.cycle = end;
        // Flush pending skipped-cycle charges so reports (and the
        // warm-up reset) see fully settled counters.
        for c in &mut self.cores {
            c.settle_to(self.cycle);
        }
        // A sample boundary landing exactly on the run end has not
        // ticked; record it now so the series is the same whether the
        // caller keeps running or stops here.
        if self.cycle >= self.wheel.at(WakeSource::Sample) {
            self.take_sample(self.cycle);
        }
    }

    /// Resets every measured counter (after warm-up) without touching
    /// architectural or cache state.
    pub fn reset_measurement(&mut self) {
        for c in &mut self.cores {
            c.reset_stats();
            c.enable_phase_tracking();
        }
        for v in &mut self.vcpus {
            if let Some(ctx) = v.parked_ctx.as_mut() {
                ctx.user_commits = 0;
                ctx.os_commits = 0;
                ctx.unprotected_commits = 0;
            }
        }
        self.mem.reset_stats();
        self.engine.stats = TransitionStats::default();
        self.retired_pair_stats = PairStats::default();
        for pair in self.pairs.iter().flatten() {
            pair.reset_stats();
        }
        for pab in &self.pabs {
            pab.borrow_mut().reset_stats();
        }
        if let Some(inj) = self.injector.as_mut() {
            inj.stats = FaultStats::default();
            inj.telemetry = CampaignTelemetry::default();
        }
        for q in &mut self.dmr_inject_pending {
            q.clear();
        }
        // Restart the forensics recorder: only faults injected during
        // the measured window are reported (black-box rings are kept —
        // context preceding an early escape is still valuable).
        self.forensics.reset();
        // Restart the flight recorder: samples cover the measured
        // period only, with timestamps relative to its start.
        self.measure_start = self.cycle;
        if self.sampler.interval().is_some() {
            let snapshot = self.report(0).metrics();
            self.sampler.rebase(&snapshot);
            self.wheel
                .schedule(WakeSource::Sample, self.sampler.next_boundary(self.cycle));
        }
    }

    /// Runs `warmup` unmeasured cycles followed by `measure` measured
    /// cycles and reports.
    pub fn run_measured(&mut self, warmup: u64, measure: u64) -> SystemReport {
        self.run(warmup);
        self.reset_measurement();
        // Open the profiler window after the warm-up reset so phase
        // shares cover exactly the measured period.
        self.profiler.begin();
        let started = std::time::Instant::now();
        self.run(measure);
        let wall = started.elapsed().as_secs_f64();
        self.profiler.end();
        let mut report = self.report(measure);
        report.wall_seconds = wall;
        report.series = self.sampler.series();
        report.profile = self.profiler.report();
        report.forensics = self.forensics.take_report();
        report
    }

    /// Builds the report over the last `cycles` measured cycles.
    pub fn report(&self, cycles: u64) -> SystemReport {
        let mut vcpu_slices = Vec::with_capacity(self.vcpus.len());
        for v in &self.vcpus {
            let triple = |c: &ExecContext| (c.user_commits, c.os_commits, c.unprotected_commits);
            let (user, os, unprotected) = match v.assignment {
                Assignment::Parked => v.parked_ctx.as_ref().map(triple).unwrap_or((0, 0, 0)),
                Assignment::Solo(c) => self.cores[c.index()]
                    .context()
                    .map(triple)
                    .unwrap_or((0, 0, 0)),
                Assignment::Dmr { vocal, .. } => self.cores[vocal.index()]
                    .context()
                    .map(triple)
                    .unwrap_or((0, 0, 0)),
            };
            vcpu_slices.push(VcpuSlice {
                vcpu: v.id,
                vm: v.vm,
                user_commits: user,
                os_commits: os,
                unprotected_commits: unprotected,
            });
        }
        let mut core_agg = CoreStats::new();
        let mut phases = PhaseTracker::new();
        for c in &self.cores {
            core_agg.merge(c.stats());
            if let Some(t) = c.phase_tracker() {
                phases.merge(t);
            }
        }
        let mut pair_agg = self.retired_pair_stats.clone();
        for pair in self.pairs.iter().flatten() {
            pair_agg.merge_from(&pair.stats());
        }
        let mut pab_agg = PabStats::default();
        for pab in &self.pabs {
            let pb = pab.borrow();
            let s = pb.stats();
            pab_agg.lookups += s.lookups;
            pab_agg.hits += s.hits;
            pab_agg.misses += s.misses;
            pab_agg.violations += s.violations;
            pab_agg.demap_invalidations += s.demap_invalidations;
            pab_agg
                .serialization_penalty
                .merge(&s.serialization_penalty);
        }
        SystemReport {
            config: self.workload.name(),
            benchmark: self.workload.benchmark().name(),
            scheduler: self.workload.scheduler_name(),
            threads: self.vcpus.len() as u64,
            cycles,
            vcpus: vcpu_slices,
            mem: self.mem.stats().clone(),
            cores: core_agg,
            pairs: pair_agg,
            transitions: self.engine.stats.clone(),
            faults: self.injector.as_ref().map(|i| i.stats).unwrap_or_default(),
            pab: pab_agg,
            phase_user_mean: phases.mean_user_cycles(),
            phase_os_mean: phases.mean_os_cycles(),
            phases,
            wall_seconds: 0.0,
            fault_telemetry: self.injector.as_ref().map(|i| i.telemetry.clone()),
            series: None,
            profile: None,
            forensics: None,
        }
    }

    /// The layout oracle (tests and harnesses).
    pub fn layout(&self) -> AddressLayout {
        self.layout
    }

    /// Read access to a core (tests).
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.index()]
    }

    /// The `(vocal, mute)` cores of the first live DMR pair, if any
    /// (in-crate tests that drive `apply_fault` directly).
    #[cfg(test)]
    pub(crate) fn first_pair_cores(&self) -> Option<(CoreId, CoreId)> {
        self.pairs
            .iter()
            .flatten()
            .next()
            .map(|p| (p.vocal(), p.mute()))
    }

    /// Read access to the memory system (tests).
    pub fn mem(&self) -> &MemorySystem {
        &self.mem
    }
}

/// `PairStats` accumulation helper.
trait MergeFrom {
    fn merge_from(&mut self, other: &Self);
}

impl MergeFrom for PairStats {
    fn merge_from(&mut self, other: &Self) {
        self.ops_compared += other.ops_compared;
        self.input_incoherence += other.input_incoherence;
        self.faults_detected += other.faults_detected;
        self.recovery_cycles += other.recovery_cycles;
        self.occupancy.merge(&other.occupancy);
        self.commit_burst.merge(&other.commit_burst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::Benchmark;

    fn small_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::default();
        // Shorter timeslices so gang switching happens inside small
        // test runs.
        cfg.virt.timeslice_cycles = 50_000;
        cfg
    }

    #[test]
    fn no_dmr_2x_runs_all_16_vcpus() {
        let mut sys = System::new(
            &SystemConfig::default(),
            Workload::NoDmr2x(Benchmark::Pmake),
            1,
        )
        .unwrap();
        let r = sys.run_measured(20_000, 100_000);
        assert_eq!(r.vcpus.len(), 16);
        assert!(r.vcpus.iter().all(|v| v.user_commits > 0), "{r:?}");
        assert!(r.avg_user_ipc() > 0.1);
    }

    #[test]
    fn reunion_is_slower_than_no_dmr() {
        let cfg = SystemConfig::default();
        let mut base = System::new(&cfg, Workload::NoDmr(Benchmark::Oltp), 1).unwrap();
        let rb = base.run_measured(20_000, 150_000);
        let mut dmr = System::new(&cfg, Workload::ReunionDmr(Benchmark::Oltp), 1).unwrap();
        let rd = dmr.run_measured(20_000, 150_000);
        assert!(
            rd.avg_user_ipc() < rb.avg_user_ipc(),
            "Reunion {:.3} !< NoDmr {:.3}",
            rd.avg_user_ipc(),
            rb.avg_user_ipc()
        );
        assert!(rd.pairs.ops_compared > 0);
    }

    #[test]
    fn consolidated_gang_switching_alternates_vms() {
        let cfg = small_cfg();
        let mut sys = System::new(
            &cfg,
            Workload::Consolidated {
                bench: Benchmark::Pmake,
                policy: MixedPolicy::MmmIpc,
            },
            1,
        )
        .unwrap();
        let r = sys.run_measured(100_000, 400_000);
        // Both VMs made progress.
        assert!(r.vm_user_commits(VmId(0)) > 0, "reliable VM ran");
        assert!(r.vm_user_commits(VmId(1)) > 0, "perf VM ran");
        // Transitions were charged.
        assert!(r.transitions.enter.count() > 0);
        assert!(r.transitions.leave.count() > 0);
    }

    #[test]
    fn mmm_tp_runs_two_perf_guests() {
        let cfg = small_cfg();
        let mut sys = System::new(
            &cfg,
            Workload::Consolidated {
                bench: Benchmark::Pmake,
                policy: MixedPolicy::MmmTp,
            },
            1,
        )
        .unwrap();
        let r = sys.run_measured(100_000, 400_000);
        assert!(r.vm_user_commits(VmId(1)) > 0);
        assert!(r.vm_user_commits(VmId(2)) > 0);
        // The leave transition includes the mute flush: mean ~10k.
        assert!(r.transitions.leave.mean() > 8_000.0);
        // PAB saw the perf guests' stores.
        assert!(r.pab.lookups > 0);
    }

    #[test]
    fn single_os_mixed_switches_on_syscalls() {
        let cfg = SystemConfig::default();
        // Apache: user phases ~46k instructions, OS phases ~54k — both
        // short enough to see several full transitions per VCPU.
        let mut sys = System::new(&cfg, Workload::SingleOsMixed(Benchmark::Apache), 1).unwrap();
        let r = sys.run_measured(50_000, 900_000);
        assert!(
            r.transitions.enter.count() > 3,
            "Apache syscalls force Enter-DMR: {}",
            r.transitions.enter.count()
        );
        assert!(r.transitions.leave.count() > 3);
        // Work happened at both privilege levels.
        let total_os: u64 = r.vcpus.iter().map(|v| v.os_commits).sum();
        assert!(total_os > 0, "OS code ran (in DMR)");
        assert!(r.total_user_commits() > 0);
    }

    #[test]
    fn fault_injection_outcomes_are_classified() {
        let cfg = small_cfg();
        let mut sys = System::new(
            &cfg,
            Workload::Consolidated {
                bench: Benchmark::Oltp,
                policy: MixedPolicy::MmmTp,
            },
            1,
        )
        .unwrap();
        sys.enable_fault_injection(2e-6, 99);
        let r = sys.run_measured(50_000, 500_000);
        assert!(
            r.faults.injected > 5,
            "faults injected: {}",
            r.faults.injected
        );
        let classified = r.faults.detected_by_dmr
            + r.faults.wild_stores_blocked
            + r.faults.wild_stores_corrupting
            + r.faults.privreg_caught_at_entry
            + r.faults.silent_perf_faults
            + r.faults.on_idle_core;
        // PrivReg arms may still be pending at run end.
        assert!(
            classified + 8 >= r.faults.injected,
            "all faults classified: {:?}",
            r.faults
        );
        assert!(r.faults.detected_by_dmr > 0, "DMR detected faults");
    }

    #[test]
    fn dmr_coverage_tracks_the_protection_story() {
        let cfg = SystemConfig::default();
        let mut all_dmr = System::new(&cfg, Workload::ReunionDmr(Benchmark::Pmake), 1).unwrap();
        let r = all_dmr.run_measured(20_000, 150_000);
        assert!(
            (r.dmr_coverage() - 1.0).abs() < 1e-12,
            "all-DMR covers everything: {}",
            r.dmr_coverage()
        );
        let mut none = System::new(&cfg, Workload::NoDmr(Benchmark::Pmake), 1).unwrap();
        let r = none.run_measured(20_000, 150_000);
        assert_eq!(r.dmr_coverage(), 0.0);
        // Single-OS mixed: the OS-heavy share of Apache runs covered.
        let mut mixed = System::new(&cfg, Workload::SingleOsMixed(Benchmark::Apache), 1).unwrap();
        let r = mixed.run_measured(50_000, 800_000);
        let c = r.dmr_coverage();
        assert!(
            (0.05..0.999).contains(&c),
            "mixed coverage must be partial: {c}"
        );
        // Every OS instruction is covered: unprotected <= user commits.
        assert!(r.cores.commits_unprotected <= r.cores.commits_user);
    }

    #[test]
    fn overcommit_exact_fit_is_stable() {
        // 2 reliable pairs + 12 perf cores = 16 cores: everyone fits;
        // after the initial placement nothing should churn.
        let mut cfg = SystemConfig::default();
        cfg.virt.timeslice_cycles = 50_000;
        let mut sys = System::new(
            &cfg,
            Workload::Overcommitted {
                bench: Benchmark::Pmake,
                reliable: 2,
                perf: 12,
            },
            1,
        )
        .unwrap();
        let r = sys.run_measured(20_000, 300_000);
        assert_eq!(r.vcpus.len(), 14);
        assert!(
            r.vcpus.iter().all(|v| v.user_commits > 0),
            "every VCPU runs continuously: {:?}",
            r.vcpus
        );
        // No migrations after warm-up (stable placement).
        assert_eq!(r.transitions.dmr_switch.count(), 0);
        assert_eq!(r.transitions.perf_switch.count(), 0);
    }

    #[test]
    fn overcommit_rotation_is_fair() {
        // 4 reliable (8 cores) + 12 perf = 20 core-demand on 16
        // cores: four perf VCPUs pause each quantum, rotating.
        let mut cfg = SystemConfig::default();
        cfg.virt.timeslice_cycles = 40_000;
        let mut sys = System::new(
            &cfg,
            Workload::Overcommitted {
                bench: Benchmark::Pmake,
                reliable: 4,
                perf: 12,
            },
            1,
        )
        .unwrap();
        let r = sys.run_measured(40_000, 600_000);
        assert!(
            r.vcpus.iter().all(|v| v.user_commits > 0),
            "rotation must give every VCPU time: {:?}",
            r.vcpus
        );
        // Rotation causes real migrations.
        assert!(r.transitions.perf_switch.count() > 0);
        // Reliable VCPUs (which always fit) should out-commit the
        // rotated performance VCPUs per-VCPU... they run DMR though,
        // so just check both classes progressed substantially.
        let rel_min = r
            .vcpus
            .iter()
            .filter(|v| v.vm == VmId(0))
            .map(|v| v.user_commits)
            .min()
            .unwrap();
        assert!(rel_min > 1_000, "reliable VCPUs never pause: {rel_min}");
    }

    #[test]
    fn overcommit_rejects_oversized_topologies() {
        let cfg = SystemConfig::default();
        assert!(System::new(
            &cfg,
            Workload::Overcommitted {
                bench: Benchmark::Apache,
                reliable: 20,
                perf: 10,
            },
            1,
        )
        .is_err());
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let cfg = SystemConfig::default();
        let run = || {
            let mut sys = System::new(&cfg, Workload::ReunionDmr(Benchmark::Apache), 7).unwrap();
            let r = sys.run_measured(10_000, 80_000);
            (
                r.total_user_commits(),
                r.mem.c2c_transfers,
                r.pairs.ops_compared,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn phase_tracking_reports_table2_quantities() {
        let cfg = SystemConfig::default();
        let mut sys = System::new(&cfg, Workload::NoDmr(Benchmark::Apache), 3).unwrap();
        let r = sys.run_measured(50_000, 1_000_000);
        assert!(r.phase_user_mean > 0.0, "user phases measured");
        assert!(r.phase_os_mean > 0.0, "os phases measured");
    }
}
