//! The event wheel: the system clock's registry of future wake
//! sources.
//!
//! [`crate::system::System::tick`] advances the machine cycle by
//! cycle, but most cycles do nothing: every core has proved itself
//! blocked until a known wake cycle, no scheduler boundary falls in
//! between, and no external event arrives. The event wheel makes the
//! "no external event" half of that claim checkable in O(1): every
//! source of system-level work registers the next cycle at which it
//! could act —
//!
//! * the gang/overcommit timeslice boundary ([`WakeSource::Slice`]),
//! * the flight-recorder sample boundary ([`WakeSource::Sample`]),
//! * the next transient-fault arrival ([`WakeSource::Fault`]) —
//!   pre-drawn as a geometric inter-arrival event by the injector,
//!   one draw per arrival instead of one Bernoulli trial per cycle,
//! * the single-OS trap poll ([`WakeSource::SingleOsPoll`]) — the
//!   earliest cycle at which a pair's boundary/drain/stall conditions
//!   could let a per-syscall mode transition fire,
//!
//! and the clock jumps straight to the earliest of these and the
//! per-core wake hints. Sources that cannot act (sampler off, no
//! injector, not a single-OS workload) stay parked at [`Cycle::MAX`]
//! and never pin the clock.
//!
//! ## Why fixed slots, not a heap or hierarchical wheel
//!
//! The classic implementations index *many* dynamic timers. This
//! simulator has exactly four scheduler-level sources, each with at
//! most one outstanding deadline that is re-registered on every
//! actual tick; the per-core wake cycles (up to 16) are already
//! aggregated into a running minimum by the core loop itself. At that
//! population a fixed slot array beats both a binary heap (whose
//! sift costs exceed a four-way min) and a hierarchical wheel (whose
//! cascade bookkeeping is pure overhead when every deadline is
//! rewritten each tick) — measured on the `perf_fault_smoke` /
//! `perf_smoke` configurations, the slot array is the only variant
//! whose maintenance cost stays invisible in profiles. The type keeps
//! the wheel *interface* (schedule / cancel / next-event) so a larger
//! population can swap the representation without touching callers.

use mmm_types::Cycle;

/// A scheduler-level wake source with at most one registered deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeSource {
    /// Gang/overcommit timeslice boundary (`next_slice`).
    Slice = 0,
    /// Flight-recorder sample boundary.
    Sample = 1,
    /// Next transient-fault arrival (geometric inter-arrival draw).
    Fault = 2,
    /// Earliest cycle the single-OS trap poll could transition a pair.
    SingleOsPoll = 3,
}

const SOURCES: usize = 4;

/// The registry of future system-level events.
///
/// ```
/// use mmm_core::wheel::{EventWheel, WakeSource};
///
/// let mut wheel = EventWheel::new();
/// assert_eq!(wheel.next_event(1, u64::MAX), u64::MAX); // nothing due
/// wheel.schedule(WakeSource::Slice, 500);
/// wheel.schedule(WakeSource::Fault, 120);
/// assert_eq!(wheel.at(WakeSource::Fault), 120);
/// // Jump target: earliest of the registered events and the core
/// // wake minimum, floored at the next cycle.
/// assert_eq!(wheel.next_event(1, 300), 120);
/// wheel.cancel(WakeSource::Fault);
/// assert_eq!(wheel.next_event(1, 300), 300);
/// ```
#[derive(Clone, Debug)]
pub struct EventWheel {
    slots: [Cycle; SOURCES],
}

impl Default for EventWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl EventWheel {
    /// An empty wheel: every source parked at [`Cycle::MAX`].
    pub fn new() -> Self {
        Self {
            slots: [Cycle::MAX; SOURCES],
        }
    }

    /// Registers (or moves) `source`'s next deadline.
    #[inline]
    pub fn schedule(&mut self, source: WakeSource, at: Cycle) {
        self.slots[source as usize] = at;
    }

    /// Parks `source`: it no longer pins the clock.
    #[inline]
    pub fn cancel(&mut self, source: WakeSource) {
        self.slots[source as usize] = Cycle::MAX;
    }

    /// `source`'s registered deadline ([`Cycle::MAX`] when parked).
    #[inline]
    pub fn at(&self, source: WakeSource) -> Cycle {
        self.slots[source as usize]
    }

    /// The next cycle the system must actually simulate: the earliest
    /// registered deadline or `core_wake` (the aggregated per-core
    /// wake minimum), but never before `floor` (the next cycle —
    /// events at or before the current cycle have already been
    /// dispatched this tick).
    #[inline]
    pub fn next_event(&self, floor: Cycle, core_wake: Cycle) -> Cycle {
        let mut min = core_wake;
        for &s in &self.slots {
            min = min.min(s);
        }
        min.max(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_wheel_never_pins_the_clock() {
        let wheel = EventWheel::new();
        assert_eq!(wheel.next_event(10, Cycle::MAX), Cycle::MAX);
        assert_eq!(wheel.next_event(10, 42), 42);
        for s in [
            WakeSource::Slice,
            WakeSource::Sample,
            WakeSource::Fault,
            WakeSource::SingleOsPoll,
        ] {
            assert_eq!(wheel.at(s), Cycle::MAX);
        }
    }

    #[test]
    fn earliest_source_wins() {
        let mut wheel = EventWheel::new();
        wheel.schedule(WakeSource::Slice, 900);
        wheel.schedule(WakeSource::Sample, 400);
        wheel.schedule(WakeSource::Fault, 700);
        assert_eq!(wheel.next_event(1, Cycle::MAX), 400);
        assert_eq!(wheel.next_event(1, 250), 250);
    }

    #[test]
    fn floor_bounds_overdue_events() {
        let mut wheel = EventWheel::new();
        wheel.schedule(WakeSource::SingleOsPoll, 5);
        // An event at/before `now` was dispatched this tick; the jump
        // target never goes backwards.
        assert_eq!(wheel.next_event(100, Cycle::MAX), 100);
    }

    #[test]
    fn schedule_overwrites_and_cancel_parks() {
        let mut wheel = EventWheel::new();
        wheel.schedule(WakeSource::Fault, 50);
        wheel.schedule(WakeSource::Fault, 80);
        assert_eq!(wheel.at(WakeSource::Fault), 80);
        wheel.cancel(WakeSource::Fault);
        assert_eq!(wheel.at(WakeSource::Fault), Cycle::MAX);
        assert_eq!(wheel.next_event(1, Cycle::MAX), Cycle::MAX);
    }
}
