//! The Protection Assistance Buffer (paper §3.4.1, Figure 3).
//!
//! A small per-core hardware structure "organized much like a cache,
//! with a physically tagged and indexed array containing 64 Bytes (one
//! cache-line worth) of PAT entries" per entry. With 128 entries it
//! holds 8.2 KB and maps 512 MB of physical memory.
//!
//! When a core runs in performance mode, every store write-through is
//! re-validated against the PAB before (serial) or in parallel with
//! its L2 access, providing redundancy for the TLB's permission check:
//! a fault in the TLB array, checking logic, or privileged registers
//! can no longer silently corrupt reliable applications' memory. In
//! reliable mode the PAB is not used. A PAB miss fetches the covering
//! PAT line through the normal cache hierarchy. On a TLB demap, the
//! TLB sends the demapped physical page to the PAB, which invalidates
//! the corresponding entry.

use std::cell::RefCell;
use std::rc::Rc;

use mmm_cpu::StoreFilter;
use mmm_mem::{CacheLine, MemorySystem, Mosi, SetAssocCache};
use mmm_types::config::{CacheGeometry, PabConfig, PabLookup};
use mmm_types::{CoreId, Cycle, LineAddr, PageAddr};

use crate::pat::Pat;

/// Outcome of a PAB permission check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PabVerdict {
    /// The store targets a page any software may write.
    Allowed,
    /// The store targets a reliable-only page: an exception is raised
    /// to system software *before* the corruption reaches the L2.
    Violation,
}

/// Counters accumulated by one PAB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PabStats {
    /// Permission checks performed.
    pub lookups: u64,
    /// Checks satisfied from the PAB array.
    pub hits: u64,
    /// Checks that fetched a PAT line through the hierarchy.
    pub misses: u64,
    /// Stores blocked because they targeted a reliable-only page.
    pub violations: u64,
    /// Entries invalidated by TLB demaps.
    pub demap_invalidations: u64,
}

/// One core's Protection Assistance Buffer.
#[derive(Debug)]
pub struct Pab {
    entries: SetAssocCache,
    cfg: PabConfig,
    stats: PabStats,
}

impl Pab {
    /// Builds a PAB from its configuration (default: 128 entries,
    /// 8-way).
    pub fn new(cfg: PabConfig) -> Self {
        let geom = CacheGeometry::new(cfg.entries as u64 * 64, cfg.associativity)
            .expect("PAB geometry validated by SystemConfig");
        Self {
            entries: SetAssocCache::new(geom),
            cfg,
            stats: PabStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> PabStats {
        self.stats
    }

    /// Resets counters (after warm-up) without touching the array.
    pub fn reset_stats(&mut self) {
        self.stats = PabStats::default();
    }

    /// Checks the permission of a store to `line` issued by `core` in
    /// performance mode. Returns the cycle at which the store may
    /// proceed to the L2 and the verdict.
    ///
    /// Timing: a parallel-lookup hit is free (the PAB races the L2
    /// tags); a serial lookup adds `serial_latency` to every store; a
    /// miss additionally fetches the covering PAT line through the
    /// hierarchy before the store may proceed.
    pub fn check_store(
        &mut self,
        core: CoreId,
        line: LineAddr,
        pat: &Pat,
        mem: &mut MemorySystem,
        now: Cycle,
    ) -> (Cycle, PabVerdict) {
        self.stats.lookups += 1;
        let page = line.page();
        let backing = pat.backing_line(page);
        let serial_extra = match self.cfg.lookup {
            PabLookup::Parallel => 0,
            PabLookup::Serial => self.cfg.serial_latency,
        } as Cycle;
        let ready_at = if self.entries.lookup(backing).is_some() {
            self.stats.hits += 1;
            now + serial_extra
        } else {
            self.stats.misses += 1;
            // Fetch the PAT line like any cacheable data.
            let acc = mem.load(core, backing, true, now);
            self.entries.insert(CacheLine {
                addr: backing,
                state: Mosi::Shared,
                version: acc.version,
                coherent: true,
            });
            acc.complete_at + serial_extra
        };
        let verdict = if pat.is_reliable(page) {
            self.stats.violations += 1;
            PabVerdict::Violation
        } else {
            PabVerdict::Allowed
        };
        (ready_at, verdict)
    }

    /// Handles a TLB demap: invalidates the entry covering `page`.
    /// (Conservative: the whole 512-page line's entry is dropped.)
    pub fn on_demap(&mut self, page: PageAddr, pat: &Pat) {
        if self.entries.invalidate(pat.backing_line(page)).is_some() {
            self.stats.demap_invalidations += 1;
        }
    }

    /// Drops all entries (PAT rewritten wholesale, e.g. VM
    /// reassignment).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Resident entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.entries.occupancy()
    }
}

/// The [`StoreFilter`] a performance-mode core is fitted with: routes
/// every store write-through past the core's PAB.
///
/// Fault-free software only stores to pages it owns, so in-pipeline
/// verdicts are always [`PabVerdict::Allowed`]; wild stores from
/// injected faults go through [`Pab::check_store`] directly in the
/// fault injector, where a violation blocks the write. Violations
/// observed here (which would indicate a workload-generator bug) are
/// debug-asserted.
pub struct PabFilter {
    /// This core's PAB.
    pub pab: Rc<RefCell<Pab>>,
    /// The machine's PAT.
    pub pat: Rc<RefCell<Pat>>,
}

impl StoreFilter for PabFilter {
    fn check(&mut self, core: CoreId, line: LineAddr, now: Cycle, mem: &mut MemorySystem) -> Cycle {
        let pat = self.pat.borrow();
        let (ready_at, verdict) = self
            .pab
            .borrow_mut()
            .check_store(core, line, &pat, mem, now);
        debug_assert_eq!(
            verdict,
            PabVerdict::Allowed,
            "fault-free software never stores to reliable-only pages"
        );
        ready_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::SystemConfig;

    fn setup() -> (Pab, Pat, MemorySystem) {
        let cfg = SystemConfig::default();
        (Pab::new(cfg.pab), Pat::new(), MemorySystem::new(&cfg))
    }

    const CORE: CoreId = CoreId(0);

    #[test]
    fn miss_then_hit_with_parallel_lookup_is_free_on_hit() {
        let (mut pab, pat, mut mem) = setup();
        let line = LineAddr(0x8000);
        let (t1, v1) = pab.check_store(CORE, line, &pat, &mut mem, 100);
        assert_eq!(v1, PabVerdict::Allowed);
        assert!(t1 > 100, "miss fetches the PAT line");
        let (t2, v2) = pab.check_store(CORE, line, &pat, &mut mem, t1);
        assert_eq!(v2, PabVerdict::Allowed);
        assert_eq!(t2, t1, "parallel hit adds no latency");
        assert_eq!(pab.stats().hits, 1);
        assert_eq!(pab.stats().misses, 1);
    }

    #[test]
    fn serial_lookup_costs_two_cycles_per_store() {
        let cfg = SystemConfig::default();
        let mut pab_cfg = cfg.pab;
        pab_cfg.lookup = PabLookup::Serial;
        let mut pab = Pab::new(pab_cfg);
        let pat = Pat::new();
        let mut mem = MemorySystem::new(&cfg);
        let line = LineAddr(0x8000);
        let (t1, _) = pab.check_store(CORE, line, &pat, &mut mem, 0);
        let (t2, _) = pab.check_store(CORE, line, &pat, &mut mem, t1);
        assert_eq!(t2, t1 + 2, "serial hit costs the PAB latency");
    }

    #[test]
    fn violation_is_flagged_for_reliable_pages() {
        let (mut pab, mut pat, mut mem) = setup();
        let line = LineAddr(0x8000);
        pat.set_reliable(line.page(), true);
        let (_, v) = pab.check_store(CORE, line, &pat, &mut mem, 0);
        assert_eq!(v, PabVerdict::Violation);
        assert_eq!(pab.stats().violations, 1);
    }

    #[test]
    fn one_entry_covers_512_pages() {
        let (mut pab, pat, mut mem) = setup();
        // Two pages in the same 512-page group share a PAT line.
        let a = PageAddr(100).first_line();
        let b = PageAddr(200).first_line();
        pab.check_store(CORE, a, &pat, &mut mem, 0);
        let (_, _) = pab.check_store(CORE, b, &pat, &mut mem, 1000);
        assert_eq!(pab.stats().misses, 1);
        assert_eq!(pab.stats().hits, 1);
    }

    #[test]
    fn demap_invalidates_covering_entry() {
        let (mut pab, pat, mut mem) = setup();
        let page = PageAddr(100);
        pab.check_store(CORE, page.first_line(), &pat, &mut mem, 0);
        assert_eq!(pab.occupancy(), 1);
        pab.on_demap(page, &pat);
        assert_eq!(pab.occupancy(), 0);
        assert_eq!(pab.stats().demap_invalidations, 1);
        // Next check misses again.
        pab.check_store(CORE, page.first_line(), &pat, &mut mem, 5000);
        assert_eq!(pab.stats().misses, 2);
    }

    #[test]
    fn pab_capacity_is_bounded() {
        let (mut pab, pat, mut mem) = setup();
        // Touch far more than 128 distinct page groups.
        for g in 0..500u64 {
            let line = PageAddr(g * 512).first_line();
            pab.check_store(CORE, line, &pat, &mut mem, g * 1000);
        }
        assert!(pab.occupancy() <= 128);
    }

    #[test]
    fn invalidate_all_clears() {
        let (mut pab, pat, mut mem) = setup();
        pab.check_store(CORE, LineAddr(0x8000), &pat, &mut mem, 0);
        pab.invalidate_all();
        assert_eq!(pab.occupancy(), 0);
    }
}
