//! Protection Assistance Buffer — the system-software side.
//!
//! The PAB array and its timing model live in `mmm-cpu` (see
//! [`mmm_cpu::pab`]): it is per-core hardware, addressed by PAT
//! backing lines, and is wired into the store write-through path as
//! the concrete [`mmm_cpu::Filter::Pab`] variant. What remains here is
//! everything that needs the [`Pat`]: translating a stored-to page to
//! its backing line and reading the permission bit — i.e. the actual
//! verdict. The in-pipeline filter path never needs the verdict
//! (fault-free software only stores to pages it owns); only the fault
//! injector, which models wild stores, checks permissions via
//! [`check_store`].

use std::cell::RefCell;

use mmm_mem::MemorySystem;
use mmm_types::{CoreId, Cycle, LineAddr};

pub use mmm_cpu::{Pab, PabStats};

use crate::pat::Pat;

/// Outcome of a PAB permission check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PabVerdict {
    /// The store targets a page any software may write.
    Allowed,
    /// The store targets a reliable-only page: an exception is raised
    /// to system software *before* the corruption reaches the L2.
    Violation,
}

/// Checks the permission of a store to `line` issued by `core` in
/// performance mode: the PAB lookup timing plus the PAT permission
/// bit. Returns the cycle at which the store may proceed to the L2
/// and the verdict.
pub fn check_store(
    pab: &RefCell<Pab>,
    core: CoreId,
    line: LineAddr,
    pat: &Pat,
    mem: &mut MemorySystem,
    now: Cycle,
) -> (Cycle, PabVerdict) {
    let page = line.page();
    let backing = pat.backing_line(page);
    let ready_at = pab.borrow_mut().filter_store(core, backing, mem, now);
    let verdict = if pat.is_reliable(page) {
        pab.borrow_mut().record_violation();
        PabVerdict::Violation
    } else {
        PabVerdict::Allowed
    };
    (ready_at, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::{PageAddr, SystemConfig};

    fn setup() -> (RefCell<Pab>, Pat, MemorySystem) {
        let cfg = SystemConfig::default();
        (
            RefCell::new(Pab::new(cfg.pab)),
            Pat::new(),
            MemorySystem::new(&cfg),
        )
    }

    const CORE: CoreId = CoreId(0);

    #[test]
    fn miss_then_hit_with_parallel_lookup_is_free_on_hit() {
        let (pab, pat, mut mem) = setup();
        let line = LineAddr(0x8000);
        let (t1, v1) = check_store(&pab, CORE, line, &pat, &mut mem, 100);
        assert_eq!(v1, PabVerdict::Allowed);
        assert!(t1 > 100, "miss fetches the PAT line");
        let (t2, v2) = check_store(&pab, CORE, line, &pat, &mut mem, t1);
        assert_eq!(v2, PabVerdict::Allowed);
        assert_eq!(t2, t1, "parallel hit adds no latency");
        assert_eq!(pab.borrow().stats().hits, 1);
        assert_eq!(pab.borrow().stats().misses, 1);
    }

    #[test]
    fn violation_is_flagged_for_reliable_pages() {
        let (pab, mut pat, mut mem) = setup();
        let line = LineAddr(0x8000);
        pat.set_reliable(line.page(), true);
        let (_, v) = check_store(&pab, CORE, line, &pat, &mut mem, 0);
        assert_eq!(v, PabVerdict::Violation);
        assert_eq!(pab.borrow().stats().violations, 1);
    }

    #[test]
    fn one_entry_covers_512_pages() {
        let (pab, pat, mut mem) = setup();
        // Two pages in the same 512-page group share a PAT line.
        let a = PageAddr(100).first_line();
        let b = PageAddr(200).first_line();
        check_store(&pab, CORE, a, &pat, &mut mem, 0);
        check_store(&pab, CORE, b, &pat, &mut mem, 1000);
        assert_eq!(pab.borrow().stats().misses, 1);
        assert_eq!(pab.borrow().stats().hits, 1);
    }

    #[test]
    fn demap_invalidates_covering_entry() {
        let (pab, pat, mut mem) = setup();
        let page = PageAddr(100);
        check_store(&pab, CORE, page.first_line(), &pat, &mut mem, 0);
        assert_eq!(pab.borrow().occupancy(), 1);
        pab.borrow_mut().on_demap(pat.backing_line(page));
        assert_eq!(pab.borrow().occupancy(), 0);
        assert_eq!(pab.borrow().stats().demap_invalidations, 1);
        // Next check misses again.
        check_store(&pab, CORE, page.first_line(), &pat, &mut mem, 5000);
        assert_eq!(pab.borrow().stats().misses, 2);
    }
}
