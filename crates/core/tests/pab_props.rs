//! Property tests for the PAT/PAB protection pair.
//!
//! Whatever interleaving of PAT updates, store checks, and TLB demaps
//! occurs, the PAB's verdict must always equal the PAT's current
//! content — the PAB is a pure (demap-coherent) cache of the table.

use proptest::prelude::*;

use mmm_core::{Pab, PabVerdict, Pat};
use mmm_mem::MemorySystem;
use mmm_types::{CoreId, PageAddr, SystemConfig};

#[derive(Clone, Debug)]
enum PatOp {
    /// Mark a page reliable-only / open, then demap it (the system
    /// software contract: PAT updates are followed by a TLB demap,
    /// which the PAB mirrors).
    SetAndDemap { page: u16, reliable: bool },
    /// A performance-mode store permission check.
    Check { page: u16 },
}

fn op_strategy() -> impl Strategy<Value = PatOp> {
    prop_oneof![
        (0..2048u16, any::<bool>())
            .prop_map(|(page, reliable)| PatOp::SetAndDemap { page, reliable }),
        (0..2048u16).prop_map(|page| PatOp::Check { page }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pab_verdicts_always_match_the_pat(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let cfg = SystemConfig::default();
        let mut mem = MemorySystem::new(&cfg);
        let mut pat = Pat::new();
        let mut pab = Pab::new(cfg.pab);
        let mut now = 0u64;
        for op in &ops {
            now += 11;
            match *op {
                PatOp::SetAndDemap { page, reliable } => {
                    pat.set_reliable(PageAddr(page as u64), reliable);
                    pab.on_demap(PageAddr(page as u64), &pat);
                }
                PatOp::Check { page } => {
                    let line = PageAddr(page as u64).first_line();
                    let (ready, verdict) =
                        pab.check_store(CoreId(0), line, &pat, &mut mem, now);
                    prop_assert!(ready >= now);
                    let expected = if pat.is_reliable(PageAddr(page as u64)) {
                        PabVerdict::Violation
                    } else {
                        PabVerdict::Allowed
                    };
                    prop_assert_eq!(verdict, expected);
                }
            }
            prop_assert!(pab.occupancy() <= cfg.pab.entries as usize);
        }
        // Accounting: hits + misses == lookups.
        let s = pab.stats();
        prop_assert_eq!(s.hits + s.misses, s.lookups);
    }

    #[test]
    fn pat_range_updates_are_exact(start in 0u64..50_000, len in 1u64..600) {
        let mut pat = Pat::new();
        pat.set_range_reliable(start..start + len, true);
        prop_assert!(!pat.is_reliable(PageAddr(start.wrapping_sub(1))));
        prop_assert!(pat.is_reliable(PageAddr(start)));
        prop_assert!(pat.is_reliable(PageAddr(start + len - 1)));
        prop_assert!(!pat.is_reliable(PageAddr(start + len)));
        // Clearing undoes it exactly.
        pat.set_range_reliable(start..start + len, false);
        for p in [start, start + len / 2, start + len - 1] {
            prop_assert!(!pat.is_reliable(PageAddr(p)));
        }
    }
}
