//! Property tests for the PAT/PAB protection pair.
//!
//! Whatever interleaving of PAT updates, store checks, and TLB demaps
//! occurs, the PAB's verdict must always equal the PAT's current
//! content — the PAB is a pure (demap-coherent) cache of the table.
//!
//! Deterministic property testing: interleavings are generated from a
//! fixed-seed [`DetRng`], so failures reproduce exactly (the build is
//! offline; no proptest).

use mmm_core::{check_store, Pab, PabVerdict, Pat};
use mmm_mem::MemorySystem;
use mmm_types::{CoreId, DetRng, PageAddr, SystemConfig};
use std::cell::RefCell;

#[derive(Clone, Debug)]
enum PatOp {
    /// Mark a page reliable-only / open, then demap it (the system
    /// software contract: PAT updates are followed by a TLB demap,
    /// which the PAB mirrors).
    SetAndDemap { page: u16, reliable: bool },
    /// A performance-mode store permission check.
    Check { page: u16 },
}

fn random_op(rng: &mut DetRng) -> PatOp {
    let page = rng.below(2048) as u16;
    if rng.chance(0.5) {
        PatOp::SetAndDemap {
            page,
            reliable: rng.chance(0.5),
        }
    } else {
        PatOp::Check { page }
    }
}

#[test]
fn pab_verdicts_always_match_the_pat() {
    let mut gen = DetRng::new(0x9AB, 0);
    for case in 0..64 {
        let n_ops = gen.range(1, 300);
        let ops: Vec<PatOp> = (0..n_ops).map(|_| random_op(&mut gen)).collect();
        let cfg = SystemConfig::default();
        let mut mem = MemorySystem::new(&cfg);
        let mut pat = Pat::new();
        let pab = RefCell::new(Pab::new(cfg.pab));
        let mut now = 0u64;
        for op in &ops {
            now += 11;
            match *op {
                PatOp::SetAndDemap { page, reliable } => {
                    pat.set_reliable(PageAddr(page as u64), reliable);
                    pab.borrow_mut()
                        .on_demap(pat.backing_line(PageAddr(page as u64)));
                }
                PatOp::Check { page } => {
                    let line = PageAddr(page as u64).first_line();
                    let (ready, verdict) = check_store(&pab, CoreId(0), line, &pat, &mut mem, now);
                    assert!(ready >= now, "case {case}");
                    let expected = if pat.is_reliable(PageAddr(page as u64)) {
                        PabVerdict::Violation
                    } else {
                        PabVerdict::Allowed
                    };
                    assert_eq!(verdict, expected, "case {case}");
                }
            }
            assert!(
                pab.borrow().occupancy() <= cfg.pab.entries as usize,
                "case {case}"
            );
        }
        // Accounting: hits + misses == lookups.
        let pb = pab.borrow();
        let s = pb.stats();
        assert_eq!(s.hits + s.misses, s.lookups, "case {case}");
    }
}

#[test]
fn pat_range_updates_are_exact() {
    let mut gen = DetRng::new(0x9AC, 0);
    for case in 0..64 {
        let start = gen.below(50_000);
        let len = gen.range(1, 600);
        let mut pat = Pat::new();
        pat.set_range_reliable(start..start + len, true);
        assert!(
            !pat.is_reliable(PageAddr(start.wrapping_sub(1))),
            "case {case}"
        );
        assert!(pat.is_reliable(PageAddr(start)), "case {case}");
        assert!(pat.is_reliable(PageAddr(start + len - 1)), "case {case}");
        assert!(!pat.is_reliable(PageAddr(start + len)), "case {case}");
        // Clearing undoes it exactly.
        pat.set_range_reliable(start..start + len, false);
        for p in [start, start + len / 2, start + len - 1] {
            assert!(!pat.is_reliable(PageAddr(p)), "case {case}");
        }
    }
}
