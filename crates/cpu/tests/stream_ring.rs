//! Property test for the fork-shared op stream.
//!
//! An [`ExecContext::fork`] pair shares one generator behind a replay
//! ring; each side also keeps a batched local window, so most ops
//! never touch the shared state at all. The property that makes DMR
//! comparison meaningful is that none of this machinery is
//! observable: under *any* interleaving of the two sides — including
//! lag windows large enough to force the ring to grow, mid-stream
//! [`ExecContext::clone`], and re-forking a survivor — every side
//! yields exactly the sequence an unforked context would.
//!
//! Each trial drives a random schedule from a [`DetRng`], so failures
//! reproduce exactly from the trial number.

use mmm_cpu::ExecContext;
use mmm_types::{DetRng, VcpuId, VmId};
use mmm_workload::{Benchmark, MicroOp, OpStream};

/// A fresh, unforked context over the deterministic OLTP stream.
fn fresh(seed: u64) -> ExecContext {
    ExecContext::new(OpStream::new(
        Benchmark::Oltp.profile(),
        VmId(0),
        VcpuId(1),
        seed,
    ))
}

/// The ground truth: an unforked replay of the same stream, memoized
/// so either fork side can be checked at any skew.
struct Oracle {
    ctx: ExecContext,
    ops: Vec<MicroOp>,
}

impl Oracle {
    fn new(seed: u64) -> Self {
        Self {
            ctx: fresh(seed),
            ops: Vec::new(),
        }
    }

    fn op(&mut self, seq: u64) -> MicroOp {
        while self.ops.len() as u64 <= seq {
            let (_, op) = self.ctx.take();
            self.ops.push(op);
        }
        self.ops[seq as usize]
    }

    /// Takes `n` ops from `ctx`, checking each against the reference
    /// sequence. Mixes the `take` and `peek`-then-`advance` paths.
    fn drain(&mut self, ctx: &mut ExecContext, n: u64, rng: &mut DetRng) {
        for _ in 0..n {
            let (seq, op) = if rng.chance(0.5) {
                ctx.take()
            } else {
                let op = *ctx.peek();
                (ctx.advance(), op)
            };
            assert_eq!(op, self.op(seq), "divergence at seq {seq}");
        }
    }
}

#[test]
fn forked_streams_match_unforked_replay_under_random_schedules() {
    for trial in 0..24u64 {
        let mut rng = DetRng::new(0xF0A4_BEEF, trial);
        let mut oracle = Oracle::new(trial);
        let mut a = fresh(trial);

        // Fork mid-stream, sometimes with a pending peeked window.
        oracle.drain(&mut a, rng.below(150), &mut rng);
        if rng.chance(0.5) {
            a.peek();
        }
        let mut b = a.fork();

        for _ in 0..200 {
            // Pick a side and a burst; rare huge bursts outrun the
            // laggard by more than the initial ring capacity, forcing
            // growth mid-schedule.
            let burst = if rng.chance(0.04) {
                rng.range(300, 600)
            } else {
                rng.range(1, 8)
            };
            let side = if rng.chance(0.5) { &mut a } else { &mut b };
            oracle.drain(side, burst, &mut rng);

            // A clone is a deep copy: it must replay identically on
            // its own without perturbing the side it came from.
            if rng.chance(0.08) {
                let mut c = if rng.chance(0.5) {
                    a.clone()
                } else {
                    b.clone()
                };
                oracle.drain(&mut c, rng.range(1, 80), &mut rng);
            }
        }

        // Catch the laggard up so both sides consumed the same span.
        let target = a.seq().max(b.seq());
        for side in [&mut a, &mut b] {
            let lag = target - side.seq();
            oracle.drain(side, lag, &mut rng);
        }
        assert_eq!(a.seq(), b.seq());

        // A survivor (partner dropped mid-stream) must replay whatever
        // the partner generated ahead, then keep generating — and a
        // re-fork from it stays exact on both new sides.
        oracle.drain(&mut b, rng.below(100), &mut rng);
        drop(b);
        oracle.drain(&mut a, rng.range(50, 200), &mut rng);
        let mut d = a.fork();
        oracle.drain(&mut a, rng.range(1, 100), &mut rng);
        oracle.drain(&mut d, rng.range(1, 100), &mut rng);
    }
}
