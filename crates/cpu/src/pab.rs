//! The Protection Assistance Buffer (paper §3.4.1, Figure 3).
//!
//! A small per-core hardware structure "organized much like a cache,
//! with a physically tagged and indexed array containing 64 Bytes (one
//! cache-line worth) of PAT entries" per entry. With 128 entries it
//! holds 8.2 KB and maps 512 MB of physical memory.
//!
//! When a core runs in performance mode, every store write-through is
//! re-validated against the PAB before (serial) or in parallel with
//! its L2 access, providing redundancy for the TLB's permission check:
//! a fault in the TLB array, checking logic, or privileged registers
//! can no longer silently corrupt reliable applications' memory. In
//! reliable mode the PAB is not used. A PAB miss fetches the covering
//! PAT line through the normal cache hierarchy. On a TLB demap, the
//! TLB sends the demapped physical page to the PAB, which invalidates
//! the corresponding entry.
//!
//! The PAB models the *array and its timing* only; it is addressed by
//! PAT backing lines. Translating a stored-to page to its backing
//! line, and the permission bit itself, belong to the Protection
//! Assistance Table, which is system-software state owned by
//! `mmm-core` — the permission verdict is computed there.

use mmm_mem::{CacheLine, MemorySystem, Mosi, SetAssocCache};
use mmm_types::config::{CacheGeometry, PabConfig, PabLookup};
use mmm_types::stats::Log2Histogram;
use mmm_types::{CoreId, Cycle, LineAddr};

/// Counters accumulated by one PAB.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PabStats {
    /// Permission checks performed.
    pub lookups: u64,
    /// Checks satisfied from the PAB array.
    pub hits: u64,
    /// Checks that fetched a PAT line through the hierarchy.
    pub misses: u64,
    /// Stores blocked because they targeted a reliable-only page.
    pub violations: u64,
    /// Entries invalidated by TLB demaps.
    pub demap_invalidations: u64,
    /// Cycles each checked store waited on the PAB before proceeding
    /// to the L2 (0 on a parallel-lookup hit; the PAT-line fetch plus
    /// any serial latency otherwise).
    pub serialization_penalty: Log2Histogram,
}

/// One core's Protection Assistance Buffer.
#[derive(Debug)]
pub struct Pab {
    entries: SetAssocCache,
    cfg: PabConfig,
    stats: PabStats,
}

impl Pab {
    /// Builds a PAB from its configuration (default: 128 entries,
    /// 8-way).
    pub fn new(cfg: PabConfig) -> Self {
        let geom = CacheGeometry::new(cfg.entries as u64 * 64, cfg.associativity)
            .expect("PAB geometry validated by SystemConfig");
        Self {
            entries: SetAssocCache::new(geom),
            cfg,
            stats: PabStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &PabStats {
        &self.stats
    }

    /// Resets counters (after warm-up) without touching the array.
    pub fn reset_stats(&mut self) {
        self.stats = PabStats::default();
    }

    /// Times the PAB side of a store re-validation: the lookup of the
    /// PAT line `backing` covering the stored-to page. Returns the
    /// cycle at which the store may proceed to the L2.
    ///
    /// Timing: a parallel-lookup hit is free (the PAB races the L2
    /// tags); a serial lookup adds `serial_latency` to every store; a
    /// miss additionally fetches the covering PAT line through the
    /// hierarchy before the store may proceed.
    pub fn filter_store(
        &mut self,
        core: CoreId,
        backing: LineAddr,
        mem: &mut MemorySystem,
        now: Cycle,
    ) -> Cycle {
        self.stats.lookups += 1;
        let serial_extra = match self.cfg.lookup {
            PabLookup::Parallel => 0,
            PabLookup::Serial => self.cfg.serial_latency,
        } as Cycle;
        let ready = if self.entries.lookup(backing).is_some() {
            self.stats.hits += 1;
            now + serial_extra
        } else {
            self.stats.misses += 1;
            // Fetch the PAT line like any cacheable data.
            let acc = mem.load(core, backing, true, now);
            self.entries.insert(CacheLine {
                addr: backing,
                state: Mosi::Shared,
                version: acc.version,
                coherent: true,
            });
            acc.complete_at + serial_extra
        };
        self.stats.serialization_penalty.record(ready - now);
        ready
    }

    /// Records a permission violation (the PAT owner observed a store
    /// to a reliable-only page during a check).
    pub fn record_violation(&mut self) {
        self.stats.violations += 1;
    }

    /// Handles a TLB demap: invalidates the entry holding PAT line
    /// `backing`. (Conservative: the whole 512-page line's entry is
    /// dropped.)
    pub fn on_demap(&mut self, backing: LineAddr) {
        if self.entries.invalidate(backing).is_some() {
            self.stats.demap_invalidations += 1;
        }
    }

    /// Drops all entries (PAT rewritten wholesale, e.g. VM
    /// reassignment).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Resident entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.entries.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::{PageAddr, SystemConfig};
    use mmm_workload::AddressLayout;

    fn setup() -> (Pab, MemorySystem) {
        let cfg = SystemConfig::default();
        (Pab::new(cfg.pab), MemorySystem::new(&cfg))
    }

    fn backing(line: LineAddr) -> LineAddr {
        AddressLayout::new().pat_line_for(line.page())
    }

    const CORE: CoreId = CoreId(0);

    #[test]
    fn miss_then_hit_with_parallel_lookup_is_free_on_hit() {
        let (mut pab, mut mem) = setup();
        let b = backing(LineAddr(0x8000));
        let t1 = pab.filter_store(CORE, b, &mut mem, 100);
        assert!(t1 > 100, "miss fetches the PAT line");
        let t2 = pab.filter_store(CORE, b, &mut mem, t1);
        assert_eq!(t2, t1, "parallel hit adds no latency");
        assert_eq!(pab.stats().hits, 1);
        assert_eq!(pab.stats().misses, 1);
    }

    #[test]
    fn serial_lookup_costs_two_cycles_per_store() {
        let cfg = SystemConfig::default();
        let mut pab_cfg = cfg.pab;
        pab_cfg.lookup = PabLookup::Serial;
        let mut pab = Pab::new(pab_cfg);
        let mut mem = MemorySystem::new(&cfg);
        let b = backing(LineAddr(0x8000));
        let t1 = pab.filter_store(CORE, b, &mut mem, 0);
        let t2 = pab.filter_store(CORE, b, &mut mem, t1);
        assert_eq!(t2, t1 + 2, "serial hit costs the PAB latency");
    }

    #[test]
    fn one_entry_covers_512_pages() {
        let (mut pab, mut mem) = setup();
        // Two pages in the same 512-page group share a PAT line.
        let a = backing(PageAddr(100).first_line());
        let b = backing(PageAddr(200).first_line());
        assert_eq!(a, b);
        pab.filter_store(CORE, a, &mut mem, 0);
        pab.filter_store(CORE, b, &mut mem, 1000);
        assert_eq!(pab.stats().misses, 1);
        assert_eq!(pab.stats().hits, 1);
    }

    #[test]
    fn demap_invalidates_covering_entry() {
        let (mut pab, mut mem) = setup();
        let b = backing(PageAddr(100).first_line());
        pab.filter_store(CORE, b, &mut mem, 0);
        assert_eq!(pab.occupancy(), 1);
        pab.on_demap(b);
        assert_eq!(pab.occupancy(), 0);
        assert_eq!(pab.stats().demap_invalidations, 1);
        // Next check misses again.
        pab.filter_store(CORE, b, &mut mem, 5000);
        assert_eq!(pab.stats().misses, 2);
    }

    #[test]
    fn pab_capacity_is_bounded() {
        let (mut pab, mut mem) = setup();
        // Touch far more than 128 distinct page groups.
        for g in 0..500u64 {
            let b = backing(PageAddr(g * 512).first_line());
            pab.filter_store(CORE, b, &mut mem, g * 1000);
        }
        assert!(pab.occupancy() <= 128);
    }

    #[test]
    fn invalidate_all_clears() {
        let (mut pab, mut mem) = setup();
        pab.filter_store(CORE, backing(LineAddr(0x8000)), &mut mem, 0);
        pab.invalidate_all();
        assert_eq!(pab.occupancy(), 0);
    }
}
