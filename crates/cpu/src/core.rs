//! The per-cycle core pipeline model.
//!
//! One [`Core`] models the paper's out-of-order core: 2-wide dispatch
//! and commit, a 128-entry instruction window, a 32+32 LSQ, and
//! sequential consistency. The model is *commit-and-capacity*
//! accurate rather than microarchitecturally exhaustive:
//!
//! * instructions enter the window at up to `width` per cycle, blocked
//!   by window/LSQ capacity, I-fetch misses, mispredict redirects, and
//!   serializing-instruction drain;
//! * each instruction's execution-completion cycle is computed at
//!   dispatch from its latency, an optional dependence on the youngest
//!   older instruction, and — for memory ops — the memory system's
//!   synchronous latency answer;
//! * instructions leave the window in order at up to `width` per
//!   cycle, once executed *and* (under Reunion) released by the
//!   [`CommitGate`];
//! * under SC a store must additionally hold exclusive ownership and
//!   complete its L2 write-through before it can leave the window —
//!   the pressure the paper identifies as Reunion's largest overhead
//!   source; under TSO the store retires into a store buffer instead.

use mmm_mem::request::store_token;
use mmm_mem::{MemorySystem, Source};
use mmm_trace::{Event, Forensics, ProfPhase, Profiler, Tracer};
use mmm_types::config::{Consistency, SystemConfig};
use mmm_types::fastmap::FastMap;
use mmm_types::{CoreId, Cycle, LineAddr, PageAddr, VcpuId};
use mmm_workload::{MicroOp, OpClass, Privilege};
use std::collections::VecDeque;

use crate::context::ExecContext;
use crate::filter::Filter;
use crate::gate::{CommitGate, Gate};
use crate::phase::PhaseTracker;
use crate::stats::CoreStats;
use crate::tlb::Tlb;

/// A privilege boundary reached by the instruction stream while the
/// core was configured to trap on it (single-OS mixed-mode operation,
/// paper §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Boundary {
    /// The next instruction enters the OS (syscall/trap/interrupt):
    /// the VCPU must be in reliable mode before it executes.
    EnterOs,
    /// The next instruction returns to user code: the VCPU may drop
    /// back to performance mode.
    ExitOs,
}

/// Which per-cycle stall counter a blocked core charges while it
/// sleeps (see [`Core::tick`]'s wake-cycle skipping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StallKind {
    Si,
    Mispredict,
    Fetch,
    WindowFull,
    LsqFull,
}

/// Per-cycle counter charges for a skipped (provably idle) cycle.
///
/// When the core proves it cannot make progress before a known wake
/// cycle, it stops simulating the intervening cycles — but those
/// cycles still happened architecturally, so the counters the
/// per-cycle loop would have incremented are recorded here and applied
/// in bulk when the core next runs. This keeps every statistic
/// bit-identical to the cycle-by-cycle execution.
#[derive(Clone, Copy, Debug)]
struct SkipCharge {
    /// The pending op is an OS-privilege op (`os_cycles` accrues).
    os: bool,
    /// The commit head is gate-held (`check_wait_cycles` accrues).
    check_wait: bool,
    /// The dispatch stage's per-cycle stall counter, if any.
    stall: Option<StallKind>,
}

/// Per-tick commit-counter accumulator. The commit loop retires up to
/// `width` ops per cycle; their privilege counters are accumulated
/// here and flushed to [`CoreStats`] and the context once per tick —
/// one context lookup and one set of memory bumps per cycle instead of
/// per op. Flushing happens before `tick` returns, so any observer
/// (sampler, report, pair service — all of which run between ticks)
/// reads exactly the values the per-op bumps would have produced.
#[derive(Clone, Copy, Debug, Default)]
struct RetireBatch {
    user: u64,
    os: u64,
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    seq: u64,
    op: MicroOp,
    /// Execution completion (for stores under SC: ownership acquired).
    ready_at: Cycle,
    /// Whether the commit-time write-through has been issued (stores).
    write_issued: bool,
    /// Whether the store filter (PAB) has already cleared this store.
    filter_done: bool,
}

/// One physical core.
pub struct Core {
    id: CoreId,
    // Structural parameters.
    width: u32,
    window_entries: u32,
    lq_entries: u32,
    sq_entries: u32,
    mispredict_penalty: u32,
    dependence_threshold: u64,
    consistency: Consistency,
    sb_entries: u32,
    /// L2 write occupancy per TSO store-buffer drain.
    sb_drain_cycles: u32,

    // Role configuration (set by the scheduler / DMR layer).
    coherent: bool,
    gate: Option<Gate>,
    store_filter: Filter,
    trap_enter: bool,
    trap_exit: bool,
    phase_tracker: Option<PhaseTracker>,

    // Execution state.
    context: Option<ExecContext>,
    window: VecDeque<Slot>,
    lq_used: u32,
    sq_used: u32,
    store_buffer: VecDeque<Cycle>,
    /// In-flight stores by line: (sequence of the youngest such store,
    /// number in flight). Loads forward from here — a load younger
    /// than an uncommitted store to the same line observes that
    /// store's value, on the vocal and the mute alike.
    inflight_stores: FastMap<LineAddr, (u64, u32)>,
    fetch_stall_until: Cycle,
    redirect_stall_until: Cycle,
    si_in_flight: bool,
    si_resume_until: Cycle,
    external_stall_until: Cycle,
    last_fetch_line: Option<LineAddr>,
    pending_boundary: Option<Boundary>,
    last_ready: Cycle,

    // Wake-cycle skipping. When every pipeline stage is provably
    // blocked until a known cycle, `skip_until` is set to that cycle
    // and ticks before it return immediately; the skipped cycles'
    // counters are settled lazily from `skip_charge` (state is frozen
    // while skipping, so the charges are exact). Any external mutation
    // (scheduler, gate install, context moves) clears `skip_until`.
    skip_until: Cycle,
    /// First skipped-but-unsettled cycle (valid while `skip_active`).
    skip_from: Cycle,
    skip_active: bool,
    skip_charge: SkipCharge,

    tlb: Tlb,
    stats: CoreStats,
    tracer: Tracer,
    profiler: Profiler,
    forensics: Forensics,
}

impl Core {
    /// Builds a core from the machine configuration.
    pub fn new(id: CoreId, cfg: &SystemConfig) -> Self {
        Self {
            id,
            width: cfg.core.width,
            window_entries: cfg.core.window_entries,
            lq_entries: cfg.core.load_queue,
            sq_entries: cfg.core.store_queue,
            mispredict_penalty: cfg.core.mispredict_penalty,
            dependence_threshold: (cfg.core.dependence_frac * 1024.0) as u64,
            consistency: cfg.consistency,
            sb_entries: cfg.mem.store_buffer_entries,
            sb_drain_cycles: 3,
            coherent: true,
            gate: None,
            store_filter: Filter::None,
            trap_enter: false,
            trap_exit: false,
            phase_tracker: None,
            context: None,
            window: VecDeque::with_capacity(cfg.core.window_entries as usize),
            lq_used: 0,
            sq_used: 0,
            store_buffer: VecDeque::new(),
            inflight_stores: FastMap::default(),
            fetch_stall_until: 0,
            redirect_stall_until: 0,
            si_in_flight: false,
            si_resume_until: 0,
            external_stall_until: 0,
            last_fetch_line: None,
            pending_boundary: None,
            last_ready: 0,
            skip_until: 0,
            skip_from: 0,
            skip_active: false,
            skip_charge: SkipCharge {
                os: false,
                check_wait: false,
                stall: None,
            },
            tlb: Tlb::new(cfg.core.tlb_entries, cfg.core.tlb_fill_latency),
            stats: CoreStats::new(),
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            forensics: Forensics::off(),
        }
    }

    /// Installs a tracer handle. The default is off; an off tracer
    /// costs one branch per emission site and never constructs events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a self-profiler handle and forwards it to the
    /// installed context's op source, so host time inside `tick`
    /// lands in [`ProfPhase::Core`] (with nested memory and op-gen
    /// work subtracting automatically).
    pub fn set_profiler(&mut self, profiler: Profiler) {
        if let Some(ctx) = self.context.as_mut() {
            ctx.set_profiler(profiler.clone());
        }
        self.profiler = profiler;
    }

    /// Installs a fault-forensics handle. When on, the core stamps
    /// its pipeline landmarks (serialization stalls, phase
    /// boundaries) into a per-core black-box ring that an escaped
    /// fault's record dumps. Off by default: one branch per site.
    pub fn set_forensics(&mut self, forensics: Forensics) {
        self.forensics = forensics;
    }

    /// This core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Installs a context; the core starts executing it on the next
    /// tick.
    ///
    /// # Panics
    ///
    /// Panics if a context is already installed.
    pub fn set_context(&mut self, ctx: ExecContext) {
        assert!(self.context.is_none(), "core {} already busy", self.id);
        self.context = Some(ctx);
        self.last_fetch_line = None;
        self.wake_now();
    }

    /// Removes and returns the context, leaving the core idle.
    /// Any in-flight window contents are squashed and a pending
    /// boundary trap is cleared first.
    pub fn take_context(&mut self, now: Cycle) -> Option<ExecContext> {
        self.squash(now);
        self.pending_boundary = None;
        let ctx = self.context.take();
        // An idle core can do nothing until a context arrives;
        // `set_context` clears the hint.
        self.skip_until = Cycle::MAX;
        ctx
    }

    /// Whether a context is installed.
    pub fn is_busy(&self) -> bool {
        self.context.is_some()
    }

    /// Read access to the installed context.
    pub fn context(&self) -> Option<&ExecContext> {
        self.context.as_ref()
    }

    /// Sets whether this core participates in coherence (vocal /
    /// performance mode) or runs incoherently (Reunion mute).
    pub fn set_coherent(&mut self, coherent: bool) {
        self.coherent = coherent;
        self.wake_now();
    }

    /// Whether this core issues coherent requests.
    pub fn coherent(&self) -> bool {
        self.coherent
    }

    /// Installs (or removes) the Reunion commit gate.
    pub fn set_gate(&mut self, gate: Option<Box<dyn CommitGate>>) {
        self.gate = gate.map(Gate::Dyn);
        self.wake_now();
    }

    /// Installs a devirtualized gate variant directly (the pair
    /// coupling path).
    pub fn set_gate_kind(&mut self, gate: Option<Gate>) {
        self.gate = gate;
        self.wake_now();
    }

    /// Installs (or removes) the store filter — the PAB's hook into
    /// the store write-through path (performance mode only).
    pub fn set_store_filter(&mut self, filter: Filter) {
        self.store_filter = filter;
        self.wake_now();
    }

    /// Whether a store filter is installed.
    pub fn has_store_filter(&self) -> bool {
        self.store_filter.is_some()
    }

    /// Enables user/OS phase-duration tracking (Table 2).
    pub fn enable_phase_tracking(&mut self) {
        self.phase_tracker = Some(PhaseTracker::new());
    }

    /// The phase tracker, if enabled.
    pub fn phase_tracker(&self) -> Option<&PhaseTracker> {
        self.phase_tracker.as_ref()
    }

    /// Whether a commit gate is installed (DMR mode).
    pub fn has_gate(&self) -> bool {
        self.gate.is_some()
    }

    /// Configures privilege-boundary trapping: `enter` raises
    /// [`Boundary::EnterOs`] before the first OS instruction
    /// dispatches, `exit` raises [`Boundary::ExitOs`] before the first
    /// post-OS user instruction dispatches.
    pub fn set_traps(&mut self, enter: bool, exit: bool) {
        self.trap_enter = enter;
        self.trap_exit = exit;
        self.wake_now();
    }

    /// The boundary the core is currently trapped on, if any.
    pub fn pending_boundary(&self) -> Option<Boundary> {
        self.pending_boundary
    }

    /// Clears a pending boundary trap (the mode switch has been
    /// performed; dispatch may proceed).
    pub fn clear_boundary(&mut self) {
        self.pending_boundary = None;
        self.wake_now();
    }

    /// Wake registration for boundary-driven schedulers: the earliest
    /// cycle after `now` at which a system-level poll of this core
    /// could act on `boundary` — trapped on it, window fully drained,
    /// and any external stall expired. [`Cycle::MAX`] while the trio
    /// does not hold: the trap and the drain only change inside
    /// [`Core::tick`], so until this core next runs there is nothing
    /// for the poller to see (only the stall expires by the passage of
    /// time, which is why it lands in the returned cycle rather than
    /// in a flag).
    pub fn boundary_ready_at(&self, boundary: Boundary, now: Cycle) -> Cycle {
        if self.pending_boundary == Some(boundary) && self.window.is_empty() {
            (now + 1).max(self.external_stall_until)
        } else {
            Cycle::MAX
        }
    }

    /// Whether the window has fully drained.
    pub fn window_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Stalls the core until `cycle` (mode-transition state machine,
    /// VCPU state save/restore).
    pub fn stall_until(&mut self, cycle: Cycle) {
        self.external_stall_until = self.external_stall_until.max(cycle);
        self.wake_now();
    }

    /// Cycle through which the core is externally stalled.
    pub fn stalled_until(&self) -> Cycle {
        self.external_stall_until
    }

    /// Discards all in-flight (dispatched, uncommitted) work.
    pub fn squash(&mut self, now: Cycle) {
        if self.skip_active {
            self.settle_skip(now);
        }
        self.wake_now();
        if let Some(first) = self.window.front() {
            if let Some(g) = self.gate.as_mut() {
                g.on_squash(first.seq);
            }
            self.stats.squashes += 1;
        }
        self.window.clear();
        self.lq_used = 0;
        self.sq_used = 0;
        self.inflight_stores.clear();
        self.si_in_flight = false;
        self.last_fetch_line = None;
    }

    /// The core's TLB (fault injection and demap tests).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        self.wake_now();
        &mut self.tlb
    }

    /// Whether a translation is resident in this core's TLB. Purely
    /// observational (no MRU/stat side effects) — forensics context.
    pub fn tlb_resident(&self, page: PageAddr) -> bool {
        self.tlb.contains(page)
    }

    /// Resident translation count in this core's TLB (forensics).
    pub fn tlb_occupancy(&self) -> u32 {
        self.tlb.occupancy()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Resets counters (after warm-up).
    pub fn reset_stats(&mut self) {
        let active_context = self.context.as_mut();
        if let Some(ctx) = active_context {
            ctx.user_commits = 0;
            ctx.os_commits = 0;
            ctx.unprotected_commits = 0;
        }
        self.stats = CoreStats::new();
        // Unsettled skip charges belong to pre-reset cycles: drop them
        // with the rest of the warm-up counters. The next tick
        // re-derives the (unchanged) skip window and charges only
        // post-reset cycles.
        self.skip_active = false;
        if self.skip_until != Cycle::MAX {
            self.skip_until = 0;
        }
    }

    /// First cycle at which this core can possibly make progress —
    /// the system loop may skip `tick` calls before it. Always sound:
    /// ticks before the hint are no-ops whose counters the core
    /// settles when it next runs.
    #[inline]
    pub fn wake_hint(&self) -> Cycle {
        if self.context.is_none() {
            // An idle core cannot act until a context is installed
            // (which resets the hint).
            return Cycle::MAX;
        }
        self.skip_until
    }

    /// Forces the core to run on the next tick (external state it may
    /// have slept across just changed).
    #[inline]
    fn wake_now(&mut self) {
        self.skip_until = 0;
    }

    /// Applies any pending skipped-cycle charges for cycles before
    /// `now` — the end-of-run flush, so reports read fully settled
    /// counters.
    pub fn settle_to(&mut self, now: Cycle) {
        if self.skip_active {
            self.settle_skip(now);
        }
    }

    /// Applies the counters for cycles `skip_from..now` that were
    /// skipped while the core was provably blocked.
    fn settle_skip(&mut self, now: Cycle) {
        let gap = now.saturating_sub(self.skip_from);
        if gap > 0 {
            self.stats.active_cycles += gap;
            if self.skip_charge.os {
                self.stats.os_cycles += gap;
            }
            if self.skip_charge.check_wait {
                self.stats.check_wait_cycles += gap;
            }
            match self.skip_charge.stall {
                Some(StallKind::Si) => self.stats.si_stall_cycles += gap,
                Some(StallKind::Mispredict) => self.stats.mispredict_stall_cycles += gap,
                Some(StallKind::Fetch) => self.stats.fetch_stall_cycles += gap,
                Some(StallKind::WindowFull) => self.stats.window_full_cycles += gap,
                Some(StallKind::LsqFull) => self.stats.lsq_full_cycles += gap,
                None => {}
            }
        }
        self.skip_active = false;
        self.skip_until = 0;
    }

    /// Enters a skip window: cycles in `(now, wake)` are provably
    /// no-ops under the current (frozen) state and will be charged
    /// `charge` each when the core next runs.
    #[inline]
    fn begin_skip(&mut self, now: Cycle, wake: Cycle, charge: SkipCharge) {
        self.skip_active = true;
        self.skip_from = now + 1;
        self.skip_until = wake;
        self.skip_charge = charge;
    }

    /// Whether the pending (next-to-dispatch) op is OS-privileged.
    #[inline]
    fn pending_os(&mut self) -> bool {
        self.context
            .as_mut()
            .map(|c| c.current_privilege() == Privilege::Os)
            .unwrap_or(false)
    }

    /// Advances the core by one cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemorySystem) {
        if self.context.is_none() {
            return;
        }
        if now < self.skip_until {
            return;
        }
        let _prof = self.profiler.enter(ProfPhase::Core);
        if self.skip_active {
            self.settle_skip(now);
        }
        self.stats.active_cycles += 1;
        let in_os = self.pending_os();
        if in_os {
            self.stats.os_cycles += 1;
        }
        if now < self.external_stall_until {
            // Nothing runs until the external stall lifts; the only
            // per-cycle charges are the activity counters above.
            self.begin_skip(
                now,
                self.external_stall_until,
                SkipCharge {
                    os: in_os,
                    check_wait: false,
                    stall: None,
                },
            );
            return;
        }
        self.drain_store_buffer(now);
        let (commit_wake, check_wait) = self.commit(now, mem);
        let (dispatch_wake, stall) = self.dispatch(now, mem);
        if let Some(g) = self.gate.as_mut() {
            // Push the dispatch burst's buffered publishes before any
            // other core (or the pair service) can observe the channel.
            g.flush();
        }
        let wake = commit_wake.min(dispatch_wake);
        if wake > now + 1 {
            // Both stages are blocked until a known cycle (or
            // indefinitely, pending commit progress / an external
            // event): sleep, recording what each skipped cycle would
            // have counted. The pending op's privilege decides the
            // os_cycles charge — recomputed after dispatch, since
            // dispatch may have advanced the stream.
            let os = self.pending_os();
            self.begin_skip(
                now,
                wake,
                SkipCharge {
                    os,
                    check_wait,
                    stall,
                },
            );
        }
    }

    fn drain_store_buffer(&mut self, now: Cycle) {
        while let Some(&head) = self.store_buffer.front() {
            if head <= now {
                self.store_buffer.pop_front();
            } else {
                break;
            }
        }
    }

    /// `None` if the gate (if any) releases `seq` at `now`; otherwise
    /// the earliest cycle the hold can end (`now + 1` when the gate
    /// cannot bound it), counting a check-wait cycle.
    fn gate_wait(&mut self, seq: u64, now: Cycle) -> Option<Cycle> {
        match self.gate.as_mut() {
            None => None,
            Some(g) => {
                if g.released(seq, now) {
                    None
                } else {
                    self.stats.check_wait_cycles += 1;
                    Some(g.hold_until().max(now + 1))
                }
            }
        }
    }

    /// Commits up to `width` instructions in order.
    ///
    /// Returns `(wake, check_wait)`: the earliest cycle at which this
    /// stage could do anything it could not do this cycle (`now + 1`
    /// when unknown, `Cycle::MAX` when only dispatch progress can
    /// unblock it), and whether a blocked head charges
    /// `check_wait_cycles` every cycle while the state is frozen.
    fn commit(&mut self, now: Cycle, mem: &mut MemorySystem) -> (Cycle, bool) {
        // Loop-invariant per tick: the context (and its VCPU) and the
        // gate's presence cannot change inside the commit loop.
        let vcpu = self.vcpu();
        let mut batch = RetireBatch::default();
        let result = self.commit_burst(now, mem, vcpu, &mut batch);
        let total = batch.user + batch.os;
        if total > 0 {
            self.stats.commits_user += batch.user;
            self.stats.commits_os += batch.os;
            let unprotected = self.gate.is_none();
            if unprotected {
                self.stats.commits_unprotected += total;
            }
            let ctx = self.context.as_mut().expect("busy core has context");
            ctx.user_commits += batch.user;
            ctx.os_commits += batch.os;
            if unprotected {
                ctx.unprotected_commits += total;
            }
        }
        result
    }

    /// The commit loop body; counter flushing lives in [`Core::commit`].
    fn commit_burst(
        &mut self,
        now: Cycle,
        mem: &mut MemorySystem,
        vcpu: VcpuId,
        batch: &mut RetireBatch,
    ) -> (Cycle, bool) {
        let mut committed = 0;
        while committed < self.width {
            let Some(head) = self.window.front().copied() else {
                // Empty window: only dispatch can create commit work.
                return (Cycle::MAX, false);
            };
            if now < head.ready_at {
                // The per-cycle loop breaks before consulting the
                // gate here, so no check-wait accrues while waiting.
                return (head.ready_at, false);
            }
            if head.op.is_store() {
                match self.consistency {
                    Consistency::Sc => {
                        if !head.write_issued {
                            // The write-through may only start once the
                            // store is checked (its value must not
                            // escape an unvalidated core).
                            if let Some(hold) = self.gate_wait(head.seq, now) {
                                return (hold, true);
                            }
                            let line = head.op.data_addr.expect("store has an address").line();
                            // PAB re-validation before the L2 write
                            // (performance mode only).
                            if !head.filter_done {
                                let ok_at = self.store_filter.check(self.id, line, now, mem);
                                let slot = self.window.front_mut().expect("head exists");
                                slot.filter_done = true;
                                if ok_at > now {
                                    slot.ready_at = ok_at;
                                    return (ok_at, false);
                                }
                            }
                            let token = store_token(vcpu, line, head.seq);
                            let acc = mem.store_commit(self.id, line, token, self.coherent, now);
                            let slot = self.window.front_mut().expect("head exists");
                            slot.write_issued = true;
                            slot.ready_at = acc.complete_at;
                            if acc.complete_at > now {
                                return (acc.complete_at, false);
                            }
                        }
                    }
                    Consistency::Tso => {
                        if let Some(hold) = self.gate_wait(head.seq, now) {
                            return (hold, true);
                        }
                        if self.store_buffer.len() >= self.sb_entries as usize {
                            // A gated core re-polls its (already
                            // released) gate every blocked cycle, and
                            // a recovery can revoke a release — only
                            // ungated cores may sleep through a full
                            // store buffer.
                            let wake = match self.gate {
                                None => self.store_buffer.front().copied().unwrap_or(now + 1),
                                Some(_) => now + 1,
                            };
                            return (wake, false);
                        }
                        let line = head.op.data_addr.expect("store has an address").line();
                        if !head.filter_done {
                            let ok_at = self.store_filter.check(self.id, line, now, mem);
                            let slot = self.window.front_mut().expect("head exists");
                            slot.filter_done = true;
                            if ok_at > now {
                                slot.ready_at = ok_at;
                                return (ok_at, false);
                            }
                        }
                        let token = store_token(vcpu, line, head.seq);
                        mem.store_commit(self.id, line, token, self.coherent, now);
                        let drain_base = self.store_buffer.back().copied().unwrap_or(now).max(now);
                        self.store_buffer
                            .push_back(drain_base + self.sb_drain_cycles as Cycle);
                        self.retire_head(now, vcpu, batch);
                        committed += 1;
                        continue;
                    }
                }
            }
            if let Some(hold) = self.gate_wait(head.seq, now) {
                return (hold, true);
            }
            self.retire_head(now, vcpu, batch);
            committed += 1;
        }
        // Full commit width used: more may retire next cycle.
        (now + 1, false)
    }

    #[inline]
    fn retire_head(&mut self, now: Cycle, vcpu: VcpuId, batch: &mut RetireBatch) {
        let slot = self.window.pop_front().expect("caller checked head");
        match slot.op.class {
            OpClass::Load => self.lq_used -= 1,
            OpClass::Store => {
                self.sq_used -= 1;
                let line = slot.op.data_addr.expect("store has an address").line();
                if let Some(entry) = self.inflight_stores.get_mut(&line) {
                    entry.1 -= 1;
                    if entry.1 == 0 {
                        self.inflight_stores.remove(&line);
                    }
                }
            }
            OpClass::Serializing => {
                self.si_in_flight = false;
                let resume = self.gate.as_ref().map(|g| g.si_resume_delay()).unwrap_or(2);
                self.si_resume_until = now + resume as Cycle;
                let id = self.id;
                self.tracer.emit(now, || Event::SiStall {
                    core: id,
                    cycles: resume as u64,
                });
                self.forensics.note(now, || Event::SiStall {
                    core: id,
                    cycles: resume as u64,
                });
            }
            _ => {}
        }
        match slot.op.privilege {
            Privilege::User => batch.user += 1,
            Privilege::Os => batch.os += 1,
        }
        if slot.op.enters_os || slot.op.exits_os {
            if let Some(t) = self.phase_tracker.as_mut() {
                if slot.op.enters_os {
                    t.on_enter_os(now);
                } else {
                    t.on_exit_os(now);
                }
            }
            let id = self.id;
            self.tracer.emit(now, || Event::PhaseBoundary {
                core: id,
                vcpu,
                to_os: slot.op.enters_os,
            });
            let to_os = slot.op.enters_os;
            self.forensics.note(now, || Event::PhaseBoundary {
                core: id,
                vcpu,
                to_os,
            });
        }
    }

    fn vcpu(&self) -> VcpuId {
        self.context
            .as_ref()
            .map(|c| c.vcpu())
            .expect("busy core has context")
    }

    /// Deterministic dependence draw for `(vcpu, seq)` — identical on
    /// the vocal and mute core of a pair.
    fn depends_on_prev(&self, vcpu: VcpuId, seq: u64) -> bool {
        let mut x = (vcpu.0 as u64 ^ 0xC0FE)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seq);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        (x & 1023) < self.dependence_threshold
    }

    /// A dispatch-stage blocking result: when instructions already
    /// dispatched this cycle, the window contents changed and any
    /// commit-stage wake bound computed earlier this cycle is stale —
    /// force a real tick next cycle instead of sleeping.
    #[inline]
    fn block(
        dispatched: u32,
        now: Cycle,
        wake: Cycle,
        stall: Option<StallKind>,
    ) -> (Cycle, Option<StallKind>) {
        if dispatched > 0 {
            (now + 1, None)
        } else {
            (wake, stall)
        }
    }

    /// Dispatches up to `width` instructions.
    ///
    /// Returns `(wake, stall)`: the earliest cycle this stage could do
    /// more than it did this cycle (`Cycle::MAX` when only commit
    /// progress or an external event can unblock it), and the stall
    /// counter a blocked cycle charges while the state is frozen.
    fn dispatch(&mut self, now: Cycle, mem: &mut MemorySystem) -> (Cycle, Option<StallKind>) {
        let mut dispatched = 0;
        while dispatched < self.width {
            if self.pending_boundary.is_some() {
                return Self::block(dispatched, now, Cycle::MAX, None);
            }
            if self.si_in_flight {
                self.stats.si_stall_cycles += 1;
                return Self::block(dispatched, now, Cycle::MAX, Some(StallKind::Si));
            }
            if now < self.si_resume_until {
                self.stats.si_stall_cycles += 1;
                return Self::block(dispatched, now, self.si_resume_until, Some(StallKind::Si));
            }
            if now < self.redirect_stall_until {
                self.stats.mispredict_stall_cycles += 1;
                return Self::block(
                    dispatched,
                    now,
                    self.redirect_stall_until,
                    Some(StallKind::Mispredict),
                );
            }
            if now < self.fetch_stall_until {
                self.stats.fetch_stall_cycles += 1;
                return Self::block(
                    dispatched,
                    now,
                    self.fetch_stall_until,
                    Some(StallKind::Fetch),
                );
            }
            if self.window.len() >= self.window_entries as usize {
                self.stats.window_full_cycles += 1;
                return Self::block(dispatched, now, Cycle::MAX, Some(StallKind::WindowFull));
            }

            let coherent = self.coherent;
            let id = self.id;
            let ctx = self.context.as_mut().expect("busy core has context");
            let op = *ctx.peek();

            // Privilege-boundary traps (single-OS mixed mode). The
            // hardware checks the privilege level of the next
            // instruction, not just explicit markers — a context that
            // starts mid-OS-phase must still force reliable mode
            // before any privileged instruction dispatches.
            if self.trap_enter && op.privilege == Privilege::Os {
                self.pending_boundary = Some(Boundary::EnterOs);
                return Self::block(dispatched, now, Cycle::MAX, None);
            }
            if self.trap_exit && op.privilege == Privilege::User {
                self.pending_boundary = Some(Boundary::ExitOs);
                return Self::block(dispatched, now, Cycle::MAX, None);
            }
            // A serializing instruction dispatches alone into an empty
            // window.
            if op.is_serializing() && !self.window.is_empty() {
                self.stats.si_stall_cycles += 1;
                return Self::block(dispatched, now, Cycle::MAX, Some(StallKind::Si));
            }
            // LSQ capacity.
            match op.class {
                OpClass::Load if self.lq_used >= self.lq_entries => {
                    self.stats.lsq_full_cycles += 1;
                    return Self::block(dispatched, now, Cycle::MAX, Some(StallKind::LsqFull));
                }
                OpClass::Store if self.sq_used >= self.sq_entries => {
                    self.stats.lsq_full_cycles += 1;
                    return Self::block(dispatched, now, Cycle::MAX, Some(StallKind::LsqFull));
                }
                _ => {}
            }
            // Instruction fetch: only line transitions touch the L1-I.
            let fetch_line = op.fetch_addr.line();
            if Some(fetch_line) != self.last_fetch_line {
                let acc = mem.ifetch(id, fetch_line, coherent, now);
                self.last_fetch_line = Some(fetch_line);
                if acc.source != Source::L1 {
                    self.fetch_stall_until = acc.complete_at;
                    self.stats.fetch_stall_cycles += 1;
                    return Self::block(dispatched, now, acc.complete_at, Some(StallKind::Fetch));
                }
            }

            // Consume the op (already copied by the peek above) and
            // compute its execution completion.
            let ctx = self.context.as_mut().expect("busy core has context");
            let seq = ctx.advance();
            let vcpu = ctx.vcpu();
            let mut ready = now + op.exec_latency as Cycle;
            if self.depends_on_prev(vcpu, seq) {
                ready = ready.max(self.last_ready + 1);
            }

            let mut load_obs = None;
            match op.class {
                OpClass::Load => {
                    let addr = op.data_addr.expect("load has an address");
                    let extra = self.tlb.access(addr.page(), now) as Cycle;
                    let acc = mem.load(id, addr.line(), coherent, now + extra);
                    ready = ready.max(acc.complete_at);
                    // Store-to-load forwarding: a load behind an
                    // uncommitted store to the same line observes that
                    // store's (deterministic) token, identically on
                    // the vocal and mute cores. The map is empty
                    // exactly when no store is in the window, so the
                    // probe is skipped outright then.
                    let forwarded = if self.sq_used > 0 {
                        self.inflight_stores.get(&addr.line()).copied()
                    } else {
                        None
                    };
                    let observed = match forwarded {
                        Some((sseq, _)) => store_token(vcpu, addr.line(), sseq),
                        None => acc.version,
                    };
                    load_obs = Some((addr.line(), observed));
                    self.lq_used += 1;
                    self.stats.loads += 1;
                }
                OpClass::Store => {
                    let addr = op.data_addr.expect("store has an address");
                    let extra = self.tlb.access(addr.page(), now) as Cycle;
                    // Exclusive-ownership prefetch at dispatch; the
                    // write itself happens at commit.
                    let acc = mem.store_acquire(id, addr.line(), coherent, now + extra);
                    ready = ready.max(acc.complete_at);
                    let entry = self.inflight_stores.entry(addr.line()).or_insert((seq, 0));
                    entry.0 = seq;
                    entry.1 += 1;
                    self.sq_used += 1;
                    self.stats.stores += 1;
                }
                OpClass::Branch if op.mispredicted => {
                    self.redirect_stall_until = ready + self.mispredict_penalty as Cycle;
                    self.stats.mispredicts += 1;
                }
                OpClass::Serializing => {
                    self.si_in_flight = true;
                    self.stats.serializing += 1;
                }
                _ => {}
            }
            self.last_ready = self.last_ready.max(ready);
            if let Some(g) = self.gate.as_mut() {
                g.on_dispatch(seq, ready, load_obs);
            }
            self.window.push_back(Slot {
                seq,
                op,
                ready_at: ready,
                write_issued: false,
                filter_done: false,
            });
            dispatched += 1;
        }
        // Full dispatch width used: more may dispatch next cycle.
        (now + 1, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::testing::FixedDelayGate;
    use mmm_types::VmId;
    use mmm_workload::{Benchmark, OpStream};

    fn machine() -> (Core, MemorySystem) {
        let cfg = SystemConfig::default();
        (Core::new(CoreId(0), &cfg), MemorySystem::new(&cfg))
    }

    fn ctx(seed: u64) -> ExecContext {
        ExecContext::new(OpStream::new(
            Benchmark::Pmake.profile(),
            VmId(0),
            VcpuId(0),
            seed,
        ))
    }

    fn run(core: &mut Core, mem: &mut MemorySystem, cycles: u64) {
        for now in 0..cycles {
            core.tick(now, mem);
        }
    }

    #[test]
    fn idle_core_does_nothing() {
        let (mut core, mut mem) = machine();
        run(&mut core, &mut mem, 1000);
        assert_eq!(core.stats().commits(), 0);
        assert_eq!(core.stats().active_cycles, 0);
    }

    #[test]
    fn core_commits_instructions_and_counts_privilege() {
        let (mut core, mut mem) = machine();
        core.set_context(ctx(1));
        run(&mut core, &mut mem, 200_000);
        let s = core.stats();
        assert!(s.commits() > 10_000, "commits: {}", s.commits());
        assert!(s.commits_user > s.commits_os, "pmake is user-heavy");
        // IPC plausible for a 2-wide core: between 0.1 and 2.0.
        let ipc = s.commits() as f64 / 200_000.0;
        assert!((0.1..2.0).contains(&ipc), "ipc {ipc}");
    }

    #[test]
    fn determinism_same_seed_same_commits() {
        let (mut a, mut mem_a) = machine();
        let (mut b, mut mem_b) = machine();
        a.set_context(ctx(9));
        b.set_context(ctx(9));
        run(&mut a, &mut mem_a, 50_000);
        run(&mut b, &mut mem_b, 50_000);
        assert_eq!(a.stats().commits(), b.stats().commits());
        assert_eq!(a.stats().commits_user, b.stats().commits_user);
    }

    #[test]
    fn gate_delay_reduces_ipc() {
        let (mut free, mut mem_a) = machine();
        free.set_context(ctx(3));
        run(&mut free, &mut mem_a, 100_000);

        let (mut gated, mut mem_b) = machine();
        gated.set_context(ctx(3));
        gated.set_gate(Some(Box::new(FixedDelayGate {
            delay: 20,
            si_delay: 20,
            ..Default::default()
        })));
        run(&mut gated, &mut mem_b, 100_000);

        assert!(
            gated.stats().commits() < free.stats().commits(),
            "check delay must cost throughput: {} !< {}",
            gated.stats().commits(),
            free.stats().commits()
        );
        assert!(gated.stats().check_wait_cycles > 0);
    }

    #[test]
    fn boundary_trap_blocks_dispatch_until_cleared() {
        let (mut core, mut mem) = machine();
        // Zeus enters the OS every ~50k instructions.
        core.set_context(ExecContext::new(OpStream::new(
            Benchmark::Zeus.profile(),
            VmId(0),
            VcpuId(0),
            5,
        )));
        core.set_traps(true, false);
        let mut trapped_at = None;
        for now in 0..3_000_000u64 {
            core.tick(now, &mut mem);
            if core.pending_boundary().is_some() {
                trapped_at = Some(now);
                break;
            }
        }
        let t = trapped_at.expect("Zeus eventually enters the OS");
        assert_eq!(core.pending_boundary(), Some(Boundary::EnterOs));
        let commits_at_trap = core.stats().commits();
        // While trapped, the window drains but nothing new dispatches.
        for now in t..t + 5_000 {
            core.tick(now, &mut mem);
        }
        assert!(core.window_empty(), "window drains during the trap");
        let drained = core.stats().commits();
        for now in t + 5_000..t + 10_000 {
            core.tick(now, &mut mem);
        }
        assert_eq!(core.stats().commits(), drained, "no progress while trapped");
        assert!(drained >= commits_at_trap);
        // After clearing, execution resumes in the OS.
        core.clear_boundary();
        core.set_traps(false, false);
        for now in t + 10_000..t + 60_000 {
            core.tick(now, &mut mem);
        }
        assert!(core.stats().commits_os > 0, "OS code ran after resume");
    }

    #[test]
    fn external_stall_freezes_progress() {
        let (mut core, mut mem) = machine();
        core.set_context(ctx(2));
        run(&mut core, &mut mem, 10_000);
        let before = core.stats().commits();
        core.stall_until(30_000);
        for now in 10_000..30_000 {
            core.tick(now, &mut mem);
        }
        assert_eq!(core.stats().commits(), before);
        for now in 30_000..40_000 {
            core.tick(now, &mut mem);
        }
        assert!(core.stats().commits() > before);
    }

    #[test]
    fn take_context_squashes_and_preserves_commit_counts() {
        let (mut core, mut mem) = machine();
        core.set_context(ctx(4));
        run(&mut core, &mut mem, 20_000);
        let commits = core.stats().commits();
        let taken = core.take_context(20_000).expect("context present");
        assert_eq!(taken.commits(), commits, "context carries its counters");
        assert!(!core.is_busy());
        assert!(core.window_empty());
        // The context resumes on another core deterministically.
        let cfg = SystemConfig::default();
        let mut other = Core::new(CoreId(1), &cfg);
        other.set_context(taken);
        for now in 20_000..40_000 {
            other.tick(now, &mut mem);
        }
        assert!(other.stats().commits() > 0);
    }

    #[test]
    fn serializing_instructions_stall() {
        let (mut core, mut mem) = machine();
        // Zeus is SI-dense in its OS phases.
        core.set_context(ExecContext::new(OpStream::new(
            Benchmark::Zeus.profile(),
            VmId(0),
            VcpuId(0),
            11,
        )));
        run(&mut core, &mut mem, 300_000);
        assert!(core.stats().serializing > 0);
        assert!(core.stats().si_stall_cycles > 0);
    }

    #[test]
    fn sc_vs_tso_store_behaviour() {
        let mut cfg = SystemConfig::default();
        let mut run_with = |consistency| {
            cfg.consistency = consistency;
            let mut core = Core::new(CoreId(0), &cfg);
            let mut mem = MemorySystem::new(&cfg);
            core.set_context(ctx(8));
            for now in 0..150_000 {
                core.tick(now, &mut mem);
            }
            core.stats().commits()
        };
        let sc = run_with(Consistency::Sc);
        let tso = run_with(Consistency::Tso);
        assert!(tso >= sc, "TSO must not be slower than SC: {tso} vs {sc}");
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_context_is_rejected() {
        let (mut core, _mem) = machine();
        core.set_context(ctx(1));
        core.set_context(ctx(2));
    }

    #[test]
    fn store_filter_delay_slows_commits() {
        use crate::filter::StoreFilter;
        use mmm_types::LineAddr;

        struct SlowFilter;
        impl StoreFilter for SlowFilter {
            fn check(
                &mut self,
                _core: CoreId,
                _line: LineAddr,
                now: Cycle,
                _mem: &mut MemorySystem,
            ) -> Cycle {
                now + 25
            }
        }

        let (mut plain, mut mem_a) = machine();
        plain.set_context(ctx(6));
        run(&mut plain, &mut mem_a, 100_000);

        let (mut filtered, mut mem_b) = machine();
        filtered.set_context(ctx(6));
        filtered.set_store_filter(crate::filter::Filter::Dyn(Box::new(SlowFilter)));
        run(&mut filtered, &mut mem_b, 100_000);

        assert!(
            filtered.stats().commits() < plain.stats().commits(),
            "a 25-cycle store filter must cost throughput: {} !< {}",
            filtered.stats().commits(),
            plain.stats().commits()
        );
        assert!(filtered.stats().stores > 0, "stores were exercised");
    }

    #[test]
    fn unprotected_commit_accounting_follows_the_gate() {
        let (mut core, mut mem) = machine();
        core.set_context(ctx(7));
        run(&mut core, &mut mem, 30_000);
        // No gate: everything unprotected.
        assert_eq!(core.stats().commits_unprotected, core.stats().commits());
        // Install a permissive gate: subsequent commits are covered.
        // (Squash first: in-flight ops were never published to the
        // new gate and could not be released by it.)
        core.squash(30_000);
        let before = core.stats().commits();
        core.set_gate(Some(Box::new(FixedDelayGate::default())));
        for now in 30_000..60_000 {
            core.tick(now, &mut mem);
        }
        let covered = core.stats().commits() - before;
        assert!(covered > 0);
        assert_eq!(
            core.stats().commits_unprotected,
            before,
            "gated commits must not count as unprotected"
        );
    }

    #[test]
    fn os_cycles_track_privilege_time() {
        let (mut core, mut mem) = machine();
        // Zeus spends most cycles in OS phases.
        core.set_context(ExecContext::new(OpStream::new(
            Benchmark::Zeus.profile(),
            VmId(0),
            VcpuId(0),
            13,
        )));
        run(&mut core, &mut mem, 400_000);
        let s = core.stats();
        assert!(s.os_cycles > 0, "Zeus spends time in the OS");
        assert!(s.os_cycles <= s.active_cycles);
        let os_frac = s.os_cycles as f64 / s.active_cycles as f64;
        assert!(os_frac > 0.3, "Zeus is OS-dominated in time: {os_frac:.2}");
    }
}
