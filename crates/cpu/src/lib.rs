//! Out-of-order core timing model.
//!
//! Each core matches the paper's target (§4.1): 8-stage pipeline
//! (9 with the Reunion Check stage), 2-wide, a 128-entry instruction
//! window, a 32-load + 32-store LSQ, sequential consistency (stores
//! hold their window entry until the write-through completes in the
//! L2), serializing-instruction drain semantics, and a hardware-filled
//! TLB.
//!
//! The core is deliberately ignorant of redundancy: whether it runs
//! coherently (vocal / performance mode) or incoherently (mute), and
//! whether commits must pass Reunion's fingerprint check, is injected
//! by the `mmm-reunion` and `mmm-core` crates through
//! [`gate::CommitGate`] and [`core::Core::set_coherent`]. This keeps
//! the DMR machinery in one place and lets the same core model serve
//! every configuration in the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod context;
pub mod core;
pub mod filter;
pub mod gate;
pub mod pab;
pub mod phase;
pub mod stats;
pub mod tlb;

pub use channel::{PairChannel, PairStats, Side};
pub use context::ExecContext;
pub use core::{Boundary, Core};
pub use filter::{Filter, PabPort, StoreFilter};
pub use gate::{CommitGate, Gate, PairGate};
pub use pab::{Pab, PabStats};
pub use phase::PhaseTracker;
pub use stats::CoreStats;
pub use tlb::Tlb;
