//! The fingerprint exchange channel between the two cores of a pair.
//!
//! Each side publishes, in dispatch order, the execution-completion
//! time of every instruction plus — for loads — the `(line, version)`
//! observed. The channel releases an instruction for commit once both
//! sides have published it and the fingerprint latency has elapsed,
//! mirroring the Check stage: `release(seq) = max(vocal progress,
//! mute progress through seq) + fingerprint latency + Check depth`.
//!
//! Version mismatches (input incoherence, or an injected fault) raise
//! a *recovery*: both sides stall for the recovery penalty plus a
//! sync-request round trip, and the mute's offending line is queued
//! for healing (invalidate + refetch).

use std::cell::Cell;
use std::rc::Rc;

use mmm_mem::VersionToken;
use mmm_types::config::ReunionConfig;
use mmm_types::stats::Log2Histogram;
use mmm_types::{Cycle, LineAddr};

/// Which half of the pair a core is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The master: fully coherent, architecturally visible.
    Vocal,
    /// The slave: incoherent private hierarchy, never exposes state.
    Mute,
}

impl Side {
    fn idx(self) -> usize {
        match self {
            Side::Vocal => 0,
            Side::Mute => 1,
        }
    }
}

/// Counters accumulated by one pair channel.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Instructions compared (both sides published).
    pub ops_compared: u64,
    /// Fingerprint mismatches from stale mute data.
    pub input_incoherence: u64,
    /// Fingerprint mismatches from injected faults.
    pub faults_detected: u64,
    /// Total recovery stall cycles charged.
    pub recovery_cycles: u64,
    /// Comparison records resident in the channel at each successful
    /// commit-gate release walk (exchange-buffer occupancy).
    pub occupancy: Log2Histogram,
    /// Instructions released per successful commit-gate walk
    /// (commit-burst size).
    pub commit_burst: Log2Histogram,
}

/// One instruction's comparison record, kept to exactly one cache
/// line: "has side i published this seq" is not stored here — it is
/// equivalent to `published[i] >= seq` because sides publish in strict
/// order (and squash rolls the counters and the records back
/// together), which also pins the compare to the exact publish that
/// completes the pair, so no `compared` flag is needed either.
#[derive(Clone, Copy, Debug, Default)]
struct OpRecord {
    /// Running per-side maximum of exec_done through this seq.
    prefix_done: [Cycle; 2],
    obs: [Option<(LineAddr, VersionToken)>; 2],
}

/// Initial record-ring capacity (power of two): the prune window
/// (1024) plus an instruction window of headroom, so the steady state
/// never grows.
const REC_RING_CAP: usize = 2048;

/// The exchange channel shared by the two gates of a DMR pair
/// (`mmm-reunion`'s `DmrPair`).
#[derive(Debug)]
pub struct PairChannel {
    cfg: ReunionConfig,
    base_seq: u64,
    /// Record ring: seq `q`'s slot is `records[q & rec_mask]`, holding
    /// the live span `[base_seq, base_seq + live)`. Slots are never
    /// cleared — every field of a record is written by the publishes
    /// that precede any read of it, so stale contents are unreachable.
    records: Vec<OpRecord>,
    rec_mask: u64,
    /// Number of live records (what `records.len()` was when this was
    /// a `VecDeque`); feeds the occupancy histogram.
    live: u64,
    /// Highest contiguous published seq per side (`None` until first).
    published: [Option<u64>; 2],
    /// Running prefix max of exec completion per side.
    prefix: [Cycle; 2],
    /// All commits must wait at least until this cycle (recovery).
    recovery_floor: Cycle,
    /// Pending heal requests for the mute core's stale lines.
    heals: Vec<LineAddr>,
    /// Mismatches detected since the last drain: `(detect cycle,
    /// cause)` with cause `"input_incoherence"` or `"fault"`.
    mismatches: Vec<(Cycle, &'static str)>,
    /// Inject a fault into the next compared instruction.
    pending_fault: bool,
    /// Raised whenever a heal or mismatch is queued; shared with the
    /// pair's per-cycle service hook so it can skip the drain (and the
    /// channel borrow) on the vast majority of cycles, where nothing
    /// is pending.
    service_dirty: Rc<Cell<bool>>,
    stats: PairStats,
}

impl PairChannel {
    /// Creates a channel. `base_seq` is the stream position at which
    /// the pair was coupled.
    pub fn new(cfg: ReunionConfig, base_seq: u64) -> Self {
        Self {
            cfg,
            base_seq,
            records: vec![OpRecord::default(); REC_RING_CAP],
            rec_mask: REC_RING_CAP as u64 - 1,
            live: 0,
            published: [None; 2],
            prefix: [0; 2],
            recovery_floor: 0,
            heals: Vec::new(),
            mismatches: Vec::new(),
            pending_fault: false,
            service_dirty: Rc::new(Cell::new(false)),
            stats: PairStats::default(),
        }
    }

    /// Channel counters.
    pub fn stats(&self) -> &PairStats {
        &self.stats
    }

    /// Resets counters (after warm-up) without touching exchange
    /// state.
    pub fn reset_stats(&mut self) {
        self.stats = PairStats::default();
    }

    /// Arms a transient fault: the next instruction compared will
    /// mismatch and be recovered (used by the fault injector). Returns
    /// whether this call newly armed the fault (`false` when one was
    /// already pending — the two injections merge into one detection).
    pub fn inject_fault(&mut self) -> bool {
        let newly_armed = !self.pending_fault;
        self.pending_fault = true;
        newly_armed
    }

    /// Handle on the flag raised whenever this channel queues work
    /// for the per-cycle service drain.
    pub fn service_flag(&self) -> Rc<Cell<bool>> {
        Rc::clone(&self.service_dirty)
    }

    /// Takes the pending mute-heal requests.
    pub fn take_heals(&mut self) -> Vec<LineAddr> {
        std::mem::take(&mut self.heals)
    }

    /// Takes pending heals and mismatches in one call — the per-cycle
    /// service hook's single-borrow drain.
    #[allow(clippy::type_complexity)]
    pub fn drain_service(&mut self) -> (Vec<LineAddr>, Vec<(Cycle, &'static str)>) {
        (
            std::mem::take(&mut self.heals),
            std::mem::take(&mut self.mismatches),
        )
    }

    /// Minimum cycles between a commit-gate poll that found the
    /// partner's fingerprint missing and the earliest possible
    /// release: the partner publishes at the earliest on the poll
    /// cycle itself with execution completing at least one cycle
    /// later, and the release adds the fingerprint exchange plus the
    /// Check depth on top. Lets the gate skip re-polling without
    /// changing any commit cycle.
    pub fn none_poll_delay(&self) -> u32 {
        1 + self.cfg.fingerprint_latency + self.cfg.check_stages
    }

    /// Takes the mismatches detected since the last drain, as
    /// `(detect cycle, cause)` pairs. Drained once per simulated cycle
    /// by the pair's service hook (which feeds the trace layer).
    pub fn take_mismatches(&mut self) -> Vec<(Cycle, &'static str)> {
        std::mem::take(&mut self.mismatches)
    }

    fn rec_index(&self, seq: u64) -> usize {
        (seq & self.rec_mask) as usize
    }

    /// Doubles the ring, re-placing the live span at its new masked
    /// positions. Only reached if commits stall for longer than the
    /// prune window while dispatch keeps publishing.
    #[cold]
    fn grow(&mut self) {
        let new_cap = self.records.len() * 2;
        let new_mask = new_cap as u64 - 1;
        let mut new_ring = vec![OpRecord::default(); new_cap];
        for q in self.base_seq..self.base_seq + self.live {
            new_ring[(q & new_mask) as usize] = self.records[(q & self.rec_mask) as usize];
        }
        self.records = new_ring;
        self.rec_mask = new_mask;
    }

    /// Publishes one dispatched instruction from `side`.
    ///
    /// # Panics
    ///
    /// Panics if publishes arrive out of order (cores dispatch in
    /// order, so this indicates a simulator bug) or refer to a seq
    /// before the coupling point.
    pub fn publish(
        &mut self,
        side: Side,
        seq: u64,
        exec_done: Cycle,
        obs: Option<(LineAddr, VersionToken)>,
    ) {
        let i = side.idx();
        assert!(seq >= self.base_seq, "publish before coupling point");
        if let Some(last) = self.published[i] {
            assert_eq!(seq, last + 1, "side must publish in dispatch order");
        } else {
            assert_eq!(seq, self.base_seq, "first publish must be the base");
        }
        self.published[i] = Some(seq);
        let rel = seq - self.base_seq;
        if rel >= self.live {
            self.live = rel + 1;
            while self.live > self.records.len() as u64 {
                self.grow();
            }
        }
        let idx = self.rec_index(seq);
        self.prefix[i] = self.prefix[i].max(exec_done);
        let rec = &mut self.records[idx];
        rec.prefix_done[i] = self.prefix[i];
        rec.obs[i] = obs;
        // This publish completes the pair iff the partner is already
        // at or past `seq` — the one moment both fingerprints exist.
        if self.published[i ^ 1] >= Some(seq) {
            self.compare(idx);
        }
    }

    /// Compares a fully published instruction, raising recovery on
    /// mismatch.
    fn compare(&mut self, idx: usize) {
        let rec = &self.records[idx];
        self.stats.ops_compared += 1;
        let vocal_obs = rec.obs[Side::Vocal.idx()];
        let mute_obs = rec.obs[Side::Mute.idx()];
        let fault = std::mem::take(&mut self.pending_fault);
        let incoherent = match (vocal_obs, mute_obs) {
            (Some((vl, vv)), Some((ml, mv))) => {
                debug_assert_eq!(vl, ml, "redundant streams access the same line");
                vv != mv
            }
            (None, None) => false,
            _ => unreachable!("redundant streams have identical op shapes"),
        };
        if !fault && !incoherent {
            return;
        }
        self.service_dirty.set(true);
        // Detection happens when the later side's fingerprint arrives.
        let detect =
            rec.prefix_done[0].max(rec.prefix_done[1]) + self.cfg.fingerprint_latency as Cycle;
        let stall = (self.cfg.recovery_penalty + self.cfg.sync_latency) as Cycle;
        self.recovery_floor = self.recovery_floor.max(detect + stall);
        self.stats.recovery_cycles += stall;
        if incoherent {
            self.stats.input_incoherence += 1;
            self.mismatches.push((detect, "input_incoherence"));
            if let Some((line, _)) = mute_obs {
                self.heals.push(line);
            }
        }
        if fault {
            self.stats.faults_detected += 1;
            self.mismatches.push((detect, "fault"));
        }
    }

    /// Earliest commit cycle for `seq` as seen from `side`, or `None`
    /// if the partner has not yet published through `seq`.
    ///
    /// A fingerprint summarizes `fingerprint_interval` instructions,
    /// so an op is released only when its whole block has executed on
    /// both sides — up to the natural flush point: if the cores have
    /// stalled dispatch mid-block (serializing drain, trap), the
    /// fingerprint covering what has been published so far is
    /// exchanged instead, so progress never deadlocks.
    pub fn commit_time(&self, seq: u64, _now: Cycle) -> Option<Cycle> {
        let (Some(p0), Some(p1)) = (self.published[0], self.published[1]) else {
            return None;
        };
        if p0 < seq || p1 < seq || seq < self.base_seq {
            return None;
        }
        let interval = self.cfg.fingerprint_interval.max(1) as u64;
        let block_end = (seq / interval + 1) * interval - 1;
        let upto = p0.min(p1).min(block_end);
        let rec = &self.records[self.rec_index(upto)];
        let release = rec.prefix_done[0].max(rec.prefix_done[1])
            + (self.cfg.fingerprint_latency + self.cfg.check_stages) as Cycle;
        Some(release.max(self.recovery_floor))
    }

    /// Resolves a commit poll in one walk. `Ok(upto)` is the largest
    /// seq in `[seq, seq + cap]` released at `now`, walking
    /// fingerprint-block by fingerprint-block (every seq in one block
    /// shares its release time — see [`PairChannel::commit_time`]);
    /// the result agrees with `commit_time(s, now) <= now` for every
    /// `s` in the span. When `seq` itself is not released, `Err`
    /// carries exactly `commit_time(seq, now)` — the future release
    /// bound, or `None` while the partner has not published through
    /// `seq` — so the gate learns the released span *and* the re-poll
    /// bound from a single channel borrow.
    pub fn released_or_next(
        &mut self,
        seq: u64,
        now: Cycle,
        cap: u64,
    ) -> Result<u64, Option<Cycle>> {
        let (Some(p0), Some(p1)) = (self.published[0], self.published[1]) else {
            return Err(None);
        };
        if p0 < seq || p1 < seq || seq < self.base_seq {
            return Err(None);
        }
        let interval = self.cfg.fingerprint_interval.max(1) as u64;
        let lat = (self.cfg.fingerprint_latency + self.cfg.check_stages) as Cycle;
        let p = p0.min(p1);
        let mut granted = None;
        let mut s = seq;
        while s <= p && s - seq <= cap {
            let block_end = (s / interval + 1) * interval - 1;
            let upto = p.min(block_end);
            let rec = &self.records[self.rec_index(upto)];
            let release =
                (rec.prefix_done[0].max(rec.prefix_done[1]) + lat).max(self.recovery_floor);
            if release > now {
                if granted.is_none() {
                    // First block not released: `release` is exactly
                    // what `commit_time(seq, now)` would report.
                    return Err(Some(release));
                }
                break;
            }
            granted = Some(upto);
            s = upto + 1;
        }
        // The loop's first iteration always runs (`seq <= p` was just
        // checked) and either returned early or granted.
        let upto = granted.expect("first fingerprint block was walked");
        self.stats.occupancy.record(self.live);
        self.stats.commit_burst.record(upto - seq + 1);
        Ok(upto)
    }

    /// Extra fetch stall after a serializing instruction commits: the
    /// SI must be validated before younger instructions may enter the
    /// pipeline (§5.1) — a fingerprint round trip.
    pub fn si_resume_delay(&self) -> u32 {
        2 * self.cfg.fingerprint_latency + self.cfg.check_stages
    }

    /// Drops comparison records older than `seq` minus a full window —
    /// they can no longer be queried. Called opportunistically by the
    /// gates.
    pub fn prune_below(&mut self, seq: u64) {
        let keep_from = seq.saturating_sub(1024).max(self.base_seq);
        let advance = (keep_from - self.base_seq).min(self.live);
        self.base_seq += advance;
        self.live -= advance;
    }

    /// Handles a pipeline squash from one side: both sides of a pair
    /// are always torn down together in this simulator, so the channel
    /// simply forgets everything past `from_seq`.
    pub fn on_squash(&mut self, from_seq: u64) {
        let keep = from_seq.saturating_sub(self.base_seq);
        self.live = self.live.min(keep);
        for i in 0..2 {
            if let Some(p) = self.published[i] {
                if p >= from_seq {
                    self.published[i] = if from_seq == self.base_seq {
                        None
                    } else {
                        Some(from_seq - 1)
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> PairChannel {
        PairChannel::new(ReunionConfig::default(), 0)
    }

    #[test]
    fn commit_waits_for_both_sides() {
        let mut ch = channel();
        ch.publish(Side::Vocal, 0, 100, None);
        assert_eq!(ch.commit_time(0, 105), None, "mute not published yet");
        ch.publish(Side::Mute, 0, 130, None);
        // Release = max(100,130) + 10 (fp) + 1 (check stage).
        assert_eq!(ch.commit_time(0, 140), Some(141));
    }

    #[test]
    fn release_uses_prefix_progress_not_single_op() {
        let mut ch = channel();
        // Op 0 slow, op 1 fast: op 1 cannot release before op 0's
        // execution is summarized (in-order Check).
        ch.publish(Side::Vocal, 0, 500, None);
        ch.publish(Side::Vocal, 1, 50, None);
        ch.publish(Side::Mute, 0, 40, None);
        ch.publish(Side::Mute, 1, 45, None);
        assert_eq!(ch.commit_time(1, 600), Some(511));
    }

    #[test]
    fn matching_loads_do_not_recover() {
        let mut ch = channel();
        ch.publish(Side::Vocal, 0, 10, Some((LineAddr(7), 0xAA)));
        ch.publish(Side::Mute, 0, 12, Some((LineAddr(7), 0xAA)));
        assert_eq!(ch.stats().input_incoherence, 0);
        assert!(ch.take_heals().is_empty());
        assert_eq!(ch.commit_time(0, 100), Some(12 + 11));
    }

    #[test]
    fn stale_mute_load_triggers_recovery_and_heal() {
        let mut ch = channel();
        ch.publish(Side::Vocal, 0, 10, Some((LineAddr(7), 0xAA)));
        ch.publish(Side::Mute, 0, 12, Some((LineAddr(7), 0xBB)));
        assert_eq!(ch.stats().input_incoherence, 1);
        assert_eq!(ch.take_heals(), vec![LineAddr(7)]);
        // Release is pushed past detection + recovery + sync.
        let cfg = ReunionConfig::default();
        let detect = 12 + cfg.fingerprint_latency as Cycle;
        let floor = detect + (cfg.recovery_penalty + cfg.sync_latency) as Cycle;
        assert_eq!(ch.commit_time(0, 1000), Some(floor));
        assert!(ch.stats().recovery_cycles > 0);
    }

    #[test]
    fn recovery_floor_applies_to_younger_ops() {
        let mut ch = channel();
        ch.publish(Side::Vocal, 0, 10, Some((LineAddr(7), 1)));
        ch.publish(Side::Mute, 0, 12, Some((LineAddr(7), 2)));
        ch.publish(Side::Vocal, 1, 14, None);
        ch.publish(Side::Mute, 1, 15, None);
        let t0 = ch.commit_time(0, 1000).unwrap();
        let t1 = ch.commit_time(1, 1000).unwrap();
        assert!(t1 >= t0, "recovery stalls younger instructions too");
    }

    #[test]
    fn injected_fault_is_detected_once() {
        let mut ch = channel();
        ch.inject_fault();
        ch.publish(Side::Vocal, 0, 10, None);
        ch.publish(Side::Mute, 0, 11, None);
        ch.publish(Side::Vocal, 1, 12, None);
        ch.publish(Side::Mute, 1, 13, None);
        assert_eq!(ch.stats().faults_detected, 1);
        assert_eq!(ch.stats().input_incoherence, 0);
    }

    #[test]
    fn si_resume_is_a_round_trip() {
        let ch = channel();
        assert_eq!(ch.si_resume_delay(), 21); // 2*10 + 1
    }

    #[test]
    fn pruning_keeps_queryable_window() {
        let mut ch = channel();
        for s in 0..3000u64 {
            ch.publish(Side::Vocal, s, s, None);
            ch.publish(Side::Mute, s, s + 1, None);
        }
        ch.prune_below(3000);
        assert!(ch.commit_time(2999, 10_000).is_some());
        assert!(ch.live <= 1100);
        // 3000 unpruned publishes forced the ring to double (and the
        // live span to survive the re-placement).
        assert!(ch.records.len() > REC_RING_CAP);
    }

    #[test]
    #[should_panic(expected = "dispatch order")]
    fn out_of_order_publish_is_a_bug() {
        let mut ch = channel();
        ch.publish(Side::Vocal, 0, 1, None);
        ch.publish(Side::Vocal, 2, 2, None);
    }

    #[test]
    fn squash_forgets_future() {
        let mut ch = channel();
        ch.publish(Side::Vocal, 0, 1, None);
        ch.publish(Side::Vocal, 1, 2, None);
        ch.on_squash(1);
        // Republishing seq 1 is now legal.
        ch.publish(Side::Vocal, 1, 5, None);
        ch.publish(Side::Mute, 0, 3, None);
        ch.publish(Side::Mute, 1, 4, None);
        assert!(ch.commit_time(1, 100).is_some());
    }

    #[test]
    fn base_seq_offsets_are_respected() {
        let mut ch = PairChannel::new(ReunionConfig::default(), 500);
        ch.publish(Side::Vocal, 500, 10, None);
        ch.publish(Side::Mute, 500, 11, None);
        assert!(ch.commit_time(500, 100).is_some());
    }
}
