//! User/OS phase-duration tracking (Table 2 of the paper).
//!
//! When enabled on a core, records the distribution of cycles spent in
//! each user phase (between returning to user code and the next OS
//! entry) and each OS phase — the quantity Table 2 reports for the
//! baseline system ("the average number of cycles before switching
//! from a user application to the OS, and from the OS back").

use mmm_types::stats::Log2Histogram;
use mmm_types::Cycle;

/// Accumulates user- and OS-phase durations observed at commit.
#[derive(Clone, Debug, Default)]
pub struct PhaseTracker {
    /// Durations of completed user phases, cycles.
    pub user: Log2Histogram,
    /// Durations of completed OS phases, cycles.
    pub os: Log2Histogram,
    phase_start: Option<Cycle>,
}

impl PhaseTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an OS entry committing at `now`: closes a user phase.
    pub fn on_enter_os(&mut self, now: Cycle) {
        if let Some(start) = self.phase_start {
            self.user.record(now.saturating_sub(start));
        }
        self.phase_start = Some(now);
    }

    /// Records a return to user code committing at `now`: closes an
    /// OS phase.
    pub fn on_exit_os(&mut self, now: Cycle) {
        if let Some(start) = self.phase_start {
            self.os.record(now.saturating_sub(start));
        }
        self.phase_start = Some(now);
    }

    /// Mean user-phase duration in cycles.
    pub fn mean_user_cycles(&self) -> f64 {
        self.user.mean()
    }

    /// Mean OS-phase duration in cycles.
    pub fn mean_os_cycles(&self) -> f64 {
        self.os.mean()
    }

    /// Merges another tracker's distributions.
    pub fn merge(&mut self, other: &PhaseTracker) {
        self.user.merge(&other.user);
        self.os.merge(&other.os);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternating_phases_are_measured() {
        let mut t = PhaseTracker::new();
        t.on_exit_os(0); // start of user phase at 0
        t.on_enter_os(1000); // user phase: 1000
        t.on_exit_os(1400); // os phase: 400
        t.on_enter_os(2400); // user: 1000
        assert_eq!(t.user.count(), 2);
        assert_eq!(t.os.count(), 1);
        assert!((t.mean_user_cycles() - 1000.0).abs() < 1e-9);
        assert!((t.mean_os_cycles() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn first_event_opens_without_recording() {
        let mut t = PhaseTracker::new();
        t.on_enter_os(500);
        assert_eq!(t.user.count(), 0);
        assert_eq!(t.os.count(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = PhaseTracker::new();
        a.on_exit_os(0);
        a.on_enter_os(100);
        let mut b = PhaseTracker::new();
        b.on_exit_os(0);
        b.on_enter_os(300);
        a.merge(&b);
        assert_eq!(a.user.count(), 2);
        assert!((a.mean_user_cycles() - 200.0).abs() < 1e-9);
    }
}
