//! A hardware-filled TLB.
//!
//! The paper models a hardware-filled TLB "in order to not overstate
//! the penalty of DMR" (§4.1) — software TLB fills on SPARC would
//! otherwise inflate the count of serializing instructions. A miss
//! therefore costs a fixed fill latency rather than a trap.
//!
//! The TLB is also a *fault site*: a bit flip in the TLB array or its
//! permission-check logic is the paper's canonical example of how a
//! performance-mode core can emit a wild store (§3.4.1) — the event
//! the Protection Assistance Buffer exists to catch. The fault hook
//! lives in `mmm-core`'s fault injector; this module only provides the
//! timing and the demap interface.

use mmm_types::{Cycle, PageAddr};

#[derive(Clone, Copy, Debug)]
struct TlbSlot {
    page: PageAddr,
    lru: u64,
}

/// Fully associative, LRU-replaced TLB with hardware fill.
#[derive(Clone, Debug)]
pub struct Tlb {
    slots: Vec<Option<TlbSlot>>,
    fill_latency: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots and the given fill latency.
    pub fn new(entries: u32, fill_latency: u32) -> Self {
        assert!(entries > 0, "TLB must have entries");
        Self {
            slots: vec![None; entries as usize],
            fill_latency,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates an access to `page`; returns the added latency
    /// (0 on a hit, the fill latency on a miss).
    pub fn access(&mut self, page: PageAddr, _now: Cycle) -> u32 {
        self.stamp += 1;
        if let Some(slot) = self.slots.iter_mut().flatten().find(|s| s.page == page) {
            slot.lru = self.stamp;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        let stamp = self.stamp;
        if let Some(empty) = self.slots.iter_mut().find(|s| s.is_none()) {
            *empty = Some(TlbSlot { page, lru: stamp });
        } else {
            let victim = self
                .slots
                .iter_mut()
                .min_by_key(|s| s.map(|x| x.lru).unwrap_or(0))
                .expect("nonzero entries");
            *victim = Some(TlbSlot { page, lru: stamp });
        }
        self.fill_latency
    }

    /// Removes a translation (TLB demap). The PAB mirrors this event
    /// to stay coherent (paper §3.4.1).
    pub fn demap(&mut self, page: PageAddr) -> bool {
        for slot in &mut self.slots {
            if slot.map(|s| s.page) == Some(page) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Whether a translation is resident (diagnostics).
    pub fn contains(&self, page: PageAddr) -> bool {
        self.slots.iter().flatten().any(|s| s.page == page)
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Empties the TLB (context/VM switch).
    pub fn flush(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4, 30);
        assert_eq!(t.access(PageAddr(1), 0), 30);
        assert_eq!(t.access(PageAddr(1), 1), 0);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 30);
        t.access(PageAddr(1), 0);
        t.access(PageAddr(2), 1);
        t.access(PageAddr(1), 2); // 2 is now LRU
        t.access(PageAddr(3), 3); // evicts 2
        assert!(t.contains(PageAddr(1)));
        assert!(!t.contains(PageAddr(2)));
        assert!(t.contains(PageAddr(3)));
    }

    #[test]
    fn demap_removes() {
        let mut t = Tlb::new(4, 30);
        t.access(PageAddr(5), 0);
        assert!(t.demap(PageAddr(5)));
        assert!(!t.demap(PageAddr(5)));
        assert_eq!(t.access(PageAddr(5), 1), 30, "refill after demap");
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(4, 30);
        t.access(PageAddr(1), 0);
        t.access(PageAddr(2), 0);
        t.flush();
        assert!(!t.contains(PageAddr(1)));
        assert!(!t.contains(PageAddr(2)));
    }
}
