//! A hardware-filled TLB.
//!
//! The paper models a hardware-filled TLB "in order to not overstate
//! the penalty of DMR" (§4.1) — software TLB fills on SPARC would
//! otherwise inflate the count of serializing instructions. A miss
//! therefore costs a fixed fill latency rather than a trap.
//!
//! The TLB is also a *fault site*: a bit flip in the TLB array or its
//! permission-check logic is the paper's canonical example of how a
//! performance-mode core can emit a wild store (§3.4.1) — the event
//! the Protection Assistance Buffer exists to catch. The fault hook
//! lives in `mmm-core`'s fault injector; this module only provides the
//! timing and the demap interface.
//!
//! The TLB sits on the dispatch path of every load and store, so the
//! hit path is indexed by a hash map instead of scanning the slot
//! array; the slot array remains the source of truth for replacement
//! (first-empty fill, then strict LRU with first-minimal tie-break),
//! keeping hit/miss and eviction sequences identical to the naive
//! fully-associative scan.

use mmm_types::fastmap::FastMap;
use mmm_types::{Cycle, PageAddr};

#[derive(Clone, Copy, Debug)]
struct TlbSlot {
    page: PageAddr,
    lru: u64,
}

/// Fully associative, LRU-replaced TLB with hardware fill.
#[derive(Clone, Debug)]
pub struct Tlb {
    slots: Vec<Option<TlbSlot>>,
    /// Residency index: page -> slot position (hit-path fast lookup).
    index: FastMap<PageAddr, u32>,
    /// Most-recently-hit translation — consecutive accesses to the
    /// same page (the common case under power-law reuse) skip the
    /// index probe. Pure cache: hit/miss counts and LRU stamps are
    /// identical with or without it.
    mru: Option<(PageAddr, u32)>,
    /// Stamp of the latest MRU hit, not yet written into the slot
    /// array: a run of consecutive MRU hits only needs its *last*
    /// stamp recorded (LRU compares maxima), so the write is deferred
    /// until the MRU changes or a replacement decision could read it
    /// ([`Tlb::sync_mru_stamp`]).
    mru_stamp: u64,
    /// Resident translations. The slot array is large (512) and, once
    /// warm, permanently full: the count lets the miss path skip the
    /// first-empty scan and go straight to LRU eviction.
    occupied: u32,
    fill_latency: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `entries` slots and the given fill latency.
    pub fn new(entries: u32, fill_latency: u32) -> Self {
        assert!(entries > 0, "TLB must have entries");
        Self {
            slots: vec![None; entries as usize],
            index: FastMap::default(),
            mru: None,
            mru_stamp: 0,
            occupied: 0,
            fill_latency,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates an access to `page`; returns the added latency
    /// (0 on a hit, the fill latency on a miss).
    ///
    /// The hit path (MRU match or index probe) is kept small enough to
    /// inline into the dispatch loop; the fill/eviction machinery lives
    /// in the out-of-line cold half.
    #[inline]
    pub fn access(&mut self, page: PageAddr, _now: Cycle) -> u32 {
        self.stamp += 1;
        if let Some((p, _)) = self.mru {
            if p == page {
                // Defer the slot-array write: only the run's last
                // stamp matters, and `mru_stamp` carries it.
                self.mru_stamp = self.stamp;
                self.hits += 1;
                return 0;
            }
        }
        self.sync_mru_stamp();
        if let Some(&pos) = self.index.get(&page) {
            let slot = self.slots[pos as usize]
                .as_mut()
                .expect("indexed slot is resident");
            slot.lru = self.stamp;
            self.hits += 1;
            self.mru = Some((page, pos));
            self.mru_stamp = self.stamp;
            return 0;
        }
        self.access_miss(page)
    }

    /// Writes the deferred MRU-run stamp into the slot array. Must run
    /// before the MRU changes and before anything reads `lru` fields
    /// (replacement in [`Tlb::access_miss`]); after it, every slot
    /// holds exactly the stamp of its last hit, as if no deferral
    /// existed.
    #[inline]
    fn sync_mru_stamp(&mut self) {
        if let Some((_, pos)) = self.mru {
            self.slots[pos as usize]
                .as_mut()
                .expect("cached slot is resident")
                .lru = self.mru_stamp;
        }
    }

    /// The miss half of [`Tlb::access`]: pick a slot (first-empty
    /// while filling, then strict LRU), install the translation, and
    /// charge the fill latency. The caller already synced the deferred
    /// MRU stamp (the miss path runs behind [`Tlb::sync_mru_stamp`]).
    #[cold]
    fn access_miss(&mut self, page: PageAddr) -> u32 {
        self.misses += 1;
        let stamp = self.stamp;
        let pos = if self.occupied < self.slots.len() as u32 {
            let pos = self
                .slots
                .iter()
                .position(|s| s.is_none())
                .expect("occupancy count says a slot is free");
            self.occupied += 1;
            pos
        } else {
            let pos = self
                .slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.map(|x| x.lru).unwrap_or(0))
                .map(|(i, _)| i)
                .expect("nonzero entries");
            let victim = self.slots[pos].expect("full TLB slot is resident");
            self.index.remove(&victim.page);
            pos
        };
        self.slots[pos] = Some(TlbSlot { page, lru: stamp });
        self.index.insert(page, pos as u32);
        self.mru = Some((page, pos as u32));
        self.mru_stamp = stamp;
        self.fill_latency
    }

    /// Removes a translation (TLB demap). The PAB mirrors this event
    /// to stay coherent (paper §3.4.1).
    pub fn demap(&mut self, page: PageAddr) -> bool {
        // The MRU cache is dropped below; bank its deferred stamp
        // first so the surviving slot keeps its true last-hit time.
        self.sync_mru_stamp();
        if let Some(pos) = self.index.remove(&page) {
            self.slots[pos as usize] = None;
            self.mru = None;
            self.occupied -= 1;
            return true;
        }
        false
    }

    /// Whether a translation is resident (diagnostics).
    pub fn contains(&self, page: PageAddr) -> bool {
        self.index.contains_key(&page)
    }

    /// Number of resident translations (diagnostics/forensics).
    pub fn occupancy(&self) -> u32 {
        self.occupied
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Empties the TLB (context/VM switch).
    pub fn flush(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.index.clear();
        self.mru = None;
        self.occupied = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4, 30);
        assert_eq!(t.access(PageAddr(1), 0), 30);
        assert_eq!(t.access(PageAddr(1), 1), 0);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 30);
        t.access(PageAddr(1), 0);
        t.access(PageAddr(2), 1);
        t.access(PageAddr(1), 2); // 2 is now LRU
        t.access(PageAddr(3), 3); // evicts 2
        assert!(t.contains(PageAddr(1)));
        assert!(!t.contains(PageAddr(2)));
        assert!(t.contains(PageAddr(3)));
    }

    #[test]
    fn demap_removes() {
        let mut t = Tlb::new(4, 30);
        t.access(PageAddr(5), 0);
        assert!(t.demap(PageAddr(5)));
        assert!(!t.demap(PageAddr(5)));
        assert_eq!(t.access(PageAddr(5), 1), 30, "refill after demap");
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(4, 30);
        t.access(PageAddr(1), 0);
        t.access(PageAddr(2), 0);
        t.flush();
        assert!(!t.contains(PageAddr(1)));
        assert!(!t.contains(PageAddr(2)));
    }
}
