//! The store filter: the core's view of the Protection Assistance
//! Buffer.
//!
//! A core running in performance mode must have every store
//! write-through re-validated outside the core before it may write the
//! L2 (paper §3.4.1). Each store consults the installed filter at
//! commit time and is delayed until the returned cycle (PAB serial
//! lookup, or a PAB miss fetching its PAT line through the cache
//! hierarchy). Reliable-mode cores have no filter ("when in reliable
//! mode, the PAB is not used").
//!
//! Permission *verdicts* are not routed through the filter: the
//! instruction streams of fault-free software only store to pages they
//! own, so in-pipeline stores always pass. Wild stores produced by
//! injected hardware faults are modelled in `mmm-core`'s fault
//! injector, which consults the PAB directly and raises the exception
//! the paper describes.

use std::cell::RefCell;
use std::rc::Rc;

use mmm_mem::MemorySystem;
use mmm_types::{CoreId, Cycle, LineAddr};
use mmm_workload::AddressLayout;

use crate::pab::Pab;

/// Interface between a core and an arbitrary store-permission
/// re-validation mechanism (unit tests, experiments).
pub trait StoreFilter {
    /// Called when a store is about to write through to the L2.
    /// Returns the cycle at which the write may proceed (equal to
    /// `now` when the check is free, later for serial lookups or PAB
    /// misses).
    fn check(&mut self, core: CoreId, line: LineAddr, now: Cycle, mem: &mut MemorySystem) -> Cycle;
}

/// A core's store filter, devirtualized for the store-commit hot path.
///
/// The PAB-backed filter is the only production implementation and is
/// a concrete variant (no virtual dispatch per store); arbitrary
/// [`StoreFilter`] implementations ride in the boxed variant.
pub enum Filter {
    /// No re-validation: reliable-mode and DMR cores.
    None,
    /// Performance mode: every store past this core's PAB.
    Pab(PabPort),
    /// Any custom [`StoreFilter`] implementation.
    Dyn(Box<dyn StoreFilter>),
}

impl Filter {
    /// Whether any filter is installed.
    pub fn is_some(&self) -> bool {
        !matches!(self, Filter::None)
    }

    /// Cycle at which a store to `line` may write the L2 (`now` when
    /// no filter is installed or the check is free).
    #[inline]
    pub fn check(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: Cycle,
        mem: &mut MemorySystem,
    ) -> Cycle {
        match self {
            Filter::None => now,
            Filter::Pab(p) => p.check(core, line, now, mem),
            Filter::Dyn(f) => f.check(core, line, now, mem),
        }
    }
}

/// A performance-mode core's port to its PAB: maps each stored-to
/// line to the PAT backing line covering its page and times the PAB
/// lookup. One shared-handle borrow per store.
pub struct PabPort {
    pab: Rc<RefCell<Pab>>,
    layout: AddressLayout,
}

impl PabPort {
    /// Connects a core to `pab`.
    pub fn new(pab: Rc<RefCell<Pab>>, layout: AddressLayout) -> Self {
        Self { pab, layout }
    }

    fn check(&mut self, core: CoreId, line: LineAddr, now: Cycle, mem: &mut MemorySystem) -> Cycle {
        let backing = self.layout.pat_line_for(line.page());
        self.pab.borrow_mut().filter_store(core, backing, mem, now)
    }
}
