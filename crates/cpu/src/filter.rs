//! The store filter: the core's view of the Protection Assistance
//! Buffer.
//!
//! A core running in performance mode must have every store
//! write-through re-validated outside the core before it may write the
//! L2 (paper §3.4.1). The core model stays agnostic of the mechanism:
//! if a filter is installed, each store consults it at commit time and
//! is delayed until the returned cycle (PAB serial lookup, or a PAB
//! miss fetching its PAT line through the cache hierarchy). `mmm-core`
//! provides the PAB-backed implementation; reliable-mode cores have no
//! filter ("when in reliable mode, the PAB is not used").
//!
//! Permission *verdicts* are not routed through this trait: the
//! instruction streams of fault-free software only store to pages they
//! own, so in-pipeline stores always pass. Wild stores produced by
//! injected hardware faults are modelled in `mmm-core`'s fault
//! injector, which consults the PAB directly and raises the exception
//! the paper describes.

use mmm_mem::MemorySystem;
use mmm_types::{CoreId, Cycle, LineAddr};

/// Interface between a core and its (possible) store-permission
/// re-validation hardware.
pub trait StoreFilter {
    /// Called when a store is about to write through to the L2.
    /// Returns the cycle at which the write may proceed (equal to
    /// `now` when the check is free, later for serial lookups or PAB
    /// misses).
    fn check(&mut self, core: CoreId, line: LineAddr, now: Cycle, mem: &mut MemorySystem) -> Cycle;
}
