//! Per-core event counters.

/// Counters accumulated by one core.
///
/// These drive the paper's §5.1 diagnostics: window-full cycles
/// (Reunion roughly doubles them), serializing-instruction fetch
/// stalls (15–46% of cycles under Reunion), and the per-thread IPC
/// numerators (`commits_user`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Cycles the core had a context installed.
    pub active_cycles: u64,
    /// Active cycles during which the installed stream was executing
    /// OS-level code (per-privilege time attribution for Table 2 and
    /// calibration).
    pub os_cycles: u64,
    /// User-level instructions committed.
    pub commits_user: u64,
    /// OS-level instructions committed.
    pub commits_os: u64,
    /// Instructions committed *without* DMR protection (no commit gate
    /// installed). `commits() - commits_unprotected` is the
    /// DMR-covered work — the machine's reliability-coverage metric.
    pub commits_unprotected: u64,
    /// Cycles dispatch was blocked because the window was full.
    pub window_full_cycles: u64,
    /// Cycles dispatch was blocked because the LSQ was full.
    pub lsq_full_cycles: u64,
    /// Cycles fetch/dispatch stalled on a serializing instruction
    /// (drain + post-commit validation).
    pub si_stall_cycles: u64,
    /// Cycles fetch stalled on an L1-I miss.
    pub fetch_stall_cycles: u64,
    /// Cycles dispatch stalled on a branch misprediction redirect.
    pub mispredict_stall_cycles: u64,
    /// Cycles the head op was execution-ready but held in Check
    /// waiting for the partner fingerprint.
    pub check_wait_cycles: u64,
    /// Dispatched loads.
    pub loads: u64,
    /// Dispatched stores.
    pub stores: u64,
    /// Dispatched serializing instructions.
    pub serializing: u64,
    /// Mispredicted branches dispatched.
    pub mispredicts: u64,
    /// Pipeline squashes requested from outside (mode switches).
    pub squashes: u64,
}

impl CoreStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total committed instructions.
    pub fn commits(&self) -> u64 {
        self.commits_user + self.commits_os
    }

    /// User IPC over this core's active cycles — the paper's
    /// per-thread performance metric (§5.1: "the number of User
    /// instructions committed divided by the total number of cycles").
    pub fn user_ipc(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.commits_user as f64 / self.active_cycles as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, o: &CoreStats) {
        self.active_cycles += o.active_cycles;
        self.os_cycles += o.os_cycles;
        self.commits_user += o.commits_user;
        self.commits_os += o.commits_os;
        self.commits_unprotected += o.commits_unprotected;
        self.window_full_cycles += o.window_full_cycles;
        self.lsq_full_cycles += o.lsq_full_cycles;
        self.si_stall_cycles += o.si_stall_cycles;
        self.fetch_stall_cycles += o.fetch_stall_cycles;
        self.mispredict_stall_cycles += o.mispredict_stall_cycles;
        self.check_wait_cycles += o.check_wait_cycles;
        self.loads += o.loads;
        self.stores += o.stores;
        self.serializing += o.serializing;
        self.mispredicts += o.mispredicts;
        self.squashes += o.squashes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_idle() {
        assert_eq!(CoreStats::new().user_ipc(), 0.0);
    }

    #[test]
    fn ipc_math() {
        let s = CoreStats {
            active_cycles: 1000,
            commits_user: 800,
            commits_os: 100,
            ..Default::default()
        };
        assert!((s.user_ipc() - 0.8).abs() < 1e-12);
        assert_eq!(s.commits(), 900);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CoreStats {
            commits_user: 5,
            si_stall_cycles: 2,
            ..Default::default()
        };
        let b = CoreStats {
            commits_user: 7,
            window_full_cycles: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.commits_user, 12);
        assert_eq!(a.si_stall_cycles, 2);
        assert_eq!(a.window_full_cycles, 3);
    }
}
