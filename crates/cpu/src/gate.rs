//! The commit gate: the core's view of Reunion's Check stage.
//!
//! When a core operates as half of a DMR pair, every instruction must
//! wait in the Check stage until its fingerprint block has been
//! exchanged with and validated against the partner core (paper
//! §3.2). The core model stays agnostic of the mechanism: it publishes
//! each dispatched op's execution-completion time and observed load
//! version, and later asks the gate when a given sequence number may
//! commit. `mmm-reunion` provides the real pair-coupled
//! implementation; performance-mode cores have no gate at all.

use std::cell::RefCell;
use std::rc::Rc;

use mmm_mem::VersionToken;
use mmm_types::{Cycle, LineAddr};

use crate::channel::{PairChannel, Side};

/// Interface between a core and its (possible) Check stage.
pub trait CommitGate {
    /// Reports a dispatched op: its sequence number, the cycle its
    /// execution completes, and — for loads — the `(line, version)` it
    /// observed, which is the input-incoherence-sensitive part of the
    /// fingerprint.
    fn on_dispatch(
        &mut self,
        seq: u64,
        exec_done: Cycle,
        load_obs: Option<(LineAddr, VersionToken)>,
    );

    /// Earliest cycle at which op `seq` may commit, or `None` if the
    /// partner's fingerprint for the containing block has not arrived
    /// yet (the op waits in Check).
    fn commit_time(&mut self, seq: u64, now: Cycle) -> Option<Cycle>;

    /// Extra fetch-stall cycles after a serializing instruction
    /// commits: under Reunion the SI must be validated before younger
    /// instructions may enter the pipeline (§5.1).
    fn si_resume_delay(&self) -> u32;

    /// Informs the gate that the core squashed all ops with sequence
    /// numbers ≥ `from_seq` (pipeline flush at a mode switch); their
    /// fingerprints will be re-published.
    fn on_squash(&mut self, from_seq: u64);
}

/// A core's commit gate, devirtualized for the commit hot path.
///
/// The pair-coupled Reunion gate is by far the common case and is a
/// concrete variant (no virtual dispatch per commit poll); arbitrary
/// [`CommitGate`] implementations (unit tests, experiments) ride in
/// the boxed variant.
#[allow(clippy::large_enum_variant)] // one Gate per core; the Pair variant IS the fast path
pub enum Gate {
    /// One side of a Reunion pair, backed by the shared channel.
    Pair(PairGate),
    /// Any custom [`CommitGate`] implementation.
    Dyn(Box<dyn CommitGate>),
}

impl Gate {
    /// Reports a dispatched op to the Check stage.
    pub fn on_dispatch(
        &mut self,
        seq: u64,
        exec_done: Cycle,
        load_obs: Option<(LineAddr, VersionToken)>,
    ) {
        match self {
            Gate::Pair(g) => {
                // Buffered: nothing reads the channel between a core's
                // dispatches and the end of its tick, so one borrow per
                // tick ([`Gate::flush`]) publishes the whole burst.
                if g.pending_len as usize == g.pending.len() {
                    g.flush_pending();
                }
                g.pending[g.pending_len as usize] = (seq, exec_done, load_obs);
                g.pending_len += 1;
            }
            Gate::Dyn(g) => g.on_dispatch(seq, exec_done, load_obs),
        }
    }

    /// Publishes any buffered dispatches. The owning core calls this
    /// at the end of every tick's dispatch stage, before any other
    /// agent can observe the channel.
    pub fn flush(&mut self) {
        if let Gate::Pair(g) = self {
            if g.pending_len > 0 {
                g.flush_pending();
            }
        }
    }

    /// Whether op `seq` may commit at `now`.
    pub fn released(&mut self, seq: u64, now: Cycle) -> bool {
        match self {
            Gate::Pair(g) => g.released(seq, now),
            Gate::Dyn(g) => matches!(g.commit_time(seq, now), Some(t) if t <= now),
        }
    }

    /// Lower bound on the next cycle at which a currently-held op
    /// could be released, from the [`PairGate`] hold cache. Zero when
    /// no bound is cached (a `Dyn` gate must be polled every cycle —
    /// its release times carry no monotonicity contract).
    pub fn hold_until(&self) -> Cycle {
        match self {
            Gate::Pair(g) => g.hold.map(|(_, t)| t).unwrap_or(0),
            Gate::Dyn(_) => 0,
        }
    }

    /// Extra fetch-stall cycles after a serializing instruction
    /// commits.
    pub fn si_resume_delay(&self) -> u32 {
        match self {
            Gate::Pair(g) => g.channel.borrow().si_resume_delay(),
            Gate::Dyn(g) => g.si_resume_delay(),
        }
    }

    /// Forwards a pipeline squash.
    pub fn on_squash(&mut self, from_seq: u64) {
        match self {
            Gate::Pair(g) => {
                g.hold = None;
                g.grant = (Cycle::MAX, 0);
                g.channel.borrow_mut().on_squash(from_seq);
            }
            Gate::Dyn(g) => g.on_squash(from_seq),
        }
    }
}

/// A dispatch report not yet pushed to the channel: `(seq, exec-done
/// cycle, observed load version)`.
type PendingPublish = (u64, Cycle, Option<(LineAddr, VersionToken)>);

/// One side's view of the shared pair channel, with a release-time
/// hold cache.
///
/// [`PairChannel::commit_time`] results for a fixed seq are
/// non-decreasing over time (per-side prefix maxima and the recovery
/// floor only ever rise), so a returned release cycle is a sound
/// lower bound: until it arrives the core cannot commit, and the gate
/// skips the channel poll entirely. A `None` result (partner
/// fingerprint missing) is bounded the same way through
/// [`PairChannel::none_poll_delay`]. Neither shortcut changes any
/// commit cycle — it only removes redundant polls.
pub struct PairGate {
    channel: Rc<RefCell<PairChannel>>,
    side: Side,
    /// `(seq, until)` — the head seq cannot commit before `until`.
    hold: Option<(u64, Cycle)>,
    /// Dispatches not yet pushed to the channel (see
    /// [`Gate::on_dispatch`]).
    pending: [PendingPublish; 8],
    /// Number of live entries in `pending`.
    pending_len: u8,
    /// `(cycle, upto)` — every seq ≤ `upto` was released at `cycle`.
    /// Valid only within that cycle: the commit stage polls the gate
    /// once per retiring op, all in one tick, before this core (or its
    /// partner, which ticks in the same system pass) publishes
    /// anything new — so one channel poll can vouch for the whole
    /// commit burst.
    grant: (Cycle, u64),
    /// Poll-skip span after a partner-lag (`None`) poll.
    none_skip: u32,
}

impl PairGate {
    /// Creates the gate for `side` of `channel`.
    pub fn new(channel: Rc<RefCell<PairChannel>>, side: Side) -> Self {
        let none_skip = channel.borrow().none_poll_delay();
        Self {
            channel,
            side,
            hold: None,
            pending: [(0, 0, None); 8],
            pending_len: 0,
            grant: (Cycle::MAX, 0),
            none_skip,
        }
    }

    fn flush_pending(&mut self) {
        let mut ch = self.channel.borrow_mut();
        for &(seq, done, obs) in &self.pending[..self.pending_len as usize] {
            ch.publish(self.side, seq, done, obs);
        }
        self.pending_len = 0;
    }

    fn released(&mut self, seq: u64, now: Cycle) -> bool {
        if now == self.grant.0 && seq <= self.grant.1 {
            return true;
        }
        if let Some((held_seq, until)) = self.hold {
            if held_seq == seq && now < until {
                return false;
            }
        }
        let mut ch = self.channel.borrow_mut();
        ch.prune_below(seq);
        // Resolve the whole commit burst in one walk: the grant lets
        // the burst's remaining polls short-circuit to a compare, and
        // a failed poll reuses the same walk's release bound for the
        // hold cache instead of re-walking via `commit_time`.
        match ch.released_or_next(seq, now, 8) {
            Ok(upto) => {
                self.grant = (now, upto);
                self.hold = None;
                true
            }
            Err(Some(t)) => {
                debug_assert!(t > now, "released_or_next missed a release");
                self.hold = Some((seq, t));
                false
            }
            Err(None) => {
                self.hold = Some((seq, now + self.none_skip as Cycle));
                false
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// A gate that releases every op `delay` cycles after its
    /// execution completes — a stand-in for a perfectly synchronized
    /// partner. Used by core unit tests.
    #[derive(Debug, Default)]
    pub struct FixedDelayGate {
        pub delay: u32,
        pub si_delay: u32,
        pub published: Vec<(u64, Cycle)>,
        pub exec_done: std::collections::HashMap<u64, Cycle>,
    }

    impl CommitGate for FixedDelayGate {
        fn on_dispatch(
            &mut self,
            seq: u64,
            exec_done: Cycle,
            _load_obs: Option<(LineAddr, VersionToken)>,
        ) {
            self.published.push((seq, exec_done));
            self.exec_done.insert(seq, exec_done);
        }

        fn commit_time(&mut self, seq: u64, _now: Cycle) -> Option<Cycle> {
            self.exec_done.get(&seq).map(|&d| d + self.delay as Cycle)
        }

        fn si_resume_delay(&self) -> u32 {
            self.si_delay
        }

        fn on_squash(&mut self, from_seq: u64) {
            self.exec_done.retain(|&s, _| s < from_seq);
        }
    }
}
