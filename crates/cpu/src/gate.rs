//! The commit gate: the core's view of Reunion's Check stage.
//!
//! When a core operates as half of a DMR pair, every instruction must
//! wait in the Check stage until its fingerprint block has been
//! exchanged with and validated against the partner core (paper
//! §3.2). The core model stays agnostic of the mechanism: it publishes
//! each dispatched op's execution-completion time and observed load
//! version, and later asks the gate when a given sequence number may
//! commit. `mmm-reunion` provides the real pair-coupled
//! implementation; performance-mode cores have no gate at all.

use mmm_mem::VersionToken;
use mmm_types::{Cycle, LineAddr};

/// Interface between a core and its (possible) Check stage.
pub trait CommitGate {
    /// Reports a dispatched op: its sequence number, the cycle its
    /// execution completes, and — for loads — the `(line, version)` it
    /// observed, which is the input-incoherence-sensitive part of the
    /// fingerprint.
    fn on_dispatch(
        &mut self,
        seq: u64,
        exec_done: Cycle,
        load_obs: Option<(LineAddr, VersionToken)>,
    );

    /// Earliest cycle at which op `seq` may commit, or `None` if the
    /// partner's fingerprint for the containing block has not arrived
    /// yet (the op waits in Check).
    fn commit_time(&mut self, seq: u64, now: Cycle) -> Option<Cycle>;

    /// Extra fetch-stall cycles after a serializing instruction
    /// commits: under Reunion the SI must be validated before younger
    /// instructions may enter the pipeline (§5.1).
    fn si_resume_delay(&self) -> u32;

    /// Informs the gate that the core squashed all ops with sequence
    /// numbers ≥ `from_seq` (pipeline flush at a mode switch); their
    /// fingerprints will be re-published.
    fn on_squash(&mut self, from_seq: u64);
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;

    /// A gate that releases every op `delay` cycles after its
    /// execution completes — a stand-in for a perfectly synchronized
    /// partner. Used by core unit tests.
    #[derive(Debug, Default)]
    pub struct FixedDelayGate {
        pub delay: u32,
        pub si_delay: u32,
        pub published: Vec<(u64, Cycle)>,
        pub exec_done: std::collections::HashMap<u64, Cycle>,
    }

    impl CommitGate for FixedDelayGate {
        fn on_dispatch(
            &mut self,
            seq: u64,
            exec_done: Cycle,
            _load_obs: Option<(LineAddr, VersionToken)>,
        ) {
            self.published.push((seq, exec_done));
            self.exec_done.insert(seq, exec_done);
        }

        fn commit_time(&mut self, seq: u64, _now: Cycle) -> Option<Cycle> {
            self.exec_done.get(&seq).map(|&d| d + self.delay as Cycle)
        }

        fn si_resume_delay(&self) -> u32 {
            self.si_delay
        }

        fn on_squash(&mut self, from_seq: u64) {
            self.exec_done.retain(|&s, _| s < from_seq);
        }
    }
}
