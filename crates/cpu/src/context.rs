//! The architected execution context of one VCPU.
//!
//! An [`ExecContext`] is everything the chip's virtualization layer
//! saves and restores when it moves a VCPU between cores (paper §3.5):
//! the software thread's position in its instruction stream plus
//! commit counters. In DMR mode the vocal and mute cores each hold one
//! side of an [`ExecContext::fork`] — both read the identical
//! instruction sequence, which is what makes redundant execution
//! meaningful.
//!
//! # Forked streams generate once, and the per-op path is local
//!
//! The op streams are deterministic, so redundant execution *could*
//! simply clone the generator and pay the full generation cost twice
//! per instruction — what the original implementation did, and the
//! simulator's single largest cost. A fork instead shares one
//! generator behind a replay ring: whichever side is ahead generates
//! an op once, the trailing side replays it.
//!
//! The sharing machinery is deliberately kept *off* the per-op path.
//! Each context owns a small local window of ops copied out of the
//! shared ring in batches; `peek`/`take` are a bounds check plus an
//! index into that window — no `Rc` refcount traffic, no `RefCell`
//! borrow flag, no `VecDeque` cursor arithmetic. Only a window refill
//! (once per `BATCH` ops) touches the shared ring: it reports this
//! side's consumption, advances the trim floor, generates forward as
//! needed, and copies the next window. Local windows are pure copies,
//! so the ring overwriting slots below the floor can never be
//! observed. The sides of a pair stay within an instruction window of
//! each other (neither commits without the partner's fingerprint), so
//! the ring's initial capacity is rarely exceeded; it doubles if a
//! decoupled survivor drifts further ahead.

use std::cell::RefCell;
use std::rc::Rc;

use mmm_types::{PhysAddr, VcpuId, VmId};
use mmm_workload::{MicroOp, OpClass, OpSource, OpStream, Privilege, TraceReplay};

/// Ops copied into a context-local window per shared-ring visit. One
/// refcount-free window covers several simulated cycles of a 2-wide
/// core, and the generation-ahead it implies is invisible: streams are
/// deterministic and endless.
const BATCH: usize = 32;

/// Initial ring capacity (power of two). Covers the pair divergence
/// window (bounded by the 128-entry ROB) plus a refill batch per side.
const RING_CAP: usize = 256;

/// Filler op for unwritten ring slots; never dispatched.
const FILLER: MicroOp = MicroOp {
    class: OpClass::Alu,
    privilege: Privilege::User,
    data_addr: None,
    fetch_addr: PhysAddr(0),
    mispredicted: false,
    exec_latency: 1,
    enters_os: false,
    exits_os: false,
};

/// A generator shared by (up to) two fork sides, holding generated
/// ops in a power-of-two ring indexed by sequence number.
#[derive(Clone, Debug)]
struct SharedStream {
    source: OpSource,
    /// Ring slot for seq `q` is `ring[q & mask]`; holds `[floor, next_gen)`.
    ring: Vec<MicroOp>,
    mask: u64,
    /// Sequence number of the next op to generate.
    next_gen: u64,
    /// Every live side has consumed ops below this; slots below the
    /// floor are free to overwrite.
    floor: u64,
    /// Consumption cursor per fork side, reported at window refills.
    taken: [u64; 2],
}

impl SharedStream {
    fn new(source: OpSource) -> Self {
        Self {
            source,
            ring: vec![FILLER; RING_CAP],
            mask: RING_CAP as u64 - 1,
            next_gen: 0,
            floor: 0,
            taken: [0; 2],
        }
    }

    /// Generates forward until op `want - 1` exists in the ring.
    /// Batched: each pass generates up to the ring headroom in one
    /// [`OpSource::next_ops`] call (one profiler probe per window, not
    /// per op).
    fn generate_to(&mut self, want: u64) {
        while self.next_gen < want {
            if self.next_gen - self.floor >= self.ring.len() as u64 {
                self.grow();
            }
            let headroom = self.floor + self.ring.len() as u64 - self.next_gen;
            let n = (want - self.next_gen).min(headroom);
            let mask = self.mask;
            let ring = &mut self.ring;
            let mut q = self.next_gen;
            self.source.next_ops(n, |op| {
                ring[(q & mask) as usize] = op;
                q += 1;
            });
            self.next_gen = q;
        }
    }

    /// Doubles the ring, re-placing the live `[floor, next_gen)` span
    /// at its new masked positions. Only a decoupled survivor running
    /// far ahead of a stale partner cursor ever gets here.
    #[cold]
    fn grow(&mut self) {
        let new_cap = self.ring.len() * 2;
        let new_mask = new_cap as u64 - 1;
        let mut new_ring = vec![FILLER; new_cap];
        for q in self.floor..self.next_gen {
            new_ring[(q & new_mask) as usize] = self.ring[(q & self.mask) as usize];
        }
        self.ring = new_ring;
        self.mask = new_mask;
    }
}

/// The architected state of a VCPU as seen by a core.
#[derive(Debug)]
pub struct ExecContext {
    stream: Rc<RefCell<SharedStream>>,
    /// Which fork side's cursor this context advances.
    side: usize,
    /// Context-local copy of ops `[local_base, local_base + len)`;
    /// the per-op fast path reads only this.
    local: Vec<MicroOp>,
    /// Sequence number of `local[0]`.
    local_base: u64,
    vm: VmId,
    vcpu: VcpuId,
    /// Dynamic instruction number of the next op to dispatch.
    seq: u64,
    /// User-level instructions committed by this context.
    pub user_commits: u64,
    /// OS-level instructions committed by this context.
    pub os_commits: u64,
    /// Instructions committed without DMR protection (no commit gate
    /// installed on the executing core).
    pub unprotected_commits: u64,
}

impl Clone for ExecContext {
    /// Deep copy: the clone gets an independent generator at the same
    /// stream position. Only [`ExecContext::fork`] creates contexts
    /// that share one generator.
    fn clone(&self) -> Self {
        ExecContext {
            stream: Rc::new(RefCell::new(self.stream.borrow().clone())),
            side: self.side,
            local: self.local.clone(),
            local_base: self.local_base,
            vm: self.vm,
            vcpu: self.vcpu,
            seq: self.seq,
            user_commits: self.user_commits,
            os_commits: self.os_commits,
            unprotected_commits: self.unprotected_commits,
        }
    }
}

impl ExecContext {
    /// Wraps a workload stream as a runnable context.
    pub fn new(stream: OpStream) -> Self {
        Self::from_source(stream.into())
    }

    /// Wraps a trace replay as a runnable context (trace-driven
    /// simulation).
    pub fn from_replay(replay: TraceReplay) -> Self {
        Self::from_source(replay.into())
    }

    /// Wraps any op source as a runnable context.
    pub fn from_source(source: OpSource) -> Self {
        let vm = source.vm();
        let vcpu = source.vcpu();
        Self {
            stream: Rc::new(RefCell::new(SharedStream::new(source))),
            side: 0,
            local: Vec::with_capacity(BATCH),
            local_base: 0,
            vm,
            vcpu,
            seq: 0,
            user_commits: 0,
            os_commits: 0,
            unprotected_commits: 0,
        }
    }

    /// Splits off the redundant half of a DMR pair: the returned
    /// context reads the *same* generated op sequence as `self`, each
    /// op generated exactly once no matter which side reaches it
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `self` is still coupled to a live fork partner.
    pub fn fork(&mut self) -> ExecContext {
        assert_eq!(
            Rc::strong_count(&self.stream),
            1,
            "cannot fork a context whose fork partner is still alive"
        );
        {
            let mut s = self.stream.borrow_mut();
            // Anything the dropped previous partner generated ahead is
            // ours now; both new cursors start at our position.
            s.taken = [self.seq; 2];
            if self.seq > s.floor {
                s.floor = self.seq;
            }
        }
        self.side = 0;
        ExecContext {
            stream: Rc::clone(&self.stream),
            side: 1,
            // The partner starts from an identical copy of the local
            // window, so any already-copied ops replay on both sides.
            local: self.local.clone(),
            local_base: self.local_base,
            vm: self.vm,
            vcpu: self.vcpu,
            seq: self.seq,
            user_commits: self.user_commits,
            os_commits: self.os_commits,
            unprotected_commits: self.unprotected_commits,
        }
    }

    /// Installs a self-profiler handle on the shared op source, so
    /// generation cost is attributed no matter which fork side
    /// triggers it. Purely observational.
    pub fn set_profiler(&mut self, profiler: mmm_trace::Profiler) {
        self.stream.borrow_mut().source.set_profiler(profiler);
    }

    /// The VCPU this context belongs to.
    pub fn vcpu(&self) -> VcpuId {
        self.vcpu
    }

    /// The VM this context belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Sequence number of the next op to dispatch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Refills the local window from the shared ring: report this
    /// side's consumption, advance the trim floor, generate forward as
    /// needed, and copy the next `BATCH` ops. The only path that
    /// touches the `Rc<RefCell<..>>`; runs once per window.
    #[cold]
    fn refill(&mut self) {
        let alone = Rc::strong_count(&self.stream) == 1;
        let mut guard = self.stream.borrow_mut();
        let s = &mut *guard;
        s.taken[self.side] = self.seq;
        if alone {
            // A dropped partner's stale cursor must not pin the ring.
            s.taken[1 - self.side] = self.seq;
        }
        let min = s.taken[0].min(s.taken[1]);
        if min > s.floor {
            s.floor = min;
        }
        let want = self.seq + BATCH as u64;
        s.generate_to(want);
        // The window is contiguous in seq space, so it spans at most
        // two contiguous ring segments — copy slices, not elements.
        self.local.clear();
        let lo = (self.seq & s.mask) as usize;
        let hi = ((want - 1) & s.mask) as usize + 1;
        if lo < hi {
            self.local.extend_from_slice(&s.ring[lo..hi]);
        } else {
            self.local.extend_from_slice(&s.ring[lo..]);
            self.local.extend_from_slice(&s.ring[..hi]);
        }
        self.local_base = self.seq;
    }

    /// Peeks the next op without consuming it.
    #[inline]
    pub fn peek(&mut self) -> &MicroOp {
        let i = (self.seq - self.local_base) as usize;
        if i >= self.local.len() {
            self.refill();
        }
        &self.local[(self.seq - self.local_base) as usize]
    }

    /// Consumes the op most recently returned by
    /// [`ExecContext::peek`], yielding its sequence number. The caller
    /// already holds the op, so nothing is copied.
    ///
    /// # Panics
    ///
    /// Debug-panics unless a `peek` made the current position resident
    /// in the local window.
    #[inline]
    pub fn advance(&mut self) -> u64 {
        debug_assert!(
            ((self.seq - self.local_base) as usize) < self.local.len(),
            "advance without a preceding peek"
        );
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// Consumes the next op, advancing the stream position.
    #[inline]
    pub fn take(&mut self) -> (u64, MicroOp) {
        let i = (self.seq - self.local_base) as usize;
        let op = if let Some(op) = self.local.get(i) {
            *op
        } else {
            self.refill();
            self.local[(self.seq - self.local_base) as usize]
        };
        let seq = self.seq;
        self.seq += 1;
        (seq, op)
    }

    /// Total committed instructions.
    pub fn commits(&self) -> u64 {
        self.user_commits + self.os_commits
    }

    /// Privilege level the stream is currently executing at (the
    /// privilege of the next op).
    pub fn current_privilege(&mut self) -> Privilege {
        self.peek().privilege
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::Benchmark;

    fn ctx() -> ExecContext {
        ExecContext::new(OpStream::new(
            Benchmark::Oltp.profile(),
            VmId(0),
            VcpuId(2),
            7,
        ))
    }

    #[test]
    fn peek_then_take_returns_same_op() {
        let mut c = ctx();
        let peeked = *c.peek();
        let (seq, taken) = c.take();
        assert_eq!(seq, 0);
        assert_eq!(peeked, taken);
        assert_eq!(c.seq(), 1);
    }

    #[test]
    fn clones_replay_identically() {
        let mut a = ctx();
        // Advance, then clone mid-stream.
        for _ in 0..100 {
            a.take();
        }
        let mut b = a.clone();
        for _ in 0..1000 {
            let (sa, oa) = a.take();
            let (sb, ob) = b.take();
            assert_eq!(sa, sb);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn forks_replay_identically_at_any_skew() {
        let mut a = ctx();
        for _ in 0..50 {
            a.take();
        }
        a.peek(); // a pending window must survive the fork on both sides
        let mut b = a.fork();
        let mut expect = ctx();
        for _ in 0..50 {
            expect.take();
        }
        // Interleave with heavy skew in both directions.
        let mut ea: Vec<(u64, MicroOp)> = Vec::new();
        let mut eb: Vec<(u64, MicroOp)> = Vec::new();
        for round in 0..10 {
            let (na, nb) = if round % 2 == 0 { (60, 5) } else { (5, 60) };
            for _ in 0..na {
                ea.push(a.take());
            }
            for _ in 0..nb {
                eb.push(b.take());
            }
            // Catch the laggard up at the end of each round.
            while eb.len() < ea.len() {
                eb.push(b.take());
            }
            while ea.len() < eb.len() {
                ea.push(a.take());
            }
        }
        assert_eq!(ea, eb);
        // A pair-bounded divergence never forces the ring to grow.
        assert_eq!(a.stream.borrow().ring.len(), RING_CAP);
        // And the sequence matches an unforked replay exactly.
        for (i, (seq, op)) in ea.iter().enumerate() {
            let (es, eo) = expect.take();
            assert_eq!((*seq, *op), (es, eo), "op {i}");
        }
    }

    #[test]
    fn survivor_replays_what_partner_generated_ahead() {
        let mut a = ctx();
        let mut b = a.fork();
        for _ in 0..10 {
            a.take();
            b.take();
        }
        // Partner runs ahead, then is dropped (decouple discards the
        // mute's context mid-stream).
        for _ in 0..7 {
            b.take();
        }
        drop(b);
        let mut expect = ctx();
        for _ in 0..10 {
            expect.take();
        }
        // The survivor must replay ops 10..17 from the shared window,
        // then continue generating — no gap, no repeat.
        for _ in 0..100 {
            assert_eq!(a.take(), expect.take());
        }
        // And a re-fork from the survivor stays identical too.
        let mut c = a.fork();
        for _ in 0..100 {
            let e = expect.take();
            assert_eq!(a.take(), e);
            assert_eq!(c.take(), e);
        }
    }

    #[test]
    fn ring_grows_when_a_survivor_runs_far_ahead() {
        let mut a = ctx();
        let b = a.fork();
        // The partner never advances past 0 and its handle stays
        // alive, so the ring must retain everything `a` generates —
        // past RING_CAP it has to grow, and the replay must survive
        // the re-placement.
        let mut taken = Vec::new();
        for _ in 0..(RING_CAP * 3) {
            taken.push(a.take());
        }
        assert!(a.stream.borrow().ring.len() > RING_CAP);
        let mut expect = ctx();
        for (i, e) in taken.iter().enumerate() {
            assert_eq!(*e, expect.take(), "op {i}");
        }
        // The stalled partner replays the same prefix from seq 0.
        let mut b = b;
        let mut expect = ctx();
        for i in 0..64 {
            assert_eq!(b.take(), expect.take(), "partner op {i}");
        }
    }

    #[test]
    fn identity_is_preserved() {
        let c = ctx();
        assert_eq!(c.vcpu(), VcpuId(2));
        assert_eq!(c.vm(), VmId(0));
        assert_eq!(c.commits(), 0);
    }
}
