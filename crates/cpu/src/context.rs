//! The architected execution context of one VCPU.
//!
//! An [`ExecContext`] is everything the chip's virtualization layer
//! saves and restores when it moves a VCPU between cores (paper §3.5):
//! the software thread's position in its instruction stream plus
//! commit counters. In DMR mode the vocal and mute cores each hold one
//! side of an [`ExecContext::fork`] — both read the identical
//! instruction sequence, which is what makes redundant execution
//! meaningful.
//!
//! # Forked streams generate once
//!
//! The op streams are deterministic, so redundant execution *could*
//! simply clone the generator and pay the full generation cost (ChaCha
//! draws plus power-law address sampling) twice per instruction — what
//! the original implementation did, and the simulator's single largest
//! cost. A fork instead shares one generator behind a small replay
//! buffer: whichever side is ahead generates an op once, the trailing
//! side replays it from the buffer, and entries are trimmed once both
//! sides consumed them. The sides stay within an instruction window of
//! each other (neither commits without the partner's fingerprint), so
//! the buffer stays tiny. A context whose fork partner has been
//! dropped (decouple discards the mute's context) first drains
//! whatever the partner generated ahead, then reads the generator
//! directly with no buffering.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use mmm_types::{VcpuId, VmId};
use mmm_workload::{MicroOp, OpSource, OpStream, Privilege, TraceReplay};

/// A generator shared by (up to) two fork sides, with the replay
/// buffer between the leading and the trailing side.
#[derive(Clone, Debug)]
struct SharedStream {
    source: OpSource,
    /// Sequence number of `buf[0]`.
    base: u64,
    /// Generated ops not yet consumed by both sides.
    buf: VecDeque<MicroOp>,
    /// Next unconsumed seq per fork side.
    taken: [u64; 2],
}

impl SharedStream {
    /// The op with sequence number `seq`, generating forward as
    /// needed (the op stays buffered for the other side).
    fn op_at(&mut self, seq: u64) -> MicroOp {
        debug_assert!(seq >= self.base, "op {seq} already trimmed");
        while self.base + (self.buf.len() as u64) <= seq {
            self.buf.push_back(self.source.next_op());
        }
        self.buf[(seq - self.base) as usize]
    }

    /// Marks op `seq` consumed by `side` without re-reading it — the
    /// caller already holds the op from a prior [`Self::op_at`] (which
    /// is guaranteed to have buffered it). Cursor advance and trim
    /// only.
    fn consume_at(&mut self, side: usize, seq: u64, alone: bool) {
        debug_assert!(
            self.base + (self.buf.len() as u64) > seq,
            "consume_at requires op {seq} to be buffered"
        );
        self.taken[side] = seq + 1;
        let min = if alone {
            self.taken[side]
        } else {
            self.taken[0].min(self.taken[1])
        };
        while self.base < min && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
    }

    /// Consumes op `seq` for `side`, trimming entries every live side
    /// is done with. `alone` — the partner handle was dropped, so only
    /// `side`'s cursor gates trimming.
    fn take_at(&mut self, side: usize, seq: u64, alone: bool) -> MicroOp {
        // Sole reader, nothing buffered: bypass the buffer entirely.
        if alone && seq == self.base && self.buf.is_empty() {
            self.base = seq + 1;
            self.taken[side] = seq + 1;
            return self.source.next_op();
        }
        let op = self.op_at(seq);
        self.taken[side] = seq + 1;
        let min = if alone {
            self.taken[side]
        } else {
            self.taken[0].min(self.taken[1])
        };
        while self.base < min && !self.buf.is_empty() {
            self.buf.pop_front();
            self.base += 1;
        }
        op
    }
}

/// The architected state of a VCPU as seen by a core.
#[derive(Debug)]
pub struct ExecContext {
    stream: Rc<RefCell<SharedStream>>,
    /// Which fork side's cursor this context advances.
    side: usize,
    vm: VmId,
    vcpu: VcpuId,
    /// Dynamic instruction number of the next op to dispatch.
    seq: u64,
    /// A fetched-but-not-yet-dispatched op (one-deep fetch buffer).
    pending: Option<MicroOp>,
    /// User-level instructions committed by this context.
    pub user_commits: u64,
    /// OS-level instructions committed by this context.
    pub os_commits: u64,
    /// Instructions committed without DMR protection (no commit gate
    /// installed on the executing core).
    pub unprotected_commits: u64,
}

impl Clone for ExecContext {
    /// Deep copy: the clone gets an independent generator at the same
    /// stream position. Only [`ExecContext::fork`] creates contexts
    /// that share one generator.
    fn clone(&self) -> Self {
        ExecContext {
            stream: Rc::new(RefCell::new(self.stream.borrow().clone())),
            side: self.side,
            vm: self.vm,
            vcpu: self.vcpu,
            seq: self.seq,
            pending: self.pending,
            user_commits: self.user_commits,
            os_commits: self.os_commits,
            unprotected_commits: self.unprotected_commits,
        }
    }
}

impl ExecContext {
    /// Wraps a workload stream as a runnable context.
    pub fn new(stream: OpStream) -> Self {
        Self::from_source(stream.into())
    }

    /// Wraps a trace replay as a runnable context (trace-driven
    /// simulation).
    pub fn from_replay(replay: TraceReplay) -> Self {
        Self::from_source(replay.into())
    }

    /// Wraps any op source as a runnable context.
    pub fn from_source(source: OpSource) -> Self {
        let vm = source.vm();
        let vcpu = source.vcpu();
        Self {
            stream: Rc::new(RefCell::new(SharedStream {
                source,
                base: 0,
                buf: VecDeque::new(),
                taken: [0; 2],
            })),
            side: 0,
            vm,
            vcpu,
            seq: 0,
            pending: None,
            user_commits: 0,
            os_commits: 0,
            unprotected_commits: 0,
        }
    }

    /// Splits off the redundant half of a DMR pair: the returned
    /// context reads the *same* generated op sequence as `self`, each
    /// op generated exactly once no matter which side reaches it
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `self` is still coupled to a live fork partner.
    pub fn fork(&mut self) -> ExecContext {
        assert_eq!(
            Rc::strong_count(&self.stream),
            1,
            "cannot fork a context whose fork partner is still alive"
        );
        {
            let mut s = self.stream.borrow_mut();
            // Anything the dropped previous partner generated ahead is
            // ours now; both new cursors start at our position.
            s.taken = [self.seq; 2];
            while s.base < self.seq && !s.buf.is_empty() {
                s.buf.pop_front();
                s.base += 1;
            }
        }
        self.side = 0;
        ExecContext {
            stream: Rc::clone(&self.stream),
            side: 1,
            vm: self.vm,
            vcpu: self.vcpu,
            seq: self.seq,
            pending: self.pending,
            user_commits: self.user_commits,
            os_commits: self.os_commits,
            unprotected_commits: self.unprotected_commits,
        }
    }

    /// Installs a self-profiler handle on the shared op source, so
    /// generation cost is attributed no matter which fork side
    /// triggers it. Purely observational.
    pub fn set_profiler(&mut self, profiler: mmm_trace::Profiler) {
        self.stream.borrow_mut().source.set_profiler(profiler);
    }

    /// The VCPU this context belongs to.
    pub fn vcpu(&self) -> VcpuId {
        self.vcpu
    }

    /// The VM this context belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Sequence number of the next op to dispatch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Peeks the next op without consuming it.
    pub fn peek(&mut self) -> &MicroOp {
        if self.pending.is_none() {
            self.pending = Some(self.stream.borrow_mut().op_at(self.seq));
        }
        self.pending.as_ref().expect("just filled")
    }

    /// Consumes the next op, advancing the stream position.
    pub fn take(&mut self) -> (u64, MicroOp) {
        let alone = Rc::strong_count(&self.stream) == 1;
        let op = match self.pending.take() {
            // The peek that filled `pending` buffered the op, so only
            // the cursor needs to move.
            Some(op) => {
                self.stream
                    .borrow_mut()
                    .consume_at(self.side, self.seq, alone);
                op
            }
            None => self.stream.borrow_mut().take_at(self.side, self.seq, alone),
        };
        let seq = self.seq;
        self.seq += 1;
        (seq, op)
    }

    /// Total committed instructions.
    pub fn commits(&self) -> u64 {
        self.user_commits + self.os_commits
    }

    /// Privilege level the stream is currently executing at (the
    /// privilege of the next op).
    pub fn current_privilege(&mut self) -> Privilege {
        self.peek().privilege
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::Benchmark;

    fn ctx() -> ExecContext {
        ExecContext::new(OpStream::new(
            Benchmark::Oltp.profile(),
            VmId(0),
            VcpuId(2),
            7,
        ))
    }

    #[test]
    fn peek_then_take_returns_same_op() {
        let mut c = ctx();
        let peeked = *c.peek();
        let (seq, taken) = c.take();
        assert_eq!(seq, 0);
        assert_eq!(peeked, taken);
        assert_eq!(c.seq(), 1);
    }

    #[test]
    fn clones_replay_identically() {
        let mut a = ctx();
        // Advance, then clone mid-stream.
        for _ in 0..100 {
            a.take();
        }
        let mut b = a.clone();
        for _ in 0..1000 {
            let (sa, oa) = a.take();
            let (sb, ob) = b.take();
            assert_eq!(sa, sb);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn forks_replay_identically_at_any_skew() {
        let mut a = ctx();
        for _ in 0..50 {
            a.take();
        }
        a.peek(); // a pending op must survive the fork on both sides
        let mut b = a.fork();
        let mut expect = ctx();
        for _ in 0..50 {
            expect.take();
        }
        // Interleave with heavy skew in both directions.
        let mut ea: Vec<(u64, MicroOp)> = Vec::new();
        let mut eb: Vec<(u64, MicroOp)> = Vec::new();
        for round in 0..10 {
            let (na, nb) = if round % 2 == 0 { (60, 5) } else { (5, 60) };
            for _ in 0..na {
                ea.push(a.take());
            }
            for _ in 0..nb {
                eb.push(b.take());
            }
            // Catch the laggard up at the end of each round.
            while eb.len() < ea.len() {
                eb.push(b.take());
            }
            while ea.len() < eb.len() {
                ea.push(a.take());
            }
        }
        assert_eq!(ea, eb);
        // The shared buffer trims as both sides advance.
        assert!(a.stream.borrow().buf.len() <= 1);
        // And the sequence matches an unforked replay exactly.
        for (i, (seq, op)) in ea.iter().enumerate() {
            let (es, eo) = expect.take();
            assert_eq!((*seq, *op), (es, eo), "op {i}");
        }
    }

    #[test]
    fn survivor_replays_what_partner_generated_ahead() {
        let mut a = ctx();
        let mut b = a.fork();
        for _ in 0..10 {
            a.take();
            b.take();
        }
        // Partner runs ahead, then is dropped (decouple discards the
        // mute's context mid-stream).
        for _ in 0..7 {
            b.take();
        }
        drop(b);
        let mut expect = ctx();
        for _ in 0..10 {
            expect.take();
        }
        // The survivor must replay ops 10..17 from the buffer, then
        // continue generating — no gap, no repeat.
        for _ in 0..100 {
            assert_eq!(a.take(), expect.take());
        }
        // And a re-fork from the survivor stays identical too.
        let mut c = a.fork();
        for _ in 0..100 {
            let e = expect.take();
            assert_eq!(a.take(), e);
            assert_eq!(c.take(), e);
        }
    }

    #[test]
    fn identity_is_preserved() {
        let c = ctx();
        assert_eq!(c.vcpu(), VcpuId(2));
        assert_eq!(c.vm(), VmId(0));
        assert_eq!(c.commits(), 0);
    }
}
