//! The architected execution context of one VCPU.
//!
//! An [`ExecContext`] is everything the chip's virtualization layer
//! saves and restores when it moves a VCPU between cores (paper §3.5):
//! the software thread's position in its instruction stream plus
//! commit counters. In DMR mode the vocal and mute cores each hold a
//! *clone* of the same context — the streams are deterministic, so two
//! clones at the same position generate the identical instruction
//! sequence, which is what makes redundant execution meaningful.

use mmm_types::{VcpuId, VmId};
use mmm_workload::{MicroOp, OpSource, OpStream, TraceReplay};

/// The architected state of a VCPU as seen by a core.
#[derive(Clone, Debug)]
pub struct ExecContext {
    source: OpSource,
    /// Dynamic instruction number of the next op to dispatch.
    seq: u64,
    /// A fetched-but-not-yet-dispatched op (one-deep fetch buffer).
    pending: Option<MicroOp>,
    /// User-level instructions committed by this context.
    pub user_commits: u64,
    /// OS-level instructions committed by this context.
    pub os_commits: u64,
    /// Instructions committed without DMR protection (no commit gate
    /// installed on the executing core).
    pub unprotected_commits: u64,
}

impl ExecContext {
    /// Wraps a workload stream as a runnable context.
    pub fn new(stream: OpStream) -> Self {
        Self::from_source(stream.into())
    }

    /// Wraps a trace replay as a runnable context (trace-driven
    /// simulation).
    pub fn from_replay(replay: TraceReplay) -> Self {
        Self::from_source(replay.into())
    }

    /// Wraps any op source as a runnable context.
    pub fn from_source(source: OpSource) -> Self {
        Self {
            source,
            seq: 0,
            pending: None,
            user_commits: 0,
            os_commits: 0,
            unprotected_commits: 0,
        }
    }

    /// The VCPU this context belongs to.
    pub fn vcpu(&self) -> VcpuId {
        self.source.vcpu()
    }

    /// The VM this context belongs to.
    pub fn vm(&self) -> VmId {
        self.source.vm()
    }

    /// Sequence number of the next op to dispatch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Peeks the next op without consuming it.
    pub fn peek(&mut self) -> &MicroOp {
        if self.pending.is_none() {
            self.pending = Some(self.source.next_op());
        }
        self.pending.as_ref().expect("just filled")
    }

    /// Consumes the next op, advancing the stream position.
    pub fn take(&mut self) -> (u64, MicroOp) {
        let op = match self.pending.take() {
            Some(op) => op,
            None => self.source.next_op(),
        };
        let seq = self.seq;
        self.seq += 1;
        (seq, op)
    }

    /// Total committed instructions.
    pub fn commits(&self) -> u64 {
        self.user_commits + self.os_commits
    }

    /// Privilege level the stream is currently executing at (the
    /// privilege of the next op).
    pub fn current_privilege(&mut self) -> mmm_workload::Privilege {
        self.peek().privilege
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::Benchmark;

    fn ctx() -> ExecContext {
        ExecContext::new(OpStream::new(
            Benchmark::Oltp.profile(),
            VmId(0),
            VcpuId(2),
            7,
        ))
    }

    #[test]
    fn peek_then_take_returns_same_op() {
        let mut c = ctx();
        let peeked = *c.peek();
        let (seq, taken) = c.take();
        assert_eq!(seq, 0);
        assert_eq!(peeked, taken);
        assert_eq!(c.seq(), 1);
    }

    #[test]
    fn clones_replay_identically() {
        let mut a = ctx();
        // Advance, then clone mid-stream.
        for _ in 0..100 {
            a.take();
        }
        let mut b = a.clone();
        for _ in 0..1000 {
            let (sa, oa) = a.take();
            let (sb, ob) = b.take();
            assert_eq!(sa, sb);
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn identity_is_preserved() {
        let c = ctx();
        assert_eq!(c.vcpu(), VcpuId(2));
        assert_eq!(c.vm(), VmId(0));
        assert_eq!(c.commits(), 0);
    }
}
