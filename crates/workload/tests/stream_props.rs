//! Property tests for workload stream invariants.

use proptest::prelude::*;

use mmm_types::{VcpuId, VmId};
use mmm_workload::{AddressLayout, Benchmark, OpStream, Privilege};

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop_oneof![
        Just(Benchmark::Apache),
        Just(Benchmark::Oltp),
        Just(Benchmark::Pgoltp),
        Just(Benchmark::Pmake),
        Just(Benchmark::Pgbench),
        Just(Benchmark::Zeus),
        Just(Benchmark::SpecLike),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn streams_are_vm_contained_and_deterministic(
        bench in any_benchmark(),
        vm in 0u16..4,
        vcpu in 0u16..16,
        seed in any::<u64>()
    ) {
        let layout = AddressLayout::new();
        let mut a = OpStream::new(bench.profile(), VmId(vm), VcpuId(vcpu), seed);
        let mut b = OpStream::new(bench.profile(), VmId(vm), VcpuId(vcpu), seed);
        for _ in 0..2_000 {
            let (x, y) = (a.next_op(), b.next_op());
            prop_assert_eq!(x, y, "same seed, same stream");
            if let Some(addr) = x.data_addr {
                prop_assert_eq!(layout.vm_of(addr), Some(VmId(vm)));
            }
            prop_assert_eq!(layout.vm_of(x.fetch_addr), Some(VmId(vm)));
        }
    }

    #[test]
    fn privilege_matches_phase_markers(bench in any_benchmark(), seed in any::<u64>()) {
        let mut s = OpStream::new(bench.profile(), VmId(0), VcpuId(0), seed);
        let mut privilege = s.privilege();
        for _ in 0..20_000 {
            let op = s.next_op();
            if op.enters_os {
                prop_assert_eq!(op.privilege, Privilege::Os);
                prop_assert!(op.is_serializing(), "OS entry is a trap");
                privilege = Privilege::Os;
            } else if op.exits_os {
                prop_assert_eq!(op.privilege, Privilege::User);
                prop_assert!(op.is_serializing(), "return-from-trap serializes");
                privilege = Privilege::User;
            } else {
                prop_assert_eq!(op.privilege, privilege, "privilege only changes at markers");
            }
            // Structural sanity.
            match op.class {
                mmm_workload::OpClass::Load | mmm_workload::OpClass::Store => {
                    prop_assert!(op.data_addr.is_some());
                }
                _ => prop_assert!(op.data_addr.is_none()),
            }
            prop_assert!(op.exec_latency >= 1);
        }
    }
}
