//! Property tests for workload stream invariants.
//!
//! Deterministic property testing: cases are generated from a
//! fixed-seed [`DetRng`], so failures reproduce exactly (the build is
//! offline; no proptest).

use mmm_types::{DetRng, VcpuId, VmId};
use mmm_workload::{AddressLayout, Benchmark, OpStream, Privilege};

fn benchmark_of(rng: &mut DetRng) -> Benchmark {
    let all = Benchmark::all();
    all[rng.below(all.len() as u64) as usize]
}

#[test]
fn streams_are_vm_contained_and_deterministic() {
    let mut gen = DetRng::new(0x57EA, 0);
    let layout = AddressLayout::new();
    for case in 0..32 {
        let bench = benchmark_of(&mut gen);
        let vm = gen.below(4) as u16;
        let vcpu = gen.below(16) as u16;
        let seed = gen.next_u64();
        let mut a = OpStream::new(bench.profile(), VmId(vm), VcpuId(vcpu), seed);
        let mut b = OpStream::new(bench.profile(), VmId(vm), VcpuId(vcpu), seed);
        for _ in 0..2_000 {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(x, y, "case {case}: same seed, same stream");
            if let Some(addr) = x.data_addr {
                assert_eq!(layout.vm_of(addr), Some(VmId(vm)), "case {case}");
            }
            assert_eq!(layout.vm_of(x.fetch_addr), Some(VmId(vm)), "case {case}");
        }
    }
}

#[test]
fn privilege_matches_phase_markers() {
    let mut gen = DetRng::new(0x57EB, 0);
    for case in 0..8 {
        let bench = benchmark_of(&mut gen);
        let seed = gen.next_u64();
        let mut s = OpStream::new(bench.profile(), VmId(0), VcpuId(0), seed);
        let mut privilege = s.privilege();
        for _ in 0..20_000 {
            let op = s.next_op();
            if op.enters_os {
                assert_eq!(op.privilege, Privilege::Os, "case {case}");
                assert!(op.is_serializing(), "case {case}: OS entry is a trap");
                privilege = Privilege::Os;
            } else if op.exits_os {
                assert_eq!(op.privilege, Privilege::User, "case {case}");
                assert!(
                    op.is_serializing(),
                    "case {case}: return-from-trap serializes"
                );
                privilege = Privilege::User;
            } else {
                assert_eq!(
                    op.privilege, privilege,
                    "case {case}: privilege only changes at markers"
                );
            }
            // Structural sanity.
            match op.class {
                mmm_workload::OpClass::Load | mmm_workload::OpClass::Store => {
                    assert!(op.data_addr.is_some(), "case {case}");
                }
                _ => assert!(op.data_addr.is_none(), "case {case}"),
            }
            assert!(op.exec_latency >= 1, "case {case}");
        }
    }
}
