//! Trace recording and replay.
//!
//! A [`Trace`] captures a finite window of a VCPU's dynamic
//! instruction stream so it can be re-executed verbatim: across
//! simulator versions (regression pinning), across configurations
//! (paired comparisons without stochastic variation), or repeatedly
//! (steady-state loops). [`TraceReplay`] implements the same
//! `next_op` interface as [`OpStream`] and can loop the window
//! endlessly, re-marking phase boundaries so privilege alternation
//! stays well-formed across the seam.

use mmm_types::{VcpuId, VmId};

use crate::op::{MicroOp, OpClass, Privilege};
use crate::stream::OpStream;

/// A recorded window of a workload stream.
///
/// ```
/// use mmm_workload::{Benchmark, OpStream, Trace};
/// use mmm_types::{VmId, VcpuId};
///
/// let mut stream = OpStream::new(Benchmark::Apache.profile(), VmId(0), VcpuId(0), 7);
/// let trace = Trace::record(&mut stream, 1_000);
/// let mut replay = trace.replay();
/// // Replay reproduces the recorded window op for op.
/// assert_eq!(replay.next_op(), trace.ops()[0]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    vm: VmId,
    vcpu: VcpuId,
    ops: Vec<MicroOp>,
}

impl Trace {
    /// Records the next `n` ops of `stream`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn record(stream: &mut OpStream, n: usize) -> Trace {
        assert!(n > 0, "cannot record an empty trace");
        let ops = (0..n).map(|_| stream.next_op()).collect();
        Trace {
            vm: stream.vm(),
            vcpu: stream.vcpu(),
            ops,
        }
    }

    /// The recorded ops.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty (never true for recorded traces).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The VM the trace was recorded from.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The VCPU the trace was recorded from.
    pub fn vcpu(&self) -> VcpuId {
        self.vcpu
    }

    /// Summary statistics of the recorded window.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for op in &self.ops {
            match op.class {
                OpClass::Load => s.loads += 1,
                OpClass::Store => s.stores += 1,
                OpClass::Branch => s.branches += 1,
                OpClass::Serializing => s.serializing += 1,
                _ => {}
            }
            if op.privilege == Privilege::Os {
                s.os_ops += 1;
            }
            if op.enters_os {
                s.os_entries += 1;
            }
        }
        s.total = self.ops.len() as u64;
        s
    }

    /// Creates an endless replayer over this trace.
    pub fn replay(&self) -> TraceReplay {
        TraceReplay {
            trace: self.clone(),
            pos: 0,
            wraps: 0,
        }
    }
}

/// Aggregate statistics of a trace window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Ops in the window.
    pub total: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Branches.
    pub branches: u64,
    /// Serializing instructions.
    pub serializing: u64,
    /// Ops at OS privilege.
    pub os_ops: u64,
    /// OS entries.
    pub os_entries: u64,
}

/// Errors decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceDecodeError {
    /// The byte stream does not start with the trace magic/version.
    BadHeader,
    /// The byte stream ended mid-record.
    Truncated,
    /// A record contained an invalid class or flag combination.
    Corrupt {
        /// Index of the offending op.
        index: usize,
    },
}

impl std::fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceDecodeError::BadHeader => write!(f, "not a trace: bad magic or version"),
            TraceDecodeError::Truncated => write!(f, "trace truncated mid-record"),
            TraceDecodeError::Corrupt { index } => {
                write!(f, "corrupt op record at index {index}")
            }
        }
    }
}

impl std::error::Error for TraceDecodeError {}

const TRACE_MAGIC: &[u8; 4] = b"MMT1";

impl Trace {
    /// Serializes the trace to a compact binary blob (magic + header +
    /// one variable-length record per op). Format is versioned via the
    /// magic; [`Trace::from_bytes`] rejects anything else.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.ops.len() * 12);
        out.extend_from_slice(TRACE_MAGIC);
        out.extend_from_slice(&self.vm.0.to_le_bytes());
        out.extend_from_slice(&self.vcpu.0.to_le_bytes());
        out.extend_from_slice(&(self.ops.len() as u64).to_le_bytes());
        for op in &self.ops {
            // flags byte: class(3) | privilege(1) | mispredicted(1) |
            //             enters(1) | exits(1) | has_data(1)
            let class = match op.class {
                OpClass::Alu => 0u8,
                OpClass::LongAlu => 1,
                OpClass::Load => 2,
                OpClass::Store => 3,
                OpClass::Branch => 4,
                OpClass::Serializing => 5,
            };
            let mut flags = class;
            if op.privilege == Privilege::Os {
                flags |= 1 << 3;
            }
            if op.mispredicted {
                flags |= 1 << 4;
            }
            if op.enters_os {
                flags |= 1 << 5;
            }
            if op.exits_os {
                flags |= 1 << 6;
            }
            if op.data_addr.is_some() {
                flags |= 1 << 7;
            }
            out.push(flags);
            out.push(op.exec_latency);
            out.extend_from_slice(&op.fetch_addr.0.to_le_bytes());
            if let Some(a) = op.data_addr {
                out.extend_from_slice(&a.0.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a trace previously produced by [`Trace::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceDecodeError> {
        use mmm_types::PhysAddr;
        fn take(b: &[u8], at: usize, n: usize) -> Result<&[u8], TraceDecodeError> {
            b.get(at..at + n).ok_or(TraceDecodeError::Truncated)
        }
        if bytes.len() < 16 || &bytes[..4] != TRACE_MAGIC {
            return Err(TraceDecodeError::BadHeader);
        }
        let vm = VmId(u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes")));
        let vcpu = VcpuId(u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes")));
        let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let mut pos = 16;
        let mut ops = Vec::with_capacity(count.min(1 << 24));
        for index in 0..count {
            let head = take(bytes, pos, 2)?;
            let (flags, exec_latency) = (head[0], head[1]);
            pos += 2;
            let class = match flags & 0b111 {
                0 => OpClass::Alu,
                1 => OpClass::LongAlu,
                2 => OpClass::Load,
                3 => OpClass::Store,
                4 => OpClass::Branch,
                5 => OpClass::Serializing,
                _ => return Err(TraceDecodeError::Corrupt { index }),
            };
            let fetch = take(bytes, pos, 8)?;
            let fetch_addr = PhysAddr(u64::from_le_bytes(fetch.try_into().expect("8 bytes")));
            pos += 8;
            let has_data = flags & (1 << 7) != 0;
            let data_addr = if has_data {
                let d = take(bytes, pos, 8)?;
                pos += 8;
                Some(PhysAddr(u64::from_le_bytes(d.try_into().expect("8 bytes"))))
            } else {
                None
            };
            let is_mem = matches!(class, OpClass::Load | OpClass::Store);
            if is_mem != has_data || exec_latency == 0 {
                return Err(TraceDecodeError::Corrupt { index });
            }
            ops.push(MicroOp {
                class,
                privilege: if flags & (1 << 3) != 0 {
                    Privilege::Os
                } else {
                    Privilege::User
                },
                data_addr,
                fetch_addr,
                mispredicted: flags & (1 << 4) != 0,
                exec_latency,
                enters_os: flags & (1 << 5) != 0,
                exits_os: flags & (1 << 6) != 0,
            });
        }
        if ops.is_empty() {
            return Err(TraceDecodeError::Corrupt { index: 0 });
        }
        Ok(Trace { vm, vcpu, ops })
    }
}

/// An endless, deterministic replayer over a [`Trace`].
#[derive(Clone, Debug)]
pub struct TraceReplay {
    trace: Trace,
    pos: usize,
    wraps: u64,
}

impl TraceReplay {
    /// The VM of the underlying trace.
    pub fn vm(&self) -> VmId {
        self.trace.vm
    }

    /// The VCPU of the underlying trace.
    pub fn vcpu(&self) -> VcpuId {
        self.trace.vcpu
    }

    /// Times the replay has wrapped back to the start.
    pub fn wraps(&self) -> u64 {
        self.wraps
    }

    /// Produces the next op, looping over the window. At the wrap
    /// seam, phase markers are patched so privilege transitions stay
    /// well-formed: if the window's last op runs at a different
    /// privilege than its first, the first replayed op of the new lap
    /// is marked as the corresponding boundary.
    pub fn next_op(&mut self) -> MicroOp {
        let first_privilege = self.trace.ops[0].privilege;
        let last_privilege = self.trace.ops[self.trace.ops.len() - 1].privilege;
        let mut op = self.trace.ops[self.pos];
        if self.pos == 0 && self.wraps > 0 && first_privilege != last_privilege {
            match first_privilege {
                Privilege::Os => {
                    op.enters_os = true;
                    op.exits_os = false;
                    op.class = OpClass::Serializing;
                }
                Privilege::User => {
                    op.exits_os = true;
                    op.enters_os = false;
                    op.class = OpClass::Serializing;
                }
            }
        }
        self.pos += 1;
        if self.pos == self.trace.ops.len() {
            self.pos = 0;
            self.wraps += 1;
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;

    fn stream() -> OpStream {
        OpStream::new(Benchmark::Apache.profile(), VmId(0), VcpuId(3), 17)
    }

    #[test]
    fn record_captures_the_stream_verbatim() {
        let mut a = stream();
        let mut b = stream();
        let trace = Trace::record(&mut a, 5_000);
        assert_eq!(trace.len(), 5_000);
        assert_eq!(trace.vcpu(), VcpuId(3));
        for op in trace.ops() {
            assert_eq!(*op, b.next_op());
        }
    }

    #[test]
    fn replay_loops_deterministically() {
        let mut s = stream();
        let trace = Trace::record(&mut s, 1_000);
        let mut r1 = trace.replay();
        let mut r2 = trace.replay();
        for _ in 0..3_500 {
            assert_eq!(r1.next_op(), r2.next_op());
        }
        assert_eq!(r1.wraps(), 3);
    }

    #[test]
    fn wrap_seam_keeps_privilege_alternation_well_formed() {
        // Record enough of Apache to end in a different phase than it
        // starts (statistically certain with 200k ops given ~35k-inst
        // phases).
        let mut s = stream();
        let trace = Trace::record(&mut s, 200_000);
        let first = trace.ops()[0].privilege;
        let last = trace.ops()[trace.len() - 1].privilege;
        let mut replay = trace.replay();
        let mut privilege = first;
        let mut violations = 0;
        for _ in 0..450_000 {
            let op = replay.next_op();
            if op.enters_os {
                privilege = Privilege::Os;
            } else if op.exits_os {
                privilege = Privilege::User;
            } else if op.privilege != privilege {
                violations += 1;
            }
        }
        assert_eq!(violations, 0, "privilege must only change at markers");
        let _ = last;
    }

    #[test]
    fn summary_counts_are_consistent() {
        let mut s = stream();
        let trace = Trace::record(&mut s, 50_000);
        let sum = trace.summary();
        assert_eq!(sum.total, 50_000);
        assert!(sum.loads > 5_000, "loads: {}", sum.loads);
        assert!(sum.stores > 2_000);
        assert!(sum.loads + sum.stores + sum.branches + sum.serializing < sum.total);
        // Apache alternates phases within 50k ops.
        assert!(sum.os_entries >= 1 || sum.os_ops == 0 || sum.os_ops == sum.total);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_record_is_rejected() {
        let mut s = stream();
        let _ = Trace::record(&mut s, 0);
    }

    #[test]
    fn serialization_round_trips() {
        let mut s = stream();
        let trace = Trace::record(&mut s, 20_000);
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).expect("round trip");
        assert_eq!(back.vm(), trace.vm());
        assert_eq!(back.vcpu(), trace.vcpu());
        assert_eq!(back.ops(), trace.ops());
    }

    #[test]
    fn serialization_is_compact() {
        let mut s = stream();
        let trace = Trace::record(&mut s, 10_000);
        let bytes = trace.to_bytes();
        // ≤ 18 bytes per op on average (1 flags + 1 latency + 8 fetch
        // + data addr for the ~1/3 of ops that are memory ops).
        assert!(
            bytes.len() < 18 * trace.len() + 16,
            "{} bytes for {} ops",
            bytes.len(),
            trace.len()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            Trace::from_bytes(b"not a trace at all"),
            Err(TraceDecodeError::BadHeader)
        );
        assert_eq!(Trace::from_bytes(&[]), Err(TraceDecodeError::BadHeader));
    }

    #[test]
    fn decode_rejects_truncation_and_corruption() {
        let mut s = stream();
        let trace = Trace::record(&mut s, 100);
        let bytes = trace.to_bytes();
        // Truncate mid-record.
        assert_eq!(
            Trace::from_bytes(&bytes[..bytes.len() - 3]),
            Err(TraceDecodeError::Truncated)
        );
        // Corrupt a class field to an invalid value (7).
        let mut bad = bytes.clone();
        bad[16] |= 0b111;
        match Trace::from_bytes(&bad) {
            Err(TraceDecodeError::Corrupt { index: 0 }) => {}
            other => panic!("expected corrupt-at-0, got {other:?}"),
        }
    }

    #[test]
    fn decoded_trace_replays_identically() {
        let mut s = stream();
        let trace = Trace::record(&mut s, 5_000);
        let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
        let mut a = trace.replay();
        let mut b = decoded.replay();
        for _ in 0..12_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }
}
