//! A unified op source: live statistical stream or trace replay.
//!
//! Cores execute whatever an [`OpSource`] produces, so every machine
//! configuration can run either generated workloads (the default) or
//! recorded traces (regression pinning, paired comparisons).

use mmm_types::{VcpuId, VmId};

use crate::op::MicroOp;
use crate::stream::OpStream;
use crate::trace::TraceReplay;

/// Where a VCPU's instructions come from.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // one OpSource per VCPU; size is immaterial
pub enum OpSource {
    /// Live statistical generation.
    Stream(OpStream),
    /// Deterministic replay of a recorded window.
    Replay(TraceReplay),
}

impl OpSource {
    /// Produces the next op.
    #[inline]
    pub fn next_op(&mut self) -> MicroOp {
        match self {
            OpSource::Stream(s) => s.next_op(),
            OpSource::Replay(r) => r.next_op(),
        }
    }

    /// Produces `n` consecutive ops through `sink` — identical to `n`
    /// [`OpSource::next_op`] calls, but a live stream charges one
    /// profiler probe for the whole batch.
    pub fn next_ops(&mut self, n: u64, mut sink: impl FnMut(MicroOp)) {
        match self {
            OpSource::Stream(s) => s.next_ops(n, sink),
            OpSource::Replay(r) => {
                for _ in 0..n {
                    sink(r.next_op());
                }
            }
        }
    }

    /// The VM this source belongs to.
    pub fn vm(&self) -> VmId {
        match self {
            OpSource::Stream(s) => s.vm(),
            OpSource::Replay(r) => r.vm(),
        }
    }

    /// The VCPU this source belongs to.
    pub fn vcpu(&self) -> VcpuId {
        match self {
            OpSource::Stream(s) => s.vcpu(),
            OpSource::Replay(r) => r.vcpu(),
        }
    }

    /// Installs a self-profiler handle on the live stream. Replay
    /// sources do no generation work worth attributing, so they
    /// ignore the handle.
    pub fn set_profiler(&mut self, profiler: mmm_trace::Profiler) {
        if let OpSource::Stream(s) = self {
            s.set_profiler(profiler);
        }
    }
}

impl From<OpStream> for OpSource {
    fn from(s: OpStream) -> Self {
        OpSource::Stream(s)
    }
}

impl From<TraceReplay> for OpSource {
    fn from(r: TraceReplay) -> Self {
        OpSource::Replay(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use crate::trace::Trace;

    #[test]
    fn both_sources_expose_identity_and_ops() {
        let mut s = OpStream::new(Benchmark::Oltp.profile(), VmId(1), VcpuId(2), 5);
        let trace = Trace::record(&mut s, 100);
        let mut a: OpSource =
            OpStream::new(Benchmark::Oltp.profile(), VmId(1), VcpuId(2), 5).into();
        let mut b: OpSource = trace.replay().into();
        assert_eq!(a.vm(), b.vm());
        assert_eq!(a.vcpu(), b.vcpu());
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op(), "replay matches the stream");
        }
    }
}
