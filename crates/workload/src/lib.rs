//! Statistical workload models for the mixed-mode multicore simulator.
//!
//! The paper evaluates six commercial workloads (Apache, Zeus, DB2
//! OLTP, PostgreSQL `pgoltp` and `pgbench`, and a parallel `pmake`) on
//! full-system Simics. We have neither Simics nor the commercial
//! software stacks, so each workload is reproduced as a *statistical
//! profile*: a stochastic micro-op stream with the workload's
//! published, behaviour-determining observables —
//!
//! * instruction mix (loads, stores, branches, ALU),
//! * user/OS alternation calibrated to Table 2 of the paper,
//! * serializing-instruction frequency (paper §5.1),
//! * private/shared/OS cache footprints and sharing intensity
//!   (driving C2C transfer behaviour, paper §5.1),
//! * branch predictability.
//!
//! The DMR and mixed-mode *deltas* the paper reports are functions of
//! these observables — window occupancy, store latency, OS-entry rate,
//! cache sharing — not of the literal semantics of DB2 or Apache, which
//! is why a calibrated statistical stream preserves the result shape
//! (see `DESIGN.md` §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod layout;
pub mod op;
pub mod profile;
pub mod source;
pub mod stream;
pub mod trace;

pub use benchmarks::Benchmark;
pub use layout::AddressLayout;
pub use op::{MicroOp, OpClass, Privilege};
pub use profile::{PhaseProfile, WorkloadProfile};
pub use source::OpSource;
pub use stream::OpStream;
pub use trace::{Trace, TraceReplay};
