//! The dynamic micro-operation: the unit of work flowing from a
//! workload stream through a core pipeline.

use mmm_types::PhysAddr;

/// Privilege level of the software issuing an instruction.
///
/// In the consolidated-server experiments `Os` stands for the most
/// privileged software level (the VMM); in single-OS experiments it is
/// the kernel. The mixed-mode rule (paper §3.4.2) is that `Os`-level
/// code always executes in reliable (DMR) mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Privilege {
    /// Unprivileged application (or guest-VM) code.
    User,
    /// Privileged system software: OS kernel or VMM.
    Os,
}

/// Instruction class, the granularity at which the timing model
/// distinguishes behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer/logic operation.
    Alu,
    /// Multi-cycle arithmetic (multiply/divide/FP).
    LongAlu,
    /// Memory load.
    Load,
    /// Memory store. Under sequential consistency the store occupies
    /// its window entry until the L2 write completes.
    Store,
    /// Conditional or indirect branch.
    Branch,
    /// Serializing instruction: the window must drain before it
    /// executes, and (under Reunion) it must be checked before younger
    /// instructions may enter the pipeline (paper §5.1).
    Serializing,
}

/// One dynamic micro-operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MicroOp {
    /// Instruction class.
    pub class: OpClass,
    /// Privilege level at which it executes.
    pub privilege: Privilege,
    /// Data address for [`OpClass::Load`] / [`OpClass::Store`].
    pub data_addr: Option<PhysAddr>,
    /// Physical address of the instruction itself (drives the L1-I).
    pub fetch_addr: PhysAddr,
    /// Whether a branch was mispredicted (squashes younger work).
    pub mispredicted: bool,
    /// Execution latency in cycles once issued (excludes memory time).
    pub exec_latency: u8,
    /// True exactly on the first op of an OS phase (syscall, trap, or
    /// interrupt entry) — the event that forces a transition to
    /// reliable mode for a performance-mode VCPU.
    pub enters_os: bool,
    /// True exactly on the first op after an OS phase ends (return to
    /// user code).
    pub exits_os: bool,
}

impl MicroOp {
    /// Whether this op references data memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self.class, OpClass::Load | OpClass::Store)
    }

    /// Whether this op is a store.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }

    /// Whether this op serializes the pipeline.
    #[inline]
    pub fn is_serializing(&self) -> bool {
        self.class == OpClass::Serializing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(class: OpClass) -> MicroOp {
        MicroOp {
            class,
            privilege: Privilege::User,
            data_addr: None,
            fetch_addr: PhysAddr(0),
            mispredicted: false,
            exec_latency: 1,
            enters_os: false,
            exits_os: false,
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(op(OpClass::Load).is_mem());
        assert!(op(OpClass::Store).is_mem());
        assert!(op(OpClass::Store).is_store());
        assert!(!op(OpClass::Load).is_store());
        assert!(!op(OpClass::Alu).is_mem());
        assert!(op(OpClass::Serializing).is_serializing());
        assert!(!op(OpClass::Branch).is_serializing());
    }
}
