//! Workload profile parameters.
//!
//! A [`WorkloadProfile`] describes one benchmark as two
//! [`PhaseProfile`]s (user and OS execution) plus the alternation
//! between them. All probabilities are per-instruction; footprints are
//! in 64-byte lines. The six concrete instances live in
//! [`crate::benchmarks`].

/// Statistical description of one execution phase (user or OS).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseProfile {
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Fraction of instructions that are long-latency ALU ops.
    pub long_alu_frac: f64,
    /// Per-instruction probability of a serializing instruction
    /// (membars, privileged-register reads/writes, traps; paper §5.1).
    pub si_rate: f64,
    /// Branch misprediction probability.
    pub mispredict_rate: f64,
    /// Probability a taken branch jumps to a new code line (vs falling
    /// through sequentially).
    pub jump_rate: f64,
    /// Code footprint in lines touched by this phase.
    pub code_lines: u64,
    /// Private (per-VCPU) data footprint, lines.
    pub private_lines: u64,
    /// OS/kernel shared-data footprint, lines (shared by all VCPUs of
    /// the VM; the main source of C2C transfers in OS-intensive
    /// workloads).
    pub os_lines: u64,
    /// Application shared-heap footprint, lines.
    pub shared_lines: u64,
    /// Fraction of memory accesses that target the OS-data region.
    pub p_os_data: f64,
    /// Fraction of memory accesses that target the shared heap.
    pub p_shared: f64,
    /// Power-law skew of line reuse within each region (higher ⇒
    /// hotter hot set).
    pub skew: f64,
    /// Fraction of memory accesses absorbed by a small private hot
    /// set (stack frames, register spills, top-of-heap) — the
    /// short-reuse-distance traffic that makes real L1 hit rates high.
    pub p_hot: f64,
    /// Size of that hot set, in lines.
    pub hot_lines: u64,
    /// Fraction of memory accesses to a per-VCPU *warm* set reused
    /// uniformly — a reuse distance larger than the private L2 but
    /// within a fair share of the L3. This is the traffic that makes
    /// shared-cache capacity matter: 8 VCPUs' warm sets fit the 8 MB
    /// L3 where 16 VCPUs' do not (the paper's §5.1 "half of the
    /// bandwidth and capacity pressure" effect).
    pub p_warm: f64,
    /// Size of the warm set, in lines.
    pub warm_lines: u64,
    /// Power-law skew of branch-target popularity within the code
    /// footprint (hot loops dominate fetch).
    pub code_skew: f64,
    /// Scale applied to `p_os_data`/`p_shared` for *stores*. Shared
    /// kernel and heap data is read far more often than written
    /// (writes concentrate on per-CPU structures), and modelling that
    /// asymmetry is what keeps Reunion's input-incoherence rate at
    /// realistic levels rather than a recovery storm.
    pub store_share_scale: f64,
    /// Fraction of shared-region *reads* that target the globally hot
    /// head of the region; the rest read a per-VCPU-affine window
    /// (per-CPU slabs, per-connection buffers, per-backend pages).
    /// Real kernels and databases exhibit strong CPU affinity; without
    /// it, every VCPU's hot read set is every other VCPU's write
    /// target, and a DMR mute's cache re-stales continuously.
    pub p_true_share: f64,
}

impl PhaseProfile {
    /// Checks that all probabilities are sane and fractions sum below 1.
    pub fn validate(&self) -> Result<(), String> {
        let mix = self.load_frac + self.store_frac + self.branch_frac + self.long_alu_frac;
        if !(0.0..=1.0).contains(&mix) {
            return Err(format!("instruction mix sums to {mix}, must be in [0,1]"));
        }
        for (name, p) in [
            ("si_rate", self.si_rate),
            ("mispredict_rate", self.mispredict_rate),
            ("jump_rate", self.jump_rate),
            ("p_os_data", self.p_os_data),
            ("p_shared", self.p_shared),
            ("p_hot", self.p_hot),
            ("p_warm", self.p_warm),
            ("store_share_scale", self.store_share_scale),
            ("p_true_share", self.p_true_share),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} out of [0,1]"));
            }
        }
        if self.p_os_data + self.p_shared > 1.0 {
            return Err("region probabilities exceed 1".into());
        }
        if self.code_lines == 0 || self.private_lines == 0 {
            return Err("code and private footprints must be nonzero".into());
        }
        for (name, s) in [("skew", self.skew), ("code_skew", self.code_skew)] {
            if s <= 0.0 {
                return Err(format!("{name} must be positive"));
            }
        }
        if self.hot_lines == 0 || self.hot_lines > self.private_lines {
            return Err("hot set must be nonzero and within the private footprint".into());
        }
        if self.p_hot + self.p_warm > 1.0 {
            return Err("hot + warm fractions exceed 1".into());
        }
        if self.hot_lines + self.warm_lines > self.private_lines {
            return Err("hot + warm sets exceed the private footprint".into());
        }
        Ok(())
    }
}

/// Statistical description of one benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Human-readable benchmark name as printed in the paper's figures.
    pub name: &'static str,
    /// Behaviour of user-level execution.
    pub user: PhaseProfile,
    /// Behaviour of OS/VMM-level execution.
    pub os: PhaseProfile,
    /// Mean instructions per user phase. Together with the baseline
    /// IPC this is calibrated so that mean user *cycles* between OS
    /// entries matches Table 2 of the paper.
    pub mean_user_insts: u64,
    /// Mean instructions per OS phase (calibrated against Table 2's
    /// OS-cycle column).
    pub mean_os_insts: u64,
}

impl WorkloadProfile {
    /// Validates both phases and the alternation parameters.
    pub fn validate(&self) -> Result<(), String> {
        self.user.validate().map_err(|e| format!("user: {e}"))?;
        self.os.validate().map_err(|e| format!("os: {e}"))?;
        if self.mean_user_insts == 0 || self.mean_os_insts == 0 {
            return Err("phase lengths must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::benchmarks::Benchmark;

    #[test]
    fn all_shipped_profiles_validate() {
        for b in Benchmark::all() {
            b.profile().validate().unwrap_or_else(|e| {
                panic!("profile {} invalid: {e}", b.profile().name);
            });
        }
    }

    #[test]
    fn validation_catches_bad_mix() {
        let mut p = Benchmark::Apache.profile();
        p.user.load_frac = 0.9;
        p.user.store_frac = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_region_probs() {
        let mut p = Benchmark::Oltp.profile();
        p.os.p_os_data = 0.7;
        p.os.p_shared = 0.7;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_footprint() {
        let mut p = Benchmark::Pmake.profile();
        p.user.private_lines = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_zero_phase() {
        let mut p = Benchmark::Zeus.profile();
        p.mean_os_insts = 0;
        assert!(p.validate().is_err());
    }
}
