//! Per-VCPU micro-op stream generation.
//!
//! An [`OpStream`] turns a [`WorkloadProfile`] into an endless dynamic
//! instruction stream for one VCPU: instruction classes drawn from the
//! phase mix, data addresses drawn from power-law-reused footprints in
//! the VCPU's [`AddressLayout`] regions, instruction-fetch addresses
//! walked sequentially with power-law branch targets, and user/OS
//! phases alternating with geometric lengths.
//!
//! Streams are deterministic: the same `(seed, vm, vcpu)` triple
//! always produces the same op sequence, independent of any other
//! stream — which is what makes multi-configuration comparisons (DMR
//! vs MMM) run the *same work* in every configuration.

use mmm_types::sampler::PowerLawSampler;
use mmm_types::{DetRng, PhysAddr, VcpuId, VmId};

use crate::layout::AddressLayout;
use crate::op::{MicroOp, OpClass, Privilege};
use mmm_trace::{ProfPhase, Profiler};

use crate::profile::{PhaseProfile, WorkloadProfile};

/// Flat spread used for stores into shared regions (appends/logs
/// rather than the read-hot head; see [`PhaseProfile::store_share_scale`]).
const STORE_SPREAD_SKEW: f64 = 1.05;

/// Precomputed power-law samplers for one phase's regions. Each is
/// table-driven (built once per distinct `(lines, skew)` pair via the
/// process-global cache in `mmm_types::sampler`) and bit-equal to the
/// per-draw `powf` reference path it replaced.
#[derive(Clone, Debug)]
struct PhaseSamplers {
    hot: PowerLawSampler,
    private: PowerLawSampler,
    os: Option<PowerLawSampler>,
    shared: Option<PowerLawSampler>,
    os_store: Option<PowerLawSampler>,
    shared_store: Option<PowerLawSampler>,
    code: PowerLawSampler,
}

impl PhaseSamplers {
    fn new(p: &PhaseProfile) -> Self {
        let opt = |n: u64, skew: f64| (n > 0).then(|| PowerLawSampler::new(n, skew));
        Self {
            hot: PowerLawSampler::new(p.hot_lines, p.skew),
            private: PowerLawSampler::new(p.private_lines, p.skew),
            os: opt(p.os_lines, p.skew),
            shared: opt(p.shared_lines, p.skew),
            os_store: opt(p.os_lines, STORE_SPREAD_SKEW),
            shared_store: opt(p.shared_lines, STORE_SPREAD_SKEW),
            code: PowerLawSampler::new(p.code_lines, p.code_skew),
        }
    }
}

/// All precomputed samplers for one stream, indexed `[user, os]`.
#[derive(Clone, Debug)]
struct StreamSamplers {
    phase: [PhaseSamplers; 2],
}

impl StreamSamplers {
    fn new(profile: &WorkloadProfile) -> Self {
        Self {
            phase: [
                PhaseSamplers::new(&profile.user),
                PhaseSamplers::new(&profile.os),
            ],
        }
    }
}

/// Execution latency (cycles) of a long ALU op once issued.
const LONG_ALU_LATENCY: u8 = 6;
/// Execution latency of a serializing instruction itself.
const SERIALIZING_LATENCY: u8 = 4;

/// Endless generator of [`MicroOp`]s for one VCPU.
#[derive(Clone, Debug)]
pub struct OpStream {
    profile: WorkloadProfile,
    layout: AddressLayout,
    vm: VmId,
    vcpu: VcpuId,
    rng: DetRng,
    privilege: Privilege,
    /// Instructions remaining in the current phase.
    remaining: u64,
    /// Fetch byte cursor within the current privilege's code window.
    fetch_cursor: u64,
    /// Total ops generated (diagnostics).
    generated: u64,
    /// Precomputed table-driven samplers for both privilege phases.
    draws: StreamSamplers,
    /// Self-profiler handle; one branch per op when off.
    profiler: Profiler,
}

impl OpStream {
    /// Creates a stream for `vcpu` of `vm`, seeded deterministically.
    ///
    /// The initial phase is drawn from the steady-state instruction
    /// mix (user with probability `mean_user / (mean_user + mean_os)`),
    /// so a gang of VCPUs created together does not start
    /// phase-synchronized. Geometric phase lengths are memoryless, so
    /// a fresh draw is exactly the residual of an in-progress phase.
    pub fn new(profile: WorkloadProfile, vm: VmId, vcpu: VcpuId, seed: u64) -> Self {
        let mut rng = DetRng::new(
            seed,
            0x5747 ^ ((vm.index() as u64) << 32) ^ ((vcpu.index() as u64) << 16),
        );
        let p_user = profile.mean_user_insts as f64
            / (profile.mean_user_insts + profile.mean_os_insts) as f64;
        let (privilege, remaining) = if rng.chance(p_user) {
            (
                Privilege::User,
                rng.geometric(1.0 / profile.mean_user_insts as f64),
            )
        } else {
            (
                Privilege::Os,
                rng.geometric(1.0 / profile.mean_os_insts as f64),
            )
        };
        let draws = StreamSamplers::new(&profile);
        Self {
            profile,
            layout: AddressLayout::new(),
            vm,
            vcpu,
            rng,
            privilege,
            remaining,
            fetch_cursor: 0,
            generated: 0,
            draws,
            profiler: Profiler::off(),
        }
    }

    /// Installs a self-profiler handle so op generation attributes
    /// its host cost to [`mmm_trace::ProfPhase::OpGen`]. Purely
    /// observational: the generated op sequence is unchanged.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// The VM this stream belongs to.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// The VCPU this stream belongs to.
    pub fn vcpu(&self) -> VcpuId {
        self.vcpu
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Current privilege level (the level of the *next* op).
    pub fn privilege(&self) -> Privilege {
        self.privilege
    }

    /// Total ops generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    fn phase(&self) -> &PhaseProfile {
        match self.privilege {
            Privilege::User => &self.profile.user,
            Privilege::Os => &self.profile.os,
        }
    }

    /// Produces the next micro-op.
    #[inline]
    pub fn next_op(&mut self) -> MicroOp {
        let _prof = self.profiler.enter(ProfPhase::OpGen);
        self.gen_op()
    }

    /// Produces `n` consecutive ops through `sink` under one profiler
    /// scope — the batch refill path pays one probe per window instead
    /// of one per op. The op sequence is identical to `n` calls of
    /// [`OpStream::next_op`].
    pub fn next_ops(&mut self, n: u64, mut sink: impl FnMut(MicroOp)) {
        let _prof = self.profiler.enter(ProfPhase::OpGen);
        for _ in 0..n {
            sink(self.gen_op());
        }
    }

    /// The generation step itself, shared by the single-op and batch
    /// entry points.
    fn gen_op(&mut self) -> MicroOp {
        let mut enters_os = false;
        let mut exits_os = false;
        if self.remaining == 0 {
            match self.privilege {
                Privilege::User => {
                    self.privilege = Privilege::Os;
                    enters_os = true;
                    self.remaining = self.rng.geometric(1.0 / self.profile.mean_os_insts as f64);
                    // Kernel entry lands on the trap-handler hot path.
                    self.fetch_cursor = 0;
                }
                Privilege::Os => {
                    self.privilege = Privilege::User;
                    exits_os = true;
                    self.remaining = self
                        .rng
                        .geometric(1.0 / self.profile.mean_user_insts as f64);
                }
            }
        }
        self.remaining -= 1;
        self.generated += 1;

        let phase = *self.phase();
        let privilege = self.privilege;

        // Phase boundaries (trap entry / return-from-trap) are
        // architecturally serializing, as are the phase's own SIs.
        let class = if enters_os || exits_os || self.rng.chance(phase.si_rate) {
            OpClass::Serializing
        } else {
            let r = self.rng.unit();
            if r < phase.load_frac {
                OpClass::Load
            } else if r < phase.load_frac + phase.store_frac {
                OpClass::Store
            } else if r < phase.load_frac + phase.store_frac + phase.branch_frac {
                OpClass::Branch
            } else if r < phase.load_frac
                + phase.store_frac
                + phase.branch_frac
                + phase.long_alu_frac
            {
                OpClass::LongAlu
            } else {
                OpClass::Alu
            }
        };

        let data_addr = match class {
            OpClass::Load => Some(self.data_address(&phase, false)),
            OpClass::Store => Some(self.data_address(&phase, true)),
            _ => None,
        };

        let fetch_addr = self.fetch_address(&phase);

        let mispredicted = class == OpClass::Branch && self.rng.chance(phase.mispredict_rate);
        if class == OpClass::Branch && self.rng.chance(phase.jump_rate) {
            // Jump to a power-law-popular code line (hot loops
            // dominate branch targets).
            let code = &self.draws.phase[match self.privilege {
                Privilege::User => 0,
                Privilege::Os => 1,
            }]
            .code;
            self.fetch_cursor = code.sample(&mut self.rng) * 64 + self.rng.below(16) * 4;
        }

        let exec_latency = match class {
            OpClass::LongAlu => LONG_ALU_LATENCY,
            OpClass::Serializing => SERIALIZING_LATENCY,
            _ => 1,
        };

        MicroOp {
            class,
            privilege,
            data_addr,
            fetch_addr,
            mispredicted,
            exec_latency,
            enters_os,
            exits_os,
        }
    }

    /// Picks a data address. A `p_hot` fraction of accesses lands in
    /// the small private hot set (stack/top-of-heap — the
    /// short-reuse-distance traffic behind real L1 hit rates); the
    /// rest goes to the OS region, shared heap, or full private
    /// footprint, each with power-law reuse.
    fn data_address(&mut self, phase: &PhaseProfile, is_store: bool) -> PhysAddr {
        // Samplers are borrowed in place (they are `Arc`-backed, not
        // `Copy`); each call touches disjoint fields of `self`, so no
        // clone happens on this per-load/store path.
        let di = match self.privilege {
            Privilege::User => 0,
            Privilege::Os => 1,
        };
        if self.rng.chance(phase.p_hot) {
            let idx = self.draws.phase[di].hot.sample(&mut self.rng);
            let line = self.layout.private_line(self.vm, self.vcpu, idx);
            return PhysAddr(line.base().0 + self.rng.below(8) * 8);
        }
        // Warm set: uniform reuse over a region sized between the L2
        // and an L3 share, immediately above the hot set.
        if phase.warm_lines > 0 && self.rng.chance(phase.p_warm / (1.0 - phase.p_hot)) {
            let idx = phase.hot_lines + self.rng.below(phase.warm_lines);
            let line = self.layout.private_line(self.vm, self.vcpu, idx);
            return PhysAddr(line.base().0 + self.rng.below(8) * 8);
        }
        // Shared data is read-mostly: stores reach the shared regions
        // at a scaled-down rate, and when they do they spread flatly
        // over the footprint (appends, logs) instead of hammering the
        // read-hot head.
        let (p_os, p_shared) = if is_store {
            (
                phase.p_os_data * phase.store_share_scale,
                phase.p_shared * phase.store_share_scale,
            )
        } else {
            (phase.p_os_data, phase.p_shared)
        };
        let r = self.rng.unit();
        let os_draw = if is_store {
            &self.draws.phase[di].os_store
        } else {
            &self.draws.phase[di].os
        };
        let line = if let Some(pl) = os_draw.as_ref().filter(|_| r < p_os) {
            let (raw, n) = (pl.sample(&mut self.rng), pl.n());
            let idx = self.affine_index(raw, n, phase, is_store);
            self.layout.os_line(self.vm, idx)
        } else {
            let shared_draw = if is_store {
                &self.draws.phase[di].shared_store
            } else {
                &self.draws.phase[di].shared
            };
            if let Some(pl) = shared_draw.as_ref().filter(|_| r < p_os + p_shared) {
                let (raw, n) = (pl.sample(&mut self.rng), pl.n());
                let idx = self.affine_index(raw, n, phase, is_store);
                self.layout.shared_line(self.vm, idx)
            } else {
                let idx = self.draws.phase[di].private.sample(&mut self.rng);
                self.layout.private_line(self.vm, self.vcpu, idx)
            }
        };
        PhysAddr(line.base().0 + self.rng.below(8) * 8)
    }

    /// Applies CPU affinity to a shared-region index: reads mostly
    /// target a per-VCPU-rotated window of the region (per-CPU slabs,
    /// per-connection buffers); a `p_true_share` fraction — and all
    /// stores, which are drawn flat — use the global frame.
    fn affine_index(&mut self, idx: u64, n: u64, phase: &PhaseProfile, is_store: bool) -> u64 {
        if is_store || self.rng.chance(phase.p_true_share) {
            return idx;
        }
        let offset = (self.vcpu.index() as u64).wrapping_mul(n / 24 + 1);
        (idx + offset) % n
    }

    /// Computes the fetch address and advances the sequential cursor.
    /// User code occupies the first lines of the VM's code region; OS
    /// code sits immediately above it, so the two privilege levels
    /// have disjoint instruction footprints.
    fn fetch_address(&mut self, phase: &PhaseProfile) -> PhysAddr {
        let os_offset = match self.privilege {
            Privilege::User => 0,
            Privilege::Os => self.profile.user.code_lines,
        };
        let window_bytes = phase.code_lines * 64;
        // The cursor stays below the window except across a privilege
        // switch (the two phases have different window sizes), so the
        // common case needs no `%` — u64 division is the single most
        // expensive ALU op on this per-op path.
        let cursor = if self.fetch_cursor < window_bytes {
            self.fetch_cursor
        } else {
            self.fetch_cursor % window_bytes
        };
        let line_idx = os_offset + cursor / 64;
        let addr = PhysAddr(self.layout.code_line(self.vm, line_idx).base().0 + cursor % 64);
        // `cursor < window_bytes` and both are multiples of 4, so the
        // wrap is a single conditional subtract.
        let next = cursor + 4;
        self.fetch_cursor = if next >= window_bytes {
            next - window_bytes
        } else {
            next
        };
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::Benchmark;
    use mmm_types::ids::PAGE_BYTES;

    fn stream(b: Benchmark) -> OpStream {
        OpStream::new(b.profile(), VmId(0), VcpuId(1), 42)
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = stream(Benchmark::Apache);
        let mut b = stream(Benchmark::Apache);
        for _ in 0..10_000 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn different_vcpus_get_different_streams() {
        let mut a = OpStream::new(Benchmark::Oltp.profile(), VmId(0), VcpuId(0), 42);
        let mut b = OpStream::new(Benchmark::Oltp.profile(), VmId(0), VcpuId(1), 42);
        let same = (0..1000)
            .filter(|_| {
                let (x, y) = (a.next_op(), b.next_op());
                x.class == y.class && x.data_addr == y.data_addr
            })
            .count();
        assert!(same < 900, "streams too correlated: {same}");
    }

    #[test]
    fn mix_approximates_profile() {
        let mut s = stream(Benchmark::Oltp);
        let n = 200_000;
        let mut loads = 0;
        let mut stores = 0;
        let mut user_ops = 0;
        for _ in 0..n {
            let op = s.next_op();
            if op.privilege == Privilege::User {
                user_ops += 1;
                match op.class {
                    OpClass::Load => loads += 1,
                    OpClass::Store => stores += 1,
                    _ => {}
                }
            }
        }
        let p = Benchmark::Oltp.profile();
        let lf = loads as f64 / user_ops as f64;
        let sf = stores as f64 / user_ops as f64;
        assert!((lf - p.user.load_frac).abs() < 0.02, "load frac {lf}");
        assert!((sf - p.user.store_frac).abs() < 0.02, "store frac {sf}");
    }

    #[test]
    fn phase_lengths_match_profile_means() {
        // Use a scaled-down profile so thousands of phases fit in a
        // fast test; the code path is identical for the real means.
        let mut p = Benchmark::Apache.profile();
        p.mean_user_insts = 800;
        p.mean_os_insts = 400;
        let mut s = OpStream::new(p.clone(), VmId(0), VcpuId(0), 42);
        let mut user_lens = Vec::new();
        let mut os_lens = Vec::new();
        let mut current = 0u64;
        for _ in 0..3_000_000 {
            let op = s.next_op();
            if op.enters_os {
                user_lens.push(current);
                current = 0;
            } else if op.exits_os {
                os_lens.push(current);
                current = 0;
            }
            current += 1;
        }
        assert!(user_lens.len() > 1000, "need many phases for a mean");
        let mu = user_lens.iter().sum::<u64>() as f64 / user_lens.len() as f64;
        let mo = os_lens.iter().sum::<u64>() as f64 / os_lens.len() as f64;
        assert!(
            (mu / p.mean_user_insts as f64 - 1.0).abs() < 0.10,
            "user phase mean {mu} vs {}",
            p.mean_user_insts
        );
        assert!(
            (mo / p.mean_os_insts as f64 - 1.0).abs() < 0.10,
            "os phase mean {mo} vs {}",
            p.mean_os_insts
        );
    }

    #[test]
    fn os_entry_and_exit_are_serializing_and_alternate() {
        let mut s = stream(Benchmark::Zeus);
        // The stream may start mid-OS-phase (randomized initial phase).
        let mut expecting_entry = s.privilege() == Privilege::User;
        let mut transitions = 0;
        for _ in 0..2_000_000 {
            let op = s.next_op();
            if op.enters_os {
                assert!(expecting_entry, "two OS entries without an exit");
                assert_eq!(op.class, OpClass::Serializing);
                assert_eq!(op.privilege, Privilege::Os);
                expecting_entry = false;
                transitions += 1;
            }
            if op.exits_os {
                assert!(!expecting_entry, "exit without entry");
                assert_eq!(op.class, OpClass::Serializing);
                assert_eq!(op.privilege, Privilege::User);
                expecting_entry = true;
                transitions += 1;
            }
        }
        assert!(transitions > 10, "Zeus must enter the OS frequently");
    }

    #[test]
    fn all_data_addresses_stay_inside_the_vm() {
        let layout = AddressLayout::new();
        let mut s = OpStream::new(Benchmark::Pgbench.profile(), VmId(3), VcpuId(2), 7);
        for _ in 0..100_000 {
            let op = s.next_op();
            if let Some(a) = op.data_addr {
                assert_eq!(layout.vm_of(a), Some(VmId(3)), "addr {a} escaped VM");
            }
            assert_eq!(layout.vm_of(op.fetch_addr), Some(VmId(3)));
        }
    }

    #[test]
    fn user_and_os_code_footprints_are_disjoint() {
        let mut s = stream(Benchmark::Oltp);
        let p = Benchmark::Oltp.profile();
        let layout = AddressLayout::new();
        let user_limit = layout.code_line(VmId(0), p.user.code_lines).base().0;
        for _ in 0..500_000 {
            let op = s.next_op();
            match op.privilege {
                Privilege::User => assert!(op.fetch_addr.0 < user_limit),
                Privilege::Os => assert!(op.fetch_addr.0 >= user_limit),
            }
        }
    }

    #[test]
    fn private_addresses_differ_between_vcpus() {
        let mut a = OpStream::new(Benchmark::Pmake.profile(), VmId(0), VcpuId(0), 9);
        let mut b = OpStream::new(Benchmark::Pmake.profile(), VmId(0), VcpuId(1), 9);
        // Private heaps start 256 MB into the VM span; pages there
        // must be strictly disjoint between VCPUs.
        let private_base = (256u64 << 20) / PAGE_BYTES;
        let collect = |s: &mut OpStream| {
            let mut pages = std::collections::HashSet::new();
            for _ in 0..50_000 {
                if let Some(addr) = s.next_op().data_addr {
                    if addr.page().0 >= private_base {
                        pages.insert(addr.page());
                    }
                }
            }
            pages
        };
        let pa = collect(&mut a);
        let pb = collect(&mut b);
        assert!(!pa.is_empty() && !pb.is_empty());
        assert_eq!(
            pa.intersection(&pb).count(),
            0,
            "private heaps must be disjoint between VCPUs"
        );
    }

    #[test]
    fn spec_like_is_almost_all_user() {
        let mut s = OpStream::new(Benchmark::SpecLike.profile(), VmId(0), VcpuId(0), 1);
        let os_ops = (0..1_000_000)
            .filter(|_| s.next_op().privilege == Privilege::Os)
            .count();
        assert!(os_ops < 30_000, "spec-like spent {os_ops} ops in OS");
    }
}
