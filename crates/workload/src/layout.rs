//! Physical-address layout of the simulated machine.
//!
//! Each guest VM (or the single OS image) owns a fixed 1 GB span of
//! physical memory, subdivided into code, OS-data, shared-heap, and
//! per-VCPU private regions. Above all VM spans sit two machine-owned
//! regions: the *scratchpad* used by the mode-transition state machine
//! to stage VCPU state (paper §3.4.3), and the backing store of the
//! Protection Assistance Table (paper §3.4.1).
//!
//! The layout is pure address arithmetic — defining it in one place
//! lets the workload generator, the PAT initialization, and the
//! transition engine agree on which pages belong to whom.

use mmm_types::ids::PAGE_BYTES;
use mmm_types::{LineAddr, PageAddr, PhysAddr, VcpuId, VmId};
use std::ops::Range;

/// Span of physical memory owned by one VM (1 GB).
pub const VM_SPAN: u64 = 1 << 30;

/// Maximum number of VMs the layout supports.
pub const MAX_VMS: u64 = 32;

/// Base of the machine-owned scratchpad region (above all VM spans).
pub const SCRATCHPAD_BASE: u64 = MAX_VMS * VM_SPAN;

/// Scratchpad bytes reserved per VCPU (enough for vocal + mute copies
/// of the ~2.3 KB architected state, rounded to pages).
pub const SCRATCHPAD_PER_VCPU: u64 = 2 * PAGE_BYTES;

/// Base of the PAT backing store.
pub const PAT_BASE: u64 = SCRATCHPAD_BASE + (1 << 26);

/// Bytes of code region per VM (16 MB).
const CODE_BYTES: u64 = 16 << 20;
/// Offset and size of the OS-data region within a VM span (32 MB at 64 MB).
const OS_OFFSET: u64 = 64 << 20;
const OS_BYTES: u64 = 32 << 20;
/// Offset and size of the shared heap within a VM span (64 MB at 128 MB).
const SHARED_OFFSET: u64 = 128 << 20;
const SHARED_BYTES: u64 = 64 << 20;
/// Offset of per-VCPU private heaps (32 MB each, from 256 MB).
const PRIVATE_OFFSET: u64 = 256 << 20;
const PRIVATE_BYTES: u64 = 32 << 20;

/// Address-layout oracle. Stateless; all methods are pure arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AddressLayout;

impl AddressLayout {
    /// Creates the layout oracle.
    pub fn new() -> Self {
        AddressLayout
    }

    /// Base byte address of a VM's span.
    ///
    /// # Panics
    ///
    /// Panics if `vm` exceeds [`MAX_VMS`].
    pub fn vm_base(&self, vm: VmId) -> PhysAddr {
        assert!((vm.index() as u64) < MAX_VMS, "vm id out of range");
        PhysAddr(vm.index() as u64 * VM_SPAN)
    }

    /// The VM that owns a physical address, if it falls in a VM span.
    pub fn vm_of(&self, addr: PhysAddr) -> Option<VmId> {
        if addr.0 < SCRATCHPAD_BASE {
            Some(VmId::from_index((addr.0 / VM_SPAN) as usize))
        } else {
            None
        }
    }

    /// Full page range of a VM span (for PAT initialization).
    pub fn vm_pages(&self, vm: VmId) -> Range<u64> {
        let base = self.vm_base(vm).0;
        (base / PAGE_BYTES)..((base + VM_SPAN) / PAGE_BYTES)
    }

    /// The `idx`-th line of a VM's code region (wraps within region).
    pub fn code_line(&self, vm: VmId, idx: u64) -> LineAddr {
        let base = self.vm_base(vm).0;
        PhysAddr(base + (idx * 64) % CODE_BYTES).line()
    }

    /// The `idx`-th line of a VM's OS-data region (kernel/VMM
    /// structures, shared by all VCPUs of the VM).
    pub fn os_line(&self, vm: VmId, idx: u64) -> LineAddr {
        let base = self.vm_base(vm).0 + OS_OFFSET;
        PhysAddr(base + (idx * 64) % OS_BYTES).line()
    }

    /// The `idx`-th line of a VM's shared application heap.
    pub fn shared_line(&self, vm: VmId, idx: u64) -> LineAddr {
        let base = self.vm_base(vm).0 + SHARED_OFFSET;
        PhysAddr(base + (idx * 64) % SHARED_BYTES).line()
    }

    /// The `idx`-th line of a VCPU's private heap within its VM.
    ///
    /// # Panics
    ///
    /// Panics if the private heap for `vcpu` would overflow the VM span
    /// (more than 24 VCPUs per VM).
    pub fn private_line(&self, vm: VmId, vcpu: VcpuId, idx: u64) -> LineAddr {
        let off = PRIVATE_OFFSET + vcpu.index() as u64 * PRIVATE_BYTES;
        assert!(off + PRIVATE_BYTES <= VM_SPAN, "too many VCPUs for VM span");
        let base = self.vm_base(vm).0 + off;
        PhysAddr(base + (idx * 64) % PRIVATE_BYTES).line()
    }

    /// Scratchpad line range used to stage one VCPU's architected
    /// state during mode transitions. `copy` 0 is the vocal's save
    /// area, `copy` 1 the mute's redundant copy (paper §3.4.3).
    pub fn scratchpad_lines(&self, vcpu: VcpuId, copy: u8, state_bytes: u32) -> Vec<LineAddr> {
        assert!(copy < 2, "scratchpad holds two copies");
        let base =
            SCRATCHPAD_BASE + vcpu.index() as u64 * SCRATCHPAD_PER_VCPU + copy as u64 * PAGE_BYTES;
        let lines = (state_bytes as u64).div_ceil(64);
        assert!(lines * 64 <= PAGE_BYTES, "VCPU state exceeds a page");
        (0..lines).map(|i| PhysAddr(base + i * 64).line()).collect()
    }

    /// Line of the PAT backing store holding the protection bit for
    /// `page`. One 64-byte PAT line covers 512 pages (paper §3.4.1:
    /// one bit per 8 KB page).
    pub fn pat_line_for(&self, page: PageAddr) -> LineAddr {
        PhysAddr(PAT_BASE + (page.0 / 512) * 64).line()
    }

    /// Whether an address belongs to machine-owned space (scratchpad or
    /// PAT) rather than any VM.
    pub fn is_machine_owned(&self, addr: PhysAddr) -> bool {
        addr.0 >= SCRATCHPAD_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_spans_are_disjoint() {
        let l = AddressLayout::new();
        let a = l.vm_base(VmId(0)).0;
        let b = l.vm_base(VmId(1)).0;
        assert_eq!(b - a, VM_SPAN);
        assert_eq!(l.vm_of(PhysAddr(a)), Some(VmId(0)));
        assert_eq!(l.vm_of(PhysAddr(b - 1)), Some(VmId(0)));
        assert_eq!(l.vm_of(PhysAddr(b)), Some(VmId(1)));
    }

    #[test]
    fn machine_regions_are_outside_vms() {
        let l = AddressLayout::new();
        assert!(l.is_machine_owned(PhysAddr(SCRATCHPAD_BASE)));
        assert!(l.is_machine_owned(PhysAddr(PAT_BASE)));
        assert_eq!(l.vm_of(PhysAddr(SCRATCHPAD_BASE)), None);
    }

    #[test]
    fn regions_within_a_vm_do_not_overlap() {
        let l = AddressLayout::new();
        let vm = VmId(2);
        let code = l.code_line(vm, 0).base().0;
        let os = l.os_line(vm, 0).base().0;
        let sh = l.shared_line(vm, 0).base().0;
        let p0 = l.private_line(vm, VcpuId(0), 0).base().0;
        let p1 = l.private_line(vm, VcpuId(1), 0).base().0;
        // Region starts are strictly ordered and spaced by their sizes.
        assert!(code < os && os < sh && sh < p0 && p0 < p1);
        assert!(os - code >= CODE_BYTES);
        assert!(p1 - p0 >= PRIVATE_BYTES);
        // All in the right VM.
        for a in [code, os, sh, p0, p1] {
            assert_eq!(l.vm_of(PhysAddr(a)), Some(vm));
        }
    }

    #[test]
    fn region_indices_wrap_within_region() {
        let l = AddressLayout::new();
        let vm = VmId(0);
        let first = l.code_line(vm, 0);
        let wrapped = l.code_line(vm, CODE_BYTES / 64);
        assert_eq!(first, wrapped);
        let big = l.shared_line(vm, u64::MAX / 128);
        assert_eq!(l.vm_of(big.base()), Some(vm));
    }

    #[test]
    fn scratchpad_copies_are_disjoint_per_vcpu() {
        let l = AddressLayout::new();
        let a = l.scratchpad_lines(VcpuId(0), 0, 2304);
        let b = l.scratchpad_lines(VcpuId(0), 1, 2304);
        let c = l.scratchpad_lines(VcpuId(1), 0, 2304);
        assert_eq!(a.len(), 36); // 2304/64
        for x in &a {
            assert!(!b.contains(x));
            assert!(!c.contains(x));
        }
    }

    #[test]
    fn pat_lines_cover_512_pages_each() {
        let l = AddressLayout::new();
        let p0 = l.pat_line_for(PageAddr(0));
        let p511 = l.pat_line_for(PageAddr(511));
        let p512 = l.pat_line_for(PageAddr(512));
        assert_eq!(p0, p511);
        assert_ne!(p0, p512);
        assert_eq!(p512.0 - p0.0, 1);
    }

    #[test]
    #[should_panic(expected = "vm id out of range")]
    fn vm_base_bounds_checked() {
        AddressLayout::new().vm_base(VmId(99));
    }

    #[test]
    fn private_heaps_fit_exactly_24_vcpus() {
        let l = AddressLayout::new();
        // VCPU 23's heap ends exactly at the VM span boundary.
        let last = l.private_line(VmId(0), VcpuId(23), PRIVATE_BYTES / 64 - 1);
        assert_eq!(l.vm_of(last.base()), Some(VmId(0)));
        assert_eq!(last.base().0 + 64, VM_SPAN);
    }

    #[test]
    #[should_panic(expected = "too many VCPUs")]
    fn private_heap_overflow_is_rejected() {
        AddressLayout::new().private_line(VmId(0), VcpuId(24), 0);
    }

    #[test]
    #[should_panic(expected = "scratchpad holds two copies")]
    fn scratchpad_copy_bound_checked() {
        AddressLayout::new().scratchpad_lines(VcpuId(0), 2, 2304);
    }
}
