//! The six paper workloads (plus a SPEC-like compute profile).
//!
//! Parameters are calibrated against the per-workload observables the
//! paper publishes: the user/OS alternation intervals of Table 2, the
//! serializing-instruction stall range of §5.1 (15–46% of cycles under
//! Reunion), the C2C behaviour of §5.1 (pmake has very few C2C
//! transfers in the baseline; commercial workloads are sharing-heavy),
//! and the qualitative footprint descriptions of §4.1 (≈800 MB
//! databases, static web serving, parallel compilation).
//!
//! `EXPERIMENTS.md` records the calibration: measured baseline
//! user/OS cycles vs. Table 2 for every profile.
//!
//! # Recalibration procedure
//!
//! Phase lengths are specified in *instructions* but Table 2's targets
//! are *cycles*, so they depend on baseline IPC. After any change that
//! moves simulator timing:
//!
//! 1. `cargo run --release -p mmm-bench --example calib` (equilibrium
//!    run lengths are baked into the example);
//! 2. set each profile's `mean_user_insts = table2_user_cycles x
//!    measured ipc_user` (same for OS);
//! 3. iterate once — the measured IPCs shift slightly with the new
//!    phase mix — then regenerate the golden pins
//!    (`--example golden_gen`) and re-run `scripts/reproduce.sh`.

use crate::profile::{PhaseProfile, WorkloadProfile};

/// One of the paper's evaluation workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Apache static web server driven by Surge (OS-intensive).
    Apache,
    /// TPC-C-like OLTP on IBM DB2, ~800 MB database, 192 user threads.
    Oltp,
    /// TPC-C-like queries on PostgreSQL 8.1.3 (OSDL dbt2).
    Pgoltp,
    /// Parallel compile of PostgreSQL (GNU make + Forte C), user-heavy.
    Pmake,
    /// TPC-B-like queries on PostgreSQL.
    Pgbench,
    /// Zeus static web server driven by Surge (most OS-intensive).
    Zeus,
    /// A SPEC CPU2000-like compute-bound profile: rare OS entries,
    /// small kernel time. Not part of the paper's six, but used by its
    /// §5.3 argument ("for applications similar to SPEC CPU2000 ...
    /// this overhead would be even less"), and by our mode-switch
    /// frequency sweep.
    SpecLike,
    /// The SPEC-like profile with an explicit OS-entry interval:
    /// user phases average `user_kilo_insts` thousand instructions.
    /// Powers the §5.3 switch-frequency sweep, which varies how often
    /// a single-OS mixed-mode system must transition.
    Synthetic {
        /// Mean user-phase length in thousands of instructions.
        user_kilo_insts: u16,
    },
}

impl Benchmark {
    /// The six benchmarks of the paper's evaluation, in figure order.
    pub fn all() -> [Benchmark; 6] {
        [
            Benchmark::Apache,
            Benchmark::Oltp,
            Benchmark::Pgoltp,
            Benchmark::Pmake,
            Benchmark::Pgbench,
            Benchmark::Zeus,
        ]
    }

    /// Name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// Parses a benchmark from its manifest spelling — the figure
    /// name, compared case-insensitively (`"apache"`, `"oltp"`,
    /// `"pgoltp"`, `"pmake"`, `"pgbench"`, `"zeus"`, `"spec-like"`),
    /// plus `"synthetic:<K>"` for [`Benchmark::Synthetic`] with a
    /// mean user phase of `K` thousand instructions. The inverse of
    /// [`Benchmark::name`] for every parseable case.
    pub fn from_name(s: &str) -> Option<Benchmark> {
        if let Some(k) = s.strip_prefix("synthetic:") {
            let user_kilo_insts: u16 = k.parse().ok()?;
            return Some(Benchmark::Synthetic { user_kilo_insts });
        }
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "apache" => Some(Benchmark::Apache),
            "oltp" => Some(Benchmark::Oltp),
            "pgoltp" => Some(Benchmark::Pgoltp),
            "pmake" => Some(Benchmark::Pmake),
            "pgbench" => Some(Benchmark::Pgbench),
            "zeus" => Some(Benchmark::Zeus),
            "spec-like" | "speclike" => Some(Benchmark::SpecLike),
            _ => None,
        }
    }

    /// The statistical profile of this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Benchmark::Apache => apache(),
            Benchmark::Oltp => oltp(),
            Benchmark::Pgoltp => pgoltp(),
            Benchmark::Pmake => pmake(),
            Benchmark::Pgbench => pgbench(),
            Benchmark::Zeus => zeus(),
            Benchmark::SpecLike => spec_like(),
            Benchmark::Synthetic { user_kilo_insts } => {
                let mut p = spec_like();
                p.name = "synthetic";
                p.mean_user_insts = (user_kilo_insts as u64).max(1) * 1000;
                p
            }
        }
    }
}

/// Common user-phase skeleton for the commercial workloads.
fn commercial_user() -> PhaseProfile {
    PhaseProfile {
        load_frac: 0.25,
        store_frac: 0.10,
        branch_frac: 0.13,
        long_alu_frac: 0.03,
        si_rate: 1.0 / 20_000.0,
        mispredict_rate: 0.030,
        jump_rate: 0.25,
        code_lines: 4_096,     // 256 KB of hot user text
        private_lines: 12_000, // ~0.75 MB per thread
        os_lines: 48_000,
        shared_lines: 16_000,
        p_os_data: 0.02,
        p_shared: 0.10,
        skew: 1.35,
        p_hot: 0.70,
        hot_lines: 128,
        p_warm: 0.05,
        warm_lines: 8_000,
        code_skew: 1.90,
        store_share_scale: 0.20,
        p_true_share: 0.30,
    }
}

/// Common OS-phase skeleton: more memory traffic, frequent serializing
/// instructions, accesses concentrated on shared kernel structures.
fn commercial_os() -> PhaseProfile {
    PhaseProfile {
        load_frac: 0.27,
        store_frac: 0.14,
        branch_frac: 0.15,
        long_alu_frac: 0.01,
        si_rate: 1.0 / 180.0,
        mispredict_rate: 0.040,
        jump_rate: 0.30,
        code_lines: 6_144, // 384 KB of kernel text
        private_lines: 8_000,
        os_lines: 48_000, // 3 MB of kernel data
        shared_lines: 16_000,
        p_os_data: 0.55,
        p_shared: 0.08,
        skew: 1.30,
        p_hot: 0.60,
        hot_lines: 128,
        p_warm: 0.03,
        warm_lines: 3_000,
        code_skew: 1.80,
        store_share_scale: 0.20,
        p_true_share: 0.30,
    }
}

fn apache() -> WorkloadProfile {
    let mut user = commercial_user();
    user.p_shared = 0.06;
    user.shared_lines = 8_000;
    let mut os = commercial_os();
    os.si_rate = 1.0 / 140.0; // network stack: heavy trap/membar traffic
    WorkloadProfile {
        name: "Apache",
        user,
        os,
        // Table 2: 59k user / 98k OS cycles between switches.
        mean_user_insts: 33_600,
        mean_os_insts: 36_600,
    }
}

fn zeus() -> WorkloadProfile {
    let mut user = commercial_user();
    user.p_shared = 0.06;
    user.shared_lines = 8_000;
    let mut os = commercial_os();
    os.si_rate = 1.0 / 130.0;
    WorkloadProfile {
        name: "Zeus",
        user,
        os,
        // Table 2: 65k user / 220k OS cycles.
        mean_user_insts: 33_100,
        mean_os_insts: 88_200,
    }
}

fn oltp() -> WorkloadProfile {
    let mut user = commercial_user();
    user.p_shared = 0.20; // DB2 buffer pool
    user.shared_lines = 80_000; // ~5 MB hot buffer pool
    user.private_lines = 13_000;
    let mut os = commercial_os();
    os.si_rate = 1.0 / 140.0;
    WorkloadProfile {
        name: "OLTP",
        user,
        os,
        // Table 2: 218k user / 52k OS cycles.
        mean_user_insts: 156_500,
        mean_os_insts: 16_600,
    }
}

fn pgoltp() -> WorkloadProfile {
    let mut user = commercial_user();
    user.p_shared = 0.18;
    user.shared_lines = 64_000;
    user.private_lines = 13_000;
    let mut os = commercial_os();
    os.si_rate = 1.0 / 140.0;
    WorkloadProfile {
        name: "pgoltp",
        user,
        os,
        // Table 2: 210k user / 35k OS cycles.
        mean_user_insts: 153_700,
        mean_os_insts: 10_500,
    }
}

fn pgbench() -> WorkloadProfile {
    let mut user = commercial_user();
    user.p_shared = 0.15;
    user.shared_lines = 48_000;
    user.private_lines = 12_500;
    let mut os = commercial_os();
    os.si_rate = 1.0 / 140.0;
    WorkloadProfile {
        name: "pgbench",
        user,
        os,
        // Table 2: 554k user / 126k OS cycles.
        mean_user_insts: 431_600,
        mean_os_insts: 44_700,
    }
}

fn pmake() -> WorkloadProfile {
    WorkloadProfile {
        name: "pmake",
        user: PhaseProfile {
            load_frac: 0.24,
            store_frac: 0.09,
            branch_frac: 0.14,
            long_alu_frac: 0.04,
            si_rate: 1.0 / 50_000.0,
            mispredict_rate: 0.020,
            jump_rate: 0.20,
            code_lines: 3_072,
            private_lines: 7_000, // compiler working set fits caches better
            os_lines: 24_000,
            shared_lines: 512, // "pmake has very few C2C transfers" (§5.1)
            p_os_data: 0.01,
            p_shared: 0.004,
            skew: 1.50, // hotter reuse: compilation loops
            p_hot: 0.76,
            hot_lines: 128,
            p_warm: 0.04,
            warm_lines: 5_000,
            code_skew: 2.20,
            store_share_scale: 0.10,
            p_true_share: 0.20,
        },
        os: PhaseProfile {
            p_os_data: 0.50,
            p_shared: 0.01,
            shared_lines: 512,
            os_lines: 24_000,
            si_rate: 1.0 / 160.0,
            ..commercial_os()
        },
        // Table 2: 312k user / 47k OS cycles.
        mean_user_insts: 439_000,
        mean_os_insts: 21_300,
    }
}

fn spec_like() -> WorkloadProfile {
    WorkloadProfile {
        name: "spec-like",
        user: PhaseProfile {
            load_frac: 0.26,
            store_frac: 0.10,
            branch_frac: 0.12,
            long_alu_frac: 0.08,
            si_rate: 1.0 / 100_000.0,
            mispredict_rate: 0.02,
            jump_rate: 0.25,
            code_lines: 1_024,
            private_lines: 30_000,
            os_lines: 8_000,
            shared_lines: 256,
            p_os_data: 0.0,
            p_shared: 0.0,
            skew: 1.50,
            p_hot: 0.73,
            hot_lines: 128,
            p_warm: 0.05,
            warm_lines: 8_000,
            code_skew: 2.20,
            store_share_scale: 0.10,
            p_true_share: 0.20,
        },
        os: PhaseProfile {
            si_rate: 1.0 / 120.0,
            p_shared: 0.0,
            shared_lines: 256,
            ..commercial_os()
        },
        // SPEC-like: several ms between OS entries (timer ticks only).
        mean_user_insts: 3_000_000,
        mean_os_insts: 8_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_paper_benchmarks_in_figure_order() {
        let names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            ["Apache", "OLTP", "pgoltp", "pmake", "pgbench", "Zeus"]
        );
    }

    #[test]
    fn from_name_inverts_name_and_rejects_garbage() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::from_name(b.name()), Some(b), "{}", b.name());
        }
        assert_eq!(Benchmark::from_name("SPEC-like"), Some(Benchmark::SpecLike));
        assert_eq!(
            Benchmark::from_name("synthetic:40"),
            Some(Benchmark::Synthetic {
                user_kilo_insts: 40
            })
        );
        assert_eq!(Benchmark::from_name("synthetic:x"), None);
        assert_eq!(Benchmark::from_name("tpc-h"), None);
        assert_eq!(Benchmark::from_name(""), None);
    }

    #[test]
    fn os_phases_serialize_more_than_user_phases() {
        for b in Benchmark::all() {
            let p = b.profile();
            assert!(
                p.os.si_rate > p.user.si_rate * 10.0,
                "{}: OS code must be SI-dense",
                p.name
            );
        }
    }

    #[test]
    fn web_servers_are_os_heavy_dbs_are_user_dominated() {
        // OS *cycles* dominate the web servers (Table 2: Apache 98k OS
        // vs 59k user; Zeus 220k vs 65k). OS IPC is roughly half of
        // user IPC, so in instruction terms this appears as OS phases
        // comparable to user phases rather than larger.
        for b in [Benchmark::Apache, Benchmark::Zeus] {
            let p = b.profile();
            assert!(
                p.mean_os_insts * 2 > p.mean_user_insts,
                "{} must be OS-heavy",
                p.name
            );
        }
        for b in [
            Benchmark::Oltp,
            Benchmark::Pgoltp,
            Benchmark::Pgbench,
            Benchmark::Pmake,
        ] {
            let p = b.profile();
            assert!(
                p.mean_user_insts > 3 * p.mean_os_insts,
                "{} must be user-dominated",
                p.name
            );
        }
    }

    #[test]
    fn pmake_shares_least() {
        let pm = Benchmark::Pmake.profile();
        for b in [Benchmark::Apache, Benchmark::Oltp, Benchmark::Zeus] {
            assert!(pm.user.p_shared < b.profile().user.p_shared / 5.0);
        }
    }

    #[test]
    fn synthetic_benchmark_scales_its_os_entry_interval() {
        let short = Benchmark::Synthetic {
            user_kilo_insts: 25,
        }
        .profile();
        let long = Benchmark::Synthetic {
            user_kilo_insts: 1500,
        }
        .profile();
        assert_eq!(short.mean_user_insts, 25_000);
        assert_eq!(long.mean_user_insts, 1_500_000);
        assert_eq!(short.mean_os_insts, long.mean_os_insts);
        short.validate().unwrap();
        long.validate().unwrap();
        // Degenerate parameter is clamped, not zero.
        let min = Benchmark::Synthetic { user_kilo_insts: 0 }.profile();
        assert_eq!(min.mean_user_insts, 1000);
    }

    #[test]
    fn spec_like_rarely_enters_os() {
        let s = Benchmark::SpecLike.profile();
        for b in Benchmark::all() {
            assert!(s.mean_user_insts > b.profile().mean_user_insts * 5);
        }
    }

    #[test]
    fn table2_ordering_is_respected() {
        // Per Table 2, pgbench has the longest user phases and Apache
        // the shortest; Zeus has the longest OS phases.
        // Phase lengths are calibrated in *instructions* (= Table 2
        // cycles x measured phase IPC), so only orderings that survive
        // the IPC scaling are asserted.
        let by = |b: Benchmark| b.profile().mean_user_insts;
        assert!(by(Benchmark::Pgbench) > by(Benchmark::Oltp));
        assert!(by(Benchmark::Pmake) > by(Benchmark::Oltp));
        assert!(by(Benchmark::Oltp) > by(Benchmark::Apache));
        let os = |b: Benchmark| b.profile().mean_os_insts;
        assert!(os(Benchmark::Zeus) > os(Benchmark::Apache));
        assert!(os(Benchmark::Apache) >= os(Benchmark::Oltp));
    }
}
