//! Property tests for the fingerprint exchange channel.
//!
//! Deterministic property testing: interleavings are generated from a
//! fixed-seed [`DetRng`], so failures reproduce exactly (the build is
//! offline; no proptest).

use mmm_reunion::channel::{PairChannel, Side};
use mmm_types::config::ReunionConfig;
use mmm_types::{DetRng, LineAddr};

/// Whatever the interleaving of vocal/mute publishes, an op's
/// release time (once known) is at least both sides' execution
/// completion plus the fingerprint latency, and never precedes an
/// older op's release.
#[test]
fn release_times_are_causal_and_monotone() {
    let mut gen = DetRng::new(0x0CEA, 0);
    for case in 0..128 {
        let n = gen.range(1, 120);
        let exec_latencies: Vec<(u64, u64)> = (0..n)
            .map(|_| (gen.range(1, 200), gen.range(1, 200)))
            .collect();
        let vocal_lead = gen.below(50);
        let cfg = ReunionConfig::default();
        let mut ch = PairChannel::new(cfg, 0);
        let mut t_vocal = 100u64;
        let mut t_mute = 100 + vocal_lead;
        for (seq, &(dv, dm)) in exec_latencies.iter().enumerate() {
            t_vocal += dv;
            t_mute += dm;
            ch.publish(Side::Vocal, seq as u64, t_vocal, None);
            ch.publish(Side::Mute, seq as u64, t_mute, None);
        }
        let mut prev_release = 0u64;
        let mut max_exec = 0u64;
        let mut tv = 100u64;
        let mut tm = 100 + vocal_lead;
        for (seq, &(dv, dm)) in exec_latencies.iter().enumerate() {
            tv += dv;
            tm += dm;
            max_exec = max_exec.max(tv).max(tm);
            let release = ch
                .commit_time(seq as u64, u64::MAX)
                .expect("fully published");
            assert!(
                release >= max_exec + cfg.fingerprint_latency as u64,
                "case {case}: release {release} precedes exchange of seq {seq}"
            );
            assert!(release >= prev_release, "case {case}: in-order Check stage");
            prev_release = release;
        }
    }
}

/// Every mismatching load raises exactly one heal for the line the
/// mute observed, and matching loads raise none.
#[test]
fn heals_match_the_mismatches() {
    let mut gen = DetRng::new(0x0CEB, 0);
    for case in 0..128 {
        let n = gen.range(1, 100);
        let loads: Vec<(u64, bool)> = (0..n).map(|_| (gen.below(32), gen.chance(0.5))).collect();
        let cfg = ReunionConfig::default();
        let mut ch = PairChannel::new(cfg, 0);
        let mut expected: Vec<LineAddr> = Vec::new();
        for (seq, &(line, stale)) in loads.iter().enumerate() {
            let l = LineAddr(0x100 + line);
            let vocal_v = 0xAAAA + seq as u64;
            let mute_v = if stale { vocal_v ^ 1 } else { vocal_v };
            ch.publish(Side::Vocal, seq as u64, seq as u64, Some((l, vocal_v)));
            ch.publish(Side::Mute, seq as u64, seq as u64 + 3, Some((l, mute_v)));
            if stale {
                expected.push(l);
            }
        }
        let heals = ch.take_heals();
        assert_eq!(heals, expected, "case {case}");
        assert_eq!(
            ch.stats().input_incoherence,
            loads.iter().filter(|&&(_, s)| s).count() as u64,
            "case {case}"
        );
    }
}

/// Recovery only ever pushes release times later, never earlier.
#[test]
fn recovery_floor_never_rewinds() {
    let mut gen = DetRng::new(0x0CEC, 0);
    for case in 0..128 {
        let n_ops = gen.range(2, 64);
        let mismatch_at = gen.below(32).min(n_ops - 1);
        let cfg = ReunionConfig::default();
        let mut clean = PairChannel::new(cfg, 0);
        let mut faulty = PairChannel::new(cfg, 0);
        for seq in 0..n_ops {
            let l = LineAddr(7);
            let (cv, fv) = (100 + seq, if seq == mismatch_at { 1 } else { 100 + seq });
            clean.publish(Side::Vocal, seq, seq * 2, Some((l, cv)));
            clean.publish(Side::Mute, seq, seq * 2 + 1, Some((l, cv)));
            faulty.publish(Side::Vocal, seq, seq * 2, Some((l, 100 + seq)));
            faulty.publish(Side::Mute, seq, seq * 2 + 1, Some((l, fv)));
        }
        for seq in 0..n_ops {
            let c = clean.commit_time(seq, u64::MAX).unwrap();
            let f = faulty.commit_time(seq, u64::MAX).unwrap();
            assert!(
                f >= c,
                "case {case}: recovery made seq {seq} commit earlier"
            );
            if seq == mismatch_at {
                // The mismatching op itself must absorb the full
                // recovery; younger ops may outrun the floor once
                // their natural release passes it.
                assert!(
                    f >= c + cfg.recovery_penalty as u64,
                    "case {case}: the mismatching op must absorb the recovery"
                );
            }
        }
    }
}
