//! Reunion: complexity-effective dual-modular redundancy.
//!
//! Implements the loose lock-stepping scheme the paper adopts for its
//! reliable mode (§3.2, after Smolens et al., MICRO 2006):
//!
//! * A *logical processing pair* joins two cores that redundantly
//!   execute one instruction stream and appear to software as one
//!   logical core. The **vocal** core participates in coherence as
//!   normal; the **mute** core loads through its own private hierarchy
//!   but never exposes state ("mute incoherence" is enforced by the
//!   `coherent = false` request path of `mmm-mem`).
//! * An added in-order **Check** pipeline stage holds each instruction
//!   until a fingerprint summarizing its outputs has been exchanged
//!   with the partner over a dedicated 10-cycle network and found
//!   equal. Fingerprints summarize several instructions at once.
//! * When the mute's best-effort data was stale (*input incoherence*)
//!   or a transient fault corrupted either core, the fingerprints
//!   differ; the pair synchronizes, rolls back, and re-executes, and
//!   the mute's stale line is refetched — modelled by a recovery
//!   stall plus a heal of the offending line.
//!
//! The pair abstraction is deliberately independent of *which* two
//! cores are joined: "a major advantage of choosing Reunion ... is
//! that it allows any core to operate as a vocal or mute for any
//! other core" (paper §3.5), which is what MMM-TP's scheduler relies
//! on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pair;

/// The fingerprint exchange channel now lives in `mmm-cpu` (the gate
/// is devirtualized into the core's commit path); re-exported here so
/// existing `mmm_reunion::channel::…` paths keep working.
pub use mmm_cpu::channel;

pub use channel::{PairChannel, PairStats, Side};
pub use pair::DmrPair;
