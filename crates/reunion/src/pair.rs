//! Coupling two cores into a logical DMR pair.
//!
//! [`DmrPair::couple`] wires a vocal and a mute core around a shared
//! [`PairChannel`]: both receive one side of an [`ExecContext::fork`]
//! (the same deterministic op sequence, generated once and replayed
//! through the fork's shared buffer), the mute is switched to
//! incoherent memory requests, and both get a commit gate backed by
//! the channel.
//!
//! [`DmrPair::decouple`] tears the pair down and returns the vocal's
//! context — the architecturally authoritative one.
//!
//! The pair is agnostic of *which* cores are joined; MMM-TP re-pairs
//! cores dynamically (paper §3.5).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use mmm_cpu::{Core, ExecContext, Gate, PairGate};
use mmm_mem::MemorySystem;
use mmm_trace::{Event, Forensics, ProfPhase, Profiler, Tracer};
use mmm_types::config::ReunionConfig;
use mmm_types::{CoreId, Cycle};

use crate::channel::{PairChannel, PairStats, Side};

/// A live logical processing pair.
pub struct DmrPair {
    vocal: CoreId,
    mute: CoreId,
    channel: Rc<RefCell<PairChannel>>,
    /// Mirror of the channel's service flag: set when a heal or
    /// mismatch is queued, cleared by [`DmrPair::service`].
    dirty: Rc<Cell<bool>>,
    tracer: Tracer,
    /// Self-profiler handle; one branch per service call when off.
    profiler: Profiler,
    /// Fault-forensics handle; mismatches land in the vocal core's
    /// black-box ring. One branch per service call when off.
    forensics: Forensics,
}

impl DmrPair {
    /// Couples `vocal` and `mute` to redundantly execute `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if either core is busy.
    pub fn couple(
        vocal: &mut Core,
        mute: &mut Core,
        mut ctx: ExecContext,
        cfg: &ReunionConfig,
    ) -> DmrPair {
        let channel = Rc::new(RefCell::new(PairChannel::new(*cfg, ctx.seq())));
        let mute_ctx = ctx.fork();
        vocal.set_context(ctx);
        vocal.set_coherent(true);
        vocal.set_gate_kind(Some(Gate::Pair(PairGate::new(
            Rc::clone(&channel),
            Side::Vocal,
        ))));
        mute.set_context(mute_ctx);
        mute.set_coherent(false);
        mute.set_gate_kind(Some(Gate::Pair(PairGate::new(
            Rc::clone(&channel),
            Side::Mute,
        ))));
        let dirty = channel.borrow().service_flag();
        DmrPair {
            vocal: vocal.id(),
            mute: mute.id(),
            channel,
            dirty,
            tracer: Tracer::off(),
            profiler: Profiler::off(),
            forensics: Forensics::off(),
        }
    }

    /// Installs a tracer handle: subsequent fingerprint mismatches are
    /// emitted as [`Event::CheckMismatch`] records.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs a self-profiler handle so pair service attributes its
    /// host cost to [`ProfPhase::Pair`]. Purely observational.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Installs a fault-forensics handle: serviced fingerprint
    /// mismatches are stamped into the vocal core's black-box ring.
    pub fn set_forensics(&mut self, forensics: Forensics) {
        self.forensics = forensics;
    }

    /// The vocal core's id.
    pub fn vocal(&self) -> CoreId {
        self.vocal
    }

    /// The mute core's id.
    pub fn mute(&self) -> CoreId {
        self.mute
    }

    /// Tears the pair down, returning the vocal's (authoritative)
    /// context. Both cores are squashed, un-gated, and the mute is
    /// restored to coherent operation.
    ///
    /// # Panics
    ///
    /// Panics if the supplied cores are not this pair's cores.
    pub fn decouple(self, vocal: &mut Core, mute: &mut Core, now: Cycle) -> ExecContext {
        assert_eq!(vocal.id(), self.vocal, "wrong vocal core");
        assert_eq!(mute.id(), self.mute, "wrong mute core");
        let ctx = vocal.take_context(now).expect("vocal holds the context");
        let _ = mute.take_context(now);
        vocal.set_gate(None);
        mute.set_gate(None);
        mute.set_coherent(true);
        ctx
    }

    /// Whether the channel has queued heals or mismatches for
    /// [`DmrPair::service`] — the pair's service deadline, as seen by
    /// the system's event wheel. Channel work is only ever queued by
    /// core activity (gate publishes and releases during
    /// `Core::tick`), so a pair whose cores are asleep can be skipped
    /// over without polling this: the flag cannot rise while no core
    /// runs, and a due service always lands on the same cycle as the
    /// core activity that queued it.
    pub fn needs_service(&self) -> bool {
        self.dirty.get()
    }

    /// Services pending recoveries: invalidates the mute's stale lines
    /// so re-execution refetches coherent data. Call once per
    /// simulation cycle (cheap when idle).
    ///
    /// Returns the detection cycles of any *injected-fault* mismatches
    /// drained this call (empty on the fast path — an empty `Vec` does
    /// not allocate), so the caller can attribute detections back to
    /// their injection campaign.
    pub fn service(&self, mem: &mut MemorySystem) -> Vec<Cycle> {
        if !self.dirty.get() {
            return Vec::new();
        }
        let _prof = self.profiler.enter(ProfPhase::Pair);
        self.dirty.set(false);
        let (heals, mismatches) = self.channel.borrow_mut().drain_service();
        for line in heals {
            mem.heal_line(self.mute, line);
        }
        let mut fault_detects = Vec::new();
        for (at, cause) in mismatches {
            self.tracer.emit(at, || Event::CheckMismatch {
                vocal: self.vocal,
                mute: self.mute,
                cause,
            });
            self.forensics.note(at, || Event::CheckMismatch {
                vocal: self.vocal,
                mute: self.mute,
                cause,
            });
            if cause == "fault" {
                fault_detects.push(at);
            }
        }
        fault_detects
    }

    /// Arms a transient-fault injection on this pair's next compared
    /// instruction. Returns whether this call newly armed the fault
    /// (see [`PairChannel::inject_fault`]).
    pub fn inject_fault(&self) -> bool {
        self.channel.borrow_mut().inject_fault()
    }

    /// Channel counters (cloned out of the shared channel).
    pub fn stats(&self) -> PairStats {
        self.channel.borrow().stats().clone()
    }

    /// Resets channel counters (after warm-up).
    pub fn reset_stats(&self) {
        self.channel.borrow_mut().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::{SystemConfig, VcpuId, VmId};
    use mmm_workload::{Benchmark, OpStream};

    fn setup(_seed: u64) -> (Core, Core, Core, MemorySystem, SystemConfig) {
        let cfg = SystemConfig::default();
        let mem = MemorySystem::new(&cfg);
        (
            Core::new(CoreId(0), &cfg),
            Core::new(CoreId(1), &cfg),
            Core::new(CoreId(2), &cfg),
            mem,
            cfg,
        )
    }

    fn ctx(b: Benchmark, vcpu: u16, seed: u64) -> ExecContext {
        ExecContext::new(OpStream::new(b.profile(), VmId(0), VcpuId(vcpu), seed))
    }

    fn run_pair(
        vocal: &mut Core,
        mute: &mut Core,
        pair: &DmrPair,
        mem: &mut MemorySystem,
        from: Cycle,
        to: Cycle,
    ) {
        for now in from..to {
            vocal.tick(now, mem);
            mute.tick(now, mem);
            pair.service(mem);
        }
    }

    #[test]
    fn pair_executes_redundantly_and_commits() {
        let (mut vocal, mut mute, _solo, mut mem, cfg) = setup(1);
        let pair = DmrPair::couple(
            &mut vocal,
            &mut mute,
            ctx(Benchmark::Pmake, 0, 1),
            &cfg.reunion,
        );
        run_pair(&mut vocal, &mut mute, &pair, &mut mem, 0, 100_000);
        let v = vocal.stats().commits();
        let m = mute.stats().commits();
        assert!(v > 5_000, "vocal commits: {v}");
        // Loose lockstep: both commit the same stream, within a window
        // of slack.
        assert!((v as i64 - m as i64).unsigned_abs() <= 256, "v={v} m={m}");
        assert!(pair.stats().ops_compared > 5_000);
    }

    #[test]
    fn dmr_is_slower_than_solo_execution() {
        let (mut vocal, mut mute, mut solo, mut mem, cfg) = setup(2);
        // Same benchmark, different VCPUs so footprints do not collide.
        let pair = DmrPair::couple(
            &mut vocal,
            &mut mute,
            ctx(Benchmark::Oltp, 0, 2),
            &cfg.reunion,
        );
        solo.set_context(ctx(Benchmark::Oltp, 1, 2));
        for now in 0..150_000 {
            vocal.tick(now, &mut mem);
            mute.tick(now, &mut mem);
            solo.tick(now, &mut mem);
            pair.service(&mut mem);
        }
        let dmr_ipc = vocal.stats().commits() as f64 / 150_000.0;
        let solo_ipc = solo.stats().commits() as f64 / 150_000.0;
        assert!(
            dmr_ipc < solo_ipc,
            "DMR must cost IPC: {dmr_ipc:.3} !< {solo_ipc:.3}"
        );
        assert!(vocal.stats().check_wait_cycles > 0);
    }

    #[test]
    fn injected_fault_is_detected_and_recovered() {
        let (mut vocal, mut mute, _solo, mut mem, cfg) = setup(3);
        let pair = DmrPair::couple(
            &mut vocal,
            &mut mute,
            ctx(Benchmark::Pmake, 0, 3),
            &cfg.reunion,
        );
        run_pair(&mut vocal, &mut mute, &pair, &mut mem, 0, 20_000);
        pair.inject_fault();
        run_pair(&mut vocal, &mut mute, &pair, &mut mem, 20_000, 60_000);
        assert_eq!(pair.stats().faults_detected, 1);
        assert!(pair.stats().recovery_cycles > 0);
        // Execution continues past the recovery.
        let commits = vocal.stats().commits();
        run_pair(&mut vocal, &mut mute, &pair, &mut mem, 60_000, 80_000);
        assert!(vocal.stats().commits() > commits);
    }

    #[test]
    fn input_incoherence_arises_from_foreign_writes() {
        // Two pairs of the same VM share OS/shared regions: one pair's
        // vocal writes lines the other pair's mute has cached stale.
        let cfg = SystemConfig::default();
        let mut mem = MemorySystem::new(&cfg);
        let mut v0 = Core::new(CoreId(0), &cfg);
        let mut m0 = Core::new(CoreId(1), &cfg);
        let mut v1 = Core::new(CoreId(2), &cfg);
        let mut m1 = Core::new(CoreId(3), &cfg);
        // Zeus: OS-heavy, strongly shared.
        let p0 = DmrPair::couple(&mut v0, &mut m0, ctx(Benchmark::Zeus, 0, 4), &cfg.reunion);
        let p1 = DmrPair::couple(&mut v1, &mut m1, ctx(Benchmark::Zeus, 1, 4), &cfg.reunion);
        for now in 0..400_000 {
            v0.tick(now, &mut mem);
            m0.tick(now, &mut mem);
            v1.tick(now, &mut mem);
            m1.tick(now, &mut mem);
            p0.service(&mut mem);
            p1.service(&mut mem);
        }
        let total_incoherence = p0.stats().input_incoherence + p1.stats().input_incoherence;
        assert!(
            total_incoherence > 0,
            "sharing workloads must exhibit input incoherence"
        );
        // And recovery must have healed: both pairs still commit.
        assert!(v0.stats().commits() > 1_000);
        assert!(v1.stats().commits() > 1_000);
    }

    #[test]
    fn decouple_returns_vocal_context_and_frees_cores() {
        let (mut vocal, mut mute, _solo, mut mem, cfg) = setup(5);
        let pair = DmrPair::couple(
            &mut vocal,
            &mut mute,
            ctx(Benchmark::Pmake, 0, 5),
            &cfg.reunion,
        );
        run_pair(&mut vocal, &mut mute, &pair, &mut mem, 0, 50_000);
        let commits = vocal.stats().commits();
        let ctx = pair.decouple(&mut vocal, &mut mute, 50_000);
        assert_eq!(ctx.commits(), commits);
        assert!(!vocal.is_busy() && !mute.is_busy());
        assert!(mute.coherent(), "mute rejoins the coherent world");
        assert!(!vocal.has_gate() && !mute.has_gate());
        // The context can go run solo (performance mode).
        let mut perf = Core::new(CoreId(7), &cfg);
        perf.set_context(ctx);
        for now in 50_000..80_000 {
            perf.tick(now, &mut mem);
        }
        assert!(perf.stats().commits() > 0, "execution resumes solo");
    }

    #[test]
    fn mute_never_pollutes_directory() {
        let (mut vocal, mut mute, _solo, mut mem, cfg) = setup(6);
        let pair = DmrPair::couple(
            &mut vocal,
            &mut mute,
            ctx(Benchmark::Oltp, 0, 6),
            &cfg.reunion,
        );
        run_pair(&mut vocal, &mut mute, &pair, &mut mem, 0, 100_000);
        // Every line the directory tracks for the mute core would be a
        // protocol violation (mode-switch scratch traffic is the only
        // legal coherent mute traffic, and there is none here).
        let mute_id = pair.mute();
        let mut violations = 0;
        for l in 0..(1u64 << 14) {
            // Spot-check a swath of the address space.
            if mem
                .directory()
                .entry(mmm_types::LineAddr(l))
                .has_sharer(mute_id)
            {
                violations += 1;
            }
        }
        assert_eq!(violations, 0);
    }
}
