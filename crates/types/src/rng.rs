//! Deterministic random-number generation.
//!
//! Experiments must be bit-reproducible across runs and platforms, so
//! every stochastic component draws from a [`DetRng`] seeded from the
//! experiment seed plus a stable per-component stream id. The
//! generator is a self-contained ChaCha8 keystream (no external
//! crates — the build is offline): portable, counter-based, and fast
//! enough that RNG draws never show up in simulator profiles.

/// A deterministic, portable random-number generator.
///
/// A ChaCha8 keystream generator with the handful of draw shapes the
/// simulator needs (Bernoulli trials, bounded integers, geometric
/// interarrivals, and a truncated power-law for cache footprints).
/// Different `(seed, stream)` pairs yield independent sequences;
/// identical pairs yield identical sequences, on every platform.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    stream: u64,
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

/// SplitMix64 step, used only to expand the one-word seed into the
/// 256-bit ChaCha key.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One lane-wise ChaCha round over the four row vectors — the same
/// arithmetic as four quarter-rounds, but phrased as whole-row
/// operations so the optimizer can keep each row in one SIMD register
/// instead of juggling scattered indices into a flat state array.
#[inline(always)]
fn row_round(a: &mut [u32; 4], b: &mut [u32; 4], c: &mut [u32; 4], d: &mut [u32; 4]) {
    for i in 0..4 {
        a[i] = a[i].wrapping_add(b[i]);
        d[i] = (d[i] ^ a[i]).rotate_left(16);
    }
    for i in 0..4 {
        c[i] = c[i].wrapping_add(d[i]);
        b[i] = (b[i] ^ c[i]).rotate_left(12);
    }
    for i in 0..4 {
        a[i] = a[i].wrapping_add(b[i]);
        d[i] = (d[i] ^ a[i]).rotate_left(8);
    }
    for i in 0..4 {
        c[i] = c[i].wrapping_add(d[i]);
        b[i] = (b[i] ^ c[i]).rotate_left(7);
    }
}

/// Rotates the lanes of a row left by `N` positions (a register
/// shuffle), mapping the column layout onto the diagonals and back.
#[inline(always)]
fn rotl_lanes<const N: usize>(x: [u32; 4]) -> [u32; 4] {
    [x[N % 4], x[(N + 1) % 4], x[(N + 2) % 4], x[(N + 3) % 4]]
}

impl DetRng {
    /// Creates a generator from an experiment seed and a component
    /// stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self {
            seed,
            stream,
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Runs the ChaCha8 block function for the current counter and
    /// refills the output buffer.
    fn refill(&mut self) {
        // "expand 32-byte k" || key || block counter || stream nonce,
        // as four row vectors.
        let a0: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
        let b0: [u32; 4] = [self.key[0], self.key[1], self.key[2], self.key[3]];
        let c0: [u32; 4] = [self.key[4], self.key[5], self.key[6], self.key[7]];
        let d0: [u32; 4] = [
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for _ in 0..4 {
            // A double round: a column round on the rows as laid out,
            // then a lane rotation maps the diagonals onto the
            // columns for the diagonal round, and the inverse
            // rotation restores the layout.
            row_round(&mut a, &mut b, &mut c, &mut d);
            b = rotl_lanes::<1>(b);
            c = rotl_lanes::<2>(c);
            d = rotl_lanes::<3>(d);
            row_round(&mut a, &mut b, &mut c, &mut d);
            b = rotl_lanes::<3>(b);
            c = rotl_lanes::<2>(c);
            d = rotl_lanes::<1>(d);
        }
        for i in 0..4 {
            self.buf[i] = a[i].wrapping_add(a0[i]);
            self.buf[4 + i] = b[i].wrapping_add(b0[i]);
            self.buf[8 + i] = c[i].wrapping_add(c0[i]);
            self.buf[12 + i] = d[i].wrapping_add(d0[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// Raw 32-bit keystream word.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Raw 64-bit draw (for hashing/fingerprint seeds).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply range reduction (Lemire). The modulo bias
        // is at most 2^-64 per draw — far below anything a simulator
        // statistic can resolve.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric interarrival: number of trials until an event with
    /// per-trial probability `p` fires, at least 1. Used for syscall,
    /// fault, and serializing-instruction interarrival times. Returns
    /// `u64::MAX` when `p` is non-positive.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 1;
        }
        let u = self.unit().max(f64::MIN_POSITIVE);
        let n = (u.ln() / (1.0 - p).ln()).ceil();
        (n as u64).max(1)
    }

    /// A truncated power-law draw over `[0, n)`: index 0 is hottest.
    ///
    /// `skew` ∈ (0, ∞): larger values concentrate mass on low indices.
    /// `skew = 1` is the exact (continuous) Zipf case, matching the
    /// heavy reuse of hot lines observed in commercial workloads.
    #[inline]
    pub fn power_law(&mut self, n: u64, skew: f64) -> u64 {
        let (a, inv) = PowerLaw::constants(n, skew);
        self.power_law_prepared(n, a, inv)
    }

    /// Power-law draw using precomputed constants from
    /// [`PowerLaw::constants`] — the reference inverse-CDF path (one
    /// `powf` per draw). Hot workload streams use the bit-equal
    /// [`crate::sampler::PowerLawTable`] instead; this path remains
    /// the reference the table is built from and verified against.
    #[inline]
    pub fn power_law_prepared(&mut self, n: u64, a: f64, inv: f64) -> u64 {
        debug_assert!(n > 0, "power_law over empty domain");
        let u = self.unit();
        power_law_eval(n, a, inv, u)
    }

    /// Derives a child generator for a sub-component. The child stream
    /// is a stable function of this generator's seed, stream, and
    /// `tag`, not of how many draws have been made.
    pub fn child(&self, tag: u64) -> DetRng {
        DetRng::new(
            self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            self.stream.wrapping_add(tag).wrapping_add(1),
        )
    }
}

/// The shared scalar evaluation of the truncated power-law inverse
/// CDF at `u` ∈ [0, 1). This is the *single* definition used by both
/// the per-draw `powf` reference path and the threshold-table
/// construction in [`crate::sampler`], which is what makes the table
/// bit-equal to the reference by construction.
///
/// `inv == 0.0` marks the exact Zipf case (`skew == 1`), where the
/// inverse CDF is `(n+1)^u - 1` and `a` holds `n + 1`; `1/(1-skew)`
/// is never zero for any other skew, so the marker is unambiguous.
#[inline]
pub fn power_law_eval(n: u64, a: f64, inv: f64, u: f64) -> u64 {
    // Inverse-CDF of p(x) ~ (x+1)^(-skew) over a continuous domain,
    // cheap and adequate for footprint modelling.
    let x = if inv == 0.0 {
        a.powf(u) - 1.0
    } else {
        (a * u + (1.0 - u)).powf(inv) - 1.0
    };
    (x as u64).min(n - 1)
}

/// Precomputed constants for [`DetRng::power_law_prepared`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    /// Domain size.
    pub n: u64,
    /// `(n + 1)^(1 - skew)`, or `n + 1` in the Zipf case (`skew == 1`).
    pub a: f64,
    /// `1 / (1 - skew)`, or the `0.0` Zipf marker (see
    /// [`power_law_eval`]).
    pub inv: f64,
}

impl PowerLaw {
    /// Builds constants for a domain of `n` lines with the given skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `skew <= 0`.
    pub fn new(n: u64, skew: f64) -> Self {
        let (a, inv) = Self::constants(n, skew);
        Self { n, a, inv }
    }

    /// The raw `(a, inv)` pair. `skew == 1` (exact Zipf) yields the
    /// `(n + 1, 0.0)` marker encoding described on [`power_law_eval`].
    pub fn constants(n: u64, skew: f64) -> (f64, f64) {
        assert!(n > 0, "power_law over empty domain");
        assert!(skew > 0.0, "skew must be positive");
        if (skew - 1.0).abs() <= 1e-9 {
            (n as f64 + 1.0, 0.0)
        } else {
            ((n as f64 + 1.0).powf(1.0 - skew), 1.0 / (1.0 - skew))
        }
    }

    /// Draws an index in `[0, n)` from `rng`.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        rng.power_law_prepared(self.n, self.a, self.inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn chacha8_known_answer() {
        // ChaCha8 keystream with an all-zero key and nonce, first block:
        // reference values from the eSTREAM/RFC test-vector family.
        let mut r = DetRng {
            seed: 0,
            stream: 0,
            key: [0; 8],
            counter: 0,
            buf: [0; 16],
            idx: 16,
        };
        r.refill();
        let first: [u8; 16] = {
            let mut out = [0u8; 16];
            for (i, w) in r.buf[..4].iter().enumerate() {
                out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
            }
            out
        };
        assert_eq!(
            first,
            [
                0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
                0xa5, 0xa1
            ]
        );
    }

    #[test]
    fn row_form_matches_quarter_round_reference() {
        // The vectorization-friendly row-round refill must reproduce
        // the textbook flat-state formulation bit-for-bit, across
        // keys, counters, and nonces.
        for trial in 0..64u64 {
            let mut r = DetRng::new(trial.wrapping_mul(0x9E37_79B9), trial ^ 0xABCD);
            r.counter = trial.wrapping_mul(0x0101_0101_0101);
            let mut s: [u32; 16] = [
                0x6170_7865,
                0x3320_646E,
                0x7962_2D32,
                0x6B20_6574,
                r.key[0],
                r.key[1],
                r.key[2],
                r.key[3],
                r.key[4],
                r.key[5],
                r.key[6],
                r.key[7],
                r.counter as u32,
                (r.counter >> 32) as u32,
                r.stream as u32,
                (r.stream >> 32) as u32,
            ];
            let init = s;
            for _ in 0..4 {
                quarter_round(&mut s, 0, 4, 8, 12);
                quarter_round(&mut s, 1, 5, 9, 13);
                quarter_round(&mut s, 2, 6, 10, 14);
                quarter_round(&mut s, 3, 7, 11, 15);
                quarter_round(&mut s, 0, 5, 10, 15);
                quarter_round(&mut s, 1, 6, 11, 12);
                quarter_round(&mut s, 2, 7, 8, 13);
                quarter_round(&mut s, 3, 4, 9, 14);
            }
            for (w, &i) in s.iter_mut().zip(init.iter()) {
                *w = w.wrapping_add(i);
            }
            r.refill();
            assert_eq!(r.buf, s, "block diverged at trial {trial}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1, 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = DetRng::new(9, 0);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut r = DetRng::new(3, 0);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.01)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (80.0..120.0).contains(&mean),
            "geometric mean {mean} should be near 100"
        );
    }

    #[test]
    fn geometric_edge_cases() {
        let mut r = DetRng::new(3, 0);
        assert_eq!(r.geometric(0.0), u64::MAX);
        assert_eq!(r.geometric(1.0), 1);
        assert!(r.geometric(0.5) >= 1);
    }

    #[test]
    fn power_law_in_range_and_skewed() {
        let mut r = DetRng::new(5, 0);
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let x = r.power_law(n, 1.2);
            assert!(x < n);
            if x < n / 10 {
                low += 1;
            }
        }
        // With skew 1.2, far more than 10% of mass sits in the lowest decile.
        assert!(low > 4_000, "low-decile hits: {low}");
    }

    #[test]
    fn power_law_skew_below_one_spreads_mass() {
        let mut r = DetRng::new(5, 1);
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let x = r.power_law(n, 0.5);
            assert!(x < n);
            if x < n / 10 {
                low += 1;
            }
        }
        // Sub-linear skew still favors low indices, but far less than
        // skew > 1 does; sanity-bracket the low-decile share.
        assert!((1_000..9_000).contains(&low), "low-decile hits: {low}");
    }

    #[test]
    fn power_law_skew_one_is_exact_zipf() {
        // skew == 1 used to panic in PowerLaw::constants; now it takes
        // the exact continuous-Zipf branch: P(x = 0) = ln 2 / ln(n+1).
        let (a, inv) = PowerLaw::constants(999, 1.0);
        assert_eq!(a, 1000.0);
        assert_eq!(inv, 0.0);
        let mut r = DetRng::new(5, 2);
        let n = 999u64;
        let draws = 40_000usize;
        let zeros = (0..draws).filter(|_| r.power_law(n, 1.0) == 0).count();
        let expect = (2.0f64).ln() / ((n + 1) as f64).ln();
        let got = zeros as f64 / draws as f64;
        assert!(
            (got - expect).abs() < 0.01,
            "P(0) = {got}, Zipf predicts {expect}"
        );
    }

    #[test]
    fn power_law_skew_above_one_concentrates_mass() {
        let mut r = DetRng::new(5, 3);
        let n = 1000u64;
        let zeros = (0..10_000).filter(|_| r.power_law(n, 1.5) == 0).count();
        // skew 1.5 puts a large point mass on the hottest line.
        assert!(zeros > 1_000, "index-0 hits: {zeros}");
    }

    #[test]
    fn power_law_degenerate_domain() {
        let mut r = DetRng::new(7, 0);
        for skew in [0.5, 1.0, 1.5] {
            for _ in 0..100 {
                assert_eq!(r.power_law(1, skew), 0);
            }
        }
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = DetRng::new(8, 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn unit_is_half_open() {
        let mut r = DetRng::new(13, 0);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn child_streams_are_stable_and_distinct() {
        let parent = DetRng::new(11, 2);
        let mut c1 = parent.child(1);
        let mut c1b = parent.child(1);
        let mut c2 = parent.child(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
