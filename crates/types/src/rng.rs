//! Deterministic random-number generation.
//!
//! Experiments must be bit-reproducible across runs and platforms, so
//! every stochastic component draws from a [`DetRng`] seeded from the
//! experiment seed plus a stable per-component stream id. The
//! generator is a self-contained ChaCha8 keystream (no external
//! crates — the build is offline): portable, counter-based, and fast
//! enough that RNG draws never show up in simulator profiles.

/// A deterministic, portable random-number generator.
///
/// A ChaCha8 keystream generator with the handful of draw shapes the
/// simulator needs (Bernoulli trials, bounded integers, geometric
/// interarrivals, and a truncated power-law for cache footprints).
/// Different `(seed, stream)` pairs yield independent sequences;
/// identical pairs yield identical sequences, on every platform.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    stream: u64,
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

/// SplitMix64 step, used only to expand the one-word seed into the
/// 256-bit ChaCha key.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl DetRng {
    /// Creates a generator from an experiment seed and a component
    /// stream id.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut sm);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self {
            seed,
            stream,
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }

    /// Runs the ChaCha8 block function for the current counter and
    /// refills the output buffer.
    fn refill(&mut self) {
        // "expand 32-byte k" || key || block counter || stream nonce.
        let mut s: [u32; 16] = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let init = s;
        for _ in 0..4 {
            // A double round: four column rounds, four diagonal rounds.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (w, &i) in s.iter_mut().zip(init.iter()) {
            *w = w.wrapping_add(i);
        }
        self.buf = s;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    /// Raw 32-bit keystream word.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Raw 64-bit draw (for hashing/fingerprint seeds).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit() < p
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Widening-multiply range reduction (Lemire). The modulo bias
        // is at most 2^-64 per draw — far below anything a simulator
        // statistic can resolve.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric interarrival: number of trials until an event with
    /// per-trial probability `p` fires, at least 1. Used for syscall,
    /// fault, and serializing-instruction interarrival times. Returns
    /// `u64::MAX` when `p` is non-positive.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 1;
        }
        let u = self.unit().max(f64::MIN_POSITIVE);
        let n = (u.ln() / (1.0 - p).ln()).ceil();
        (n as u64).max(1)
    }

    /// A truncated power-law draw over `[0, n)`: index 0 is hottest.
    ///
    /// `skew` ∈ (0, ∞): larger values concentrate mass on low indices.
    /// With `skew = 1` this approximates a Zipf distribution, matching
    /// the heavy reuse of hot lines observed in commercial workloads.
    #[inline]
    pub fn power_law(&mut self, n: u64, skew: f64) -> u64 {
        let (a, inv) = PowerLaw::constants(n, skew);
        self.power_law_prepared(n, a, inv)
    }

    /// Power-law draw using precomputed constants from
    /// [`PowerLaw::constants`] — the hot path for workload streams,
    /// saving one `powf` per draw.
    #[inline]
    pub fn power_law_prepared(&mut self, n: u64, a: f64, inv: f64) -> u64 {
        debug_assert!(n > 0, "power_law over empty domain");
        let u = self.unit();
        // Inverse-CDF of p(x) ~ (x+1)^(-skew) over a continuous domain,
        // cheap and adequate for footprint modelling.
        let x = (a * u + (1.0 - u)).powf(inv) - 1.0;
        (x as u64).min(n - 1)
    }

    /// Derives a child generator for a sub-component. The child stream
    /// is a stable function of this generator's seed, stream, and
    /// `tag`, not of how many draws have been made.
    pub fn child(&self, tag: u64) -> DetRng {
        DetRng::new(
            self.seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            self.stream.wrapping_add(tag).wrapping_add(1),
        )
    }
}

/// Precomputed constants for [`DetRng::power_law_prepared`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    /// Domain size.
    pub n: u64,
    /// `(n + 1)^(1 - skew)`.
    pub a: f64,
    /// `1 / (1 - skew)`.
    pub inv: f64,
}

impl PowerLaw {
    /// Builds constants for a domain of `n` lines with the given skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `skew == 1`.
    pub fn new(n: u64, skew: f64) -> Self {
        let (a, inv) = Self::constants(n, skew);
        Self { n, a, inv }
    }

    /// The raw `(a, inv)` pair.
    pub fn constants(n: u64, skew: f64) -> (f64, f64) {
        assert!(n > 0, "power_law over empty domain");
        assert!((skew - 1.0).abs() > 1e-9, "skew must differ from 1");
        ((n as f64 + 1.0).powf(1.0 - skew), 1.0 / (1.0 - skew))
    }

    /// Draws an index in `[0, n)` from `rng`.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        rng.power_law_prepared(self.n, self.a, self.inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn chacha8_known_answer() {
        // ChaCha8 keystream with an all-zero key and nonce, first block:
        // reference values from the eSTREAM/RFC test-vector family.
        let mut r = DetRng {
            seed: 0,
            stream: 0,
            key: [0; 8],
            counter: 0,
            buf: [0; 16],
            idx: 16,
        };
        r.refill();
        let first: [u8; 16] = {
            let mut out = [0u8; 16];
            for (i, w) in r.buf[..4].iter().enumerate() {
                out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
            }
            out
        };
        assert_eq!(
            first,
            [
                0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
                0xa5, 0xa1
            ]
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1, 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = DetRng::new(9, 0);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut r = DetRng::new(3, 0);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.01)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (80.0..120.0).contains(&mean),
            "geometric mean {mean} should be near 100"
        );
    }

    #[test]
    fn geometric_edge_cases() {
        let mut r = DetRng::new(3, 0);
        assert_eq!(r.geometric(0.0), u64::MAX);
        assert_eq!(r.geometric(1.0), 1);
        assert!(r.geometric(0.5) >= 1);
    }

    #[test]
    fn power_law_in_range_and_skewed() {
        let mut r = DetRng::new(5, 0);
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let x = r.power_law(n, 1.2);
            assert!(x < n);
            if x < n / 10 {
                low += 1;
            }
        }
        // With skew 1.2, far more than 10% of mass sits in the lowest decile.
        assert!(low > 4_000, "low-decile hits: {low}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = DetRng::new(8, 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn unit_is_half_open() {
        let mut r = DetRng::new(13, 0);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn child_streams_are_stable_and_distinct() {
        let parent = DetRng::new(11, 2);
        let mut c1 = parent.child(1);
        let mut c1b = parent.child(1);
        let mut c2 = parent.child(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
