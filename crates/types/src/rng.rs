//! Deterministic random-number generation.
//!
//! Experiments must be bit-reproducible across runs and platforms, so
//! every stochastic component draws from a [`DetRng`] seeded from the
//! experiment seed plus a stable per-component stream id. `rand`'s
//! `StdRng` is explicitly not portable across versions; `ChaCha8` is.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic, portable random-number generator.
///
/// Wraps `ChaCha8Rng` with the handful of draw shapes the simulator
/// needs (Bernoulli trials, bounded integers, geometric interarrivals,
/// and a truncated power-law for cache footprints).
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: ChaCha8Rng,
}

impl DetRng {
    /// Creates a generator from an experiment seed and a component
    /// stream id. Different `(seed, stream)` pairs yield independent
    /// sequences; identical pairs yield identical sequences.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(stream);
        Self { inner: rng }
    }

    /// A Bernoulli trial: `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.gen::<f64>() < p
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Geometric interarrival: number of trials until an event with
    /// per-trial probability `p` fires, at least 1. Used for syscall,
    /// fault, and serializing-instruction interarrival times. Returns
    /// `u64::MAX` when `p` is non-positive.
    #[inline]
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return 1;
        }
        let u = self.inner.gen::<f64>().max(f64::MIN_POSITIVE);
        let n = (u.ln() / (1.0 - p).ln()).ceil();
        (n as u64).max(1)
    }

    /// A truncated power-law draw over `[0, n)`: index 0 is hottest.
    ///
    /// `skew` ∈ (0, ∞): larger values concentrate mass on low indices.
    /// With `skew = 1` this approximates a Zipf distribution, matching
    /// the heavy reuse of hot lines observed in commercial workloads.
    #[inline]
    pub fn power_law(&mut self, n: u64, skew: f64) -> u64 {
        let (a, inv) = PowerLaw::constants(n, skew);
        self.power_law_prepared(n, a, inv)
    }

    /// Power-law draw using precomputed constants from
    /// [`PowerLaw::constants`] — the hot path for workload streams,
    /// saving one `powf` per draw.
    #[inline]
    pub fn power_law_prepared(&mut self, n: u64, a: f64, inv: f64) -> u64 {
        debug_assert!(n > 0, "power_law over empty domain");
        let u = self.inner.gen::<f64>();
        // Inverse-CDF of p(x) ~ (x+1)^(-skew) over a continuous domain,
        // cheap and adequate for footprint modelling.
        let x = (a * u + (1.0 - u)).powf(inv) - 1.0;
        (x as u64).min(n - 1)
    }

    /// Derives a child generator for a sub-component. The child stream
    /// is a stable function of this generator's stream and `tag`, not
    /// of how many draws have been made.
    pub fn child(&self, tag: u64) -> DetRng {
        let seed = self.inner.get_seed();
        let base = u64::from_le_bytes(seed[..8].try_into().expect("seed is 32 bytes"));
        DetRng::new(
            base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            self.inner.get_stream().wrapping_add(tag).wrapping_add(1),
        )
    }

    /// Raw 64-bit draw (for hashing/fingerprint seeds).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Precomputed constants for [`DetRng::power_law_prepared`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerLaw {
    /// Domain size.
    pub n: u64,
    /// `(n + 1)^(1 - skew)`.
    pub a: f64,
    /// `1 / (1 - skew)`.
    pub inv: f64,
}

impl PowerLaw {
    /// Builds constants for a domain of `n` lines with the given skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `skew == 1`.
    pub fn new(n: u64, skew: f64) -> Self {
        let (a, inv) = Self::constants(n, skew);
        Self { n, a, inv }
    }

    /// The raw `(a, inv)` pair.
    pub fn constants(n: u64, skew: f64) -> (f64, f64) {
        assert!(n > 0, "power_law over empty domain");
        assert!((skew - 1.0).abs() > 1e-9, "skew must differ from 1");
        ((n as f64 + 1.0).powf(1.0 - skew), 1.0 / (1.0 - skew))
    }

    /// Draws an index in `[0, n)` from `rng`.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        rng.power_law_prepared(self.n, self.a, self.inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42, 7);
        let mut b = DetRng::new(42, 7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = DetRng::new(42, 0);
        let mut b = DetRng::new(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(1, 0);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = DetRng::new(9, 0);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut r = DetRng::new(3, 0);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.01)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (80.0..120.0).contains(&mean),
            "geometric mean {mean} should be near 100"
        );
    }

    #[test]
    fn geometric_edge_cases() {
        let mut r = DetRng::new(3, 0);
        assert_eq!(r.geometric(0.0), u64::MAX);
        assert_eq!(r.geometric(1.0), 1);
        assert!(r.geometric(0.5) >= 1);
    }

    #[test]
    fn power_law_in_range_and_skewed() {
        let mut r = DetRng::new(5, 0);
        let n = 1000u64;
        let mut low = 0usize;
        for _ in 0..10_000 {
            let x = r.power_law(n, 1.2);
            assert!(x < n);
            if x < n / 10 {
                low += 1;
            }
        }
        // With skew 1.2, far more than 10% of mass sits in the lowest decile.
        assert!(low > 4_000, "low-decile hits: {low}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = DetRng::new(8, 0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let x = r.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn child_streams_are_stable_and_distinct() {
        let parent = DetRng::new(11, 2);
        let mut c1 = parent.child(1);
        let mut c1b = parent.child(1);
        let mut c2 = parent.child(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
