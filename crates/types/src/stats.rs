//! Statistics helpers: running moments, 95% confidence intervals, and
//! fixed-bucket histograms.
//!
//! The paper reports averages over multiple simulation runs with 95%
//! confidence intervals (§4.1); [`mean_ci95`] reproduces that
//! methodology with a small-sample Student-t table.

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95% confidence interval on the mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        t_crit_95(self.n - 1) * self.stddev() / (self.n as f64).sqrt()
    }

    /// The raw second central moment (`m2`), for lossless
    /// serialization. Together with [`RunningStat::count`] and
    /// [`RunningStat::mean`] this is the accumulator's whole state.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuilds an accumulator from its serialized state (the inverse
    /// of reading `count`/`mean`/`m2`). Used by the campaign engine to
    /// merge checkpointed per-cell metrics exactly: a stat rebuilt
    /// from parts merges bit-identically to the original.
    pub fn from_parts(n: u64, mean: f64, m2: f64) -> Self {
        Self { n, mean, m2 }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStat) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        *self = RunningStat { n, mean, m2 };
    }
}

/// Two-sided 95% Student-t critical value for `df` degrees of freedom.
fn t_crit_95(df: u64) -> f64 {
    // Table for small df; converges to the normal 1.96 beyond 30.
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        TABLE[(df - 1) as usize]
    } else {
        1.96
    }
}

/// Mean and 95%-CI half width of a sample set.
///
/// Returns `(0.0, 0.0)` for an empty slice and `(x, 0.0)` for a single
/// observation.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let mut s = RunningStat::new();
    for &x in samples {
        s.push(x);
    }
    if s.count() < 2 {
        (s.mean(), 0.0)
    } else {
        (s.mean(), s.ci95_half_width())
    }
}

/// A histogram over power-of-two buckets, for latency and interval
/// distributions (e.g. cycles between mode switches).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram covering the full `u64` range
    /// (65 buckets: `[0]`, `[1,2)`, `[2,4)`, ...).
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate p-th percentile (`p` in `[0,100]`) using bucket upper
    /// bounds; adequate for order-of-magnitude latency reporting.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 { 0 } else { (1u128 << i) as u64 - 1 }.min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The raw bucket counts: bucket 0 holds value 0, bucket `i > 0`
    /// holds values in `[2^(i-1), 2^i)`.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Exact sum of all recorded values (u128: 65 buckets of u64
    /// observations cannot overflow it).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Rebuilds a histogram from serialized state: sparse
    /// `(bucket index, count)` pairs plus the exact sum and max. The
    /// observation count is derived from the buckets. Returns `None`
    /// for out-of-range bucket indices, so corrupt checkpoint records
    /// fail loudly instead of truncating.
    ///
    /// A histogram rebuilt from `bucket_counts`/`sum`/`max` merges
    /// bit-identically to the original — the property the campaign
    /// engine's resume path relies on.
    pub fn from_parts(
        sparse_buckets: &[(usize, u64)],
        sum: u128,
        max: u64,
    ) -> Option<Log2Histogram> {
        let mut h = Log2Histogram::new();
        for &(i, c) in sparse_buckets {
            if i >= h.buckets.len() {
                return None;
            }
            h.buckets[i] += c;
            h.count += c;
        }
        h.sum = sum;
        h.max = max;
        Some(h)
    }

    /// The per-bucket increase since `earlier`, where `earlier` must be
    /// a previous snapshot of the same growing histogram (every bucket
    /// of `earlier` ≤ the matching bucket of `self`).
    ///
    /// `count` and `sum` subtract exactly; `max` keeps the cumulative
    /// maximum (a histogram cannot un-see its largest value), which is
    /// the standard convention for interval-scoped latency snapshots.
    pub fn delta_since(&self, earlier: &Log2Histogram) -> Log2Histogram {
        let buckets = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(a, b)| a - b)
            .collect();
        Log2Histogram {
            buckets,
            count: self.count - earlier.count,
            sum: self.sum - earlier.sum,
            max: self.max,
        }
    }

    /// Renders the nonzero buckets as an ASCII bar chart.
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title} (n={}, mean={:.0}):", self.count, self.mean());
        if self.count == 0 {
            let _ = writeln!(out, "  (empty)");
            return out;
        }
        let peak = *self.buckets.iter().max().expect("65 buckets") as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let label = if i == 0 {
                "0".to_string()
            } else {
                format!("{}..{}", 1u128 << (i - 1), (1u128 << i) - 1)
            };
            let bar = "#".repeat(((c as f64 / peak) * 40.0).ceil() as usize);
            let _ = writeln!(out, "  {label:>24}  {bar} {c}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stat_mean_and_variance() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn running_stat_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStat::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStat::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&RunningStat::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));
        let mut e = RunningStat::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn ci95_behaviour() {
        let (m, hw) = mean_ci95(&[]);
        assert_eq!((m, hw), (0.0, 0.0));
        let (m, hw) = mean_ci95(&[5.0]);
        assert_eq!((m, hw), (5.0, 0.0));
        let (m, hw) = mean_ci95(&[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(m, 1.0);
        assert_eq!(hw, 0.0);
        let (m, hw) = mean_ci95(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((m - 3.0).abs() < 1e-12);
        // t(4)=2.776, sd=sqrt(2.5), n=5 -> hw ~ 1.963
        assert!((hw - 2.776 * (2.5f64).sqrt() / 5.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn t_table_converges_to_normal() {
        assert_eq!(t_crit_95(1000), 1.96);
        assert!(t_crit_95(1) > 12.0);
        assert!(t_crit_95(0).is_infinite());
    }

    #[test]
    fn histogram_basic() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - (1_001_006.0 / 6.0)).abs() < 1e-9);
        assert!(h.percentile(100.0) <= 1_000_000);
        assert_eq!(h.percentile(10.0), 0);
    }

    #[test]
    fn histogram_render() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 3, 3, 900] {
            h.record(v);
        }
        let s = h.render("latencies");
        assert!(s.contains("latencies (n=4"));
        assert!(s.contains("  0  ") || s.contains(" 0 "), "zero bucket: {s}");
        assert!(s.contains("2..3"));
        assert!(s.contains("512..1023"));
        let empty = Log2Histogram::new().render("none");
        assert!(empty.contains("(empty)"));
    }

    #[test]
    fn bucket_counts_exposed() {
        let mut h = Log2Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1);
        assert_eq!(b[1], 1);
        assert_eq!(b[2], 1);
    }

    #[test]
    fn histogram_delta_since_inverts_growth() {
        let mut earlier = Log2Histogram::new();
        earlier.record(5);
        earlier.record(70);
        let mut later = earlier.clone();
        later.record(7);
        later.record(900);
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.max(), 900, "max stays cumulative");
        assert!((delta.mean() - (907.0 / 2.0)).abs() < 1e-9);
        // Re-merging the delta onto the earlier snapshot restores the
        // bucket contents exactly.
        let mut rebuilt = earlier.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.bucket_counts(), later.bucket_counts());
        assert_eq!(rebuilt.count(), later.count());
        // Snapshot minus itself is empty.
        assert_eq!(later.delta_since(&later).count(), 0);
    }

    #[test]
    fn running_stat_round_trips_through_parts() {
        let mut s = RunningStat::new();
        for x in [1.5, -2.25, 7.0, 0.125] {
            s.push(x);
        }
        let rebuilt = RunningStat::from_parts(s.count(), s.mean(), s.m2());
        assert_eq!(rebuilt.count(), s.count());
        assert_eq!(rebuilt.mean().to_bits(), s.mean().to_bits());
        assert_eq!(rebuilt.m2().to_bits(), s.m2().to_bits());
        // Merging the rebuilt copy behaves exactly like the original.
        let mut a = RunningStat::new();
        a.push(9.0);
        let mut b = a;
        a.merge(&s);
        b.merge(&rebuilt);
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.m2().to_bits(), b.m2().to_bits());
    }

    #[test]
    fn histogram_round_trips_through_parts() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 3, 900, u64::MAX] {
            h.record(v);
        }
        let sparse: Vec<(usize, u64)> = h
            .bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect();
        let rebuilt = Log2Histogram::from_parts(&sparse, h.sum(), h.max()).unwrap();
        assert_eq!(rebuilt, h);
        // Out-of-range bucket indices are rejected.
        assert!(Log2Histogram::from_parts(&[(65, 1)], 0, 0).is_none());
    }

    #[test]
    fn histogram_merge() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 500);
    }
}
