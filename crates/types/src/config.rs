//! Configuration of the simulated machine.
//!
//! Defaults reproduce the target multicore of the paper (§3.1, §4.1).
//! Every experiment harness starts from [`SystemConfig::default`] and
//! overrides only what the experiment varies, so the table in
//! `DESIGN.md` maps one-to-one onto fields here.

use crate::error::{Error, Result};
use crate::ids::LINE_BYTES;

/// Geometry of one set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
}

impl CacheGeometry {
    /// Creates a geometry and validates it (see [`CacheGeometry::validate`]).
    pub fn new(size_bytes: u64, associativity: u32) -> Result<Self> {
        let g = Self {
            size_bytes,
            associativity,
        };
        g.validate()?;
        Ok(g)
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * self.associativity as u64)
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / LINE_BYTES
    }

    /// Checks that the geometry is non-degenerate and power-of-two
    /// indexed.
    pub fn validate(&self) -> Result<()> {
        if self.associativity == 0 {
            return Err(Error::config("cache associativity must be nonzero"));
        }
        if self.size_bytes == 0
            || !self
                .size_bytes
                .is_multiple_of(LINE_BYTES * self.associativity as u64)
        {
            return Err(Error::config(
                "cache size must be a nonzero multiple of line size times associativity",
            ));
        }
        if !self.sets().is_power_of_two() {
            return Err(Error::config("cache set count must be a power of two"));
        }
        Ok(())
    }
}

/// Core pipeline parameters (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreConfig {
    /// Baseline pipeline depth in stages (8). Reunion adds one more
    /// (the Check stage), configured in [`ReunionConfig`].
    pub pipeline_stages: u32,
    /// Instructions fetched/issued/committed per cycle (2).
    pub width: u32,
    /// Instruction-window (reorder-buffer) entries (128).
    pub window_entries: u32,
    /// Load-queue entries (32).
    pub load_queue: u32,
    /// Store-queue entries (32).
    pub store_queue: u32,
    /// Branch misprediction rate applied to conditional branches.
    pub branch_mispredict_rate: f64,
    /// Pipeline refill penalty after a misprediction or squash, cycles.
    pub mispredict_penalty: u32,
    /// Latency of a hardware TLB fill (cycles). The paper models a
    /// hardware-filled TLB "in order to not overstate the penalty of
    /// DMR".
    pub tlb_fill_latency: u32,
    /// Data-TLB entries.
    pub tlb_entries: u32,
    /// Fraction of instructions whose issue depends on the youngest
    /// older instruction (a one-deep dependence-chain model bounding
    /// extractable ILP).
    pub dependence_frac: f64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            pipeline_stages: 8,
            width: 2,
            window_entries: 128,
            load_queue: 32,
            store_queue: 32,
            branch_mispredict_rate: 0.03,
            mispredict_penalty: 10,
            tlb_fill_latency: 30,
            tlb_entries: 512,
            dependence_frac: 0.35,
        }
    }
}

/// Memory consistency model executed by the cores.
///
/// The paper's re-implementation of Reunion uses sequential consistency
/// (stores occupy the instruction window until written to the cache),
/// which it identifies as the largest contributor to Reunion overhead;
/// the original Reunion proposal used TSO with a store buffer. Both are
/// provided so the ablation in `EXPERIMENTS.md` can quantify the gap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Sequential consistency: a store holds its window entry until the
    /// write completes in the L2.
    #[default]
    Sc,
    /// Total store order: stores drain through a store buffer after
    /// commit, releasing window entries immediately.
    Tso,
}

/// Memory-hierarchy parameters (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemConfig {
    /// Split L1 instruction cache (16 KB, 2-way, write-through).
    pub l1i: CacheGeometry,
    /// Split L1 data cache (16 KB, 2-way, write-through).
    pub l1d: CacheGeometry,
    /// Private unified L2 (512 KB, 4-way).
    pub l2: CacheGeometry,
    /// Shared L3 (8 MB, 16-way), exclusive with the private L2s.
    pub l3: CacheGeometry,
    /// L1 load-to-use latency, cycles.
    pub l1_latency: u32,
    /// Private L2 hit latency, cycles.
    pub l2_latency: u32,
    /// Shared L3 load-to-use latency, cycles (55).
    pub l3_latency: u32,
    /// Average one-way interconnect hop latency, cycles (10).
    pub interconnect_latency: u32,
    /// Main-memory load-to-use latency, cycles (350).
    pub dram_latency: u32,
    /// Off-chip bandwidth in bytes per core cycle (40 GB/s at 3 GHz
    /// ≈ 13.9 B/cycle; we round to 13).
    pub dram_bytes_per_cycle: u32,
    /// TSO store-buffer entries per core (used only under
    /// [`Consistency::Tso`]).
    pub store_buffer_entries: u32,
    /// Number of L3/directory banks for the optional contention model.
    pub l3_banks: u32,
    /// Bank service occupancy per request, cycles. `0` (the default)
    /// disables contention modelling entirely — every request sees
    /// only the analytic hop latencies. Nonzero values make each
    /// L2-miss serialize on its line's bank, so a 16-VCPU machine
    /// feels roughly twice the queueing of an 8-VCPU one (the paper's
    /// §5.1 shared-resource pressure; see the `--noc` ablation).
    pub bank_occupancy_cycles: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        Self {
            l1i: CacheGeometry {
                size_bytes: 16 * 1024,
                associativity: 2,
            },
            l1d: CacheGeometry {
                size_bytes: 16 * 1024,
                associativity: 2,
            },
            l2: CacheGeometry {
                size_bytes: 512 * 1024,
                associativity: 4,
            },
            l3: CacheGeometry {
                size_bytes: 8 * 1024 * 1024,
                associativity: 16,
            },
            l1_latency: 2,
            l2_latency: 14,
            l3_latency: 55,
            interconnect_latency: 10,
            dram_latency: 350,
            dram_bytes_per_cycle: 13,
            store_buffer_entries: 16,
            l3_banks: 8,
            bank_occupancy_cycles: 0,
        }
    }
}

/// Reunion DMR parameters (paper §3.2, §4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReunionConfig {
    /// One-way latency of the dedicated fingerprint network (10 cycles).
    pub fingerprint_latency: u32,
    /// Instructions summarized per fingerprint. A single fingerprint
    /// "can capture all outputs, branch targets, and store addresses
    /// and values for multiple instructions".
    pub fingerprint_interval: u32,
    /// Extra in-order pipeline stages added by Check (1: the pipeline
    /// is 9 stages when using Reunion, 8 otherwise).
    pub check_stages: u32,
    /// Cycles for a vocal→mute synchronizing ("sync request") round
    /// trip, sent as a direct message rather than via the L2 directory.
    pub sync_latency: u32,
    /// Pipeline-flush + re-execution penalty on a fingerprint mismatch
    /// (input incoherence or detected fault), cycles.
    pub recovery_penalty: u32,
}

impl Default for ReunionConfig {
    fn default() -> Self {
        Self {
            fingerprint_latency: 10,
            fingerprint_interval: 8,
            check_stages: 1,
            sync_latency: 20,
            recovery_penalty: 100,
        }
    }
}

/// How the Protection Assistance Buffer is consulted relative to the
/// L2 access for a store write-through (paper §3.4.1, §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PabLookup {
    /// Examine the PAB in parallel with the L2 tags; no added latency.
    #[default]
    Parallel,
    /// Look up the PAB first and only then access the L2. Adds the PAB
    /// latency to every store write-through but simplifies the L2
    /// controller.
    Serial,
}

/// Protection Assistance Buffer parameters (paper §3.4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PabConfig {
    /// Number of PAB entries; each holds one 64-byte line of PAT bits,
    /// i.e. covers 512 pages = 4 MB. 128 entries map 512 MB.
    pub entries: u32,
    /// PAB associativity (organized "much like a cache").
    pub associativity: u32,
    /// Serial-lookup latency, cycles (2 in the paper's experiment).
    pub serial_latency: u32,
    /// Lookup organization (parallel by default).
    pub lookup: PabLookup,
}

impl Default for PabConfig {
    fn default() -> Self {
        Self {
            entries: 128,
            associativity: 8,
            serial_latency: 2,
            lookup: PabLookup::Parallel,
        }
    }
}

/// Virtualization and mode-transition parameters (paper §3.4.3, §3.5, §4.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VirtConfig {
    /// Architected VCPU state size in bytes (≈2.3 KB for SPARC).
    pub vcpu_state_bytes: u32,
    /// Gang-scheduling timeslice for consolidated guests, cycles
    /// (1 ms = 3 M cycles at 3 GHz).
    pub timeslice_cycles: u64,
    /// Cache lines flushed or written back per cycle when the mute
    /// drains incoherent lines on Leave-DMR (pessimistically 1).
    pub flush_lines_per_cycle: u32,
    /// Fixed cost of the hardware mode-transition state machine itself
    /// (synchronizing the pair, walking its steps), cycles.
    pub transition_machine_cycles: u32,
    /// Issue interval between successive VCPU-state line transfers
    /// during a mode transition. The state machine walks the register
    /// file in order but keeps a short pipeline of line transfers in
    /// flight.
    pub state_op_interval_cycles: u32,
}

impl Default for VirtConfig {
    fn default() -> Self {
        Self {
            vcpu_state_bytes: 2304,
            timeslice_cycles: 3_000_000,
            flush_lines_per_cycle: 1,
            transition_machine_cycles: 100,
            state_op_interval_cycles: 8,
        }
    }
}

/// Full machine configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of physical cores (16).
    pub cores: u32,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// Memory consistency model.
    pub consistency: Consistency,
    /// Memory-hierarchy parameters.
    pub mem: MemConfig,
    /// Reunion DMR parameters.
    pub reunion: ReunionConfig,
    /// Protection Assistance Buffer parameters.
    pub pab: PabConfig,
    /// Virtualization and mode-transition parameters.
    pub virt: VirtConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            cores: 16,
            core: CoreConfig::default(),
            consistency: Consistency::Sc,
            mem: MemConfig::default(),
            reunion: ReunionConfig::default(),
            pab: PabConfig::default(),
            virt: VirtConfig::default(),
        }
    }
}

impl SystemConfig {
    /// Validates the whole configuration; returns the first problem
    /// found.
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 || !self.cores.is_multiple_of(2) {
            return Err(Error::config(
                "core count must be a nonzero multiple of two (DMR pairs)",
            ));
        }
        self.mem.l1i.validate()?;
        self.mem.l1d.validate()?;
        self.mem.l2.validate()?;
        self.mem.l3.validate()?;
        if self.core.width == 0 || self.core.window_entries == 0 {
            return Err(Error::config("core width and window must be nonzero"));
        }
        if self.core.load_queue == 0 || self.core.store_queue == 0 {
            return Err(Error::config("load/store queues must be nonzero"));
        }
        if !(0.0..=1.0).contains(&self.core.branch_mispredict_rate) {
            return Err(Error::config("mispredict rate must be in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.core.dependence_frac) {
            return Err(Error::config("dependence fraction must be in [0,1]"));
        }
        if self.reunion.fingerprint_interval == 0 {
            return Err(Error::config("fingerprint interval must be nonzero"));
        }
        if self.pab.entries == 0 || self.pab.associativity == 0 {
            return Err(Error::config("PAB geometry must be nonzero"));
        }
        if !self.pab.entries.is_multiple_of(self.pab.associativity)
            || !(self.pab.entries / self.pab.associativity).is_power_of_two()
        {
            return Err(Error::config("PAB set count must be a power of two"));
        }
        if self.virt.flush_lines_per_cycle == 0 {
            return Err(Error::config("flush rate must be nonzero"));
        }
        if self.mem.l3_banks == 0 || !self.mem.l3_banks.is_power_of_two() {
            return Err(Error::config("L3 bank count must be a power of two"));
        }
        Ok(())
    }

    /// Number of static DMR pairs (half the core count).
    pub fn pairs(&self) -> u32 {
        self.cores / 2
    }

    /// Physical memory mapped by one PAB entry, in bytes: one 64-byte
    /// line of PAT bits covers 512 pages of 8 KB = 4 MB.
    pub fn pab_reach_bytes(&self) -> u64 {
        self.pab.entries as u64 * 64 * 8 * crate::ids::PAGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper() {
        let c = SystemConfig::default();
        c.validate().expect("default config must validate");
        assert_eq!(c.cores, 16);
        assert_eq!(c.pairs(), 8);
        assert_eq!(c.core.window_entries, 128);
        assert_eq!(c.core.width, 2);
        assert_eq!(c.mem.l3_latency, 55);
        assert_eq!(c.mem.dram_latency, 350);
        assert_eq!(c.reunion.fingerprint_latency, 10);
        // 128 entries x 64B x 8 bits x 8KB pages = 512 MB reach (paper §3.4.1).
        assert_eq!(c.pab_reach_bytes(), 512 * 1024 * 1024);
    }

    #[test]
    fn cache_geometry_sets_and_lines() {
        let g = CacheGeometry::new(16 * 1024, 2).unwrap();
        assert_eq!(g.sets(), 128);
        assert_eq!(g.lines(), 256);
        let l3 = CacheGeometry::new(8 * 1024 * 1024, 16).unwrap();
        assert_eq!(l3.sets(), 8192);
    }

    #[test]
    fn invalid_geometries_are_rejected() {
        assert!(CacheGeometry::new(0, 2).is_err());
        assert!(CacheGeometry::new(16 * 1024, 0).is_err());
        // 3 sets -> not a power of two.
        assert!(CacheGeometry::new(3 * 64 * 2, 2).is_err());
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn odd_core_count_is_rejected() {
        let mut c = SystemConfig::default();
        c.cores = 15;
        assert!(c.validate().is_err());
        c.cores = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn mispredict_rate_bounds_checked() {
        let mut c = SystemConfig::default();
        c.core.branch_mispredict_rate = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn pab_geometry_checked() {
        let mut c = SystemConfig::default();
        c.pab.entries = 96; // 96/8 = 12 sets, not a power of two
        assert!(c.validate().is_err());
    }
}
