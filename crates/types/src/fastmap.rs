//! A fast hasher for line/page-keyed maps.
//!
//! The memory system keys millions of `HashMap` operations per
//! simulated millisecond on 64-bit line addresses. SipHash's
//! HashDoS resistance buys nothing against a deterministic simulator's
//! own address stream, so these maps use a multiply-xor finalizer
//! (the SplitMix64 mixer) instead — ~4× faster lookups in practice.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for integer-like keys.
#[derive(Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic path (rare): fold 8-byte chunks.
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        let mut x = self.state ^ i;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        self.state = x;
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` with the fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..10_000u64 {
            m.insert(i * 64, i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&(i * 64)), Some(&i));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn hashes_spread_sequential_keys() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let b: BuildHasherDefault<FastHasher> = Default::default();
        let mut low_bits = FastSet::default();
        for i in 0..1000u64 {
            let mut h = b.build_hasher();
            h.write_u64(i);
            low_bits.insert(h.finish() & 0xFFF);
        }
        // Sequential keys must not collide in the low bits.
        assert!(low_bits.len() > 850, "spread: {}", low_bits.len());
    }
}
