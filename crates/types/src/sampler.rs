//! Table-driven power-law sampling, bit-equal to the `powf` path.
//!
//! [`DetRng::power_law_prepared`] costs one `powf` per draw, and the
//! workload streams draw on every op — the self-profiler attributes
//! ~14% of hot-loop wall time to op generation, almost all of it
//! `powf`. This module precomputes, per `(n, skew)` pair, the exact
//! threshold table of the composed draw function
//!
//! ```text
//! r = next_u64() >> 11            (the 53-bit raw draw behind unit())
//! k = power_law_eval(n, a, inv, r * 2^-53)
//! ```
//!
//! `k` is monotone non-decreasing in `r`, so the function is fully
//! described by `thresholds[k]` = the smallest `r` that yields `k`.
//! A draw then becomes: one `next_u64`, one bucket-index shift, and a
//! short binary search — no floating point at all. The thresholds are
//! found by probing [`power_law_eval`] itself (the same `#[inline]`
//! scalar both paths share), which is what makes the table **bit-equal
//! by construction**: every raw draw maps to exactly the index the
//! reference path would have produced, so golden reports cannot move.
//!
//! Tables are deduplicated in a process-global cache keyed on
//! `(n, skew)` — the built-in benchmarks use a few dozen distinct
//! pairs, each table costing `8n` bytes (≤ 384 KiB at the largest
//! `n = 48000`). `MMM_TABLE_SAMPLER=off` is a runtime escape hatch
//! that falls back to the reference `powf` path everywhere.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::rng::{power_law_eval, DetRng, PowerLaw};

/// Raw draws carry 53 bits, matching `DetRng::unit`.
const RAW_BITS: u32 = 53;
/// Largest raw draw value.
const MAX_R: u64 = (1u64 << RAW_BITS) - 1;
/// `unit()`'s exact scale factor; `r as f64 * UNIT_SCALE` reproduces
/// the reference `u` bit-for-bit for every 53-bit `r`.
const UNIT_SCALE: f64 = 1.0 / (1u64 << RAW_BITS) as f64;
/// The bucket index uses the top `BUCKET_BITS` of the raw draw to
/// bracket the binary search; 12 bits keeps the bucket array at
/// 4097 × 4 bytes while leaving searches ~3 probes deep even at the
/// largest benchmark domain.
const BUCKET_BITS: u32 = 12;
/// Shift that maps a raw draw to its bucket index.
const BUCKET_SHIFT: u32 = RAW_BITS - BUCKET_BITS;
/// Domains larger than this fall back to the reference path rather
/// than build a multi-megabyte table (no benchmark comes close).
const MAX_TABLE_N: u64 = 1 << 20;

/// Immutable table payload, shared via `Arc` through the global cache.
struct TableInner {
    /// Domain size.
    n: u64,
    /// Skew the table was built for (kept for `Debug` output).
    skew: f64,
    /// `thresholds[k]` = smallest raw draw yielding index `k`
    /// (`thresholds[0] == 0`; monotone non-decreasing; a value above
    /// [`MAX_R`] marks an index the reference path never produces).
    thresholds: Vec<u64>,
    /// `buckets[b]` = table answer at raw draw `b << BUCKET_SHIFT`,
    /// so a draw in bucket `b` lies in `[buckets[b], buckets[b + 1]]`.
    buckets: Vec<u32>,
}

impl TableInner {
    /// Builds the exact threshold table for `(n, skew)` by probing the
    /// shared reference evaluation. Cost is `O(n log n)` evaluations
    /// (an analytic first guess keeps the per-index search local), a
    /// few milliseconds at the largest benchmark domain.
    fn build(n: u64, skew: f64) -> Self {
        let (a, inv) = PowerLaw::constants(n, skew);
        let eval = |r: u64| power_law_eval(n, a, inv, r as f64 * UNIT_SCALE);
        let mut thresholds = Vec::with_capacity(n as usize);
        thresholds.push(0u64);
        let mut prev = 0u64;
        for k in 1..n {
            if prev > MAX_R {
                // Earlier index already unreachable; so is this one.
                thresholds.push(prev);
                continue;
            }
            // Analytic estimate of where the continuous inverse CDF
            // crosses k; the threshold sits within a few raw-draw
            // steps of it.
            let u_est = if inv == 0.0 {
                ((k + 1) as f64).ln() / a.ln()
            } else {
                (((k + 1) as f64).powf(1.0 / inv) - 1.0) / (a - 1.0)
            };
            let r_est =
                ((u_est.clamp(0.0, 1.0) * (1u64 << RAW_BITS) as f64) as u64).clamp(prev, MAX_R);
            // Bracket the crossing: grow outward exponentially until
            // eval(lo) < k <= eval(hi) (or we hit the domain edges).
            let mut lo = r_est.saturating_sub(64).max(prev);
            let mut hi = r_est.saturating_add(64).min(MAX_R);
            let mut step = 128u64;
            while lo > prev && eval(lo) >= k {
                lo = lo.saturating_sub(step).max(prev);
                step = step.saturating_mul(2);
            }
            step = 128;
            while hi < MAX_R && eval(hi) < k {
                hi = hi.saturating_add(step).min(MAX_R);
                step = step.saturating_mul(2);
            }
            if eval(hi) < k {
                // The reference path never reaches k: mark unreachable.
                prev = MAX_R + 1;
                thresholds.push(prev);
                continue;
            }
            let mut r = if eval(lo) >= k {
                lo
            } else {
                // Invariant: eval(lo) < k <= eval(hi); find min r with
                // eval(r) >= k.
                let (mut l, mut h) = (lo, hi);
                while l + 1 < h {
                    let m = l + (h - l) / 2;
                    if eval(m) >= k {
                        h = m;
                    } else {
                        l = m;
                    }
                }
                h
            };
            // Nudge down over any local float non-monotonicity so the
            // threshold is the true minimum (the bit-equality tests
            // scan these boundaries exhaustively).
            while r > prev && eval(r - 1) >= k {
                r -= 1;
            }
            prev = r.max(prev);
            thresholds.push(prev);
        }
        // Bucket index: answer at each bucket boundary, bracketing the
        // per-draw binary search.
        let mut buckets = vec![0u32; (1usize << BUCKET_BITS) + 1];
        let mut k = 0u64;
        for (b, slot) in buckets.iter_mut().enumerate() {
            let r = (b as u64) << BUCKET_SHIFT;
            while k + 1 < n && thresholds[(k + 1) as usize] <= r {
                k += 1;
            }
            *slot = k as u32;
        }
        Self {
            n,
            skew,
            thresholds,
            buckets,
        }
    }

    /// Maps a 53-bit raw draw to its power-law index.
    #[inline]
    fn lookup(&self, r: u64) -> u64 {
        let b = (r >> BUCKET_SHIFT) as usize;
        let mut lo = u64::from(self.buckets[b]);
        let mut hi = u64::from(self.buckets[b + 1]);
        // Largest k in [lo, hi] with thresholds[k] <= r.
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.thresholds[mid as usize] <= r {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// The process-global table store: one entry per distinct
/// `(n, skew bits)` parameter pair.
type TableCache = Mutex<HashMap<(u64, u64), Arc<TableInner>>>;

/// Process-global table cache keyed on `(n, skew bits)`. Streams for
/// all cores share one table per distinct parameter pair.
fn cache() -> &'static TableCache {
    static CACHE: OnceLock<TableCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether table-driven sampling is enabled (`MMM_TABLE_SAMPLER=off`
/// reverts every stream to the reference `powf` path). Read once per
/// process.
pub fn table_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("MMM_TABLE_SAMPLER").map_or(true, |v| v != "off"))
}

/// A precomputed power-law sampler, bit-equal to
/// [`DetRng::power_law_prepared`] for the same `(n, skew)`.
///
/// Cheap to clone (the payload is `Arc`-shared through a global cache,
/// so repeated construction for the same parameters reuses one table).
#[derive(Clone)]
pub struct PowerLawTable {
    inner: Arc<TableInner>,
}

impl PowerLawTable {
    /// Fetches (or builds) the shared table for `(n, skew)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `skew <= 0`, or `n` exceeds the table-size
    /// guard ([`PowerLawSampler::new`] falls back to the reference
    /// path instead of panicking).
    pub fn shared(n: u64, skew: f64) -> Self {
        assert!(n > 0, "power_law over empty domain");
        assert!(
            n <= MAX_TABLE_N,
            "domain too large for a threshold table ({n} > {MAX_TABLE_N})"
        );
        let key = (n, skew.to_bits());
        if let Some(t) = cache().lock().unwrap().get(&key) {
            return Self {
                inner: Arc::clone(t),
            };
        }
        // Build outside the lock (construction takes milliseconds);
        // a racing duplicate build is benign — first insert wins.
        let built = Arc::new(TableInner::build(n, skew));
        let mut map = cache().lock().unwrap();
        let entry = map.entry(key).or_insert(built);
        Self {
            inner: Arc::clone(entry),
        }
    }

    /// Domain size.
    #[inline]
    pub fn n(&self) -> u64 {
        self.inner.n
    }

    /// Maps a 53-bit raw draw (`next_u64() >> 11`, the exact value
    /// behind `DetRng::unit`) to its power-law index.
    #[inline]
    pub fn lookup(&self, r: u64) -> u64 {
        self.inner.lookup(r)
    }

    /// Draws an index in `[0, n)` from `rng`, consuming exactly one
    /// `next_u64` — the same keystream consumption as the reference
    /// path, so surrounding draws stay aligned.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        self.inner.lookup(rng.next_u64() >> 11)
    }
}

impl std::fmt::Debug for PowerLawTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerLawTable")
            .field("n", &self.inner.n)
            .field("skew", &self.inner.skew)
            .finish_non_exhaustive()
    }
}

/// The sampler a workload stream actually holds: the table when
/// enabled and the domain is table-sized, the reference `powf` path
/// otherwise. Both arms produce bit-identical draw sequences.
#[derive(Clone, Debug)]
pub enum PowerLawSampler {
    /// Table-driven hot path.
    Table(PowerLawTable),
    /// Per-draw `powf` reference path.
    Reference(PowerLaw),
}

impl PowerLawSampler {
    /// Builds the preferred sampler for `(n, skew)`: table-driven
    /// unless disabled via `MMM_TABLE_SAMPLER=off` or the domain
    /// exceeds the table-size guard.
    pub fn new(n: u64, skew: f64) -> Self {
        if table_enabled() && n <= MAX_TABLE_N {
            Self::Table(PowerLawTable::shared(n, skew))
        } else {
            Self::Reference(PowerLaw::new(n, skew))
        }
    }

    /// Builds the reference-path sampler unconditionally (for tests
    /// and benchmarks that compare the two arms).
    pub fn reference(n: u64, skew: f64) -> Self {
        Self::Reference(PowerLaw::new(n, skew))
    }

    /// Domain size.
    #[inline]
    pub fn n(&self) -> u64 {
        match self {
            Self::Table(t) => t.n(),
            Self::Reference(p) => p.n,
        }
    }

    /// Draws an index in `[0, n)` from `rng`; one `next_u64` either way.
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        match self {
            Self::Table(t) => t.sample(rng),
            Self::Reference(p) => p.sample(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `(n, skew)` shape the built-in benchmarks use, plus the
    /// degenerate and Zipf corners.
    const DOMAINS: [u64; 4] = [1, 2, 128, 48_000];
    const SKEWS: [f64; 7] = [0.5, 1.0, 1.05, 1.3, 1.5, 1.9, 2.2];

    fn eval_r(n: u64, skew: f64, r: u64) -> u64 {
        let (a, inv) = PowerLaw::constants(n, skew);
        power_law_eval(n, a, inv, r as f64 * UNIT_SCALE)
    }

    #[test]
    fn table_matches_reference_on_random_streams() {
        for &n in &DOMAINS {
            for &skew in &SKEWS {
                let table = PowerLawTable::shared(n, skew);
                let reference = PowerLaw::new(n, skew);
                let mut ra = DetRng::new(0xC0FFEE, n ^ skew.to_bits());
                let mut rb = ra.clone();
                for i in 0..4_000 {
                    let t = table.sample(&mut ra);
                    let r = reference.sample(&mut rb);
                    assert_eq!(t, r, "draw {i} diverged for n={n} skew={skew}");
                }
            }
        }
    }

    #[test]
    fn table_matches_reference_at_every_threshold_boundary() {
        // The only places the two paths could disagree are the raw
        // draws adjacent to each threshold; scan all of them.
        for &(n, skew) in &[(128u64, 1.3f64), (128, 1.0), (1_000, 0.5), (48_000, 2.2)] {
            let table = PowerLawTable::shared(n, skew);
            for k in 0..n {
                let thr = table.inner.thresholds[k as usize];
                if thr > MAX_R {
                    continue;
                }
                for r in [thr.saturating_sub(1), thr, (thr + 1).min(MAX_R)] {
                    assert_eq!(
                        table.lookup(r),
                        eval_r(n, skew, r),
                        "boundary r={r} (k={k}) diverged for n={n} skew={skew}"
                    );
                }
            }
        }
    }

    #[test]
    fn thresholds_are_monotone_and_anchored() {
        for &(n, skew) in &[(48_000u64, 1.9f64), (1_000, 1.0)] {
            let table = PowerLawTable::shared(n, skew);
            let thr = &table.inner.thresholds;
            assert_eq!(thr.len() as u64, n);
            assert_eq!(thr[0], 0);
            assert!(thr.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn shared_tables_are_deduplicated() {
        let a = PowerLawTable::shared(4_096, 1.35);
        let b = PowerLawTable::shared(4_096, 1.35);
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        let c = PowerLawTable::shared(4_096, 1.36);
        assert!(!Arc::ptr_eq(&a.inner, &c.inner));
    }

    #[test]
    fn sampler_arms_agree() {
        let hot = PowerLawSampler::new(3_000, 1.8);
        let reference = PowerLawSampler::reference(3_000, 1.8);
        assert_eq!(hot.n(), 3_000);
        let mut ra = DetRng::new(7, 9);
        let mut rb = ra.clone();
        for _ in 0..2_000 {
            assert_eq!(hot.sample(&mut ra), reference.sample(&mut rb));
        }
    }

    #[test]
    fn degenerate_domain_always_zero() {
        let table = PowerLawTable::shared(1, 1.0);
        let mut rng = DetRng::new(11, 0);
        for _ in 0..64 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }
}
