//! Error type shared across the workspace.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while configuring or driving the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A configuration value is inconsistent or out of range.
    Config(String),
    /// An experiment was asked to run with an impossible topology
    /// (e.g. more gang-scheduled VCPUs than cores can ever hold).
    Topology(String),
    /// The simulation reached an internal inconsistency. This always
    /// indicates a bug in the simulator, never in the simulated
    /// software.
    Internal(String),
}

impl Error {
    /// Creates a [`Error::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        Error::Config(msg.into())
    }

    /// Creates a [`Error::Topology`].
    pub fn topology(msg: impl Into<String>) -> Self {
        Error::Topology(msg.into())
    }

    /// Creates a [`Error::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Topology(m) => write!(f, "topology error: {m}"),
            Error::Internal(m) => write!(f, "internal simulator error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(Error::config("bad").to_string(), "configuration error: bad");
        assert_eq!(Error::topology("bad").to_string(), "topology error: bad");
        assert!(Error::internal("x").to_string().contains("internal"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::config("x"));
    }
}
