//! Strongly typed identifiers and physical-address arithmetic.
//!
//! All hardware entities in the simulator are addressed through
//! newtypes so that a core index can never be confused with a VCPU
//! index, and a byte address can never be confused with a line or page
//! number. Conversions between address granularities live here so the
//! line size (64 B) and page size (8 KB, as assumed by the paper's
//! Protection Assistance Table) are defined exactly once.

use std::fmt;

/// A simulation timestamp, measured in core clock cycles at 3 GHz.
pub type Cycle = u64;

/// Bytes per cache line throughout the hierarchy (64 B).
pub const LINE_BYTES: u64 = 64;

/// Bytes per physical page (8 KB), the granularity of the Protection
/// Assistance Table (one bit per 8 KB page; paper §3.4.1).
pub const PAGE_BYTES: u64 = 8192;

/// Log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// Log2 of [`PAGE_BYTES`].
pub const PAGE_SHIFT: u32 = 13;

macro_rules! small_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub struct $name(pub u16);

        impl $name {
            /// Returns the identifier as a plain index, for use with
            /// slices and vectors.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds the identifier from a plain index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in 16 bits.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                assert!(index <= u16::MAX as usize, "id out of range: {index}");
                Self(index as u16)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap(), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(v: u16) -> Self {
                Self(v)
            }
        }
    };
}

small_id!(
    /// A physical core on the chip (`C0`..`C15` for the default
    /// 16-core configuration).
    CoreId
);
small_id!(
    /// A virtual processor exposed to system software. The chip maps
    /// VCPUs onto physical cores (one core in performance mode, a
    /// vocal/mute pair in reliable mode); see paper §3.5.
    VcpuId
);
small_id!(
    /// A guest virtual machine in the consolidated-server experiments,
    /// or the single OS image in single-OS experiments.
    VmId
);
small_id!(
    /// A static vocal/mute core pairing used by standard DMR and by
    /// MMM-IPC. Pair `P(i)` joins cores `2i` (vocal) and `2i+1` (mute).
    PairId
);

impl PairId {
    /// The vocal (master) core of this static pair.
    #[inline]
    pub fn vocal(self) -> CoreId {
        CoreId(self.0 * 2)
    }

    /// The mute (slave) core of this static pair.
    #[inline]
    pub fn mute(self) -> CoreId {
        CoreId(self.0 * 2 + 1)
    }

    /// The static pair that owns the given core.
    #[inline]
    pub fn of_core(core: CoreId) -> Self {
        PairId(core.0 / 2)
    }
}

/// A full physical byte address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PhysAddr(pub u64);

/// A physical cache-line number (byte address divided by 64).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LineAddr(pub u64);

/// A physical page number (byte address divided by 8192).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageAddr(pub u64);

impl PhysAddr {
    /// The cache line containing this byte.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// The physical page containing this byte.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing cache line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl LineAddr {
    /// The first byte of this line.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }

    /// The physical page containing this line.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }
}

impl PageAddr {
    /// The first byte of this page.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// The first line of this page.
    #[inline]
    pub fn first_line(self) -> LineAddr {
        LineAddr(self.0 << (PAGE_SHIFT - LINE_SHIFT))
    }

    /// Number of cache lines per page (128 for 8 KB pages and 64 B lines).
    #[inline]
    pub fn lines_per_page() -> u64 {
        PAGE_BYTES / LINE_BYTES
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pg{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_arithmetic_round_trips() {
        let a = PhysAddr(0x1234_5678);
        assert_eq!(a.line().base().0, a.0 & !(LINE_BYTES - 1));
        assert_eq!(a.page().base().0, a.0 & !(PAGE_BYTES - 1));
        assert_eq!(a.line().page(), a.page());
    }

    #[test]
    fn line_offset_is_within_line() {
        for a in [0u64, 1, 63, 64, 65, 8191, 8192, u64::MAX / 2] {
            assert!(PhysAddr(a).line_offset() < LINE_BYTES);
        }
    }

    #[test]
    fn lines_per_page_matches_shifts() {
        assert_eq!(PageAddr::lines_per_page(), 128);
        let p = PageAddr(3);
        assert_eq!(p.first_line().0, 3 * 128);
        assert_eq!(p.first_line().page(), p);
    }

    #[test]
    fn pair_core_mapping_is_disjoint_and_covers() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..8u16 {
            let p = PairId(i);
            assert_eq!(PairId::of_core(p.vocal()), p);
            assert_eq!(PairId::of_core(p.mute()), p);
            assert!(seen.insert(p.vocal()));
            assert!(seen.insert(p.mute()));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn ids_display_compactly() {
        assert_eq!(CoreId(3).to_string(), "C3");
        assert_eq!(VcpuId(11).to_string(), "V11");
        assert_eq!(VmId(0).to_string(), "V0");
        assert_eq!(PairId(7).to_string(), "P7");
    }

    #[test]
    #[should_panic(expected = "id out of range")]
    fn from_index_rejects_oversized() {
        let _ = CoreId::from_index(1 << 17);
    }
}
