//! Common vocabulary for the mixed-mode multicore simulator.
//!
//! This crate defines the identifiers, physical-address arithmetic,
//! configuration structures, statistics helpers, and deterministic
//! random-number generation shared by every other crate in the
//! workspace. It deliberately contains no simulation logic.
//!
//! The default values of every configuration structure reproduce the
//! target multicore of *Mixed-Mode Multicore Reliability* (Wells,
//! Chakraborty, Sohi; ASPLOS 2009), §3.1 and §4.1: a 16-core chip with
//! out-of-order, 2-wide, 128-entry-window cores at 3 GHz, split 16 KB
//! write-through L1s, 512 KB private L2s, an 8 MB shared exclusive L3,
//! a MOSI directory, 350-cycle DRAM at 40 GB/s, and the Reunion DMR
//! fabric with a dedicated 10-cycle fingerprint network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod fastmap;
pub mod ids;
pub mod rng;
pub mod sampler;
pub mod stats;

pub use config::SystemConfig;
pub use error::{Error, Result};
pub use ids::{CoreId, Cycle, LineAddr, PageAddr, PairId, PhysAddr, VcpuId, VmId};
pub use rng::DetRng;
