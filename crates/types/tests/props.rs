//! Property tests for the statistics and RNG foundations.

use proptest::prelude::*;

use mmm_types::rng::PowerLaw;
use mmm_types::stats::{mean_ci95, Log2Histogram, RunningStat};
use mmm_types::DetRng;

proptest! {
    #[test]
    fn running_stat_merge_equals_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 2..200),
        split in 1usize..100
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = RunningStat::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (a.variance() - whole.variance()).abs()
                < 1e-6 * (1.0 + whole.variance().abs())
        );
    }

    #[test]
    fn ci_half_width_is_nonnegative_and_mean_in_range(
        xs in prop::collection::vec(-1e3f64..1e3, 1..50)
    ) {
        let (mean, hw) = mean_ci95(&xs);
        prop_assert!(hw >= 0.0);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
    }

    #[test]
    fn histogram_percentiles_are_monotone(
        vs in prop::collection::vec(0u64..1_000_000, 1..200)
    ) {
        let mut h = Log2Histogram::new();
        vs.iter().for_each(|&v| h.record(v));
        let p25 = h.percentile(25.0);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        prop_assert!(p25 <= p50 && p50 <= p99);
        prop_assert!(p99 <= h.max());
        prop_assert_eq!(h.count(), vs.len() as u64);
    }

    #[test]
    fn power_law_samples_stay_in_domain(n in 1u64..100_000, skew_milli in 1020u64..3000, seed in any::<u64>()) {
        let skew = skew_milli as f64 / 1000.0;
        let pl = PowerLaw::new(n, skew);
        let mut rng = DetRng::new(seed, 1);
        for _ in 0..200 {
            prop_assert!(pl.sample(&mut rng) < n);
        }
    }

    #[test]
    fn geometric_is_at_least_one(p_milli in 1u64..1000, seed in any::<u64>()) {
        let mut rng = DetRng::new(seed, 2);
        let p = p_milli as f64 / 1000.0;
        for _ in 0..100 {
            prop_assert!(rng.geometric(p) >= 1);
        }
    }

    #[test]
    fn det_rng_streams_are_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = DetRng::new(seed, stream);
        let mut b = DetRng::new(seed, stream);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
