//! Property tests for the statistics and RNG foundations.
//!
//! Deterministic property testing: each property runs over many cases
//! generated from a fixed-seed [`DetRng`], so failures reproduce
//! exactly (the build is offline; no proptest).

use mmm_types::rng::PowerLaw;
use mmm_types::stats::{mean_ci95, Log2Histogram, RunningStat};
use mmm_types::DetRng;

#[test]
fn running_stat_merge_equals_sequential() {
    let mut gen = DetRng::new(0xA11CE, 0);
    for case in 0..64 {
        let len = gen.range(2, 200) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (gen.unit() - 0.5) * 2e6).collect();
        let split = (gen.range(1, 100) as usize).min(xs.len() - 1);
        let mut whole = RunningStat::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = RunningStat::new();
        let mut b = RunningStat::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count(), "case {case}");
        assert!(
            (a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()),
            "case {case}"
        );
        assert!(
            (a.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance().abs()),
            "case {case}"
        );
    }
}

#[test]
fn ci_half_width_is_nonnegative_and_mean_in_range() {
    let mut gen = DetRng::new(0xBEE, 0);
    for case in 0..64 {
        let len = gen.range(1, 50) as usize;
        let xs: Vec<f64> = (0..len).map(|_| (gen.unit() - 0.5) * 2e3).collect();
        let (mean, hw) = mean_ci95(&xs);
        assert!(hw >= 0.0, "case {case}");
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "case {case}");
    }
}

#[test]
fn histogram_percentiles_are_monotone() {
    let mut gen = DetRng::new(0xCAFE, 0);
    for case in 0..64 {
        let len = gen.range(1, 200) as usize;
        let vs: Vec<u64> = (0..len).map(|_| gen.below(1_000_000)).collect();
        let mut h = Log2Histogram::new();
        vs.iter().for_each(|&v| h.record(v));
        let p25 = h.percentile(25.0);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p25 <= p50 && p50 <= p99, "case {case}");
        assert!(p99 <= h.max(), "case {case}");
        assert_eq!(h.count(), vs.len() as u64, "case {case}");
    }
}

#[test]
fn power_law_samples_stay_in_domain() {
    let mut gen = DetRng::new(0xD0E, 0);
    for case in 0..64 {
        let n = gen.range(1, 100_000);
        let skew = gen.range(1020, 3000) as f64 / 1000.0;
        let pl = PowerLaw::new(n, skew);
        let mut rng = DetRng::new(gen.next_u64(), 1);
        for _ in 0..200 {
            assert!(pl.sample(&mut rng) < n, "case {case}: n={n} skew={skew}");
        }
    }
}

#[test]
fn geometric_is_at_least_one() {
    let mut gen = DetRng::new(0xF00D, 0);
    for case in 0..64 {
        let p = gen.range(1, 1000) as f64 / 1000.0;
        let mut rng = DetRng::new(gen.next_u64(), 2);
        for _ in 0..100 {
            assert!(rng.geometric(p) >= 1, "case {case}: p={p}");
        }
    }
}

#[test]
fn det_rng_streams_are_reproducible() {
    let mut gen = DetRng::new(0x5EED, 0);
    for _ in 0..64 {
        let (seed, stream) = (gen.next_u64(), gen.next_u64());
        let mut a = DetRng::new(seed, stream);
        let mut b = DetRng::new(seed, stream);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
