//! End-to-end benchmarks: one short run per paper configuration,
//! measuring simulated-machine construction plus a fixed cycle budget.
//!
//! These keep the full-system paths (gang scheduling, DMR coupling,
//! PAB filtering, transitions) under continuous performance watch;
//! the paper-shaped outputs come from the bin targets. Run with
//! `cargo bench --bench figures`.

use mmm_bench::harness::{bench, black_box};
use mmm_core::{MixedPolicy, System, Workload};
use mmm_types::SystemConfig;
use mmm_workload::Benchmark;

const CYCLES: u64 = 20_000;

fn run_config(label: &str, workload: Workload) {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 10_000; // exercise gang switching
    bench(label, || {
        let mut sys = System::new(&cfg, workload, 1).expect("valid config");
        sys.run(CYCLES);
        black_box(sys.report(CYCLES).total_user_commits());
    });
}

fn main() {
    let bench_kind = Benchmark::Apache;
    run_config("fig5_no_dmr_2x_20k_cycles", Workload::NoDmr2x(bench_kind));
    run_config("fig5_reunion_20k_cycles", Workload::ReunionDmr(bench_kind));
    run_config(
        "fig6_mmm_ipc_20k_cycles",
        Workload::Consolidated {
            bench: bench_kind,
            policy: MixedPolicy::MmmIpc,
        },
    );
    run_config(
        "fig6_mmm_tp_20k_cycles",
        Workload::Consolidated {
            bench: bench_kind,
            policy: MixedPolicy::MmmTp,
        },
    );
    run_config(
        "single_os_mixed_20k_cycles",
        Workload::SingleOsMixed(bench_kind),
    );
}
