//! Criterion end-to-end benchmarks: one short run per paper
//! configuration, measuring simulated-machine construction plus a
//! fixed cycle budget.
//!
//! These keep the full-system paths (gang scheduling, DMR coupling,
//! PAB filtering, transitions) under continuous performance watch;
//! the paper-shaped outputs come from the bin targets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mmm_core::{MixedPolicy, System, Workload};
use mmm_types::SystemConfig;
use mmm_workload::Benchmark;

const CYCLES: u64 = 20_000;

fn run_config(c: &mut Criterion, label: &str, workload: Workload) {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = 10_000; // exercise gang switching
    c.bench_function(label, |b| {
        b.iter_batched(
            || System::new(&cfg, workload, 1).expect("valid config"),
            |mut sys| {
                sys.run(CYCLES);
                sys.report(CYCLES).total_user_commits()
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_figures(c: &mut Criterion) {
    let bench = Benchmark::Apache;
    run_config(c, "fig5_no_dmr_2x_20k_cycles", Workload::NoDmr2x(bench));
    run_config(c, "fig5_reunion_20k_cycles", Workload::ReunionDmr(bench));
    run_config(
        c,
        "fig6_mmm_ipc_20k_cycles",
        Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmIpc,
        },
    );
    run_config(
        c,
        "fig6_mmm_tp_20k_cycles",
        Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmTp,
        },
    );
    run_config(
        c,
        "single_os_mixed_20k_cycles",
        Workload::SingleOsMixed(bench),
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
