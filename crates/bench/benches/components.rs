//! Micro-benchmarks for the simulator's hot components.
//!
//! These guard the simulator's own performance (cycles simulated per
//! wall-clock second), not the paper's results — the paper's numbers
//! come from the `fig5`/`fig6`/`table1`/`table2`/`pab_latency` bin
//! targets. Run with `cargo bench --bench components`.

use mmm_bench::harness::{bench, black_box};
use mmm_core::{Pab, Pat};
use mmm_cpu::{Core, ExecContext};
use mmm_mem::cache::{CacheLine, Mosi, SetAssocCache};
use mmm_mem::MemorySystem;
use mmm_reunion::channel::{PairChannel, Side};
use mmm_types::config::CacheGeometry;
use mmm_types::{CoreId, LineAddr, SystemConfig, VcpuId, VmId};
use mmm_workload::{Benchmark, OpStream};

fn bench_cache() {
    let mut cache = SetAssocCache::new(CacheGeometry::new(512 * 1024, 4).unwrap());
    let mut i = 0u64;
    bench("cache_insert_lookup", || {
        i = i.wrapping_add(0x9E37_79B9);
        let addr = LineAddr(i % 16_384);
        cache.insert(CacheLine {
            addr,
            state: Mosi::Shared,
            version: i,
            coherent: true,
        });
        black_box(cache.lookup(addr).is_some());
    });
}

fn bench_opstream() {
    let mut s = OpStream::new(Benchmark::Oltp.profile(), VmId(0), VcpuId(0), 1);
    bench("opstream_next_op", || {
        black_box(s.next_op());
    });
}

/// The table-driven sampler against the `powf` reference path it
/// replaced, on the OLTP private-footprint shape (the hottest draw in
/// the workload streams). Both paths produce bit-identical indices;
/// this measures the per-draw cost difference in isolation.
fn bench_power_law_sampler() {
    use mmm_types::sampler::PowerLawSampler;
    use mmm_types::DetRng;

    let table = PowerLawSampler::new(30_000, 1.35);
    let mut rng = DetRng::new(1, 0);
    bench("power_law_table_draw", || {
        black_box(table.sample(&mut rng));
    });

    let reference = PowerLawSampler::reference(30_000, 1.35);
    let mut rng = DetRng::new(1, 0);
    bench("power_law_powf_draw", || {
        black_box(reference.sample(&mut rng));
    });
}

fn bench_mem_load() {
    let cfg = SystemConfig::default();
    let mut mem = MemorySystem::new(&cfg);
    let mut now = 0u64;
    let mut i = 0u64;
    bench("mem_coherent_load", || {
        i = i.wrapping_add(0x9E37_79B9);
        now += 1;
        black_box(mem.load(CoreId(0), LineAddr(i % 65_536), true, now));
    });
}

fn bench_core_tick() {
    let cfg = SystemConfig::default();
    let mut mem = MemorySystem::new(&cfg);
    let mut core = Core::new(CoreId(0), &cfg);
    core.set_context(ExecContext::new(OpStream::new(
        Benchmark::Pmake.profile(),
        VmId(0),
        VcpuId(0),
        1,
    )));
    let mut now = 0u64;
    bench("core_tick", || {
        core.tick(now, &mut mem);
        now += 1;
    });
}

fn bench_fingerprint_channel() {
    let cfg = SystemConfig::default();
    let mut ch = PairChannel::new(cfg.reunion, 0);
    let mut seq = 0u64;
    bench("pair_channel_publish_commit", || {
        ch.publish(Side::Vocal, seq, seq, None);
        ch.publish(Side::Mute, seq, seq + 3, None);
        let t = ch.commit_time(seq, seq + 100);
        ch.prune_below(seq);
        seq += 1;
        black_box(t);
    });
}

fn bench_pab_check() {
    let cfg = SystemConfig::default();
    let pab = std::cell::RefCell::new(Pab::new(cfg.pab));
    let pat = Pat::new();
    let mut mem = MemorySystem::new(&cfg);
    let mut i = 0u64;
    bench("pab_check_store", || {
        i = i.wrapping_add(1);
        // Mostly hits: 64 hot page groups.
        let line = LineAddr((i % 64) * 8192);
        black_box(mmm_core::check_store(
            &pab,
            CoreId(0),
            line,
            &pat,
            &mut mem,
            i,
        ));
    });
}

fn main() {
    bench_cache();
    bench_opstream();
    bench_power_law_sampler();
    bench_mem_load();
    bench_core_tick();
    bench_fingerprint_channel();
    bench_pab_check();
}
