//! The campaign keystone property, proven end-to-end: a campaign
//! killed mid-run and resumed produces a byte-identical merged
//! aggregate to an uninterrupted run. Plus resume bookkeeping and
//! foreign-directory rejection.
//!
//! Cycle budgets are tiny so the suite stays fast in debug builds —
//! the property under test is about checkpointing and merging, not
//! simulation fidelity.

use std::fs;
use std::path::PathBuf;

use mmm_bench::campaign::{run_campaign, CampaignOptions, Manifest};

const MANIFEST: &str = r#"{
    "name": "itest",
    "warmup": 500,
    "measure": 2000,
    "seeds": 2,
    "grid": {
        "benchmark": "pmake",
        "workload": ["nodmr", "reunion", "mmm_ipc"],
        "cores": [4, 8],
        "fault_rate": [0, 0.0001]
    }
}"#;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmm-campaign-it-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts() -> CampaignOptions {
    CampaignOptions {
        threads: 2,
        limit: None,
        quiet: true,
    }
}

#[test]
fn killed_and_resumed_campaign_merges_byte_identically() {
    let m = Manifest::parse(MANIFEST).expect("manifest parses");
    assert_eq!(m.cell_count(), 12);

    // Reference: one uninterrupted run.
    let whole_dir = temp_dir("whole");
    let whole = run_campaign(&m, &whole_dir, &opts()).expect("uninterrupted run");
    assert!(whole.complete);
    assert_eq!(whole.cells_done, 12);
    let whole_bytes = fs::read(whole_dir.join("aggregate.json")).unwrap();

    // Interrupted: stop after 5 cells (a deterministic stand-in for a
    // mid-campaign kill — checkpoints on disk, grid incomplete), then
    // resume to completion with a different thread count.
    let split_dir = temp_dir("split");
    let first = run_campaign(
        &m,
        &split_dir,
        &CampaignOptions {
            limit: Some(5),
            ..opts()
        },
    )
    .expect("interrupted run");
    assert!(!first.complete);
    assert_eq!(first.ran, 5);
    assert_eq!(first.cells_done, 5);

    let resumed = run_campaign(
        &m,
        &split_dir,
        &CampaignOptions {
            threads: 3,
            ..opts()
        },
    )
    .expect("resumed run");
    assert!(resumed.complete);
    assert_eq!(resumed.resumed, 5, "checkpointed cells must not re-run");
    assert_eq!(resumed.ran, 7);
    assert_eq!(resumed.cells_done, 12);

    let split_bytes = fs::read(split_dir.join("aggregate.json")).unwrap();
    assert_eq!(
        whole_bytes, split_bytes,
        "killed+resumed aggregate must be byte-identical to uninterrupted"
    );

    let _ = fs::remove_dir_all(&whole_dir);
    let _ = fs::remove_dir_all(&split_dir);
}

#[test]
fn resume_is_a_no_op_when_complete_and_rejects_foreign_directories() {
    let small = r#"{"name":"itest2","warmup":200,"measure":1000,
        "grid":{"benchmark":"synthetic:20","workload":"nodmr","cores":4}}"#;
    let m = Manifest::parse(small).unwrap();
    let dir = temp_dir("noop");
    let first = run_campaign(&m, &dir, &opts()).unwrap();
    assert!(first.complete);
    let bytes = fs::read(dir.join("aggregate.json")).unwrap();

    // Re-running a complete campaign runs nothing and rewrites the
    // identical aggregate.
    let again = run_campaign(&m, &dir, &opts()).unwrap();
    assert_eq!(again.ran, 0);
    assert_eq!(again.resumed, 1);
    assert_eq!(bytes, fs::read(dir.join("aggregate.json")).unwrap());

    // A different sweep pointed at the same directory must refuse.
    let other = Manifest::parse(
        r#"{"name":"itest2","warmup":200,"measure":1000,
            "grid":{"benchmark":"synthetic:20","workload":"nodmr","cores":8}}"#,
    )
    .unwrap();
    let err = run_campaign(&other, &dir, &opts()).unwrap_err();
    assert!(err.contains("hash mismatch"), "{err}");

    let _ = fs::remove_dir_all(&dir);
}
