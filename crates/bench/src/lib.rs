//! Shared plumbing for the benchmark harness binaries.
//!
//! Each `bin/` target reproduces one table or figure of the paper's
//! evaluation (see `DESIGN.md` §3). This library holds the pieces they
//! share: the experiment template, figure-shaped table assembly, and
//! normalization helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mmm_core::{Experiment, RunResult};

pub mod campaign;
pub mod export;
pub mod harness;
pub mod perf;

/// Builds the harness experiment template: `MMM_*` env overrides on
/// top of the given defaults (sized per figure so cache state reaches
/// capacity equilibrium — the paper ran 100 M cycles per run).
pub fn experiment_sized(default_warmup: u64, default_measure: u64) -> Experiment {
    let mut e = Experiment::from_env();
    if std::env::var("MMM_MEASURE").is_err() {
        e.measure = default_measure;
    }
    if std::env::var("MMM_WARMUP").is_err() {
        e.warmup = default_warmup;
    }
    e
}

/// Default-sized harness experiment.
pub fn experiment() -> Experiment {
    experiment_sized(1_000_000, 3_000_000)
}

/// Normalizes `(mean, ci)` of a metric by `base`.
pub fn norm(value: (f64, f64), base: f64) -> (f64, f64) {
    if base == 0.0 {
        (0.0, 0.0)
    } else {
        (value.0 / base, value.1 / base)
    }
}

/// Prints the standard run-length banner so outputs are
/// self-describing.
pub fn banner(what: &str, e: &Experiment) {
    println!(
        "{what}: warmup={} measure={} seeds={} (override via MMM_WARMUP / MMM_MEASURE / MMM_SEEDS)",
        e.warmup,
        e.measure,
        e.seeds.len()
    );
}

/// Mean of a metric across a run's reports (no CI).
pub fn mean_of(run: &RunResult, f: impl Fn(&mmm_core::SystemReport) -> f64) -> f64 {
    run.metric(f).0
}
