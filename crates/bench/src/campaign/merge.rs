//! Cross-run aggregation: cell records → one deterministic
//! `aggregate.json` plus the Pareto-frontier report.
//!
//! The aggregate is *always* rebuilt from the on-disk records, sorted
//! by cell id — never from in-memory results — so its bytes are a
//! pure function of (manifest, completed cells). That is the keystone
//! property the CI gate checks: kill a campaign anywhere, resume it,
//! and the merged aggregate is byte-identical to an uninterrupted
//! run's.
//!
//! The Pareto report ranks cells on the paper's three-way trade-off:
//! maximize throughput (committed user IPC), maximize fault coverage
//! (fraction of commits under DMR), minimize transition overhead
//! (mode-switch cycles as a fraction of core-cycles). A cell is on
//! the frontier iff no other completed cell is at least as good on
//! all three axes and strictly better on one.

use mmm_trace::{registry_from_json, registry_to_json, Json, MetricsRegistry};

use super::checkpoint::{site_outcomes_json, CellRecord, CellSummary};
use super::manifest::Manifest;

/// The `kind` tag the aggregate document carries.
pub const AGGREGATE_KIND: &str = "mmm-campaign-aggregate";

/// One row of the aggregate's `cells` array, decoded for reporting.
#[derive(Clone, Debug)]
pub struct AggregateRow {
    /// Cell id.
    pub id: usize,
    /// Axis coordinates (JSON object, canonical axis order).
    pub axes: Json,
    /// Derived summary.
    pub summary: CellSummary,
}

/// `true` iff `a` dominates `b` in the (throughput ↑, coverage ↑,
/// transition overhead ↓) order.
fn dominates(a: &CellSummary, b: &CellSummary) -> bool {
    let ge = a.throughput >= b.throughput
        && a.coverage >= b.coverage
        && a.transition_overhead <= b.transition_overhead;
    let strict = a.throughput > b.throughput
        || a.coverage > b.coverage
        || a.transition_overhead < b.transition_overhead;
    ge && strict
}

/// Ids of the non-dominated cells, in id order.
pub fn pareto_frontier(rows: &[AggregateRow]) -> Vec<usize> {
    rows.iter()
        .filter(|r| {
            !rows
                .iter()
                .any(|o| o.id != r.id && dominates(&o.summary, &r.summary))
        })
        .map(|r| r.id)
        .collect()
}

/// Builds the aggregate document from validated records (already
/// sorted and deduplicated by [`super::checkpoint::scan_records`]).
pub fn build_aggregate(
    manifest: &Manifest,
    hash: &str,
    cell_count: usize,
    records: &[CellRecord],
) -> Result<Json, String> {
    let mut merged = MetricsRegistry::new();
    let mut rows = Vec::with_capacity(records.len());
    let mut fault_sites = Vec::with_capacity(records.len());
    for rec in records {
        let metrics = rec
            .doc
            .get("metrics")
            .ok_or_else(|| format!("cell {} has no metrics", rec.id))?;
        let registry = registry_from_json(metrics).map_err(|e| format!("cell {}: {e}", rec.id))?;
        // Per-cell forensic outcome counts, derived from the lossless
        // registry (the single source of truth) rather than stored
        // separately — so records checkpointed before this field
        // existed still aggregate identically.
        fault_sites.push(site_outcomes_json(&registry));
        merged.merge(&registry);
        let summary = rec
            .doc
            .get("summary")
            .ok_or_else(|| format!("cell {} has no summary", rec.id))
            .and_then(CellSummary::from_json)
            .map_err(|e| format!("cell {}: {e}", rec.id))?;
        rows.push(AggregateRow {
            id: rec.id,
            axes: rec
                .doc
                .get("axes")
                .cloned()
                .unwrap_or(Json::Obj(Vec::new())),
            summary,
        });
    }
    let pareto = pareto_frontier(&rows);
    let cells = Json::Arr(
        rows.iter()
            .zip(&fault_sites)
            .map(|(r, sites)| {
                Json::obj([
                    ("id", Json::U64(r.id as u64)),
                    ("axes", r.axes.clone()),
                    ("summary", r.summary.to_json()),
                    ("fault_sites", sites.clone()),
                    ("pareto", Json::Bool(pareto.contains(&r.id))),
                ])
            })
            .collect(),
    );
    Ok(Json::obj([
        ("kind", Json::str(AGGREGATE_KIND)),
        ("campaign", Json::str(manifest.name.clone())),
        ("manifest_hash", Json::str(hash)),
        ("manifest", manifest.canonical_json()),
        ("cells_total", Json::U64(cell_count as u64)),
        ("cells_done", Json::U64(records.len() as u64)),
        ("complete", Json::Bool(records.len() == cell_count)),
        ("cells", cells),
        (
            "pareto",
            Json::Arr(pareto.iter().map(|&id| Json::U64(id as u64)).collect()),
        ),
        ("fault_sites", site_outcomes_json(&merged)),
        ("merged_metrics", registry_to_json(&merged)),
    ]))
}

/// Decodes the rows back out of an aggregate document (used by the
/// Pareto table printer and by `mmm-inspect campaign`).
pub fn aggregate_rows(doc: &Json) -> Result<Vec<AggregateRow>, String> {
    let cells = match doc.get("cells") {
        Some(Json::Arr(items)) => items,
        _ => return Err("aggregate has no \"cells\" array".to_string()),
    };
    cells
        .iter()
        .map(|c| {
            let id = c
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("cell row without id")? as usize;
            let summary = c
                .get("summary")
                .ok_or_else(|| format!("cell {id} row without summary"))
                .and_then(CellSummary::from_json)?;
            Ok(AggregateRow {
                id,
                axes: c.get("axes").cloned().unwrap_or(Json::Obj(Vec::new())),
                summary,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(id: usize, tp: f64, cov: f64, ov: f64) -> AggregateRow {
        AggregateRow {
            id,
            axes: Json::Obj(Vec::new()),
            summary: CellSummary {
                throughput: tp,
                coverage: cov,
                transition_overhead: ov,
                faults_injected: 0,
                faults_detected: 0,
            },
        }
    }

    #[test]
    fn pareto_keeps_only_non_dominated_cells() {
        let rows = vec![
            row(0, 1.0, 0.5, 0.01),  // fast, low coverage
            row(1, 0.5, 1.0, 0.02),  // slow, full coverage
            row(2, 0.4, 0.9, 0.03),  // dominated by 1 on all axes
            row(3, 0.7, 0.8, 0.005), // cheap transitions
        ];
        assert_eq!(pareto_frontier(&rows), vec![0, 1, 3]);
    }

    #[test]
    fn identical_cells_all_stay_on_the_frontier() {
        let rows = vec![row(0, 1.0, 1.0, 0.0), row(1, 1.0, 1.0, 0.0)];
        assert_eq!(pareto_frontier(&rows), vec![0, 1]);
    }

    #[test]
    fn aggregate_is_deterministic_and_decodable() {
        let manifest = Manifest::parse(r#"{"name":"agg","grid":{"cores":[4,8]}}"#).unwrap();
        let hash = manifest.hash();
        let mut m = MetricsRegistry::new();
        m.count("run.cycles", 100);
        m.count("core.commits_user", 40);
        let rec = |id: u64| CellRecord {
            id: id as usize,
            doc: Json::obj([
                ("id", Json::U64(id)),
                ("axes", Json::obj([("cores", Json::U64(4 << id))])),
                ("summary", CellSummary::derive(&m, 4).to_json()),
                ("metrics", registry_to_json(&m)),
            ]),
        };
        let records = vec![rec(0), rec(1)];
        let a = build_aggregate(&manifest, &hash, 2, &records).unwrap();
        let b = build_aggregate(&manifest, &hash, 2, &records).unwrap();
        assert_eq!(a.render(), b.render(), "same records, same bytes");
        assert_eq!(a.get("complete"), Some(&Json::Bool(true)));
        // Merged counters are the sum over cells.
        let merged = registry_from_json(a.get("merged_metrics").unwrap()).unwrap();
        assert_eq!(merged.counter("run.cycles"), 200);
        let rows = aggregate_rows(&a).unwrap();
        assert_eq!(rows.len(), 2);
        // Partial record set: not complete.
        let partial = build_aggregate(&manifest, &hash, 2, &records[..1]).unwrap();
        assert_eq!(partial.get("complete"), Some(&Json::Bool(false)));
        assert_eq!(partial.get("cells_done"), Some(&Json::U64(1)));
    }
}
