//! Campaign manifests: the sweep-grid description and its expansion
//! into cells.
//!
//! A manifest is a single JSON object (parsed with the serde-free
//! [`Json::parse`]) naming the campaign, fixing the per-cell run
//! lengths, and describing a grid over the design-space axes the
//! paper treats as free variables: PAB geometry, pair topology (core
//! count), scheduler mode, fault rate, and switch interval:
//!
//! ```json
//! {
//!   "name": "pab-sweep",
//!   "warmup": 20000,
//!   "measure": 100000,
//!   "seeds": 2,
//!   "grid": {
//!     "benchmark": ["pmake", "oltp"],
//!     "workload": ["reunion", "mmm_ipc"],
//!     "cores": [8, 16],
//!     "pab_entries": [64, 128],
//!     "pab_lookup": "parallel",
//!     "pab_serial_latency": 2,
//!     "fault_rate": [0, 2e-6],
//!     "switch_interval": 3000000
//!   }
//! }
//! ```
//!
//! Every grid axis accepts an array or a scalar (a one-value axis);
//! absent axes take the paper's defaults. Unknown keys — top-level or
//! inside `grid` — are errors, not silently ignored: a typo must not
//! quietly shrink a million-run sweep. The grid expands row-major over
//! the axes in canonical order, so cell ids are stable for a given
//! manifest, and [`Manifest::hash`] fingerprints the *canonicalized*
//! manifest (spelling and axis order do not matter) so a resumed
//! campaign can prove it is continuing the same sweep.

use mmm_core::{Cell, Experiment, MixedPolicy, Workload};
use mmm_trace::Json;
use mmm_types::config::PabLookup;
use mmm_types::SystemConfig;
use mmm_workload::Benchmark;

/// Default warm-up cycles per cell when the manifest does not say.
pub const DEFAULT_WARMUP: u64 = 20_000;
/// Default measured cycles per cell when the manifest does not say.
pub const DEFAULT_MEASURE: u64 = 100_000;

/// The scheduler-mode axis: which machine configuration a cell runs.
/// A manifest spells these `nodmr2x`, `nodmr`, `reunion`, `dmr_base`,
/// `mmm_ipc`, `mmm_tp`, `single_os`, or `overcommit:<R>r<P>p`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Fig 5 `No DMR 2X`: one VCPU per core, no redundancy.
    NoDmr2x,
    /// Fig 5 `No DMR`: half the cores busy, half idle.
    NoDmr,
    /// Fig 5 `Reunion`: all-DMR.
    Reunion,
    /// Fig 6 consolidated server, every guest redundant.
    DmrBase,
    /// Fig 6 MMM-IPC.
    MmmIpc,
    /// Fig 6 MMM-TP.
    MmmTp,
    /// §5.3 single-OS mixed mode.
    SingleOs,
    /// §3.5 overcommitted MMM with explicit VCPU demand.
    Overcommit {
        /// VCPUs requiring DMR pairs.
        reliable: u16,
        /// VCPUs requiring single cores.
        perf: u16,
    },
}

impl WorkloadSpec {
    /// Parses the manifest spelling.
    pub fn parse(s: &str) -> Option<WorkloadSpec> {
        match s {
            "nodmr2x" => Some(WorkloadSpec::NoDmr2x),
            "nodmr" => Some(WorkloadSpec::NoDmr),
            "reunion" => Some(WorkloadSpec::Reunion),
            "dmr_base" => Some(WorkloadSpec::DmrBase),
            "mmm_ipc" => Some(WorkloadSpec::MmmIpc),
            "mmm_tp" => Some(WorkloadSpec::MmmTp),
            "single_os" => Some(WorkloadSpec::SingleOs),
            _ => {
                let rest = s.strip_prefix("overcommit:")?;
                let (r, p) = rest.split_once('r')?;
                let p = p.strip_suffix('p')?;
                Some(WorkloadSpec::Overcommit {
                    reliable: r.parse().ok()?,
                    perf: p.parse().ok()?,
                })
            }
        }
    }

    /// The canonical manifest spelling (inverse of
    /// [`WorkloadSpec::parse`]).
    pub fn spelling(self) -> String {
        match self {
            WorkloadSpec::NoDmr2x => "nodmr2x".to_string(),
            WorkloadSpec::NoDmr => "nodmr".to_string(),
            WorkloadSpec::Reunion => "reunion".to_string(),
            WorkloadSpec::DmrBase => "dmr_base".to_string(),
            WorkloadSpec::MmmIpc => "mmm_ipc".to_string(),
            WorkloadSpec::MmmTp => "mmm_tp".to_string(),
            WorkloadSpec::SingleOs => "single_os".to_string(),
            WorkloadSpec::Overcommit { reliable, perf } => {
                format!("overcommit:{reliable}r{perf}p")
            }
        }
    }

    /// Binds the spec to a benchmark, yielding the runnable workload.
    pub fn bind(self, bench: Benchmark) -> Workload {
        match self {
            WorkloadSpec::NoDmr2x => Workload::NoDmr2x(bench),
            WorkloadSpec::NoDmr => Workload::NoDmr(bench),
            WorkloadSpec::Reunion => Workload::ReunionDmr(bench),
            WorkloadSpec::DmrBase => Workload::Consolidated {
                bench,
                policy: MixedPolicy::DmrBase,
            },
            WorkloadSpec::MmmIpc => Workload::Consolidated {
                bench,
                policy: MixedPolicy::MmmIpc,
            },
            WorkloadSpec::MmmTp => Workload::Consolidated {
                bench,
                policy: MixedPolicy::MmmTp,
            },
            WorkloadSpec::SingleOs => Workload::SingleOsMixed(bench),
            WorkloadSpec::Overcommit { reliable, perf } => Workload::Overcommitted {
                bench,
                reliable,
                perf,
            },
        }
    }
}

/// The canonical benchmark spelling used in hashes and cell records.
pub fn benchmark_spelling(b: Benchmark) -> String {
    match b {
        Benchmark::Synthetic { user_kilo_insts } => format!("synthetic:{user_kilo_insts}"),
        other => other.name().to_ascii_lowercase(),
    }
}

/// A parsed, validated campaign manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Campaign name (output files carry it).
    pub name: String,
    /// Warm-up cycles per run.
    pub warmup: u64,
    /// Measured cycles per run.
    pub measure: u64,
    /// Seeds per cell (seeds `1..=n`).
    pub seeds: u64,
    /// Benchmark axis.
    pub benchmark: Vec<Benchmark>,
    /// Scheduler-mode axis.
    pub workload: Vec<WorkloadSpec>,
    /// Pair-topology axis: physical core count (pairs = cores / 2).
    pub cores: Vec<u64>,
    /// PAB size axis (entries).
    pub pab_entries: Vec<u64>,
    /// PAB lookup-organization axis.
    pub pab_lookup: Vec<PabLookup>,
    /// PAB serial-lookup latency axis (cycles).
    pub pab_serial_latency: Vec<u64>,
    /// Fault-rate axis (faults per core-cycle; 0 = injection off).
    pub fault_rate: Vec<f64>,
    /// Switch-interval axis: the gang-scheduling timeslice in cycles.
    pub switch_interval: Vec<u64>,
}

/// One grid axis value, typed for stable JSON output.
#[derive(Clone, Debug, PartialEq)]
pub enum AxisValue {
    /// An integer-valued axis (cores, PAB entries, intervals).
    U64(u64),
    /// A real-valued axis (fault rate).
    F64(f64),
    /// A named axis value (benchmark, workload, PAB lookup).
    Str(String),
}

impl AxisValue {
    /// The value as JSON.
    pub fn to_json(&self) -> Json {
        match self {
            AxisValue::U64(v) => Json::U64(*v),
            AxisValue::F64(v) => Json::F64(*v),
            AxisValue::Str(s) => Json::str(s.clone()),
        }
    }

    /// Compact human rendering for tables.
    pub fn display(&self) -> String {
        match self {
            AxisValue::U64(v) => v.to_string(),
            AxisValue::F64(v) => format!("{v}"),
            AxisValue::Str(s) => s.clone(),
        }
    }
}

/// The grid axes in canonical (expansion and hash) order.
pub const AXES: [&str; 8] = [
    "benchmark",
    "workload",
    "cores",
    "pab_entries",
    "pab_lookup",
    "pab_serial_latency",
    "fault_rate",
    "switch_interval",
];

/// One expanded grid cell: its stable id, its axis coordinates, and
/// the runnable [`Cell`].
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Row-major index in the expanded grid — the cell's stable id.
    pub id: usize,
    /// Axis coordinates, in [`AXES`] order.
    pub axes: Vec<(&'static str, AxisValue)>,
    /// The fully-parameterized experiment + workload.
    pub cell: Cell,
}

impl CellSpec {
    /// The cell's axis coordinates as a JSON object.
    pub fn axes_json(&self) -> Json {
        Json::Obj(
            self.axes
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }

    /// Compact one-line label for logs and tables.
    pub fn label(&self) -> String {
        self.axes
            .iter()
            .map(|(k, v)| format!("{k}={}", v.display()))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Treats a scalar as a one-element axis, otherwise the array items.
fn axis_items(v: &Json) -> Vec<Json> {
    match v {
        Json::Arr(items) => items.clone(),
        other => vec![other.clone()],
    }
}

fn u64_axis(name: &str, v: &Json) -> Result<Vec<u64>, String> {
    let items = axis_items(v);
    if items.is_empty() {
        return Err(format!("axis {name:?} is empty"));
    }
    items
        .iter()
        .map(|i| {
            i.as_u64()
                .ok_or_else(|| format!("axis {name:?}: {} is not an unsigned integer", i.render()))
        })
        .collect()
}

fn f64_axis(name: &str, v: &Json) -> Result<Vec<f64>, String> {
    let items = axis_items(v);
    if items.is_empty() {
        return Err(format!("axis {name:?} is empty"));
    }
    items
        .iter()
        .map(|i| {
            i.as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| {
                    format!("axis {name:?}: {} is not a non-negative number", i.render())
                })
        })
        .collect()
}

fn str_axis<T>(name: &str, v: &Json, parse: impl Fn(&str) -> Option<T>) -> Result<Vec<T>, String> {
    let items = axis_items(v);
    if items.is_empty() {
        return Err(format!("axis {name:?} is empty"));
    }
    items
        .iter()
        .map(|i| {
            let s = i
                .as_str()
                .ok_or_else(|| format!("axis {name:?}: {} is not a string", i.render()))?;
            parse(s).ok_or_else(|| format!("axis {name:?}: unknown value {s:?}"))
        })
        .collect()
}

fn scalar_u64(obj: &Json, key: &str, default: u64) -> Result<u64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("{key:?} must be an unsigned integer, got {}", v.render())),
    }
}

impl Manifest {
    /// Parses and validates a manifest document.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = Json::parse(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
        let obj = doc
            .as_obj()
            .ok_or("manifest must be a JSON object".to_string())?;
        for (k, _) in obj {
            if !["name", "warmup", "measure", "seeds", "grid"].contains(&k.as_str()) {
                return Err(format!("unknown manifest key {k:?}"));
            }
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or("manifest needs a non-empty \"name\" string")?
            .to_string();
        if name.contains(|c: char| c == '/' || c == '\\' || c.is_whitespace()) {
            return Err(format!(
                "campaign name {name:?} must not contain path separators or whitespace"
            ));
        }
        let warmup = scalar_u64(&doc, "warmup", DEFAULT_WARMUP)?;
        let measure = scalar_u64(&doc, "measure", DEFAULT_MEASURE)?;
        if measure == 0 {
            return Err("\"measure\" must be positive".to_string());
        }
        let seeds = scalar_u64(&doc, "seeds", 1)?;
        if seeds == 0 {
            return Err("\"seeds\" must be at least 1".to_string());
        }
        let grid = doc.get("grid").ok_or("manifest needs a \"grid\" object")?;
        let grid_obj = grid
            .as_obj()
            .ok_or("\"grid\" must be a JSON object".to_string())?;
        for (k, _) in grid_obj {
            if !AXES.contains(&k.as_str()) {
                return Err(format!(
                    "unknown grid axis {k:?} (axes: {})",
                    AXES.join(", ")
                ));
            }
        }
        let axis = |name: &str| grid.get(name);
        let benchmark = match axis("benchmark") {
            Some(v) => str_axis("benchmark", v, Benchmark::from_name)?,
            None => vec![Benchmark::Pmake],
        };
        let workload = match axis("workload") {
            Some(v) => str_axis("workload", v, WorkloadSpec::parse)?,
            None => vec![WorkloadSpec::Reunion],
        };
        let cores = match axis("cores") {
            Some(v) => u64_axis("cores", v)?,
            None => vec![SystemConfig::default().cores as u64],
        };
        let defaults = SystemConfig::default();
        let pab_entries = match axis("pab_entries") {
            Some(v) => u64_axis("pab_entries", v)?,
            None => vec![defaults.pab.entries as u64],
        };
        let pab_lookup = match axis("pab_lookup") {
            Some(v) => str_axis("pab_lookup", v, |s| match s {
                "parallel" => Some(PabLookup::Parallel),
                "serial" => Some(PabLookup::Serial),
                _ => None,
            })?,
            None => vec![PabLookup::Parallel],
        };
        let pab_serial_latency = match axis("pab_serial_latency") {
            Some(v) => u64_axis("pab_serial_latency", v)?,
            None => vec![defaults.pab.serial_latency as u64],
        };
        let fault_rate = match axis("fault_rate") {
            Some(v) => f64_axis("fault_rate", v)?,
            None => vec![0.0],
        };
        let switch_interval = match axis("switch_interval") {
            Some(v) => {
                let vals = u64_axis("switch_interval", v)?;
                if vals.contains(&0) {
                    return Err("axis \"switch_interval\": intervals must be positive".to_string());
                }
                vals
            }
            None => vec![defaults.virt.timeslice_cycles],
        };
        let m = Manifest {
            name,
            warmup,
            measure,
            seeds,
            benchmark,
            workload,
            cores,
            pab_entries,
            pab_lookup,
            pab_serial_latency,
            fault_rate,
            switch_interval,
        };
        // Expansion validates every cell's SystemConfig; surface those
        // errors at parse time so a bad manifest never starts running.
        m.cells()?;
        Ok(m)
    }

    /// Total number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.benchmark.len()
            * self.workload.len()
            * self.cores.len()
            * self.pab_entries.len()
            * self.pab_lookup.len()
            * self.pab_serial_latency.len()
            * self.fault_rate.len()
            * self.switch_interval.len()
    }

    /// Expands the grid, row-major over [`AXES`], into runnable cells.
    pub fn cells(&self) -> Result<Vec<CellSpec>, String> {
        let mut out = Vec::with_capacity(self.cell_count());
        for &bench in &self.benchmark {
            for &spec in &self.workload {
                for &cores in &self.cores {
                    for &entries in &self.pab_entries {
                        for &lookup in &self.pab_lookup {
                            for &latency in &self.pab_serial_latency {
                                for &rate in &self.fault_rate {
                                    for &interval in &self.switch_interval {
                                        let id = out.len();
                                        out.push(self.build_cell(
                                            id, bench, spec, cores, entries, lookup, latency, rate,
                                            interval,
                                        )?);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn build_cell(
        &self,
        id: usize,
        bench: Benchmark,
        spec: WorkloadSpec,
        cores: u64,
        entries: u64,
        lookup: PabLookup,
        latency: u64,
        rate: f64,
        interval: u64,
    ) -> Result<CellSpec, String> {
        let mut cfg = SystemConfig {
            cores: u32::try_from(cores).map_err(|_| format!("cores {cores} out of range"))?,
            ..SystemConfig::default()
        };
        cfg.pab.entries =
            u32::try_from(entries).map_err(|_| format!("pab_entries {entries} out of range"))?;
        cfg.pab.lookup = lookup;
        cfg.pab.serial_latency = u32::try_from(latency)
            .map_err(|_| format!("pab_serial_latency {latency} out of range"))?;
        cfg.virt.timeslice_cycles = interval;
        let axes = vec![
            ("benchmark", AxisValue::Str(benchmark_spelling(bench))),
            ("workload", AxisValue::Str(spec.spelling())),
            ("cores", AxisValue::U64(cores)),
            ("pab_entries", AxisValue::U64(entries)),
            (
                "pab_lookup",
                AxisValue::Str(
                    match lookup {
                        PabLookup::Parallel => "parallel",
                        PabLookup::Serial => "serial",
                    }
                    .to_string(),
                ),
            ),
            ("pab_serial_latency", AxisValue::U64(latency)),
            ("fault_rate", AxisValue::F64(rate)),
            ("switch_interval", AxisValue::U64(interval)),
        ];
        let label = axes
            .iter()
            .map(|(k, v)| format!("{k}={}", v.display()))
            .collect::<Vec<_>>()
            .join(" ");
        cfg.validate()
            .map_err(|e| format!("cell {id} ({label}): {e}"))?;
        let workload = spec.bind(bench);
        // Surface topology errors (e.g. overcommit demand > 24 VCPUs)
        // at expansion time, not mid-sweep.
        workload
            .vcpu_specs(&cfg)
            .map_err(|e| format!("cell {id} ({label}): {e}"))?;
        let experiment = Experiment {
            cfg,
            warmup: self.warmup,
            measure: self.measure,
            seeds: (1..=self.seeds).collect(),
            fault_rate: (rate > 0.0).then_some(rate),
            // Campaign cells are sealed deterministic runs: no
            // sampler, no profiler, skipping on. The `MMM_*` run-length
            // env overrides deliberately do not apply — the manifest is
            // the single source of truth, so the aggregate is
            // reproducible from the manifest alone.
            sample_interval: None,
            cycle_skipping: true,
            profile: false,
            forensics: false,
        };
        Ok(CellSpec {
            id,
            axes,
            cell: Cell {
                experiment,
                workload,
            },
        })
    }

    /// The canonicalized manifest as JSON: fixed key order, canonical
    /// axis spellings, every axis explicit. Two manifests that expand
    /// to the same grid render identically here.
    pub fn canonical_json(&self) -> Json {
        let str_arr = |items: Vec<String>| Json::Arr(items.into_iter().map(Json::str).collect());
        let u64_arr = |items: &[u64]| Json::Arr(items.iter().map(|&v| Json::U64(v)).collect());
        let grid = Json::obj([
            (
                "benchmark",
                str_arr(
                    self.benchmark
                        .iter()
                        .map(|&b| benchmark_spelling(b))
                        .collect(),
                ),
            ),
            (
                "workload",
                str_arr(self.workload.iter().map(|w| w.spelling()).collect()),
            ),
            ("cores", u64_arr(&self.cores)),
            ("pab_entries", u64_arr(&self.pab_entries)),
            (
                "pab_lookup",
                str_arr(
                    self.pab_lookup
                        .iter()
                        .map(|l| {
                            match l {
                                PabLookup::Parallel => "parallel",
                                PabLookup::Serial => "serial",
                            }
                            .to_string()
                        })
                        .collect(),
                ),
            ),
            ("pab_serial_latency", u64_arr(&self.pab_serial_latency)),
            (
                "fault_rate",
                Json::Arr(self.fault_rate.iter().map(|&v| Json::F64(v)).collect()),
            ),
            ("switch_interval", u64_arr(&self.switch_interval)),
        ]);
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("warmup", Json::U64(self.warmup)),
            ("measure", Json::U64(self.measure)),
            ("seeds", Json::U64(self.seeds)),
            ("grid", grid),
        ])
    }

    /// FNV-1a 64 fingerprint of the canonical manifest, as 16 hex
    /// digits. Checkpoint records carry it so a resume can prove the
    /// on-disk cells belong to this exact sweep.
    pub fn hash(&self) -> String {
        let text = self.canonical_json().render();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMOKE: &str = r#"{
        "name": "smoke",
        "warmup": 2000,
        "measure": 8000,
        "seeds": 1,
        "grid": {
            "benchmark": "pmake",
            "workload": ["nodmr", "reunion"],
            "cores": [4, 8]
        }
    }"#;

    #[test]
    fn parses_and_expands_a_grid() {
        let m = Manifest::parse(SMOKE).expect("parses");
        assert_eq!(m.name, "smoke");
        assert_eq!(m.cell_count(), 4);
        let cells = m.cells().unwrap();
        assert_eq!(cells.len(), 4);
        // Row-major: workload varies slower than cores.
        assert_eq!(cells[0].axes[1].1, AxisValue::Str("nodmr".into()));
        assert_eq!(cells[0].axes[2].1, AxisValue::U64(4));
        assert_eq!(cells[1].axes[2].1, AxisValue::U64(8));
        assert_eq!(cells[2].axes[1].1, AxisValue::Str("reunion".into()));
        // Ids are the expansion order.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.id, i);
            assert_eq!(c.cell.experiment.warmup, 2000);
            assert_eq!(c.cell.experiment.measure, 8000);
            assert_eq!(c.cell.experiment.seeds, vec![1]);
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        for text in ["", "{", "not json", "[1,2]", "{\"name\":\"x\" \"grid\":{}}"] {
            assert!(Manifest::parse(text).is_err(), "{text:?} must fail");
        }
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let top = r#"{"name":"x","grid":{},"typo_key":1}"#;
        let err = Manifest::parse(top).unwrap_err();
        assert!(err.contains("typo_key"), "{err}");
        let axis = r#"{"name":"x","grid":{"pab_size":[64]}}"#;
        let err = Manifest::parse(axis).unwrap_err();
        assert!(err.contains("pab_size"), "{err}");
    }

    #[test]
    fn empty_axes_and_missing_grid_are_rejected() {
        let empty_axis = r#"{"name":"x","grid":{"cores":[]}}"#;
        let err = Manifest::parse(empty_axis).unwrap_err();
        assert!(err.contains("empty"), "{err}");
        assert!(Manifest::parse(r#"{"name":"x"}"#).is_err(), "grid required");
    }

    #[test]
    fn empty_grid_is_one_default_cell() {
        let m = Manifest::parse(r#"{"name":"defaults","grid":{}}"#).expect("parses");
        assert_eq!(m.cell_count(), 1);
        let cells = m.cells().unwrap();
        assert_eq!(cells.len(), 1);
        let cfg = &cells[0].cell.experiment.cfg;
        assert_eq!(cfg.cores, 16);
        assert_eq!(cfg.pab.entries, 128);
        assert!(cells[0].cell.experiment.fault_rate.is_none());
    }

    #[test]
    fn single_cell_grid_expands_to_one_cell() {
        let text = r#"{"name":"one","grid":{
            "benchmark":"oltp","workload":"mmm_tp","cores":16,
            "pab_entries":64,"pab_lookup":"serial","pab_serial_latency":4,
            "fault_rate":2e-6,"switch_interval":100000}}"#;
        let m = Manifest::parse(text).expect("parses");
        assert_eq!(m.cell_count(), 1);
        let c = &m.cells().unwrap()[0];
        let cfg = &c.cell.experiment.cfg;
        assert_eq!(cfg.pab.entries, 64);
        assert_eq!(cfg.pab.lookup, PabLookup::Serial);
        assert_eq!(cfg.pab.serial_latency, 4);
        assert_eq!(cfg.virt.timeslice_cycles, 100000);
        assert_eq!(c.cell.experiment.fault_rate, Some(2e-6));
    }

    #[test]
    fn invalid_cell_configs_fail_at_parse_time() {
        // Odd core count violates the DMR-pair invariant.
        let odd = r#"{"name":"x","grid":{"cores":7}}"#;
        assert!(Manifest::parse(odd).is_err());
        // PAB entries that do not form power-of-two sets.
        let pab = r#"{"name":"x","grid":{"pab_entries":96}}"#;
        assert!(Manifest::parse(pab).is_err());
        // Overcommit demand beyond the 24-VCPU address layout.
        let over = r#"{"name":"x","grid":{"workload":"overcommit:20r10p"}}"#;
        assert!(Manifest::parse(over).is_err());
        // Zero switch interval.
        let zero = r#"{"name":"x","grid":{"switch_interval":0}}"#;
        assert!(Manifest::parse(zero).is_err());
    }

    #[test]
    fn hash_is_stable_and_canonicalizes_spelling() {
        let a = Manifest::parse(SMOKE).unwrap();
        let b = Manifest::parse(SMOKE).unwrap();
        assert_eq!(a.hash(), b.hash(), "same text, same hash");
        // Different spelling and axis order, same grid → same hash.
        let reordered = r#"{
            "seeds": 1,
            "grid": {
                "cores": [4, 8],
                "workload": ["nodmr", "reunion"],
                "benchmark": "PMAKE"
            },
            "measure": 8000,
            "warmup": 2000,
            "name": "smoke"
        }"#;
        let c = Manifest::parse(reordered).unwrap();
        assert_eq!(a.hash(), c.hash(), "canonicalization must normalize");
        // Any grid change moves the hash.
        let grown = SMOKE.replace("[4, 8]", "[4, 8, 16]");
        let d = Manifest::parse(&grown).unwrap();
        assert_ne!(a.hash(), d.hash());
        assert_eq!(a.hash().len(), 16);
    }

    #[test]
    fn workload_spec_round_trips() {
        for s in [
            "nodmr2x",
            "nodmr",
            "reunion",
            "dmr_base",
            "mmm_ipc",
            "mmm_tp",
            "single_os",
            "overcommit:10r6p",
        ] {
            let spec = WorkloadSpec::parse(s).expect(s);
            assert_eq!(spec.spelling(), s);
        }
        assert!(WorkloadSpec::parse("overcommit:xr1p").is_none());
        assert!(WorkloadSpec::parse("tmr").is_none());
    }
}
