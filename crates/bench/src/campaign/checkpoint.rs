//! Per-cell checkpoint records: the campaign's crash-safe unit of
//! progress.
//!
//! Each completed cell is persisted as one self-describing JSON
//! document, `cells/cell-<id>.json`, written to a temp file and
//! atomically renamed into place — a killed campaign never leaves a
//! torn record, and worker threads can checkpoint concurrently
//! without coordination. A record carries the campaign identity (the
//! name and manifest hash), the cell's axis coordinates, a derived
//! summary (throughput, DMR fault coverage, transition overhead), and
//! the *lossless* merged metrics registry
//! ([`mmm_trace::registry_to_json`]), so the cross-run aggregate can
//! be rebuilt bit-for-bit from disk alone.
//!
//! Determinism note: seed reports are cloned and their `wall_seconds`
//! zeroed before `metrics()` is taken, so the host-speed gauge
//! (`run.sim_cycles_per_sec`) never enters a record and two runs of
//! the same cell on different machines produce identical bytes.

use std::fs;
use std::path::{Path, PathBuf};

use mmm_core::RunResult;
use mmm_trace::{registry_to_json, Json, MetricsRegistry};

use super::manifest::{CellSpec, Manifest};

/// The `kind` tag every cell record carries.
pub const CELL_KIND: &str = "mmm-campaign-cell";

/// One derived per-cell summary row, computed from the merged
/// counters (never from host timing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellSummary {
    /// Committed user instructions per simulated cycle (the paper's
    /// work metric, machine-wide).
    pub throughput: f64,
    /// Fraction of committed instructions that ran under DMR
    /// protection: `1 - unprotected / (user + os)`.
    pub coverage: f64,
    /// Mode-transition cost as a fraction of total core-cycles:
    /// `sum(transition.*_cycles) / (run.cycles * cores)`.
    pub transition_overhead: f64,
    /// Faults injected across all seeds.
    pub faults_injected: u64,
    /// Faults caught by any protection mechanism (DMR comparison, PAB
    /// wild-store block, privileged-state entry check).
    pub faults_detected: u64,
}

impl CellSummary {
    /// Derives the summary from a merged metrics registry plus the
    /// cell's core count.
    pub fn derive(m: &MetricsRegistry, cores: u64) -> CellSummary {
        let cycles = m.counter("run.cycles");
        let user = m.counter("core.commits_user");
        let os = m.counter("core.commits_os");
        let unprotected = m.counter("core.commits_unprotected");
        let committed = user + os;
        let transition_cycles: u128 = [
            "transition.enter_dmr_cycles",
            "transition.leave_dmr_cycles",
            "transition.dmr_switch_cycles",
            "transition.perf_switch_cycles",
        ]
        .iter()
        .filter_map(|name| m.histogram(name))
        .map(|h| h.sum())
        .sum();
        let core_cycles = cycles as u128 * cores as u128;
        CellSummary {
            throughput: if cycles > 0 {
                user as f64 / cycles as f64
            } else {
                0.0
            },
            coverage: if committed > 0 {
                1.0 - unprotected as f64 / committed as f64
            } else {
                1.0
            },
            transition_overhead: if core_cycles > 0 {
                transition_cycles as f64 / core_cycles as f64
            } else {
                0.0
            },
            faults_injected: m.counter("fault.injected"),
            faults_detected: m.counter("fault.detected_by_dmr")
                + m.counter("fault.wild_stores_blocked")
                + m.counter("fault.privreg_caught_at_entry"),
        }
    }

    /// The summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("throughput", Json::F64(self.throughput)),
            ("coverage", Json::F64(self.coverage)),
            ("transition_overhead", Json::F64(self.transition_overhead)),
            ("faults_injected", Json::U64(self.faults_injected)),
            ("faults_detected", Json::U64(self.faults_detected)),
        ])
    }

    /// Reads a summary back from a record's `summary` object.
    pub fn from_json(v: &Json) -> Result<CellSummary, String> {
        let f = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("summary missing number {key:?}"))
        };
        let u = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("summary missing integer {key:?}"))
        };
        Ok(CellSummary {
            throughput: f("throughput")?,
            coverage: f("coverage")?,
            transition_overhead: f("transition_overhead")?,
            faults_injected: u("faults_injected")?,
            faults_detected: u("faults_detected")?,
        })
    }
}

/// The fault sites in canonical report order (matching
/// `FaultSite::all()` on the core side).
pub const FAULT_SITES: [&str; 3] = ["core_logic", "tlb_permission", "priv_reg"];

/// Per-site forensic outcome counts read from a merged registry's
/// `fault.site.*` counters, as a JSON object keyed by site. A sweep's
/// aggregate carries one of these per cell (and one summed across
/// cells), so coverage-vs-site surfaces fall straight out of
/// `aggregate.json`.
pub fn site_outcomes_json(m: &MetricsRegistry) -> Json {
    Json::Obj(
        FAULT_SITES
            .iter()
            .map(|site| {
                let c = |what: &str| m.counter(&format!("fault.site.{site}.{what}"));
                (
                    site.to_string(),
                    Json::obj([
                        ("injected", Json::U64(c("injected"))),
                        ("detected", Json::U64(c("detected"))),
                        ("masked", Json::U64(c("masked"))),
                        ("escaped", Json::U64(c("escaped"))),
                    ]),
                )
            })
            .collect(),
    )
}

/// Merges a cell's per-seed reports into one deterministic registry:
/// every report is cloned with `wall_seconds` zeroed so no
/// host-timing gauge leaks in.
pub fn cell_registry(run: &RunResult) -> MetricsRegistry {
    let mut merged = MetricsRegistry::new();
    for report in &run.reports {
        let mut r = report.clone();
        r.wall_seconds = 0.0;
        merged.merge(&r.metrics());
    }
    merged
}

/// Builds the full checkpoint record for one completed cell.
pub fn cell_record(manifest: &Manifest, hash: &str, spec: &CellSpec, run: &RunResult) -> Json {
    let merged = cell_registry(run);
    let cores = spec.cell.experiment.cfg.cores as u64;
    let summary = CellSummary::derive(&merged, cores);
    Json::obj([
        ("kind", Json::str(CELL_KIND)),
        ("campaign", Json::str(manifest.name.clone())),
        ("manifest_hash", Json::str(hash)),
        ("id", Json::U64(spec.id as u64)),
        ("axes", spec.axes_json()),
        ("summary", summary.to_json()),
        ("metrics", registry_to_json(&merged)),
    ])
}

/// The on-disk path of a cell's record inside the campaign directory.
pub fn cell_path(dir: &Path, id: usize) -> PathBuf {
    dir.join("cells").join(format!("cell-{id:05}.json"))
}

/// Writes a cell record atomically: temp file in the same directory,
/// then `rename`, so readers (and resumed campaigns) only ever see
/// whole records.
pub fn write_cell(dir: &Path, id: usize, record: &Json) -> std::io::Result<()> {
    let path = cell_path(dir, id);
    let tmp = path.with_extension("json.tmp");
    let mut text = record.render();
    text.push('\n');
    fs::write(&tmp, text)?;
    fs::rename(&tmp, &path)
}

/// A record read back from disk during resume or merge.
#[derive(Clone, Debug)]
pub struct CellRecord {
    /// The cell's grid id.
    pub id: usize,
    /// The full record document.
    pub doc: Json,
}

/// Validates that a parsed document is a cell record of *this*
/// campaign (kind, name, manifest hash, id range all match).
pub fn validate_record(
    doc: &Json,
    manifest: &Manifest,
    hash: &str,
    cell_count: usize,
) -> Result<usize, String> {
    let kind = doc.get("kind").and_then(Json::as_str).unwrap_or("");
    if kind != CELL_KIND {
        return Err(format!("not a cell record (kind {kind:?})"));
    }
    let campaign = doc.get("campaign").and_then(Json::as_str).unwrap_or("");
    if campaign != manifest.name {
        return Err(format!(
            "record belongs to campaign {campaign:?}, expected {:?}",
            manifest.name
        ));
    }
    let rec_hash = doc
        .get("manifest_hash")
        .and_then(Json::as_str)
        .unwrap_or("");
    if rec_hash != hash {
        return Err(format!(
            "manifest hash mismatch: record has {rec_hash}, manifest is {hash} \
             (the sweep definition changed — use a fresh output directory)"
        ));
    }
    let id = doc
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("record has no integer \"id\"")? as usize;
    if id >= cell_count {
        return Err(format!(
            "record id {id} out of range (grid has {cell_count} cells)"
        ));
    }
    if doc.get("metrics").is_none() || doc.get("summary").is_none() {
        return Err(format!("record {id} is missing metrics or summary"));
    }
    Ok(id)
}

/// Scans the campaign directory for valid completed-cell records.
/// Unreadable or foreign files are hard errors — resuming over a
/// half-trusted directory silently corrupts the aggregate.
pub fn scan_records(
    dir: &Path,
    manifest: &Manifest,
    hash: &str,
    cell_count: usize,
) -> Result<Vec<CellRecord>, String> {
    let cells_dir = dir.join("cells");
    let mut out = Vec::new();
    let entries = match fs::read_dir(&cells_dir) {
        Ok(e) => e,
        Err(_) => return Ok(out), // no cells yet: fresh campaign
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", cells_dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        // Leftover temp files from a kill mid-write are expected; the
        // rename never happened, so the cell is simply not done.
        if name.ends_with(".tmp") {
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let id = validate_record(&doc, manifest, hash, cell_count)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        out.push(CellRecord { id, doc });
    }
    out.sort_by_key(|r| r.id);
    out.dedup_by_key(|r| r.id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_derives_from_counters() {
        let mut m = MetricsRegistry::new();
        m.count("run.cycles", 1000);
        m.count("core.commits_user", 800);
        m.count("core.commits_os", 200);
        m.count("core.commits_unprotected", 250);
        m.count("fault.injected", 4);
        m.count("fault.detected_by_dmr", 2);
        m.count("fault.wild_stores_blocked", 1);
        let s = CellSummary::derive(&m, 4);
        assert!((s.throughput - 0.8).abs() < 1e-12);
        assert!((s.coverage - 0.75).abs() < 1e-12);
        assert_eq!(s.transition_overhead, 0.0);
        assert_eq!(s.faults_injected, 4);
        assert_eq!(s.faults_detected, 3);
        // Round-trips through JSON bit-for-bit.
        let back = CellSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn empty_registry_summary_is_benign() {
        let s = CellSummary::derive(&MetricsRegistry::new(), 16);
        assert_eq!(s.throughput, 0.0);
        assert_eq!(s.coverage, 1.0);
        assert_eq!(s.transition_overhead, 0.0);
    }

    #[test]
    fn atomic_write_then_scan_round_trips() {
        let dir = std::env::temp_dir().join(format!(
            "mmm-campaign-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("cells")).unwrap();

        let manifest = Manifest::parse(r#"{"name":"t","grid":{"cores":[4,8]}}"#).unwrap();
        let hash = manifest.hash();
        let record = Json::obj([
            ("kind", Json::str(CELL_KIND)),
            ("campaign", Json::str("t")),
            ("manifest_hash", Json::str(hash.clone())),
            ("id", Json::U64(1)),
            ("axes", Json::obj([])),
            ("summary", Json::obj([])),
            ("metrics", Json::obj([])),
        ]);
        write_cell(&dir, 1, &record).unwrap();
        // A torn temp file must be ignored, not fatal.
        fs::write(dir.join("cells").join("cell-00000.json.tmp"), "{trunc").unwrap();

        let recs = scan_records(&dir, &manifest, &hash, 2).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].id, 1);

        // A record from a different manifest is a hard error.
        let other = Manifest::parse(r#"{"name":"t","grid":{"cores":[4]}}"#).unwrap();
        let err = scan_records(&dir, &other, &other.hash(), 1).unwrap_err();
        assert!(err.contains("hash mismatch"), "{err}");

        let _ = fs::remove_dir_all(&dir);
    }
}
