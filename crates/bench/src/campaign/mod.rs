//! The design-space campaign engine.
//!
//! A *campaign* is a sweep over the paper's design-space axes,
//! described by a JSON [`Manifest`], executed as
//! independent cells through the core work-queue
//! ([`mmm_core::run_cells`]), checkpointed per cell with atomic
//! renames ([`checkpoint`]), and merged into one deterministic
//! aggregate plus a Pareto-frontier report ([`merge`]).
//!
//! The contract that makes campaigns *resumable*: the aggregate is a
//! pure function of the manifest and the set of completed cell
//! records on disk. A campaign killed at any point — even mid-write,
//! thanks to the temp-file/rename protocol — resumes by scanning the
//! output directory, re-running only the missing cells, and produces
//! a byte-identical `aggregate.json`. CI kills a real campaign and
//! proves exactly that on every push.

pub mod checkpoint;
pub mod manifest;
pub mod merge;

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mmm_core::run_cells;
use mmm_trace::Json;

pub use manifest::Manifest;

use manifest::CellSpec;
use merge::{aggregate_rows, AggregateRow};

/// Knobs for one [`run_campaign`] invocation.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Worker threads (0: `MMM_THREADS` or available parallelism).
    pub threads: usize,
    /// Stop after completing this many *new* cells (used by the CI
    /// kill/resume gate; `None`: run to completion).
    pub limit: Option<usize>,
    /// Suppress stdout progress lines and the Pareto table. The
    /// one-line-per-cell stderr progress stream always flows — a long
    /// sweep stays watchable even when stdout carries data.
    pub quiet: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            threads: 0,
            limit: None,
            quiet: true,
        }
    }
}

/// What one invocation did.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Grid size.
    pub cells_total: usize,
    /// Cells found already checkpointed before this invocation ran.
    pub resumed: usize,
    /// Cells newly executed by this invocation.
    pub ran: usize,
    /// Cells done after this invocation (resumed + ran).
    pub cells_done: usize,
    /// Whether the whole grid is now complete.
    pub complete: bool,
    /// Where the merged aggregate was written.
    pub aggregate_path: PathBuf,
}

fn env_threads() -> usize {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    std::env::var("MMM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(default)
}

/// Writes `text` to `path` via a temp file and atomic rename.
fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

/// Runs (or resumes) a campaign in `out_dir`.
///
/// The directory layout:
///
/// ```text
/// out_dir/
///   manifest.json    canonicalized manifest (provenance)
///   cells/           one cell-<id>.json per completed cell
///   aggregate.json   merged cross-run export + Pareto report
/// ```
pub fn run_campaign(
    m: &Manifest,
    out_dir: &Path,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, String> {
    let hash = m.hash();
    let cells = m.cells()?;
    let cells_dir = out_dir.join("cells");
    fs::create_dir_all(&cells_dir).map_err(|e| format!("creating {}: {e}", cells_dir.display()))?;
    let mut manifest_text = m.canonical_json().render();
    manifest_text.push('\n');
    write_atomic(&out_dir.join("manifest.json"), &manifest_text)
        .map_err(|e| format!("writing manifest.json: {e}"))?;

    // Resume: anything already checkpointed (and provably ours) is done.
    let existing = checkpoint::scan_records(out_dir, m, &hash, cells.len())?;
    let done: Vec<bool> = {
        let mut v = vec![false; cells.len()];
        for r in &existing {
            v[r.id] = true;
        }
        v
    };
    let resumed = existing.len();

    let mut pending: Vec<&CellSpec> = cells.iter().filter(|c| !done[c.id]).collect();
    if let Some(limit) = opts.limit {
        pending.truncate(limit);
    }
    if !opts.quiet {
        println!(
            "campaign {:?} ({}): {} cells, {} done, running {}",
            m.name,
            hash,
            cells.len(),
            resumed,
            pending.len()
        );
    }

    let threads = if opts.threads > 0 {
        opts.threads
    } else {
        env_threads()
    };
    let to_run: Vec<mmm_core::Cell> = pending.iter().map(|s| s.cell.clone()).collect();
    let io_errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let total = to_run.len();
    let completed = AtomicUsize::new(0);
    run_cells(&to_run, threads, |k, run| {
        let spec = pending[k];
        let n = completed.fetch_add(1, Ordering::Relaxed) + 1;
        let run = match run {
            Ok(run) => run,
            Err(e) => {
                eprintln!(
                    "[{n}/{total}] cell-{:05} {} err: {e}",
                    spec.id,
                    spec.label()
                );
                return;
            }
        };
        let record = checkpoint::cell_record(m, &hash, spec, run);
        if let Err(e) = checkpoint::write_cell(out_dir, spec.id, &record) {
            eprintln!(
                "[{n}/{total}] cell-{:05} {} err: {e}",
                spec.id,
                spec.label()
            );
            io_errors
                .lock()
                .unwrap()
                .push(format!("cell {}: {e}", spec.id));
            return;
        }
        eprintln!("[{n}/{total}] cell-{:05} {} ok", spec.id, spec.label());
        if !opts.quiet {
            println!("  done cell {:>5}  {}", spec.id, spec.label());
        }
    })
    .map_err(|e| format!("campaign execution failed: {e}"))?;
    let io_errors = io_errors.into_inner().unwrap();
    if !io_errors.is_empty() {
        return Err(format!(
            "checkpoint writes failed: {}",
            io_errors.join("; ")
        ));
    }

    // The aggregate is rebuilt from disk, never from memory: that is
    // what makes interrupted and uninterrupted campaigns converge to
    // identical bytes.
    let records = checkpoint::scan_records(out_dir, m, &hash, cells.len())?;
    let aggregate = merge::build_aggregate(m, &hash, cells.len(), &records)?;
    let mut text = aggregate.render();
    text.push('\n');
    let aggregate_path = out_dir.join("aggregate.json");
    write_atomic(&aggregate_path, &text)
        .map_err(|e| format!("writing {}: {e}", aggregate_path.display()))?;

    if !opts.quiet {
        print_pareto(&aggregate);
    }
    Ok(CampaignOutcome {
        cells_total: cells.len(),
        resumed,
        ran: pending.len(),
        cells_done: records.len(),
        complete: records.len() == cells.len(),
        aggregate_path,
    })
}

/// Prints the Pareto-frontier table for an aggregate document.
pub fn print_pareto(aggregate: &Json) {
    let rows = match aggregate_rows(aggregate) {
        Ok(r) => r,
        Err(_) => return,
    };
    let frontier: Vec<&AggregateRow> = {
        let ids = merge::pareto_frontier(&rows);
        rows.iter().filter(|r| ids.contains(&r.id)).collect()
    };
    println!();
    println!(
        "Pareto frontier ({} of {} cells):",
        frontier.len(),
        rows.len()
    );
    println!(
        "  {:>5}  {:>10}  {:>9}  {:>10}  axes",
        "cell", "throughput", "coverage", "trans.ovhd"
    );
    for r in frontier {
        let axes = r
            .axes
            .as_obj()
            .map(|pairs| {
                pairs
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.render().trim_matches('"')))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        println!(
            "  {:>5}  {:>10.4}  {:>9.4}  {:>10.6}  {}",
            r.id, r.summary.throughput, r.summary.coverage, r.summary.transition_overhead, axes
        );
    }
}
