//! Figure 5: the overhead of dual redundancy.
//!
//! Reproduces both panels for all six workloads:
//!
//! * **5(a)** — normalized per-thread user IPC of `No DMR 2X`
//!   (16 VCPUs / 16 cores), `No DMR` (8 VCPUs / 8 cores), and
//!   `Reunion` (8 VCPUs run redundantly across 16 cores), normalized
//!   to `No DMR 2X`. Paper: `No DMR` 8–15% above 1.0; `Reunion`
//!   22–48% below.
//! * **5(b)** — normalized machine throughput. Paper: `No DMR` ≈ 0.5;
//!   `Reunion` ≈ 0.25–0.33.
//!
//! `--diagnostics` prints the §5.1 breakdown behind the figure:
//! window-full cycles, SI fetch stalls (15–46% of cycles under
//! Reunion), and C2C transfer growth (+20–50%; pmake from a tiny
//! base). `--json` emits JSONL reports and a Perfetto trace instead of
//! the tables (see [`mmm_bench::export`]).

use mmm_bench::export::{json_mode, traced_run, JsonExport};
use mmm_bench::{banner, experiment_sized, norm};
use mmm_core::report::{fmt_ci, print_table};
use mmm_core::{RunResult, Workload};
use mmm_workload::Benchmark;

fn main() {
    let diagnostics = std::env::args().any(|a| a == "--diagnostics");
    let json = json_mode();
    let e = experiment_sized(2_000_000, 4_000_000);
    if !json {
        banner("Figure 5 (DMR overhead)", &e);
    }

    let mut export = JsonExport::new("fig5");
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_d = Vec::new();
    for bench in Benchmark::all() {
        let runs = e
            .run_many(&[
                Workload::NoDmr2x(bench),
                Workload::NoDmr(bench),
                Workload::ReunionDmr(bench),
            ])
            .expect("fig5 runs");
        if json {
            for run in &runs {
                export.add(run);
            }
        }
        let (r2x, rno, rre) = (&runs[0], &runs[1], &runs[2]);
        let base_ipc = r2x.avg_user_ipc().0;
        let base_tp = r2x.throughput().0;

        let ipc_no = norm(rno.avg_user_ipc(), base_ipc);
        let ipc_re = norm(rre.avg_user_ipc(), base_ipc);
        rows_a.push(vec![
            bench.name().to_string(),
            "1.000".to_string(),
            fmt_ci(ipc_no.0, ipc_no.1),
            fmt_ci(ipc_re.0, ipc_re.1),
        ]);

        let tp_no = norm(rno.throughput(), base_tp);
        let tp_re = norm(rre.throughput(), base_tp);
        rows_b.push(vec![
            bench.name().to_string(),
            "1.000".to_string(),
            fmt_ci(tp_no.0, tp_no.1),
            fmt_ci(tp_re.0, tp_re.1),
        ]);

        if diagnostics {
            let wf = |r: &RunResult| r.metric(|x| x.window_full_fraction()).0;
            let si = |r: &RunResult| r.metric(|x| x.si_stall_fraction()).0;
            let c2c = |r: &RunResult| r.metric(|x| x.c2c_per_kilo_instr()).0;
            let c2c_base = c2c(rno);
            rows_d.push(vec![
                bench.name().to_string(),
                format!("{:.3} -> {:.3}", wf(rno), wf(rre)),
                format!("{:.3} -> {:.3}", si(rno), si(rre)),
                format!(
                    "{:.1} -> {:.1} ({:+.0}%)",
                    c2c_base,
                    c2c(rre),
                    if c2c_base > 0.0 {
                        (c2c(rre) / c2c_base - 1.0) * 100.0
                    } else {
                        0.0
                    }
                ),
            ]);
        }
    }

    if json {
        export.finish(&traced_run(
            &e.cfg,
            Workload::ReunionDmr(Benchmark::Oltp),
            1,
            None,
        ));
        return;
    }
    print_table(
        "Figure 5(a): normalized per-thread user IPC (paper: No DMR 1.08-1.15, Reunion 0.52-0.78)",
        &["bench", "No DMR 2X", "No DMR", "Reunion"],
        &rows_a,
    );
    print_table(
        "Figure 5(b): normalized throughput (paper: No DMR ~0.5, Reunion 0.25-0.33)",
        &["bench", "No DMR 2X", "No DMR", "Reunion"],
        &rows_b,
    );
    if diagnostics {
        print_table(
            "5.1 diagnostics: No DMR -> Reunion (paper: window-full ~2x, SI stalls 15-46% under Reunion, C2C +20-50%)",
            &["bench", "window-full frac", "SI-stall frac", "C2C/kilo-instr"],
            &rows_d,
        );
    }
}
