//! Figure 4 (concept): improving throughput by overcommitting cores.
//!
//! The paper's multicore virtualization exposes more VCPUs than the
//! chip has (pairs of) cores; VCPUs that do not fit are paused and
//! rotated. This harness fixes two reliable VCPUs (one pair each) and
//! sweeps the number of performance VCPUs past the remaining 12
//! cores, printing machine throughput, per-class fairness, and
//! migration cost — the quantitative counterpart of the paper's
//! Figure 4 illustration.

use mmm_bench::{banner, experiment_sized};
use mmm_core::report::print_table;
use mmm_core::Workload;
use mmm_types::VmId;
use mmm_workload::Benchmark;

fn main() {
    let mut e = experiment_sized(500_000, 2_000_000);
    e.cfg.virt.timeslice_cycles = 250_000;
    banner("Overcommit sweep (Figure 4)", &e);
    let bench = Benchmark::Pmake;

    let workloads: Vec<Workload> = [8u16, 10, 12, 14, 16, 20]
        .into_iter()
        .map(|perf| Workload::Overcommitted {
            bench,
            reliable: 2,
            perf,
        })
        .collect();
    let runs = e.run_many(&workloads).expect("overcommit runs");

    let mut rows = Vec::new();
    for run in &runs {
        let Workload::Overcommitted { perf, .. } = run.workload else {
            unreachable!()
        };
        let (tp, tp_ci) = run.throughput();
        let (rel_tp, _) = run.vm_throughput(VmId(0));
        let fairness = run
            .metric(|r| {
                let perf_commits: Vec<u64> = r
                    .vcpus
                    .iter()
                    .filter(|v| v.vm == VmId(1))
                    .map(|v| v.user_commits)
                    .collect();
                let min = *perf_commits.iter().min().unwrap_or(&0) as f64;
                let max = *perf_commits.iter().max().unwrap_or(&1) as f64;
                if max == 0.0 {
                    0.0
                } else {
                    min / max
                }
            })
            .0;
        let switches = run
            .metric(|r| {
                (r.transitions.perf_switch.count() + r.transitions.dmr_switch.count()) as f64
            })
            .0;
        rows.push(vec![
            format!("2 rel + {perf} perf"),
            format!("{}", 4 + perf),
            format!("{tp:.3} ±{tp_ci:.3}"),
            format!("{rel_tp:.3}"),
            format!("{fairness:.2}"),
            format!("{switches:.0}"),
        ]);
    }
    print_table(
        "Overcommitted MMM: throughput vs demand (16 physical cores; rotation quantum 250k cycles)",
        &[
            "VCPUs",
            "core demand",
            "machine TP",
            "reliable TP",
            "perf fairness (min/max)",
            "migrations",
        ],
        &rows,
    );
    println!(
        "\nReading: throughput peaks when demand exactly fills the 16 cores; past \
         capacity the virtualization layer keeps every VCPU progressing (fairness \
         stays near min/max ~0.6-0.7) but pays for it in migrations — each rotated \
         VCPU restarts with cold L1/L2 state, and the churn also bleeds into the \
         reliable VCPUs through the shared L3 even though their pair slots are \
         never preempted. Overcommit buys *flexibility and fairness* (the paper's \
         Figure 4 point), not free throughput; longer quanta amortize the churn."
    );
}
