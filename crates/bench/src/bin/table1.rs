//! Table 1: mixed-mode switching overheads (cycles).
//!
//! Measures the average per-VCPU cost of entering and leaving DMR mode
//! under MMM-TP — the policy with the highest overhead, because
//! leaving DMR must flush the mute's L2 of incoherent lines one line
//! per cycle (paper §3.4.3, §5.3).
//!
//! Paper values: Enter DMR ≈ 2.2–2.4 k cycles for all benchmarks;
//! Leave DMR ≈ 9.9–10.4 k cycles (the 8 k-cycle flush walk dominates).

use mmm_bench::export::{json_mode, traced_run, JsonExport};
use mmm_bench::{banner, experiment_sized};
use mmm_core::report::{fmt_cycles, print_table};
use mmm_core::{MixedPolicy, Workload};
use mmm_workload::Benchmark;

fn main() {
    let mut e = experiment_sized(600_000, 2_400_000);
    // Shorter timeslices gather more switch samples per simulated
    // cycle without changing per-switch cost.
    e.cfg.virt.timeslice_cycles = 150_000;
    let json = json_mode();
    if !json {
        banner("Table 1 (mode-switch overheads, MMM-TP)", &e);
    }

    let workloads: Vec<Workload> = Benchmark::all()
        .into_iter()
        .map(|bench| Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmTp,
        })
        .collect();
    let runs = e.run_many(&workloads).expect("table1 runs");
    if json {
        let mut export = JsonExport::new("table1");
        for run in &runs {
            export.add(run);
        }
        let mut trace_cfg = e.cfg.clone();
        trace_cfg.virt.timeslice_cycles = 30_000;
        export.finish(&traced_run(
            &trace_cfg,
            Workload::Consolidated {
                bench: Benchmark::Pmake,
                policy: MixedPolicy::MmmTp,
            },
            1,
            None,
        ));
        return;
    }

    let mut rows = Vec::new();
    for run in &runs {
        let enter = run.metric(|r| r.transitions.enter.mean());
        let leave = run.metric(|r| r.transitions.leave.mean());
        let samples: u64 = run
            .reports
            .iter()
            .map(|r| r.transitions.enter.count())
            .sum();
        rows.push(vec![
            run.workload.benchmark().name().to_string(),
            fmt_cycles(enter.0),
            fmt_cycles(leave.0),
            samples.to_string(),
        ]);
    }
    print_table(
        "Table 1: mixed-mode switching overheads in cycles (paper: enter ~2.2-2.4k, leave ~9.9-10.4k)",
        &["bench", "Enter DMR", "Leave DMR", "samples"],
        &rows,
    );
}
