//! Simulator-throughput smoke benchmark, fault-injection path.
//!
//! The sibling of `perf_smoke` for exactly the runs the paper's
//! reliability story cares about: the same Reunion/OLTP reference
//! configuration, but with transient-fault injection enabled (1e-5
//! faults per core-cycle — the second-highest rate of the
//! `fault_coverage` campaign, dense enough that the injection path is
//! genuinely exercised). Before the event-wheel scheduler, enabling
//! the injector disabled cycle fast-forwarding entirely, so this
//! baseline tracks the simulator's throughput on fault campaigns
//! specifically.
//!
//! The second config covers the other formerly skip-disabled mode:
//! `SingleOsMixed(Apache)` — the per-syscall Enter/Leave-DMR machine
//! of Table 2 / §5.3, whose trap poll used to force a tick every
//! cycle.
//!
//! Writes `BENCH_faultloop.json` and `BENCH_singleos.json` at the
//! repo root (same schema as `BENCH_hotloop.json`, validated by
//! `scripts/validate_bench.py`); both are regression-gated in CI via
//! `mmm-inspect --only sim_cycles_per_sec --direction down`. Budgets
//! honour `MMM_WARMUP` / `MMM_MEASURE`; repetitions honour
//! `MMM_PERF_REPS`.

use mmm_bench::experiment_sized;
use mmm_bench::perf::{run_perf_baseline, PerfSpec};
use mmm_core::Workload;
use mmm_workload::Benchmark;

fn main() -> mmm_types::Result<()> {
    let e = experiment_sized(500_000, 2_000_000);
    run_perf_baseline(
        &e,
        &PerfSpec {
            name: "faultloop",
            workload: Workload::ReunionDmr(Benchmark::Oltp),
            seed: 1,
            fault_rate: Some(1e-5),
        },
    )?;
    run_perf_baseline(
        &e,
        &PerfSpec {
            name: "singleos",
            workload: Workload::SingleOsMixed(Benchmark::Apache),
            seed: 1,
            fault_rate: None,
        },
    )
}
