//! §5.3 end-to-end: mode-switch frequency vs mixed-mode overhead.
//!
//! The paper *estimates* single-OS mixed-mode overhead from Table 1's
//! switch costs and Table 2's switch intervals ("~13k cycles per
//! round trip ⇒ 8% for Apache, <5% for the rest, and even less for
//! SPEC-like applications"). This harness measures it end to end: a
//! synthetic compute-bound application's OS-entry interval is swept
//! from very frequent to SPEC-rare, and the single-OS mixed system is
//! compared against the all-performance baseline (switching cost) and
//! the always-DMR system (what mixing buys).

use mmm_bench::{banner, experiment_sized};
use mmm_core::report::{fmt_cycles, print_table};
use mmm_core::{RunResult, Workload};
use mmm_workload::Benchmark;

fn tp(run: &RunResult) -> f64 {
    run.metric(|r| r.total_user_commits() as f64 / r.cycles as f64)
        .0
}

fn main() {
    let e = experiment_sized(1_000_000, 4_000_000);
    banner("Switch-frequency sweep (§5.3)", &e);

    let mut rows = Vec::new();
    for user_kilo in [25u16, 50, 125, 250, 500, 1500] {
        let bench = Benchmark::Synthetic {
            user_kilo_insts: user_kilo,
        };
        let runs = e
            .run_many(&[
                Workload::NoDmr(bench),
                Workload::SingleOsMixed(bench),
                Workload::ReunionDmr(bench),
            ])
            .expect("sweep runs");
        let (perf, mixed, dmr) = (tp(&runs[0]), tp(&runs[1]), tp(&runs[2]));
        let r = &runs[1].reports[0];
        let round_trip = r.phase_user_mean + r.phase_os_mean;
        let switch_cost = r.transitions.enter.mean() + r.transitions.leave.mean();
        let predicted = switch_cost / (round_trip + switch_cost) * 100.0;
        rows.push(vec![
            format!("{user_kilo}k"),
            fmt_cycles(round_trip),
            fmt_cycles(switch_cost),
            format!("{:.1}%", (1.0 - mixed / perf) * 100.0),
            format!("{predicted:.1}%"),
            format!("{:.2}x", mixed / dmr),
        ]);
    }
    print_table(
        "Single-OS mixed mode vs OS-entry interval (synthetic compute-bound app)",
        &[
            "user insts",
            "round trip (cycles)",
            "switch cost",
            "measured cost vs all-perf",
            "paper-style estimate",
            "speedup vs all-DMR",
        ],
        &rows,
    );
    println!(
        "\nThe estimate column reproduces the paper's arithmetic (switch cycles \
         over interval). The measured column is the full price — it adds what \
         the estimate leaves out: the kernel's own DMR slowdown during OS \
         phases and per-stint cache warm-up. Both shrink as OS entries become \
         rarer; the final column shows mixed mode approaching the \
         all-performance bound while the all-DMR system stays ~30% behind."
    );
}
