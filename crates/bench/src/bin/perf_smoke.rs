//! Simulator-throughput smoke benchmark (the repo's perf trajectory).
//!
//! Runs the fig5 reference configuration — `ReunionDmr(Oltp)`, the
//! all-cores-busy worst case for the hot loop — and measures
//! *simulated cycles per wall-clock second* over the measured period.
//! The result is appended to stdout and written to
//! `BENCH_hotloop.json` at the repo root so successive PRs leave a
//! tracked perf baseline (schema: config, cycles/sec, wall seconds,
//! git describe, Unix timestamp, host name).
//!
//! Cycle budget honours `MMM_WARMUP` / `MMM_MEASURE` like every other
//! bench binary, defaulting to 500 k warm-up + 2 M measured cycles;
//! CI runs it on a tiny budget and only validates the JSON shape.
//!
//! The run is repeated `MMM_PERF_REPS` times (default 3) and the
//! *fastest* repetition is reported: the simulation itself is
//! bit-identical across repetitions, so wall-clock spread is pure host
//! noise and the minimum is the least-contended estimate.

use mmm_bench::experiment_sized;
use mmm_core::Workload;
use mmm_trace::Json;
use mmm_workload::Benchmark;

/// `git describe --always --dirty`, or `"unknown"` outside a git
/// checkout.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch at invocation. Host state enters the
/// baseline only here, in the harness — never inside the simulator,
/// whose outputs stay bit-identical.
fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Best-effort host name: `$HOSTNAME`, else `hostname(1)`, else
/// `"unknown"`.
fn host_name() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    std::process::Command::new("hostname")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() -> mmm_types::Result<()> {
    let e = experiment_sized(500_000, 2_000_000);
    let workload = Workload::ReunionDmr(Benchmark::Oltp);
    let seed = 1;

    eprintln!(
        "perf_smoke: {} / {} seed {} (warmup {}, measure {})",
        workload.name(),
        workload.benchmark().name(),
        seed,
        e.warmup,
        e.measure
    );

    let reps = std::env::var("MMM_PERF_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(3)
        .max(1);
    let mut walls = Vec::with_capacity(reps as usize);
    let mut report = e.run_one(workload, seed)?;
    walls.push(report.wall_seconds);
    for _ in 1..reps {
        let r = e.run_one(workload, seed)?;
        walls.push(r.wall_seconds);
        if r.wall_seconds < report.wall_seconds {
            report = r;
        }
    }
    let cps = if report.wall_seconds > 0.0 {
        report.cycles as f64 / report.wall_seconds
    } else {
        0.0
    };

    let line = Json::obj([
        ("bench", Json::str("hotloop")),
        ("config", Json::str(report.config)),
        ("benchmark", Json::str(report.benchmark)),
        ("warmup_cycles", Json::U64(e.warmup)),
        ("measured_cycles", Json::U64(report.cycles)),
        ("wall_seconds", Json::F64(report.wall_seconds)),
        ("sim_cycles_per_sec", Json::F64(cps)),
        ("reps", Json::U64(reps as u64)),
        (
            "rep_wall_seconds",
            Json::Arr(walls.iter().map(|&w| Json::F64(w)).collect()),
        ),
        ("git_describe", Json::str(git_describe())),
        ("timestamp", Json::U64(unix_timestamp())),
        ("host", Json::str(host_name())),
    ])
    .render();

    println!("{line}");
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotloop.json");
    if let Err(e) = std::fs::write(out, format!("{line}\n")) {
        eprintln!("perf_smoke: could not write {out}: {e}");
    }
    eprintln!(
        "perf_smoke: {:.0} simulated cycles/sec ({:.2}s wall) -> BENCH_hotloop.json",
        cps, report.wall_seconds
    );
    Ok(())
}
