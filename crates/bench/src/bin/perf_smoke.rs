//! Simulator-throughput smoke benchmark (the repo's perf trajectory).
//!
//! Runs the fig5 reference configuration — `ReunionDmr(Oltp)`, the
//! all-cores-busy worst case for the hot loop — and measures
//! *simulated cycles per wall-clock second* over the measured period.
//! The result is appended to stdout and written to
//! `BENCH_hotloop.json` at the repo root so successive PRs leave a
//! tracked perf baseline (schema: config, cycles/sec, wall seconds,
//! git describe, Unix timestamp, host name).
//!
//! Cycle budget honours `MMM_WARMUP` / `MMM_MEASURE` like every other
//! bench binary, defaulting to 500 k warm-up + 2 M measured cycles;
//! CI runs it on a tiny budget and only validates the JSON shape.
//! Repetition and best-of selection live in [`mmm_bench::perf`];
//! `perf_fault_smoke` is the injection-enabled sibling.

use mmm_bench::experiment_sized;
use mmm_bench::perf::{run_perf_baseline, PerfSpec};
use mmm_core::Workload;
use mmm_workload::Benchmark;

fn main() -> mmm_types::Result<()> {
    let e = experiment_sized(500_000, 2_000_000);
    run_perf_baseline(
        &e,
        &PerfSpec {
            name: "hotloop",
            workload: Workload::ReunionDmr(Benchmark::Oltp),
            seed: 1,
            fault_rate: None,
        },
    )
}
