//! Figure 6: mixed-mode performance on a consolidated server.
//!
//! One reliable guest VM (8 VCPUs) and one performance guest run the
//! same application, gang-scheduled with 1 ms timeslices, under three
//! policies:
//!
//! * `DMR Base` — both guests always redundant (the baseline, 1.0);
//! * `MMM-IPC` — the performance guest runs one VCPU per vocal core
//!   with the mutes idle (paper: perf-guest IPC +25–85%; reliable
//!   guest ≈ unchanged, pgoltp −6.5% from L3 displacement);
//! * `MMM-TP` — two co-scheduled 8-VCPU performance guests use all 16
//!   cores (paper: perf IPC +24–67%; perf throughput 2.4–3.6×;
//!   machine throughput 1.7–2.3×).
//!
//! **6(a)** prints per-thread user IPC per guest, normalized to the
//! same guest under `DMR Base`; **6(b)** prints throughput similarly.

use mmm_bench::export::{json_mode, traced_run, JsonExport};
use mmm_bench::{banner, experiment_sized, norm};
use mmm_core::report::{fmt_ci, print_table};
use mmm_core::{MixedPolicy, RunResult, Workload};
use mmm_types::VmId;
use mmm_workload::Benchmark;

/// Sums the performance guests' (VM 1, and VM 2 under MMM-TP)
/// throughput.
fn perf_tp(r: &RunResult) -> (f64, f64) {
    r.metric(|x| (x.vm_user_commits(VmId(1)) + x.vm_user_commits(VmId(2))) as f64 / x.cycles as f64)
}

/// Average per-thread IPC across the performance guests' VCPUs.
fn perf_ipc(r: &RunResult) -> (f64, f64) {
    r.metric(|x| {
        let vcpus: Vec<_> = x
            .vcpus
            .iter()
            .filter(|v| v.vm == VmId(1) || v.vm == VmId(2))
            .collect();
        if vcpus.is_empty() || x.cycles == 0 {
            return 0.0;
        }
        vcpus
            .iter()
            .map(|v| v.user_commits as f64 / x.cycles as f64)
            .sum::<f64>()
            / vcpus.len() as f64
    })
}

fn main() {
    // Gang timeslices scaled to 1.5 M cycles (the paper uses 3 M =
    // 1 ms): still >100x the per-slice transition cost, while letting
    // the measured window cover several slice pairs.
    let mut e = experiment_sized(1_500_000, 6_000_000);
    e.cfg.virt.timeslice_cycles = 1_500_000;
    let json = json_mode();
    if !json {
        banner("Figure 6 (mixed-mode consolidated server)", &e);
    }

    let mut export = JsonExport::new("fig6");
    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    for bench in Benchmark::all() {
        let mk = |policy| Workload::Consolidated { bench, policy };
        let runs = e
            .run_many(&[
                mk(MixedPolicy::DmrBase),
                mk(MixedPolicy::MmmIpc),
                mk(MixedPolicy::MmmTp),
            ])
            .expect("fig6 runs");
        if json {
            for run in &runs {
                export.add(run);
            }
        }
        let (base, ipc, tp) = (&runs[0], &runs[1], &runs[2]);

        // 6(a): per-thread IPC per guest, normalized to DMR Base.
        let rel_base = base.vm_ipc(VmId(0)).0;
        let perf_base = perf_ipc(base).0;
        let rel_ipc = norm(ipc.vm_ipc(VmId(0)), rel_base);
        let rel_tp_ = norm(tp.vm_ipc(VmId(0)), rel_base);
        let pf_ipc = norm(perf_ipc(ipc), perf_base);
        let pf_tp = norm(perf_ipc(tp), perf_base);
        rows_a.push(vec![
            bench.name().to_string(),
            "1.000 / 1.000".to_string(),
            format!(
                "{} / {}",
                fmt_ci(rel_ipc.0, rel_ipc.1),
                fmt_ci(pf_ipc.0, pf_ipc.1)
            ),
            format!(
                "{} / {}",
                fmt_ci(rel_tp_.0, rel_tp_.1),
                fmt_ci(pf_tp.0, pf_tp.1)
            ),
        ]);

        // 6(b): throughput per guest and overall, normalized to DMR Base.
        let rel_tp_base = base.vm_throughput(VmId(0)).0;
        let perf_tp_base = perf_tp(base).0;
        let total_base = base.throughput().0;
        let pf1 = norm(perf_tp(ipc), perf_tp_base);
        let pf2 = norm(perf_tp(tp), perf_tp_base);
        let rl1 = norm(ipc.vm_throughput(VmId(0)), rel_tp_base);
        let rl2 = norm(tp.vm_throughput(VmId(0)), rel_tp_base);
        let ov1 = norm(ipc.throughput(), total_base);
        let ov2 = norm(tp.throughput(), total_base);
        rows_b.push(vec![
            bench.name().to_string(),
            format!("{} / {}", fmt_ci(rl1.0, rl1.1), fmt_ci(pf1.0, pf1.1)),
            format!("{} / {}", fmt_ci(rl2.0, rl2.1), fmt_ci(pf2.0, pf2.1)),
            format!("{} | {}", fmt_ci(ov1.0, ov1.1), fmt_ci(ov2.0, ov2.1)),
        ]);
    }

    if json {
        // A short timeslice makes gang switches (and their mode
        // transitions) visible inside the short traced horizon.
        let mut trace_cfg = e.cfg.clone();
        trace_cfg.virt.timeslice_cycles = 30_000;
        export.finish(&traced_run(
            &trace_cfg,
            Workload::Consolidated {
                bench: Benchmark::Oltp,
                policy: MixedPolicy::MmmTp,
            },
            1,
            None,
        ));
        return;
    }
    print_table(
        "Figure 6(a): per-thread user IPC, reliable / performance guest, normalized to DMR Base \
         (paper: MMM-IPC perf +25-85%, MMM-TP perf +24-67%, reliable ~1.0)",
        &["bench", "DMR Base", "MMM-IPC rel/perf", "MMM-TP rel/perf"],
        &rows_a,
    );
    print_table(
        "Figure 6(b): throughput normalized to DMR Base (paper: MMM-TP perf VM 2.4-3.6x, overall 1.7-2.3x)",
        &["bench", "MMM-IPC rel/perf", "MMM-TP rel/perf", "overall IPC | TP"],
        &rows_b,
    );
}
