//! §5.2 (text experiment): effect of PAB lookup organization.
//!
//! Compares parallel PAB/L2 lookup against a 2-cycle serial PAB
//! lookup for the performance guest of an MMM-TP consolidated server.
//! Only store write-throughs are stalled by the serial lookup, so the
//! impact arrives through instruction-window pressure.
//!
//! Paper: serial lookups reduce performance-mode IPC by 3–10%; the
//! reliable application does not use the PAB and is unchanged.

use mmm_bench::{banner, experiment_sized};
use mmm_core::report::{fmt_ci, print_table};
use mmm_core::{MixedPolicy, RunResult, Workload};
use mmm_types::config::PabLookup;
use mmm_types::VmId;
use mmm_workload::Benchmark;

fn perf_ipc(r: &RunResult) -> f64 {
    r.metric(|x| {
        let vcpus: Vec<_> = x
            .vcpus
            .iter()
            .filter(|v| v.vm == VmId(1) || v.vm == VmId(2))
            .collect();
        vcpus
            .iter()
            .map(|v| v.user_commits as f64 / x.cycles as f64)
            .sum::<f64>()
            / vcpus.len().max(1) as f64
    })
    .0
}

fn main() {
    let mut parallel = experiment_sized(1_000_000, 4_000_000);
    parallel.cfg.virt.timeslice_cycles = 500_000;
    let mut serial = parallel.clone();
    serial.cfg.pab.lookup = PabLookup::Serial;
    banner("PAB lookup organization (§5.2)", &parallel);

    // Run all parallel-lookup configurations concurrently, then all
    // serial ones (the two experiments differ in machine config, so
    // they cannot share one run_many call).
    let workloads: Vec<Workload> = Benchmark::all()
        .into_iter()
        .map(|bench| Workload::Consolidated {
            bench,
            policy: MixedPolicy::MmmTp,
        })
        .collect();
    let par_runs = parallel.run_many(&workloads).expect("parallel runs");
    let ser_runs = serial.run_many(&workloads).expect("serial runs");

    let mut rows = Vec::new();
    for ((bench, rp), rs) in Benchmark::all().into_iter().zip(&par_runs).zip(&ser_runs) {
        let (p, s) = (perf_ipc(rp), perf_ipc(rs));
        let delta = (1.0 - s / p) * 100.0;
        let rel_p = rp.vm_ipc(VmId(0));
        let rel_s = rs.vm_ipc(VmId(0));
        rows.push(vec![
            bench.name().to_string(),
            format!("{p:.4}"),
            format!("{s:.4}"),
            format!("{delta:+.1}%"),
            format!(
                "{} -> {}",
                fmt_ci(rel_p.0, rel_p.1),
                fmt_ci(rel_s.0, rel_s.1)
            ),
        ]);
    }
    print_table(
        "Serial vs parallel PAB lookup (paper: serial costs the perf app 3-10% IPC; reliable app unchanged)",
        &[
            "bench",
            "perf IPC (parallel)",
            "perf IPC (serial)",
            "serial penalty",
            "reliable IPC (par -> ser)",
        ],
        &rows,
    );
}
