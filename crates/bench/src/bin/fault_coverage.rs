//! Fault-coverage study (extension).
//!
//! The paper argues — but never measures — that an MMM contains every
//! fault that matters: DMR detects faults striking reliable
//! execution; the PAB blocks performance-mode wild stores aimed at
//! reliable memory; Enter-DMR verification catches privileged-state
//! corruption; and faults confined to the performance domain are
//! tolerated by contract. This harness measures that claim across
//! four orders of magnitude of fault rate on the MMM-TP consolidated
//! server.

use mmm_bench::export::{json_mode, traced_run, JsonExport};
use mmm_bench::{banner, experiment_sized};
use mmm_core::fault::CampaignTelemetry;
use mmm_core::report::print_table;
use mmm_core::{MixedPolicy, Workload};
use mmm_workload::Benchmark;

fn main() {
    let mut e = experiment_sized(500_000, 3_000_000);
    e.cfg.virt.timeslice_cycles = 300_000;
    let json = json_mode();
    if !json {
        banner("Fault coverage (extension)", &e);
    }
    let bench = Benchmark::Pgoltp;

    let mut export = JsonExport::new("fault_coverage");
    let mut rows = Vec::new();
    let mut site_rows = Vec::new();
    for rate in [1e-7, 1e-6, 1e-5, 5e-5] {
        let mut er = e.clone();
        er.fault_rate = Some(rate);
        let run = er
            .run_workload(Workload::Consolidated {
                bench,
                policy: MixedPolicy::MmmTp,
            })
            .expect("fault run");
        if json {
            export.add(&run);
        }
        // Sum outcomes across seeds.
        let mut injected = 0u64;
        let mut dmr = 0u64;
        let mut blocked = 0u64;
        let mut perf_dom = 0u64;
        let mut caught = 0u64;
        let mut idle = 0u64;
        let mut rel_tp = 0.0;
        for r in &run.reports {
            injected += r.faults.injected;
            dmr += r.faults.detected_by_dmr;
            blocked += r.faults.wild_stores_blocked;
            perf_dom += r.faults.wild_stores_corrupting + r.faults.silent_perf_faults;
            caught += r.faults.privreg_caught_at_entry;
            idle += r.faults.on_idle_core;
            rel_tp += r.vm_user_commits(mmm_types::VmId(0)) as f64 / r.cycles as f64;
        }
        rel_tp /= run.reports.len() as f64;
        // Campaign telemetry, merged across seeds.
        let mut tel = CampaignTelemetry::default();
        for r in &run.reports {
            if let Some(t) = &r.fault_telemetry {
                tel.merge(t);
            }
        }
        for (site, s) in tel.sites() {
            let lat = &s.detection_latency;
            site_rows.push(vec![
                format!("{rate:.0e}"),
                site.label().to_string(),
                s.injected.to_string(),
                s.detected.to_string(),
                s.masked.to_string(),
                s.escaped.to_string(),
                if lat.count() > 0 {
                    format!("{:.0}", lat.mean())
                } else {
                    "-".to_string()
                },
                if lat.count() > 0 {
                    lat.percentile(99.0).to_string()
                } else {
                    "-".to_string()
                },
            ]);
        }
        let escapes = injected - dmr - blocked - perf_dom - caught - idle;
        rows.push(vec![
            format!("{rate:.0e}"),
            injected.to_string(),
            dmr.to_string(),
            blocked.to_string(),
            caught.to_string(),
            perf_dom.to_string(),
            idle.to_string(),
            escapes.to_string(),
            format!("{rel_tp:.3}"),
        ]);
    }
    if json {
        let mut trace_cfg = e.cfg.clone();
        trace_cfg.virt.timeslice_cycles = 30_000;
        export.finish(&traced_run(
            &trace_cfg,
            Workload::Consolidated {
                bench,
                policy: MixedPolicy::MmmTp,
            },
            1,
            Some(1e-5),
        ));
        return;
    }
    print_table(
        "Fault outcomes on MMM-TP (pgoltp). 'pending' = privreg arms awaiting the next \
         DMR-entry verification; 'perf-domain' faults are tolerated by contract.",
        &[
            "rate/core/cyc",
            "injected",
            "DMR-detect",
            "PAB-block",
            "verify-catch",
            "perf-domain",
            "idle",
            "pending",
            "reliable VM TP",
        ],
        &rows,
    );
    print_table(
        "Per-site campaign telemetry (merged across seeds). 'detected' counts every \
         hardware catch; latency is injection-to-detection in cycles, attributable \
         detections only.",
        &[
            "rate/core/cyc",
            "site",
            "injected",
            "detected",
            "masked",
            "escaped",
            "lat mean",
            "lat p99",
        ],
        &site_rows,
    );
    println!(
        "\nThe invariant to check: no row ever attributes a fault to reliable-domain \
         corruption — every injected fault is detected, blocked, caught at \
         verification, confined to the performance domain, or struck an idle core. \
         The reliable VM's throughput column shows protection does not erode under \
         rising fault rates (recoveries cost cycles, silently losing data never \
         happens)."
    );
}
