//! Run-export diff tool and regression gate.
//!
//! `mmm-inspect` loads two run exports — report JSONL
//! (`results/<bin>.jsonl`), metrics time-series JSONL
//! (`results/<bin>.metrics.jsonl`), or a `BENCH_hotloop.json` perf
//! baseline — flattens each into `metric -> number`, and diffs them
//! with a configurable relative threshold:
//!
//! ```text
//! mmm-inspect A.json B.json [--threshold 0.15] [--only SUBSTR]...
//!             [--direction both|down|up] [--json] [--force]
//! mmm-inspect profile A.json B.json [--threshold 5] [--json] [--force]
//! mmm-inspect campaign A.json B.json [--threshold 0] [--json] [--force]
//! mmm-inspect faults A.json B.json [--threshold 0.05] [--json] [--force]
//! ```
//!
//! The `profile` mode diffs the self-profiler's phase shares between
//! two profiled exports (`BENCH_*.json` files carrying a `profile`
//! section, written under `MMM_PROFILE=1`). Shares are percentages of
//! the measured window, so the threshold is in percentage *points*
//! (default 5): a phase whose share moves from 30% to 37% crosses a
//! 5-point gate and exits 1, like the perf gate. Wheel introspection
//! counters (wake hits, skip efficiency) are shown but not gated.
//!
//! The `campaign` mode diffs two `aggregate.json` campaign exports
//! (written by `mmm-campaign`): per-cell summaries, Pareto membership,
//! and the lossless merged metrics registry all flatten into the
//! comparison. Campaign aggregates are deterministic by construction,
//! so the default threshold is **0** — any difference at all trips the
//! gate. CI uses this to prove the kill/resume keystone: an
//! interrupted-then-resumed campaign must match an uninterrupted one
//! exactly.
//!
//! The `faults` mode diffs two fault-forensics exports
//! (`results/<bin>.faults.jsonl`, written under `MMM_FORENSICS=1`):
//! per-site outcome *distributions* (the share of each site's records
//! landing on each verdict) are gated on their absolute point delta —
//! the default threshold is 0.05, i.e. five percentage points of
//! outcome share — while detection-latency percentiles (p50/p99/mean,
//! per verdict) and raw counts are shown ungated. A coverage
//! regression (say, `tlb_permission` escapes growing from 10% to 20%
//! of injections) exits 1.
//!
//! Every mode ends with a trailing summary line, `compared N metrics,
//! skipped M absent-in-one-side`: metric names present in only one of
//! the two files are *skipped*, not compared against zero, and a diff
//! of files with disjoint metric sets reports itself instead of
//! passing silently as vacuous.
//!
//! The two files must be the same kind and describe comparable runs:
//! the identity block (config, benchmark, scheduler, thread count;
//! cycle budgets for bench baselines) must match or the tool refuses
//! with exit code 2 (`--force` compares anyway). Host-dependent fields
//! (wall seconds, cycles/sec, timestamp, host) are excluded from the
//! default comparison; select them explicitly with `--only`, which
//! restricts the comparison to metrics containing a given substring.
//!
//! `--direction down` fails only on decreases, `up` only on increases
//! (`both`, the default, gates the absolute change). Exit codes: 0 —
//! no compared metric crossed the threshold; 1 — at least one did;
//! 2 — unusable input or identity mismatch.
//!
//! CI uses this as the perf regression gate:
//!
//! ```text
//! mmm-inspect baseline/BENCH_hotloop.json BENCH_hotloop.json \
//!     --only sim_cycles_per_sec --direction down --threshold 0.15
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use mmm_core::report::print_table;
use mmm_trace::Json;

/// Which way a change must point to trip the gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    /// Gate on the absolute relative change.
    Both,
    /// Gate on decreases only (e.g. throughput regressions).
    Down,
    /// Gate on increases only (e.g. latency regressions).
    Up,
}

/// Parsed command line.
struct Options {
    /// Baseline export path.
    a: String,
    /// Candidate export path.
    b: String,
    /// Relative-change threshold (0.15 = 15%); in `profile` mode,
    /// percentage points of phase share; in `faults` mode, points of
    /// outcome share.
    threshold: f64,
    /// Substring filters; empty means "every default metric".
    only: Vec<String>,
    /// Gated direction.
    direction: Direction,
    /// Emit a JSON verdict instead of tables.
    json: bool,
    /// Compare even when the identity blocks differ.
    force: bool,
    /// `profile` mode: diff self-profiler phase shares instead of
    /// simulated metrics.
    profile: bool,
    /// `campaign` mode: diff two campaign aggregates exactly.
    campaign: bool,
    /// `faults` mode: diff two fault-forensics exports.
    faults: bool,
    /// Whether `--threshold` appeared (the profile-, campaign-, and
    /// faults-mode defaults differ from the metric-mode default).
    threshold_set: bool,
}

fn usage() -> String {
    "usage: mmm-inspect [profile|campaign|faults] <A> <B> [--threshold F] [--only SUBSTR]... \
     [--direction both|down|up] [--json] [--force]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut paths = Vec::new();
    let mut opts = Options {
        a: String::new(),
        b: String::new(),
        threshold: 0.15,
        only: Vec::new(),
        direction: Direction::Both,
        json: false,
        force: false,
        profile: false,
        campaign: false,
        faults: false,
        threshold_set: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threshold needs a value".to_string())?;
                opts.threshold = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("bad threshold {v:?}"))?;
                opts.threshold_set = true;
            }
            "--only" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--only needs a value".to_string())?;
                opts.only.push(v.clone());
            }
            "--direction" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--direction needs a value".to_string())?;
                opts.direction = match v.as_str() {
                    "both" => Direction::Both,
                    "down" => Direction::Down,
                    "up" => Direction::Up,
                    _ => return Err(format!("bad direction {v:?} (both|down|up)")),
                };
            }
            "--json" => opts.json = true,
            "--force" => opts.force = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}\n{}", usage()))
            }
            "profile" if paths.is_empty() && !opts.profile && !opts.campaign && !opts.faults => {
                opts.profile = true
            }
            "campaign" if paths.is_empty() && !opts.profile && !opts.campaign && !opts.faults => {
                opts.campaign = true
            }
            "faults" if paths.is_empty() && !opts.profile && !opts.campaign && !opts.faults => {
                opts.faults = true
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        return Err(usage());
    }
    opts.a = paths.remove(0);
    opts.b = paths.remove(0);
    if opts.profile && !opts.threshold_set {
        // Phase shares are percentages; gate on points, not ratios.
        opts.threshold = 5.0;
    }
    if opts.campaign && !opts.threshold_set {
        // Aggregates are deterministic; any drift is a failure.
        opts.threshold = 0.0;
    }
    if opts.faults && !opts.threshold_set {
        // Outcome shares are fractions; five points of drift gates.
        opts.threshold = 0.05;
    }
    Ok(opts)
}

/// The kind of export a file holds, detected from its first line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    /// Per-seed `SystemReport` lines (`results/<bin>.jsonl`).
    Report,
    /// A `BENCH_hotloop.json` perf-baseline line.
    Bench,
    /// A sampled metrics time-series (`results/<bin>.metrics.jsonl`).
    Series,
    /// Self-profiler phase shares (`profile` mode).
    Profile,
    /// A campaign aggregate (`campaign` mode).
    Campaign,
    /// A fault-forensics export (`faults` mode).
    Faults,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Report => "report",
            Kind::Bench => "bench",
            Kind::Series => "metrics-series",
            Kind::Profile => "profile",
            Kind::Campaign => "campaign",
            Kind::Faults => "faults",
        }
    }
}

/// One loaded export: its kind, the identity block that must match for
/// two files to be comparable, and the flattened numeric metrics.
struct RunFile {
    kind: Kind,
    identity: Vec<(String, String)>,
    metrics: BTreeMap<String, f64>,
}

fn load(path: &str) -> Result<RunFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines: Vec<Json> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).map_err(|e| format!("{path}: {e}")))
        .collect::<Result<_, _>>()?;
    let first = lines.first().ok_or_else(|| format!("{path}: empty file"))?;
    let kind = if first.get("bench").is_some() {
        Kind::Bench
    } else if first.get("interval").is_some() && first.get("samples").is_some() {
        Kind::Series
    } else if first.get("metrics").is_some() {
        Kind::Report
    } else {
        return Err(format!("{path}: not a recognised run export"));
    };
    match kind {
        Kind::Bench => bench_file(path, &lines),
        Kind::Report => report_file(path, &lines),
        Kind::Series => series_file(path, &lines),
        // `profile` / `campaign` / `faults` modes bypass `load`
        // entirely (see `load_profile` / `load_campaign` /
        // `load_faults`).
        Kind::Profile | Kind::Campaign | Kind::Faults => {
            unreachable!("detection never yields these")
        }
    }
}

fn ident_str(v: Option<&Json>) -> String {
    match v {
        Some(Json::Str(s)) => s.clone(),
        Some(other) => other.render(),
        None => "<missing>".to_string(),
    }
}

fn bench_file(path: &str, lines: &[Json]) -> Result<RunFile, String> {
    if lines.len() != 1 {
        return Err(format!(
            "{path}: expected one bench line, got {}",
            lines.len()
        ));
    }
    let line = &lines[0];
    let identity = [
        "bench",
        "config",
        "benchmark",
        "warmup_cycles",
        "measured_cycles",
    ]
    .iter()
    .map(|k| (k.to_string(), ident_str(line.get(k))))
    .collect();
    let mut metrics = BTreeMap::new();
    for (k, v) in line.as_obj().unwrap_or(&[]) {
        if let Some(n) = v.as_f64() {
            metrics.insert(k.clone(), n);
        }
    }
    Ok(RunFile {
        kind: Kind::Bench,
        identity,
        metrics,
    })
}

fn report_file(path: &str, lines: &[Json]) -> Result<RunFile, String> {
    let mut identity = Vec::new();
    let mut metrics = BTreeMap::new();
    for (i, line) in lines.iter().enumerate() {
        let prefix = if lines.len() > 1 {
            format!("#{i}.")
        } else {
            String::new()
        };
        for k in ["config", "benchmark", "scheduler", "threads", "cycles"] {
            identity.push((format!("{prefix}{k}"), ident_str(line.get(k))));
        }
        if let Some(vcpus) = line.get("vcpus").and_then(Json::as_arr) {
            for v in vcpus {
                let id = v.get("vcpu").and_then(Json::as_u64).unwrap_or(0);
                for field in ["user_commits", "os_commits", "unprotected_commits"] {
                    if let Some(n) = v.get(field).and_then(Json::as_f64) {
                        metrics.insert(format!("{prefix}vcpu{id}.{field}"), n);
                    }
                }
            }
        }
        let m = line
            .get("metrics")
            .ok_or_else(|| format!("{path}: report line {i} has no metrics"))?;
        for group in ["counters", "gauges"] {
            for (name, v) in m.get(group).and_then(Json::as_obj).unwrap_or(&[]) {
                if let Some(n) = v.as_f64() {
                    metrics.insert(format!("{prefix}{name}"), n);
                }
            }
        }
        for (group, fields) in [
            ("histograms", &["count", "mean", "max", "p50", "p99"][..]),
            ("stats", &["count", "mean", "stddev", "ci95"][..]),
        ] {
            for (name, h) in m.get(group).and_then(Json::as_obj).unwrap_or(&[]) {
                for field in fields {
                    if let Some(n) = h.get(field).and_then(Json::as_f64) {
                        metrics.insert(format!("{prefix}{name}.{field}"), n);
                    }
                }
            }
        }
    }
    Ok(RunFile {
        kind: Kind::Report,
        identity,
        metrics,
    })
}

/// Flattens a time-series to per-metric aggregates: counters sum their
/// per-interval deltas (= the cumulative total), gauges keep their
/// last value, histograms expose the total observation count and the
/// overall max.
fn series_file(path: &str, lines: &[Json]) -> Result<RunFile, String> {
    let header = &lines[0];
    let identity = ["interval", "config", "benchmark", "samples"]
        .iter()
        .map(|k| (k.to_string(), ident_str(header.get(k))))
        .collect();
    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    for (i, sample) in lines[1..].iter().enumerate() {
        if sample.get("at").is_none() {
            return Err(format!("{path}: sample line {i} has no \"at\""));
        }
        for (name, v) in sample.get("counters").and_then(Json::as_obj).unwrap_or(&[]) {
            if let Some(n) = v.as_f64() {
                *metrics.entry(name.clone()).or_insert(0.0) += n;
            }
        }
        for (name, v) in sample.get("gauges").and_then(Json::as_obj).unwrap_or(&[]) {
            if let Some(n) = v.as_f64() {
                metrics.insert(name.clone(), n);
            }
        }
        for (name, h) in sample
            .get("histograms")
            .and_then(Json::as_obj)
            .unwrap_or(&[])
        {
            if let Some(c) = h.get("count").and_then(Json::as_f64) {
                *metrics.entry(format!("{name}.count")).or_insert(0.0) += c;
            }
            if let Some(mx) = h.get("max").and_then(Json::as_f64) {
                let e = metrics.entry(format!("{name}.max")).or_insert(0.0);
                *e = e.max(mx);
            }
        }
    }
    Ok(RunFile {
        kind: Kind::Series,
        identity,
        metrics,
    })
}

/// Loads the self-profiler section of an export for `profile` mode:
/// either a `BENCH_*.json` baseline carrying a `profile` key (written
/// under `MMM_PROFILE=1`) or a bare profile object with
/// `phase_shares`. Phase shares become the gated metrics; wheel
/// introspection numbers ride along for display, prefixed `wheel.` so
/// the default comparison can leave them ungated.
fn load_profile(path: &str) -> Result<RunFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let first = text
        .lines()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path}: empty file"))?;
    let line = Json::parse(first).map_err(|e| format!("{path}: {e}"))?;
    let (identity, profile) = if let Some(p) = line.get("profile") {
        let identity = [
            "bench",
            "config",
            "benchmark",
            "warmup_cycles",
            "measured_cycles",
        ]
        .iter()
        .map(|k| (k.to_string(), ident_str(line.get(k))))
        .collect();
        (identity, p)
    } else if line.get("phase_shares").is_some() {
        (Vec::new(), &line)
    } else {
        return Err(format!(
            "{path}: no `profile` section (run the bench under MMM_PROFILE=1)"
        ));
    };
    let mut metrics = BTreeMap::new();
    for (name, v) in profile
        .get("phase_shares")
        .and_then(Json::as_obj)
        .ok_or_else(|| format!("{path}: profile has no phase_shares object"))?
    {
        if let Some(n) = v.as_f64() {
            metrics.insert(name.clone(), n);
        }
    }
    if let Some(wheel) = profile.get("wheel") {
        for key in [
            "skip_efficiency",
            "ticks",
            "advanced_cycles",
            "skipped_cycles",
        ] {
            if let Some(n) = wheel.get(key).and_then(Json::as_f64) {
                metrics.insert(format!("wheel.{key}"), n);
            }
        }
        for (name, v) in wheel.get("wake_hits").and_then(Json::as_obj).unwrap_or(&[]) {
            if let Some(n) = v.as_f64() {
                metrics.insert(format!("wheel.wake_hits.{name}"), n);
            }
        }
    }
    Ok(RunFile {
        kind: Kind::Profile,
        identity,
        metrics,
    })
}

/// Loads a campaign `aggregate.json` for `campaign` mode. The
/// identity is the sweep itself — campaign name, manifest hash, and
/// completion state — so partial and complete aggregates never compare
/// silently. Everything numeric flattens into the gated metrics:
/// per-cell summaries (`cell<id>.throughput`, ...), Pareto membership
/// as 0/1, and the lossless merged registry (counters, gauges,
/// histogram sum/max/count, stat n/mean/m2).
fn load_campaign(path: &str) -> Result<RunFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
    if doc.get("kind").and_then(Json::as_str) != Some("mmm-campaign-aggregate") {
        return Err(format!(
            "{path}: not a campaign aggregate (expected kind \"mmm-campaign-aggregate\")"
        ));
    }
    let identity = [
        "campaign",
        "manifest_hash",
        "cells_total",
        "cells_done",
        "complete",
    ]
    .iter()
    .map(|k| (k.to_string(), ident_str(doc.get(k))))
    .collect();
    let mut metrics = BTreeMap::new();
    for cell in doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
        let id = cell.get("id").and_then(Json::as_u64).unwrap_or(0);
        for (name, v) in cell.get("summary").and_then(Json::as_obj).unwrap_or(&[]) {
            if let Some(n) = v.as_f64() {
                metrics.insert(format!("cell{id}.{name}"), n);
            }
        }
        if let Some(Json::Bool(p)) = cell.get("pareto") {
            metrics.insert(format!("cell{id}.pareto"), if *p { 1.0 } else { 0.0 });
        }
    }
    let merged = doc
        .get("merged_metrics")
        .ok_or_else(|| format!("{path}: aggregate has no merged_metrics"))?;
    for group in ["counters", "gauges"] {
        for (name, v) in merged.get(group).and_then(Json::as_obj).unwrap_or(&[]) {
            if let Some(n) = v.as_f64() {
                metrics.insert(format!("merged.{name}"), n);
            }
        }
    }
    for (name, h) in merged
        .get("histograms")
        .and_then(Json::as_obj)
        .unwrap_or(&[])
    {
        // Lossless form: sum is a decimal string (u128), buckets carry
        // the counts.
        if let Some(sum) = h
            .get("sum")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<f64>().ok())
        {
            metrics.insert(format!("merged.{name}.sum"), sum);
        }
        if let Some(mx) = h.get("max").and_then(Json::as_f64) {
            metrics.insert(format!("merged.{name}.max"), mx);
        }
        let count: f64 = h
            .get("buckets")
            .and_then(Json::as_arr)
            .map(|b| {
                b.iter()
                    .filter_map(|pair| pair.as_arr()?.get(1)?.as_f64())
                    .sum()
            })
            .unwrap_or(0.0);
        metrics.insert(format!("merged.{name}.count"), count);
    }
    for (name, s) in merged.get("stats").and_then(Json::as_obj).unwrap_or(&[]) {
        for field in ["n", "mean", "m2"] {
            if let Some(n) = s.get(field).and_then(Json::as_f64) {
                metrics.insert(format!("merged.{name}.{field}"), n);
            }
        }
    }
    Ok(RunFile {
        kind: Kind::Campaign,
        identity,
        metrics,
    })
}

/// Loads a fault-forensics export (`results/<bin>.faults.jsonl`,
/// written under `MMM_FORENSICS=1`) for `faults` mode. Header lines
/// (`kind: "mmm-faults-run"`) establish the identity: run count plus
/// the distinct config/benchmark/scheduler values. Record lines
/// (`kind: "fault"`) flatten into three metric families:
///
/// - `count.<site>.<verdict>` — raw record counts (ungated; they scale
///   with run length);
/// - `share.<site>.<verdict>` — the fraction of that site's records
///   landing on the verdict (gated on the absolute point delta);
/// - `latency.<verdict>.{p50,p99,mean}` — detection latency over the
///   records carrying a non-null latency (ungated; tails are noisy).
fn load_faults(path: &str) -> Result<RunFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut runs = 0u64;
    let mut idents: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    let mut outcomes: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut latencies: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let line = Json::parse(raw).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        match line.get("kind").and_then(Json::as_str) {
            Some("mmm-faults-run") => {
                runs += 1;
                for key in ["config", "benchmark", "scheduler"] {
                    let v = ident_str(line.get(key));
                    let seen = idents.entry(key).or_default();
                    if !seen.contains(&v) {
                        seen.push(v);
                    }
                }
            }
            Some("fault") => {
                let site = line
                    .get("site")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{path}:{}: fault record without site", i + 1))?
                    .to_string();
                let verdict = line
                    .get("verdict")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{path}:{}: fault record without verdict", i + 1))?
                    .to_string();
                if let Some(l) = line.get("latency").and_then(Json::as_f64) {
                    latencies.entry(verdict.clone()).or_default().push(l);
                }
                *outcomes.entry((site, verdict)).or_insert(0) += 1;
            }
            _ => {
                return Err(format!(
                    "{path}:{}: not a forensics line (expected kind \
                     \"mmm-faults-run\" or \"fault\")",
                    i + 1
                ))
            }
        }
    }
    if runs == 0 {
        return Err(format!(
            "{path}: no forensics headers (run the bench under MMM_FORENSICS=1)"
        ));
    }
    let mut identity = vec![("runs".to_string(), runs.to_string())];
    for (key, mut values) in idents {
        values.sort();
        identity.push((key.to_string(), values.join(",")));
    }
    let mut site_totals: BTreeMap<&String, u64> = BTreeMap::new();
    for ((site, _), n) in &outcomes {
        *site_totals.entry(site).or_insert(0) += n;
    }
    let mut metrics = BTreeMap::new();
    for ((site, verdict), n) in &outcomes {
        metrics.insert(format!("count.{site}.{verdict}"), *n as f64);
        metrics.insert(
            format!("share.{site}.{verdict}"),
            *n as f64 / site_totals[site] as f64,
        );
    }
    for (verdict, mut vals) in latencies {
        vals.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |p: f64| vals[(p * (vals.len() - 1) as f64).round() as usize];
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        metrics.insert(format!("latency.{verdict}.p50"), pct(0.50));
        metrics.insert(format!("latency.{verdict}.p99"), pct(0.99));
        metrics.insert(format!("latency.{verdict}.mean"), mean);
    }
    Ok(RunFile {
        kind: Kind::Faults,
        identity,
        metrics,
    })
}

/// Compares two profiles: phase shares are gated on their *point*
/// delta (shares are percentages of the measured window, so relative
/// changes of tiny phases would be pure noise); `wheel.*`
/// introspection rows are shown but never gated. Returns the rows and
/// the count of metrics skipped for being absent in one file.
fn compare_profiles(a: &RunFile, b: &RunFile, opts: &Options) -> (Vec<Row>, usize) {
    let mut names: Vec<&String> = a.metrics.keys().chain(b.metrics.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows = Vec::new();
    let mut skipped = 0;
    for name in names {
        if !opts.only.is_empty() && !opts.only.iter().any(|s| name.contains(s.as_str())) {
            continue;
        }
        let (va, vb) = match (a.metrics.get(name), b.metrics.get(name)) {
            (Some(&va), Some(&vb)) => (va, vb),
            _ => {
                skipped += 1;
                continue;
            }
        };
        if va == 0.0 && vb == 0.0 {
            continue;
        }
        let delta = vb - va;
        let gated = !name.starts_with("wheel.");
        let fail = gated
            && match opts.direction {
                Direction::Both => delta.abs() > opts.threshold,
                Direction::Down => delta < -opts.threshold,
                Direction::Up => delta > opts.threshold,
            };
        rows.push(Row {
            name: name.clone(),
            a: va,
            b: vb,
            rel: delta,
            fail,
        });
    }
    (rows, skipped)
}

/// Compares two forensics exports: `share.*` rows (per-site outcome
/// distributions) are gated on their absolute point delta, like
/// profile phase shares; `count.*` and `latency.*` rows are shown
/// ungated. Returns the rows and the count of skipped-absent metrics —
/// an outcome present in only one file (a verdict that stopped or
/// started occurring) is skipped, and the trailing summary makes the
/// asymmetry visible.
fn compare_faults(a: &RunFile, b: &RunFile, opts: &Options) -> (Vec<Row>, usize) {
    let mut names: Vec<&String> = a.metrics.keys().chain(b.metrics.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows = Vec::new();
    let mut skipped = 0;
    for name in names {
        if !opts.only.is_empty() && !opts.only.iter().any(|s| name.contains(s.as_str())) {
            continue;
        }
        let (va, vb) = match (a.metrics.get(name), b.metrics.get(name)) {
            (Some(&va), Some(&vb)) => (va, vb),
            _ => {
                skipped += 1;
                continue;
            }
        };
        let delta = vb - va;
        let gated = name.starts_with("share.");
        let fail = gated
            && match opts.direction {
                Direction::Both => delta.abs() > opts.threshold,
                Direction::Down => delta < -opts.threshold,
                Direction::Up => delta > opts.threshold,
            };
        rows.push(Row {
            name: name.clone(),
            a: va,
            b: vb,
            rel: delta,
            fail,
        });
    }
    (rows, skipped)
}

/// Human-readable verdict for `profile` mode: deltas are percentage
/// points of phase share, not relative changes.
fn print_profile_human(rows: &[Row], skipped: usize, opts: &Options) {
    let to_cells = |r: &Row| {
        vec![
            r.name.clone(),
            format!("{:.2}", r.a),
            format!("{:.2}", r.b),
            format!("{:+.2}", r.rel),
            if r.fail { "FAIL" } else { "ok" }.to_string(),
        ]
    };
    let failed: Vec<&Row> = rows.iter().filter(|r| r.fail).collect();
    if !failed.is_empty() {
        print_table(
            &format!(
                "Phase shares over threshold ({:.1} points, direction {})",
                opts.threshold,
                direction_name(opts.direction)
            ),
            &["phase", "A", "B", "delta", "gate"],
            &failed.iter().map(|r| to_cells(r)).collect::<Vec<_>>(),
        );
    }
    let rest: Vec<&Row> = rows.iter().filter(|r| !r.fail).collect();
    if !rest.is_empty() {
        print_table(
            "Phase shares and wheel introspection (within threshold)",
            &["metric", "A", "B", "delta", "gate"],
            &rest.iter().map(|r| to_cells(r)).collect::<Vec<_>>(),
        );
    }
    println!(
        "\nmmm-inspect: {} vs {} (profile): compared {} metrics, \
         skipped {} absent-in-one-side, {} over threshold",
        opts.a,
        opts.b,
        rows.len(),
        skipped,
        failed.len()
    );
}

/// Human-readable verdict for `faults` mode: share deltas are points
/// of per-site outcome distribution; counts and latency percentiles
/// ride along ungated.
fn print_faults_human(rows: &[Row], skipped: usize, opts: &Options) {
    let to_cells = |r: &Row| {
        vec![
            r.name.clone(),
            fmt_num(r.a),
            fmt_num(r.b),
            format!("{:+.4}", r.rel),
            if r.fail { "FAIL" } else { "ok" }.to_string(),
        ]
    };
    let failed: Vec<&Row> = rows.iter().filter(|r| r.fail).collect();
    if !failed.is_empty() {
        print_table(
            &format!(
                "Outcome shares over threshold ({:.2} points, direction {})",
                opts.threshold,
                direction_name(opts.direction)
            ),
            &["metric", "A", "B", "delta", "gate"],
            &failed.iter().map(|r| to_cells(r)).collect::<Vec<_>>(),
        );
    }
    let rest: Vec<&Row> = rows.iter().filter(|r| !r.fail).collect();
    if !rest.is_empty() {
        print_table(
            "Outcome counts, shares, and detection latency (within threshold)",
            &["metric", "A", "B", "delta", "gate"],
            &rest.iter().map(|r| to_cells(r)).collect::<Vec<_>>(),
        );
    }
    println!(
        "\nmmm-inspect: {} vs {} (faults): compared {} metrics, \
         skipped {} absent-in-one-side, {} over threshold",
        opts.a,
        opts.b,
        rows.len(),
        skipped,
        failed.len()
    );
}

/// Host-dependent metrics are noise, not regressions; they only enter
/// the comparison when `--only` names them explicitly.
fn host_dependent(name: &str) -> bool {
    ["wall_seconds", "sim_cycles_per_sec", "timestamp", "host"]
        .iter()
        .any(|s| name.contains(s))
}

/// One compared metric.
struct Row {
    name: String,
    a: f64,
    b: f64,
    /// Relative change `(b - a) / a`; ±inf when a is 0 and b is not.
    rel: f64,
    fail: bool,
}

fn compare(a: &RunFile, b: &RunFile, opts: &Options) -> (Vec<Row>, usize) {
    let mut names: Vec<&String> = a.metrics.keys().chain(b.metrics.keys()).collect();
    names.sort();
    names.dedup();
    let mut rows = Vec::new();
    let mut skipped = 0;
    for name in names {
        if opts.only.is_empty() {
            if host_dependent(name) {
                continue;
            }
        } else if !opts.only.iter().any(|s| name.contains(s.as_str())) {
            continue;
        }
        // A metric present in only one file is *skipped*, not compared
        // against zero: schema drift between exports should surface as
        // a skip count in the trailing summary, not as a ±inf verdict
        // — and never pass silently as a vacuous diff.
        let (va, vb) = match (a.metrics.get(name), b.metrics.get(name)) {
            (Some(&va), Some(&vb)) => (va, vb),
            _ => {
                skipped += 1;
                continue;
            }
        };
        if va == 0.0 && vb == 0.0 {
            continue;
        }
        let rel = if va != 0.0 {
            (vb - va) / va
        } else {
            f64::INFINITY * vb.signum()
        };
        let fail = match opts.direction {
            Direction::Both => rel.abs() > opts.threshold,
            Direction::Down => rel < -opts.threshold,
            Direction::Up => rel > opts.threshold,
        };
        rows.push(Row {
            name: name.clone(),
            a: va,
            b: vb,
            rel,
            fail,
        });
    }
    (rows, skipped)
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

fn fmt_rel(rel: f64) -> String {
    if rel.is_infinite() {
        if rel > 0.0 { "+inf%" } else { "-inf%" }.to_string()
    } else {
        format!("{:+.2}%", rel * 100.0)
    }
}

fn direction_name(d: Direction) -> &'static str {
    match d {
        Direction::Both => "both",
        Direction::Down => "down",
        Direction::Up => "up",
    }
}

fn print_human(rows: &[Row], skipped: usize, opts: &Options, kind: Kind) {
    let failed: Vec<&Row> = rows.iter().filter(|r| r.fail).collect();
    let to_cells = |r: &Row| {
        vec![
            r.name.clone(),
            fmt_num(r.a),
            fmt_num(r.b),
            fmt_rel(r.rel),
            if r.fail { "FAIL" } else { "ok" }.to_string(),
        ]
    };
    if !failed.is_empty() {
        print_table(
            &format!(
                "Metrics over threshold ({:.0}%, direction {})",
                opts.threshold * 100.0,
                direction_name(opts.direction)
            ),
            &["metric", "A", "B", "change", "gate"],
            &failed.iter().map(|r| to_cells(r)).collect::<Vec<_>>(),
        );
    }
    let mut moved: Vec<&Row> = rows.iter().filter(|r| !r.fail && r.rel != 0.0).collect();
    moved.sort_by(|x, y| {
        y.rel
            .abs()
            .partial_cmp(&x.rel.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if !moved.is_empty() {
        let shown = moved.len().min(20);
        print_table(
            &format!(
                "Largest within-threshold changes ({} of {} moved metrics)",
                shown,
                moved.len()
            ),
            &["metric", "A", "B", "change", "gate"],
            &moved[..shown]
                .iter()
                .map(|r| to_cells(r))
                .collect::<Vec<_>>(),
        );
    }
    println!(
        "\nmmm-inspect: {} vs {} ({}): compared {} metrics, \
         skipped {} absent-in-one-side, {} moved, {} over threshold",
        opts.a,
        opts.b,
        kind.name(),
        rows.len(),
        skipped,
        rows.iter().filter(|r| r.rel != 0.0).count(),
        failed.len()
    );
}

fn print_json(rows: &[Row], skipped: usize, opts: &Options, kind: Kind) {
    let metrics = rows
        .iter()
        .filter(|r| r.fail || r.rel != 0.0)
        .map(|r| {
            Json::obj([
                ("name", Json::str(r.name.clone())),
                ("a", Json::F64(r.a)),
                ("b", Json::F64(r.b)),
                ("rel", Json::F64(r.rel)),
                ("fail", Json::Bool(r.fail)),
            ])
        })
        .collect();
    let out = Json::obj([
        ("a", Json::str(opts.a.clone())),
        ("b", Json::str(opts.b.clone())),
        ("kind", Json::str(kind.name())),
        ("threshold", Json::F64(opts.threshold)),
        ("direction", Json::str(direction_name(opts.direction))),
        ("compared", Json::U64(rows.len() as u64)),
        ("skipped_absent", Json::U64(skipped as u64)),
        (
            "failed",
            Json::U64(rows.iter().filter(|r| r.fail).count() as u64),
        ),
        ("metrics", Json::Arr(metrics)),
    ]);
    println!("{}", out.render());
    // Stdout stays pure JSON; the summary line goes to stderr.
    eprintln!(
        "mmm-inspect: compared {} metrics, skipped {} absent-in-one-side",
        rows.len(),
        skipped
    );
}

fn run(opts: &Options) -> Result<bool, String> {
    let (a, b) = if opts.profile {
        (load_profile(&opts.a)?, load_profile(&opts.b)?)
    } else if opts.campaign {
        (load_campaign(&opts.a)?, load_campaign(&opts.b)?)
    } else if opts.faults {
        (load_faults(&opts.a)?, load_faults(&opts.b)?)
    } else {
        (load(&opts.a)?, load(&opts.b)?)
    };
    if a.kind != b.kind {
        return Err(format!(
            "{} is a {} export but {} is a {} export",
            opts.a,
            a.kind.name(),
            opts.b,
            b.kind.name()
        ));
    }
    if a.identity != b.identity {
        let describe = |f: &RunFile| {
            f.identity
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let msg = format!(
            "runs are not comparable:\n  A: {}\n  B: {}",
            describe(&a),
            describe(&b)
        );
        if !opts.force {
            return Err(format!("{msg}\n(--force compares anyway)"));
        }
        eprintln!("mmm-inspect: {msg}\nmmm-inspect: --force given, comparing anyway");
    }
    let (rows, skipped) = if opts.profile {
        compare_profiles(&a, &b, opts)
    } else if opts.faults {
        compare_faults(&a, &b, opts)
    } else {
        compare(&a, &b, opts)
    };
    if opts.json {
        print_json(&rows, skipped, opts, a.kind);
    } else if opts.profile {
        print_profile_human(&rows, skipped, opts);
    } else if opts.faults {
        print_faults_human(&rows, skipped, opts);
    } else {
        print_human(&rows, skipped, opts, a.kind);
    }
    Ok(rows.iter().any(|r| r.fail))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("mmm-inspect: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(e) => {
            eprintln!("mmm-inspect: {e}");
            ExitCode::from(2)
        }
    }
}
