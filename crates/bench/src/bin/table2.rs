//! Table 2: cycles before switching modes in a single-OS system.
//!
//! Runs each workload on the baseline non-DMR system and measures the
//! average number of cycles a thread spends in user mode before
//! entering the OS, and in the OS before returning — the switch
//! frequency that bounds single-OS mixed-mode overhead (paper §5.3).
//!
//! Paper values (user / OS cycles): Apache 59k/98k, OLTP 218k/52k,
//! pgoltp 210k/35k, pmake 312k/47k, pgbench 554k/126k, Zeus 65k/220k.
//!
//! The last column reproduces the paper's bottom-line estimate: with
//! ~13 k cycles of switch cost per user↔OS round trip (Table 1-style
//! enter+leave without the MMM-TP flush being charged twice), the
//! expected overhead of single-OS mixed-mode operation — ~8% for
//! Apache, <5% for the rest.

use mmm_bench::export::{json_mode, traced_run, JsonExport};
use mmm_bench::{banner, experiment_sized};
use mmm_core::report::{fmt_cycles, print_table};
use mmm_core::Workload;
use mmm_workload::Benchmark;

/// Paper Table 2 values for side-by-side comparison.
const PAPER: [(&str, f64, f64); 6] = [
    ("Apache", 59e3, 98e3),
    ("OLTP", 218e3, 52e3),
    ("pgoltp", 210e3, 35e3),
    ("pmake", 312e3, 47e3),
    ("pgbench", 554e3, 126e3),
    ("Zeus", 65e3, 220e3),
];

fn main() {
    // Long phases (pgbench: ~700k-cycle round trips) need long runs
    // for unbiased phase sampling.
    let e = experiment_sized(1_500_000, 6_000_000);
    let json = json_mode();
    if !json {
        banner("Table 2 (single-OS switch frequency, baseline non-DMR)", &e);
    }

    let workloads: Vec<Workload> = Benchmark::all().into_iter().map(Workload::NoDmr).collect();
    let runs = e.run_many(&workloads).expect("table2 runs");
    if json {
        let mut export = JsonExport::new("table2");
        for run in &runs {
            export.add(run);
        }
        // The trace shows the system Table 2 projects: per-syscall
        // Enter/Leave-DMR on the single-OS machine.
        export.finish(&traced_run(
            &e.cfg,
            Workload::SingleOsMixed(Benchmark::Apache),
            1,
            None,
        ));
        return;
    }

    let mut rows = Vec::new();
    for (run, (pname, puser, pos)) in runs.iter().zip(PAPER) {
        assert_eq!(run.workload.benchmark().name(), pname);
        let user = run.metric(|r| r.phase_user_mean);
        let os = run.metric(|r| r.phase_os_mean);
        // §5.3 estimate: a full enter+leave costs ~13k cycles.
        let switch_cost = 13_000.0;
        let overhead = switch_cost / (user.0 + os.0 + switch_cost) * 100.0;
        rows.push(vec![
            pname.to_string(),
            format!("{} (paper {})", fmt_cycles(user.0), fmt_cycles(puser)),
            format!("{} (paper {})", fmt_cycles(os.0), fmt_cycles(pos)),
            format!("{overhead:.1}%"),
        ]);
    }
    print_table(
        "Table 2: cycles before switching modes (paper: <8% projected single-OS overhead)",
        &[
            "bench",
            "User cycles",
            "OS cycles",
            "projected switch overhead",
        ],
        &rows,
    );
}
