//! `mmm-campaign` — the design-space sweep orchestrator.
//!
//! ```text
//! mmm-campaign <manifest.json> [--out DIR] [--threads N] [--limit N] [--quiet]
//! ```
//!
//! Reads a campaign manifest, expands the grid, runs every cell not
//! already checkpointed in the output directory (default
//! `campaigns/<name>`), and writes the merged `aggregate.json` plus a
//! Pareto-frontier report. Re-running the same command resumes: cells
//! checkpointed by a previous (possibly killed) invocation are never
//! re-executed, and the final aggregate is byte-identical either way.
//!
//! `--limit N` stops after N newly-completed cells — the hook CI uses
//! to simulate a mid-campaign kill deterministically.
//!
//! Exit codes: 0 success (even if the grid is not yet complete under
//! `--limit`); 2 bad usage, unreadable/invalid manifest, or an output
//! directory that belongs to a different sweep.

use std::path::PathBuf;
use std::process::ExitCode;

use mmm_bench::campaign::{run_campaign, CampaignOptions, Manifest};

fn usage() -> ExitCode {
    eprintln!(
        "usage: mmm-campaign <manifest.json> [--out DIR] [--threads N] [--limit N] [--quiet]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut manifest_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut opts = CampaignOptions {
        threads: 0,
        limit: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.threads = n,
                _ => return usage(),
            },
            "--limit" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.limit = Some(n),
                None => return usage(),
            },
            "--quiet" => opts.quiet = true,
            _ if arg.starts_with('-') => return usage(),
            _ if manifest_path.is_none() => manifest_path = Some(PathBuf::from(arg)),
            _ => return usage(),
        }
    }
    let Some(manifest_path) = manifest_path else {
        return usage();
    };

    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("mmm-campaign: {}: {e}", manifest_path.display());
            return ExitCode::from(2);
        }
    };
    let manifest = match Manifest::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("mmm-campaign: {}: {e}", manifest_path.display());
            return ExitCode::from(2);
        }
    };
    let out_dir = out.unwrap_or_else(|| PathBuf::from("campaigns").join(&manifest.name));

    match run_campaign(&manifest, &out_dir, &opts) {
        Ok(outcome) => {
            println!(
                "campaign {:?}: {}/{} cells done ({} resumed, {} ran this invocation){} -> {}",
                manifest.name,
                outcome.cells_done,
                outcome.cells_total,
                outcome.resumed,
                outcome.ran,
                if outcome.complete { "" } else { " [partial]" },
                outcome.aggregate_path.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("mmm-campaign: {e}");
            ExitCode::from(2)
        }
    }
}
