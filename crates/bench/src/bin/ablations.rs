//! Design-choice ablations called out in `DESIGN.md`.
//!
//! Four sweeps, each isolating one knob the paper fixes:
//!
//! * `--pab`        PAB size (paper: 128 entries = 512 MB reach)
//! * `--fingerprint` fingerprint interval (instructions per exchange)
//! * `--timeslice`  gang timeslice (paper: 3 M cycles = 1 ms)
//! * `--consistency` SC vs TSO under Reunion (Smolens: SC costs ~30%)
//! * `--noc`        optional L3-bank contention vs the Fig 5a uplift
//!
//! With no flag, all five run.

use mmm_bench::{banner, experiment_sized};
use mmm_core::report::print_table;
use mmm_core::{MixedPolicy, RunResult, Workload};
use mmm_types::config::{Consistency, PabLookup};
use mmm_types::VmId;
use mmm_workload::Benchmark;

fn perf_ipc(r: &RunResult) -> f64 {
    r.metric(|x| {
        let vcpus: Vec<_> = x.vcpus.iter().filter(|v| v.vm != VmId(0)).collect();
        vcpus
            .iter()
            .map(|v| v.user_commits as f64 / x.cycles as f64)
            .sum::<f64>()
            / vcpus.len().max(1) as f64
    })
    .0
}

fn pab_sweep() {
    let bench = Benchmark::Oltp;
    let mut rows = Vec::new();
    for entries in [16u32, 32, 64, 128, 256] {
        let mut e = experiment_sized(500_000, 1_500_000);
        e.cfg.virt.timeslice_cycles = 300_000;
        e.cfg.pab.entries = entries;
        e.cfg.pab.lookup = PabLookup::Serial; // makes miss cost visible
        let run = e
            .run_workload(Workload::Consolidated {
                bench,
                policy: MixedPolicy::MmmTp,
            })
            .expect("pab run");
        let miss_ratio = run
            .metric(|r| {
                if r.pab.lookups == 0 {
                    0.0
                } else {
                    r.pab.misses as f64 / r.pab.lookups as f64
                }
            })
            .0;
        rows.push(vec![
            entries.to_string(),
            format!("{} MB", entries as u64 * 4),
            format!("{:.4}", perf_ipc(&run)),
            format!("{:.4}", miss_ratio),
        ]);
    }
    print_table(
        "Ablation: PAB size (paper fixes 128 entries; serial lookup; OLTP MMM-TP)",
        &["entries", "reach", "perf-guest IPC", "PAB miss ratio"],
        &rows,
    );
}

fn fingerprint_sweep() {
    let bench = Benchmark::Oltp;
    let mut rows = Vec::new();
    for interval in [1u32, 4, 8, 16, 32] {
        let mut e = experiment_sized(500_000, 1_500_000);
        e.cfg.reunion.fingerprint_interval = interval;
        let run = e
            .run_workload(Workload::ReunionDmr(bench))
            .expect("fingerprint run");
        let (ipc, ci) = run.avg_user_ipc();
        let wait = run
            .metric(|r| r.cores.check_wait_cycles as f64 / r.cores.active_cycles as f64)
            .0;
        rows.push(vec![
            interval.to_string(),
            format!("{ipc:.4} ±{ci:.4}"),
            format!("{wait:.3}"),
        ]);
    }
    print_table(
        "Ablation: fingerprint interval (instructions summarized per exchange; paper/Reunion: several)",
        &["interval", "Reunion user IPC", "check-wait fraction"],
        &rows,
    );
}

fn timeslice_sweep() {
    let bench = Benchmark::Apache;
    let mut rows = Vec::new();
    for ts in [100_000u64, 300_000, 1_000_000, 3_000_000] {
        let mut e = experiment_sized(ts.max(500_000), (4 * ts).max(2_000_000));
        e.cfg.virt.timeslice_cycles = ts;
        let runs = e
            .run_many(&[
                Workload::Consolidated {
                    bench,
                    policy: MixedPolicy::DmrBase,
                },
                Workload::Consolidated {
                    bench,
                    policy: MixedPolicy::MmmTp,
                },
            ])
            .expect("timeslice runs");
        let base = runs[0].throughput().0;
        let tp = runs[1].throughput().0;
        let leave = runs[1].metric(|r| r.transitions.leave.mean()).0;
        rows.push(vec![
            format!("{:.1}k", ts as f64 / 1e3),
            format!("{:.2}x", tp / base),
            format!("{:.1}k", leave / 1e3),
        ]);
    }
    print_table(
        "Ablation: gang timeslice (paper: 3M cycles = 1ms; MMM-TP gain vs DMR Base, Apache)",
        &["timeslice", "MMM-TP/DMR-Base throughput", "leave-DMR cost"],
        &rows,
    );
}

fn consistency_ablation() {
    let mut rows = Vec::new();
    for bench in [Benchmark::Apache, Benchmark::Oltp, Benchmark::Pmake] {
        let mut row = vec![bench.name().to_string()];
        for consistency in [Consistency::Sc, Consistency::Tso] {
            let mut e = experiment_sized(1_000_000, 2_000_000);
            e.cfg.consistency = consistency;
            let no = e.run_workload(Workload::NoDmr(bench)).expect("baseline");
            let re = e
                .run_workload(Workload::ReunionDmr(bench))
                .expect("reunion");
            let penalty = 1.0 - re.avg_user_ipc().0 / no.avg_user_ipc().0;
            row.push(format!("{:.1}%", penalty * 100.0));
        }
        rows.push(row);
    }
    print_table(
        "Ablation: Reunion penalty vs No DMR under SC and TSO \
         (paper/Smolens: SC costs Reunion ~30% extra on average)",
        &["bench", "SC penalty", "TSO penalty"],
        &rows,
    );
}

fn noc_sweep() {
    // Probes EXPERIMENTS.md deviation #1: with the optional
    // L3-bank/interconnect contention model enabled, does the paper's
    // `No DMR` capacity-pressure uplift over `No DMR 2X` appear?
    let mut rows = Vec::new();
    for bench in [Benchmark::Oltp, Benchmark::Apache] {
        for occupancy in [0u32, 2, 4, 8] {
            let mut e = experiment_sized(1_500_000, 3_000_000);
            e.cfg.mem.bank_occupancy_cycles = occupancy;
            let runs = e
                .run_many(&[Workload::NoDmr2x(bench), Workload::NoDmr(bench)])
                .expect("noc runs");
            let uplift = runs[1].avg_user_ipc().0 / runs[0].avg_user_ipc().0;
            let queue = runs[0]
                .metric(|r| r.mem.bank_queue_cycles as f64 / r.cores.commits().max(1) as f64)
                .0;
            rows.push(vec![
                bench.name().to_string(),
                occupancy.to_string(),
                format!("{uplift:.3}"),
                format!("{queue:.2}"),
            ]);
        }
    }
    print_table(
        "Ablation: L3-bank contention (paper's Fig 5a No-DMR uplift: 1.08-1.15; \
         default model = occupancy 0)",
        &[
            "bench",
            "bank occupancy (cyc)",
            "No DMR / No DMR 2X IPC",
            "2X bank-queue cyc/instr",
        ],
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty();
    let e = experiment_sized(0, 0);
    banner("Ablations", &e);
    if all || args.iter().any(|a| a == "--pab") {
        pab_sweep();
    }
    if all || args.iter().any(|a| a == "--fingerprint") {
        fingerprint_sweep();
    }
    if all || args.iter().any(|a| a == "--timeslice") {
        timeslice_sweep();
    }
    if all || args.iter().any(|a| a == "--consistency") {
        consistency_ablation();
    }
    if all || args.iter().any(|a| a == "--noc") {
        noc_sweep();
    }
}
