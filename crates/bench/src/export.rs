//! Machine-readable run exports (the harness bins' `--json` mode).
//!
//! With `--json`, a bin suppresses its human-readable tables and
//! instead:
//!
//! * prints one JSON object per `(workload, seed)` report to stdout
//!   (JSONL — pipe into `scripts/validate_trace.py` or any analysis
//!   tool);
//! * writes the same lines to `results/<bin>.jsonl`;
//! * performs one short, deterministic traced run with the flight
//!   recorder attached and writes `results/<bin>.trace.json` in Chrome
//!   trace-event format (per-core mode/event timelines plus metrics
//!   counter tracks, viewable at <https://ui.perfetto.dev>) and
//!   `results/<bin>.metrics.jsonl`, the sampled metrics time-series.

use std::fs;
use std::path::Path;

use mmm_core::{RunResult, System, Workload};
use mmm_trace::{
    chrome_trace_full, chrome_trace_with_counters, Forensics, Sampler, Tracer, FORENSICS_WINDOW,
};
use mmm_types::SystemConfig;

/// True when the process was invoked with `--json`.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Ring capacity for traced runs: generously sized for the scheduling
/// and transition records of a short run; high-frequency filler (SI
/// stalls) overwrites oldest-first if it ever fills.
pub const TRACE_RING: usize = 1 << 16;

/// Cycle horizon of the deterministic traced run behind
/// `results/<bin>.trace.json`.
pub const TRACE_CYCLES: u64 = 150_000;

/// Flight-recorder cadence of the traced run: 10 k simulated cycles
/// per sample, 15 samples over [`TRACE_CYCLES`].
pub const SAMPLE_INTERVAL: u64 = 10_000;

/// The artifacts of one deterministic traced run.
pub struct TracedRun {
    /// Chrome trace-event document (mode timelines + counter tracks).
    pub trace_json: String,
    /// Sampled metrics time-series as JSONL.
    pub metrics_jsonl: String,
}

/// Runs `workload` from reset for [`TRACE_CYCLES`] cycles with tracing
/// and the flight recorder on, returning the Chrome trace-event
/// document (with metrics counter tracks appended) and the sampled
/// metrics time-series. Deterministic for a fixed `(cfg, workload,
/// seed, fault_rate)`.
pub fn traced_run(
    cfg: &SystemConfig,
    workload: Workload,
    seed: u64,
    fault_rate: Option<f64>,
) -> TracedRun {
    let mut sys = System::new(cfg, workload, seed).expect("traced run builds");
    if let Some(rate) = fault_rate {
        sys.enable_fault_injection(rate, seed ^ 0xF417);
    }
    sys.attach_tracer(Tracer::ring(TRACE_RING));
    sys.attach_sampler(Sampler::every(SAMPLE_INTERVAL));
    // With `MMM_FORENSICS` set, the traced run also records fault
    // lifecycles and appends one async Perfetto span per fault
    // (injection → verdict, colored by outcome) to the trace. The
    // spans are strictly appended after the base events, so the
    // forensics-off document is a byte-identical prefix.
    let forensic = std::env::var("MMM_FORENSICS")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if forensic {
        sys.attach_forensics(Forensics::enabled(cfg.cores as usize, FORENSICS_WINDOW));
    }
    sys.run(TRACE_CYCLES);
    let series = sys.sampler().series().expect("sampler attached");
    let trace_json = match sys.forensics().take_report() {
        Some(faults) => chrome_trace_full(
            &sys.tracer().snapshot(),
            cfg.cores as usize,
            sys.now(),
            &series,
            &faults.records,
        ),
        None => chrome_trace_with_counters(
            &sys.tracer().snapshot(),
            cfg.cores as usize,
            sys.now(),
            &series,
        ),
    };
    let metrics_jsonl = series.to_jsonl(workload.name(), workload.benchmark().name());
    TracedRun {
        trace_json,
        metrics_jsonl,
    }
}

/// Collects JSONL report lines and writes a bin's export artifacts.
pub struct JsonExport {
    name: &'static str,
    lines: Vec<String>,
    /// Forensics JSONL lines, collected from reports that carry a
    /// [`mmm_core::SystemReport::forensics`] section (i.e. runs under
    /// `MMM_FORENSICS=1`). Each report contributes one run-header line
    /// whose `run` index pairs it with the same-index line of the main
    /// JSONL, followed by one line per fault record.
    fault_lines: Vec<String>,
}

impl JsonExport {
    /// An empty export for the named bin.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            lines: Vec::new(),
            fault_lines: Vec::new(),
        }
    }

    /// Adds every per-seed report of a run as one JSONL line each,
    /// harvesting its forensics records (if any) into the side
    /// `*.faults.jsonl` stream.
    pub fn add(&mut self, run: &RunResult) {
        for r in &run.reports {
            if let Some(f) = &r.forensics {
                self.fault_lines.extend(f.jsonl(
                    self.lines.len() as u64,
                    r.config,
                    r.benchmark,
                    r.scheduler,
                ));
            }
            self.lines.push(r.to_json());
        }
    }

    /// Prints the collected JSONL to stdout and writes
    /// `results/<bin>.jsonl`, `results/<bin>.trace.json`, and
    /// `results/<bin>.metrics.jsonl` (pass the artifacts from
    /// [`traced_run`]), plus `results/<bin>.faults.jsonl` when any
    /// report carried forensics records. File-system errors are
    /// reported on stderr but never fail the run — stdout already
    /// carries the data.
    pub fn finish(self, traced: &TracedRun) {
        for line in &self.lines {
            println!("{line}");
        }
        let dir = Path::new("results");
        if let Err(e) = fs::create_dir_all(dir) {
            eprintln!("results/: {e}");
            return;
        }
        let jsonl_path = dir.join(format!("{}.jsonl", self.name));
        let trace_path = dir.join(format!("{}.trace.json", self.name));
        let metrics_path = dir.join(format!("{}.metrics.jsonl", self.name));
        let jsonl = self.lines.join("\n") + "\n";
        if let Err(e) = fs::write(&jsonl_path, jsonl) {
            eprintln!("{}: {e}", jsonl_path.display());
        }
        if let Err(e) = fs::write(&trace_path, &traced.trace_json) {
            eprintln!("{}: {e}", trace_path.display());
        }
        if let Err(e) = fs::write(&metrics_path, &traced.metrics_jsonl) {
            eprintln!("{}: {e}", metrics_path.display());
        }
        if !self.fault_lines.is_empty() {
            let faults_path = dir.join(format!("{}.faults.jsonl", self.name));
            let faults = self.fault_lines.join("\n") + "\n";
            if let Err(e) = fs::write(&faults_path, faults) {
                eprintln!("{}: {e}", faults_path.display());
            } else {
                eprintln!("wrote {}", faults_path.display());
            }
        }
        eprintln!(
            "wrote {}, {} and {}",
            jsonl_path.display(),
            trace_path.display(),
            metrics_path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_workload::Benchmark;

    #[test]
    fn traced_run_is_deterministic_and_perfetto_shaped() {
        let cfg = SystemConfig::default();
        let w = Workload::ReunionDmr(Benchmark::Apache);
        let a = traced_run(&cfg, w, 1, None);
        let b = traced_run(&cfg, w, 1, None);
        assert_eq!(
            a.trace_json, b.trace_json,
            "same seed must produce an identical trace"
        );
        assert_eq!(a.metrics_jsonl, b.metrics_jsonl);
        assert!(a.trace_json.starts_with("{\"traceEvents\":["));
        assert!(
            a.trace_json.contains("\"dmr-vocal V0\""),
            "mode slices present"
        );
        assert!(a.trace_json.contains("\"ph\":\"C\""), "counter tracks");
        assert!(a.trace_json.ends_with("\"displayTimeUnit\":\"ns\"}"));
        let lines: Vec<&str> = a.metrics_jsonl.lines().collect();
        assert_eq!(
            lines.len() as u64,
            1 + TRACE_CYCLES / SAMPLE_INTERVAL,
            "header + one line per boundary"
        );
        assert!(lines[0].contains("\"interval\":10000"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"reunion.ops_compared\""),
            "{}",
            lines[1]
        );
    }
}
