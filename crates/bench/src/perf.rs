//! Shared plumbing for the simulator-throughput smoke benchmarks.
//!
//! `perf_smoke` and `perf_fault_smoke` measure *simulated cycles per
//! wall-clock second* for one pinned configuration each and write the
//! result to a `BENCH_*.json` baseline at the repo root (schema
//! checked by `scripts/validate_bench.py`, regression-gated in CI by
//! `mmm-inspect --only sim_cycles_per_sec --direction down`). This
//! module holds everything the two binaries share: run repetition with
//! best-of selection, provenance capture (git describe, timestamp,
//! host), and the JSON emission.
//!
//! The run is repeated `MMM_PERF_REPS` times (default 3) and the
//! *fastest* repetition is reported: the simulation itself is
//! bit-identical across repetitions, so wall-clock spread is pure host
//! noise and the minimum is the least-contended estimate.

use mmm_core::{Experiment, Workload};
use mmm_trace::Json;
use mmm_types::Result;

/// One throughput-baseline benchmark: a pinned workload (plus optional
/// fault injection) measured into `BENCH_<name>.json`.
pub struct PerfSpec {
    /// Baseline name (`hotloop`, `faultloop`): both the `bench` field
    /// of the JSON and the `BENCH_<name>.json` file stem.
    pub name: &'static str,
    /// The pinned workload configuration.
    pub workload: Workload,
    /// Experiment seed (pinned so every run simulates the same work).
    pub seed: u64,
    /// Fault-injection rate per core-cycle, when the baseline
    /// exercises the injection path.
    pub fault_rate: Option<f64>,
}

/// `git describe --always --dirty`, or `"unknown"` outside a git
/// checkout.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a git
/// checkout — the commit the baseline was measured at, pinned
/// separately from `git describe` so provenance survives tag churn.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Seconds since the Unix epoch at invocation. Host state enters the
/// baseline only here, in the harness — never inside the simulator,
/// whose outputs stay bit-identical.
fn unix_timestamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Best-effort host name: `$HOSTNAME`, else `hostname(1)`, else
/// `"unknown"`.
fn host_name() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.trim().is_empty() {
            return h.trim().to_string();
        }
    }
    std::process::Command::new("hostname")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs `spec` under the experiment template `e` (`MMM_PERF_REPS`
/// repetitions, fastest wins), prints the baseline JSON line, and
/// writes it to `BENCH_<name>.json` at the repo root.
pub fn run_perf_baseline(e: &Experiment, spec: &PerfSpec) -> Result<()> {
    let mut e = e.clone();
    e.fault_rate = spec.fault_rate;
    eprintln!(
        "perf_{}: {} / {} seed {} (warmup {}, measure {}{})",
        spec.name,
        spec.workload.name(),
        spec.workload.benchmark().name(),
        spec.seed,
        e.warmup,
        e.measure,
        match spec.fault_rate {
            Some(r) => format!(", fault rate {r:.0e}"),
            None => String::new(),
        }
    );

    let reps = std::env::var("MMM_PERF_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(3)
        .max(1);
    let mut walls = Vec::with_capacity(reps as usize);
    let mut report = e.run_one(spec.workload, spec.seed)?;
    walls.push(report.wall_seconds);
    for _ in 1..reps {
        let r = e.run_one(spec.workload, spec.seed)?;
        walls.push(r.wall_seconds);
        if r.wall_seconds < report.wall_seconds {
            report = r;
        }
    }
    let cps = if report.wall_seconds > 0.0 {
        report.cycles as f64 / report.wall_seconds
    } else {
        0.0
    };

    let mut fields = vec![
        ("bench", Json::str(spec.name)),
        ("config", Json::str(report.config)),
        ("benchmark", Json::str(report.benchmark)),
        ("warmup_cycles", Json::U64(e.warmup)),
        ("measured_cycles", Json::U64(report.cycles)),
        ("wall_seconds", Json::F64(report.wall_seconds)),
        ("sim_cycles_per_sec", Json::F64(cps)),
        ("reps", Json::U64(reps as u64)),
        (
            "rep_wall_seconds",
            Json::Arr(walls.iter().map(|&w| Json::F64(w)).collect()),
        ),
        ("git_describe", Json::str(git_describe())),
        ("git_commit", Json::str(git_commit())),
        ("timestamp", Json::U64(unix_timestamp())),
        ("host", Json::str(host_name())),
    ];
    // Profiled runs (`MMM_PROFILE=1`) carry phase-level host-cost
    // attribution: embed it (fastest rep's profile) and drop a
    // speedscope file next to the baseline.
    if let Some(profile) = &report.profile {
        fields.push(("profile", profile.to_json()));
    }
    let line = Json::obj(fields).render();

    println!("{line}");
    let out = format!(
        "{}/../../BENCH_{}.json",
        env!("CARGO_MANIFEST_DIR"),
        spec.name
    );
    if let Err(err) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("perf_{}: could not write {out}: {err}", spec.name);
    }
    if let Some(profile) = &report.profile {
        let scope = format!(
            "{}/../../BENCH_{}.speedscope.json",
            env!("CARGO_MANIFEST_DIR"),
            spec.name
        );
        let body = profile.to_speedscope(&format!("perf_{}", spec.name));
        match std::fs::write(&scope, format!("{body}\n")) {
            Ok(()) => eprintln!(
                "perf_{}: profile -> BENCH_{}.speedscope.json \
                 (open at https://www.speedscope.app)",
                spec.name, spec.name
            ),
            Err(err) => eprintln!("perf_{}: could not write {scope}: {err}", spec.name),
        }
    }
    eprintln!(
        "perf_{}: {:.0} simulated cycles/sec ({:.2}s wall) -> BENCH_{}.json",
        spec.name, cps, report.wall_seconds, spec.name
    );
    Ok(())
}
