//! A tiny self-contained micro-benchmark harness.
//!
//! The build is offline, so the `benches/` targets cannot use
//! criterion; this module provides the minimum that replaces it:
//! warmup, repeated timed batches, and a median-of-batches report in
//! ns/iteration. Batches amortize timer overhead; the median resists
//! scheduler noise. Output is one self-describing line per benchmark,
//! plus a machine-readable `name,ns_per_iter` line when
//! `MMM_BENCH_CSV=1`.

pub use std::hint::black_box;
use std::time::Instant;

/// Runs `f` repeatedly and reports the median batch time per
/// iteration in nanoseconds.
///
/// The batch size is auto-calibrated so one batch takes roughly 5 ms,
/// then `samples` batches are timed. Returns the median ns/iter.
pub fn bench(name: &str, mut f: impl FnMut()) -> f64 {
    // Calibrate: grow the batch until it costs >= ~5 ms.
    let mut batch: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 5 || batch >= 1 << 30 {
            break;
        }
        // Aim directly for the target from the measured rate.
        let per_iter = elapsed.as_nanos().max(1) / batch as u128;
        batch = ((5_000_000 / per_iter.max(1)) as u64).clamp(batch * 2, 1 << 30);
    }

    let samples = 11;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[samples / 2];
    println!("{name:<40} {median:>10.1} ns/iter  (batch={batch}, {samples} samples)");
    if std::env::var("MMM_BENCH_CSV").is_ok() {
        println!("CSV,{name},{median}");
    }
    median
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_time() {
        let mut x = 0u64;
        let ns = bench("noop_add", || {
            x = black_box(x.wrapping_add(1));
        });
        assert!(ns > 0.0);
        assert!(x > 0);
    }
}
