//! Reunion-band probe.
//!
//! Prints each workload's Reunion IPC and throughput normalized to
//! `No DMR 2X`, against the paper's Figure 5 bands — the quick check
//! used during calibration (single seed, shorter runs than the full
//! `fig5` harness).
//!
//! ```sh
//! cargo run --release -p mmm-bench --example fp_probe
//! ```

use mmm_core::{Experiment, Workload};
use mmm_workload::Benchmark;
#[allow(clippy::field_reassign_with_default)]
fn main() {
    for b in [
        Benchmark::Pmake,
        Benchmark::Zeus,
        Benchmark::Apache,
        Benchmark::Oltp,
    ] {
        let mut e = Experiment::default();
        e.warmup = 1_500_000;
        e.measure = 3_000_000;
        e.seeds = vec![1];
        let r2x = e.run_workload(Workload::NoDmr2x(b)).unwrap();
        let rre = e.run_workload(Workload::ReunionDmr(b)).unwrap();
        println!(
            "{:8} reunion_norm={:.3} (band 0.52-0.78) tp={:.3} (band 0.25-0.33)",
            b.name(),
            rre.avg_user_ipc().0 / r2x.avg_user_ipc().0,
            rre.throughput().0 / r2x.throughput().0
        );
    }
}
