//! Workload calibration probe.
//!
//! Prints, for each benchmark profile on the baseline (`No DMR`)
//! system, the per-privilege IPCs and the user/OS cycle intervals they
//! imply — the quantities the profiles are calibrated against
//! (Table 2 of the paper) — plus the Table 2 targets for comparison.
//!
//! Used whenever a simulator change shifts baseline IPC: rerun this,
//! then set each profile's `mean_user_insts` / `mean_os_insts` to
//! `target_cycles x measured_phase_ipc` (see `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p mmm-bench --example calib
//! ```

use mmm_core::{Experiment, Workload};
use mmm_workload::Benchmark;

#[allow(clippy::field_reassign_with_default)]
fn main() {
    let mut e = Experiment::default();
    e.warmup = 2_000_000;
    e.measure = 4_000_000;
    e.seeds = vec![1];
    println!("bench     ipc_user ipc_os  ->  user_cycles os_cycles   (Table 2 targets)");
    let targets = [
        (59_000u64, 98_000u64),
        (218_000, 52_000),
        (210_000, 35_000),
        (312_000, 47_000),
        (554_000, 126_000),
        (65_000, 220_000),
    ];
    for (b, (tu, to)) in Benchmark::all().into_iter().zip(targets) {
        let base = e.run_workload(Workload::NoDmr(b)).expect("baseline run");
        let r = &base.reports[0];
        let user_cycles = r.cores.active_cycles - r.cores.os_cycles;
        let ipc_u = r.cores.commits_user as f64 / user_cycles.max(1) as f64;
        let ipc_o = r.cores.commits_os as f64 / r.cores.os_cycles.max(1) as f64;
        let p = b.profile();
        println!(
            "{:9} {:.3}    {:.3}   ->  {:>7.0}k    {:>6.0}k    (paper {}k / {}k)",
            b.name(),
            ipc_u,
            ipc_o,
            p.mean_user_insts as f64 / ipc_u / 1e3,
            p.mean_os_insts as f64 / ipc_o / 1e3,
            tu / 1000,
            to / 1000,
        );
    }
}
