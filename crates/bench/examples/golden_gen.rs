//! Generates the pinned values for `tests/golden.rs`. Run after any
//! intentional model change and paste the output into the test.
use mmm_core::{MixedPolicy, System, Workload};
use mmm_types::SystemConfig;
use mmm_workload::Benchmark;

fn commits(w: Workload, seed: u64, warmup: u64, measure: u64, ts: u64) -> (u64, u64) {
    let mut cfg = SystemConfig::default();
    cfg.virt.timeslice_cycles = ts;
    let mut sys = System::new(&cfg, w, seed).unwrap();
    let r = sys.run_measured(warmup, measure);
    (
        r.total_user_commits(),
        r.vcpus.iter().map(|v| v.os_commits).sum(),
    )
}

fn main() {
    println!(
        "no_dmr_2x_oltp: {:?}",
        commits(
            Workload::NoDmr2x(Benchmark::Oltp),
            1,
            100_000,
            400_000,
            3_000_000
        )
    );
    println!(
        "reunion_apache: {:?}",
        commits(
            Workload::ReunionDmr(Benchmark::Apache),
            7,
            100_000,
            400_000,
            3_000_000
        )
    );
    println!(
        "mmm_tp_pmake: {:?}",
        commits(
            Workload::Consolidated {
                bench: Benchmark::Pmake,
                policy: MixedPolicy::MmmTp
            },
            3,
            100_000,
            500_000,
            150_000
        )
    );
    println!(
        "single_os_zeus: {:?}",
        commits(
            Workload::SingleOsMixed(Benchmark::Zeus),
            11,
            100_000,
            400_000,
            3_000_000
        )
    );
    println!(
        "overcommit_pgoltp: {:?}",
        commits(
            Workload::Overcommitted {
                bench: Benchmark::Pgoltp,
                reliable: 3,
                perf: 12
            },
            5,
            100_000,
            400_000,
            200_000
        )
    );
}
