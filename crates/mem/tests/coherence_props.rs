//! Property tests for the memory system's coherence invariants.
//!
//! Random interleavings of coherent and incoherent (mute) operations
//! across cores must preserve, at every step:
//!
//! 1. at most one owner per line, and the owner really holds it dirty;
//! 2. a coherent load always observes the globally current version;
//! 3. mute requests never perturb the directory;
//! 4. mute stores never become globally visible;
//! 5. cache occupancies never exceed capacity.
//!
//! Deterministic property testing: interleavings are generated from a
//! fixed-seed [`DetRng`], so failures reproduce exactly (the build is
//! offline; no proptest).

use mmm_mem::request::store_token;
use mmm_mem::MemorySystem;
use mmm_types::{CoreId, DetRng, LineAddr, SystemConfig, VcpuId};

#[derive(Clone, Debug)]
enum Op {
    Load { core: u8, line: u8, coherent: bool },
    Store { core: u8, line: u8, coherent: bool },
    Ifetch { core: u8, line: u8 },
    Heal { core: u8, line: u8 },
}

fn random_op(rng: &mut DetRng) -> Op {
    let core = rng.below(8) as u8;
    let line = rng.below(24) as u8;
    match rng.below(4) {
        0 => Op::Load {
            core,
            line,
            coherent: rng.chance(0.5),
        },
        1 => Op::Store {
            core,
            line,
            coherent: rng.chance(0.5),
        },
        2 => Op::Ifetch { core, line },
        _ => Op::Heal { core, line },
    }
}

fn line_addr(i: u8) -> LineAddr {
    // Spread lines across sets and pages.
    LineAddr(0x4_0000 + i as u64 * 97)
}

fn check_invariants(mem: &MemorySystem, lines: &[LineAddr]) {
    for &line in lines {
        let entry = mem.directory().entry(line);
        if let Some(owner) = entry.owner {
            let held = mem
                .peek_l2(owner, line)
                .expect("directory owner must hold the line");
            assert!(held.coherent, "owner's copy must be coherent");
            assert!(
                held.state.is_dirty(),
                "owner must hold Modified/Owned, got {:?}",
                held.state
            );
        }
        // Every core recorded as sharer that holds a copy must hold it
        // coherent. (A directory sharer may have no copy transiently
        // only if we dropped it via invalidation — which removes the
        // sharer bit — so presence is required.)
        for core in entry.sharer_cores() {
            if let Some(copy) = mem.peek_l2(core, line) {
                assert!(copy.coherent, "tracked sharer holds incoherent copy");
            }
        }
    }
}

#[test]
fn coherence_invariants_hold_under_random_traffic() {
    let mut gen = DetRng::new(0xC0DE, 0);
    for case in 0..64 {
        let n_ops = gen.range(1, 300);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut gen)).collect();
        let cfg = SystemConfig::default();
        let mut mem = MemorySystem::new(&cfg);
        let lines: Vec<LineAddr> = (0..24u8).map(line_addr).collect();
        let mut now = 0u64;
        let mut seq = 0u64;
        for op in &ops {
            now += 7;
            match *op {
                Op::Load {
                    core,
                    line,
                    coherent,
                } => {
                    let l = line_addr(line);
                    let acc = mem.load(CoreId(core as u16), l, coherent, now);
                    if coherent {
                        assert_eq!(
                            acc.version,
                            mem.current_version(l),
                            "case {case}: coherent load must observe the current version"
                        );
                    }
                }
                Op::Store {
                    core,
                    line,
                    coherent,
                } => {
                    seq += 1;
                    let l = line_addr(line);
                    let c = CoreId(core as u16);
                    let token = store_token(VcpuId(core as u16), l, seq);
                    let before = mem.current_version(l);
                    mem.store_acquire(c, l, coherent, now);
                    mem.store_commit(c, l, token, coherent, now + 1);
                    if coherent {
                        assert_eq!(mem.current_version(l), token, "case {case}");
                    } else {
                        assert_eq!(
                            mem.current_version(l),
                            before,
                            "case {case}: mute stores must stay invisible"
                        );
                    }
                }
                Op::Ifetch { core, line } => {
                    mem.ifetch(CoreId(core as u16), line_addr(line), true, now);
                }
                Op::Heal { core, line } => {
                    mem.heal_line(CoreId(core as u16), line_addr(line));
                }
            }
            check_invariants(&mem, &lines);
        }
    }
}

#[test]
fn mute_traffic_never_touches_the_directory() {
    let mut gen = DetRng::new(0xC0DF, 0);
    for case in 0..64 {
        let n_ops = gen.range(1, 200);
        let ops: Vec<(u8, u8, bool)> = (0..n_ops)
            .map(|_| (gen.below(4) as u8, gen.below(16) as u8, gen.chance(0.5)))
            .collect();
        let cfg = SystemConfig::default();
        let mut mem = MemorySystem::new(&cfg);
        // Mute core 7 issues arbitrary incoherent traffic interleaved
        // with coherent traffic from cores 0..4.
        let mute = CoreId(7);
        let mut now = 0;
        let mut seq = 0u64;
        for &(core, line, is_store) in &ops {
            now += 5;
            let l = line_addr(line);
            // Coherent op from a low core.
            if is_store {
                seq += 1;
                mem.store_acquire(CoreId(core as u16), l, true, now);
                mem.store_commit(
                    CoreId(core as u16),
                    l,
                    store_token(VcpuId(core as u16), l, seq),
                    true,
                    now,
                );
            } else {
                mem.load(CoreId(core as u16), l, true, now);
            }
            // Mute mirror op.
            if is_store {
                mem.store_acquire(mute, l, false, now + 1);
                mem.store_commit(
                    mute,
                    l,
                    store_token(VcpuId(core as u16), l, seq),
                    false,
                    now + 1,
                );
            } else {
                mem.load(mute, l, false, now + 1);
            }
            assert!(
                !mem.directory().entry(l).has_sharer(mute),
                "case {case}: mute must never appear in the directory"
            );
            assert_ne!(mem.directory().entry(l).owner, Some(mute), "case {case}");
        }
    }
}

#[test]
fn flush_mute_leaves_no_incoherent_lines() {
    let mut gen = DetRng::new(0xC0E0, 0);
    for case in 0..64 {
        let n_fills = gen.range(1, 100);
        let fills: Vec<(u8, bool)> = (0..n_fills)
            .map(|_| (gen.below(64) as u8, gen.chance(0.5)))
            .collect();
        let cfg = SystemConfig::default();
        let mut mem = MemorySystem::new(&cfg);
        let mute = CoreId(3);
        let mut now = 0;
        let mut seq = 0u64;
        for &(line, store) in &fills {
            now += 3;
            let l = line_addr(line % 24);
            if store {
                seq += 1;
                mem.store_acquire(mute, l, false, now);
                mem.store_commit(mute, l, store_token(VcpuId(9), l, seq), false, now);
            } else {
                mem.load(mute, l, false, now);
            }
        }
        let out = mem.flush_mute(mute, now + 10);
        assert!(out.complete_at > now + 10, "case {case}");
        // After the flush, no line in the mute's L2 is incoherent.
        for i in 0..64u8 {
            if let Some(l) = mem.peek_l2(mute, line_addr(i % 24)) {
                assert!(
                    l.coherent,
                    "case {case}: incoherent line survived the flush"
                );
            }
        }
        // And nothing incoherent became globally visible.
        for i in 0..24u8 {
            let l = line_addr(i);
            if let Some(l3) = mem.peek_l3(l) {
                assert!(l3.coherent, "case {case}");
            }
        }
    }
}
