//! Generic set-associative cache with true-LRU replacement.
//!
//! Used for the L1s, the private L2s, and the shared L3 (and, in the
//! `mmm-core` crate, for the Protection Assistance Buffer). One
//! structure serves all levels; level-specific behaviour (write-through,
//! exclusivity, coherence) lives in [`crate::system::MemorySystem`].

use mmm_types::config::CacheGeometry;
use mmm_types::LineAddr;

use crate::request::VersionToken;

/// MOSI coherence state of a cached line.
///
/// The L1s piggyback on their L2's state (write-through, inclusive);
/// lines resident in an L1 are recorded there simply as present. The
/// L3 uses only `S` (clean) and `M`/`O` (dirty) flavours of presence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mosi {
    /// Modified: dirty, sole copy among L2s.
    Modified,
    /// Owned: dirty, other shared copies may exist; this cache
    /// responds to requests.
    Owned,
    /// Shared: clean copy, possibly one of several.
    Shared,
}

impl Mosi {
    /// Whether this state holds dirty data.
    #[inline]
    pub fn is_dirty(self) -> bool {
        matches!(self, Mosi::Modified | Mosi::Owned)
    }

    /// Whether this state confers write permission without an upgrade.
    #[inline]
    pub fn can_write(self) -> bool {
        self == Mosi::Modified
    }
}

/// One resident cache line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLine {
    /// The line's physical address (line-granular).
    pub addr: LineAddr,
    /// Coherence state.
    pub state: Mosi,
    /// Version token of the data held (see [`crate::request`]).
    pub version: VersionToken,
    /// Whether the copy is coherent with the system. Mute cores fill
    /// lines incoherently during Reunion execution; during mode
    /// switches they also hold coherent lines (VCPU state), which is
    /// why this is a per-line bit — exactly the bit the paper adds to
    /// each line's state field (§3.4.3).
    pub coherent: bool,
}

#[derive(Clone, Debug)]
struct Slot {
    line: Option<CacheLine>,
    lru: u64,
}

/// A set-associative cache with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: Vec<Slot>,
    ways: usize,
    set_mask: u64,
    stamp: u64,
    /// Per-set way of the last lookup hit — a pure probe accelerator.
    /// A set holds at most one copy of an address, so checking the
    /// hinted way first returns the same slot the linear scan would;
    /// hit/miss results and LRU stamps are identical either way.
    way_hint: Vec<u8>,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry fails validation.
    pub fn new(geom: CacheGeometry) -> Self {
        geom.validate().expect("invalid cache geometry");
        let sets = geom.sets() as usize;
        let ways = geom.associativity as usize;
        assert!(ways <= 256, "way hints are byte-sized");
        Self {
            sets: vec![Slot { line: None, lru: 0 }; sets * ways],
            ways,
            set_mask: sets as u64 - 1,
            stamp: 0,
            way_hint: vec![0; sets],
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len() / self.ways
    }

    /// Total slots (sets × ways).
    pub fn slot_count(&self) -> usize {
        self.sets.len()
    }

    #[inline]
    fn set_range(&self, addr: LineAddr) -> std::ops::Range<usize> {
        let set = (addr.0 & self.set_mask) as usize;
        set * self.ways..(set + 1) * self.ways
    }

    /// Looks up `addr`; on a hit, refreshes LRU and returns a mutable
    /// reference to the line.
    pub fn lookup(&mut self, addr: LineAddr) -> Option<&mut CacheLine> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = (addr.0 & self.set_mask) as usize;
        let base = set * self.ways;
        // Probe the way that hit here last — under power-law reuse
        // most lookups land on it, skipping the associative scan.
        let hinted = base + self.way_hint[set] as usize;
        if self.sets[hinted]
            .line
            .as_ref()
            .is_some_and(|l| l.addr == addr)
        {
            let slot = &mut self.sets[hinted];
            slot.lru = stamp;
            return slot.line.as_mut();
        }
        let hit = self.sets[base..base + self.ways]
            .iter_mut()
            .position(|s| s.line.as_ref().is_some_and(|l| l.addr == addr))?;
        self.way_hint[set] = hit as u8;
        let slot = &mut self.sets[base + hit];
        slot.lru = stamp;
        slot.line.as_mut()
    }

    /// Looks up `addr` without touching LRU state (for probes that
    /// must not perturb replacement, e.g. mute best-effort reads of
    /// other caches and directory consistency checks).
    pub fn peek(&self, addr: LineAddr) -> Option<&CacheLine> {
        let range = self.set_range(addr);
        self.sets[range]
            .iter()
            .filter_map(|s| s.line.as_ref())
            .find(|l| l.addr == addr)
    }

    /// Inserts a line, evicting the LRU victim of its set if full.
    /// Returns the victim. If the address is already resident, the
    /// existing line is overwritten in place and `None` is returned.
    pub fn insert(&mut self, line: CacheLine) -> Option<CacheLine> {
        self.stamp += 1;
        let stamp = self.stamp;
        let range = self.set_range(line.addr);
        let set = &mut self.sets[range];
        // Overwrite an existing copy of the same address.
        if let Some(slot) = set
            .iter_mut()
            .find(|s| s.line.as_ref().is_some_and(|l| l.addr == line.addr))
        {
            slot.line = Some(line);
            slot.lru = stamp;
            return None;
        }
        // Fill an empty way.
        if let Some(slot) = set.iter_mut().find(|s| s.line.is_none()) {
            slot.line = Some(line);
            slot.lru = stamp;
            return None;
        }
        // Evict LRU.
        let victim_slot = set
            .iter_mut()
            .min_by_key(|s| s.lru)
            .expect("nonzero associativity");
        let victim = victim_slot.line.replace(line);
        victim_slot.lru = stamp;
        victim
    }

    /// Removes `addr` if present, returning the line.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<CacheLine> {
        let range = self.set_range(addr);
        self.sets[range]
            .iter_mut()
            .find(|s| s.line.as_ref().is_some_and(|l| l.addr == addr))
            .and_then(|s| s.line.take())
    }

    /// Iterates over all resident lines.
    pub fn iter_lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().filter_map(|s| s.line.as_ref())
    }

    /// Removes every line matching `pred`, returning the removed lines.
    pub fn drain_matching(&mut self, pred: impl FnMut(&CacheLine) -> bool) -> Vec<CacheLine> {
        let mut out = Vec::new();
        self.drain_matching_into(pred, &mut out);
        out
    }

    /// Removes every line matching `pred`, appending the removed lines
    /// to `out` — the allocation-free form of [`Self::drain_matching`]
    /// for hot paths that reuse a scratch buffer.
    pub fn drain_matching_into(
        &mut self,
        mut pred: impl FnMut(&CacheLine) -> bool,
        out: &mut Vec<CacheLine>,
    ) {
        for slot in &mut self.sets {
            if let Some(line) = slot.line {
                if pred(&line) {
                    out.push(line);
                    slot.line = None;
                }
            }
        }
    }

    /// Removes every line matching `pred` and returns only how many
    /// were removed (no allocation; for callers that don't need the
    /// line contents).
    pub fn discard_matching(&mut self, mut pred: impl FnMut(&CacheLine) -> bool) -> usize {
        let mut removed = 0;
        for slot in &mut self.sets {
            if let Some(line) = slot.line.as_ref() {
                if pred(line) {
                    removed += 1;
                    slot.line = None;
                }
            }
        }
        removed
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().filter(|s| s.line.is_some()).count()
    }

    /// Empties the cache completely.
    pub fn clear(&mut self) {
        for slot in &mut self.sets {
            slot.line = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::config::CacheGeometry;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways.
        SetAssocCache::new(CacheGeometry::new(8 * 64, 2).unwrap())
    }

    fn line(addr: u64) -> CacheLine {
        CacheLine {
            addr: LineAddr(addr),
            state: Mosi::Shared,
            version: 0,
            coherent: true,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut c = tiny();
        assert!(c.insert(line(0x10)).is_none());
        assert!(c.lookup(LineAddr(0x10)).is_some());
        assert!(c.lookup(LineAddr(0x11)).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set index = addr & 3. Use addrs 0,4,8 -> all set 0.
        c.insert(line(0));
        c.insert(line(4));
        c.lookup(LineAddr(0)); // 0 becomes MRU; 4 is LRU
        let victim = c.insert(line(8)).expect("full set must evict");
        assert_eq!(victim.addr, LineAddr(4));
        assert!(c.peek(LineAddr(0)).is_some());
        assert!(c.peek(LineAddr(8)).is_some());
    }

    #[test]
    fn insert_same_addr_overwrites_without_eviction() {
        let mut c = tiny();
        c.insert(line(0));
        c.insert(line(4));
        let mut updated = line(0);
        updated.state = Mosi::Modified;
        assert!(c.insert(updated).is_none());
        assert_eq!(c.peek(LineAddr(0)).unwrap().state, Mosi::Modified);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn peek_does_not_perturb_lru() {
        let mut c = tiny();
        c.insert(line(0));
        c.insert(line(4));
        c.peek(LineAddr(0)); // must NOT refresh 0
                             // lookup(4) makes 4 MRU; 0 remains LRU regardless of the peek.
        c.lookup(LineAddr(4));
        let victim = c.insert(line(8)).unwrap();
        assert_eq!(victim.addr, LineAddr(0));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(line(7));
        assert!(c.invalidate(LineAddr(7)).is_some());
        assert!(c.lookup(LineAddr(7)).is_none());
        assert!(c.invalidate(LineAddr(7)).is_none());
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = tiny();
        for a in 0..100 {
            c.insert(line(a));
            assert!(c.occupancy() <= c.slot_count());
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn drain_matching_filters() {
        let mut c = tiny();
        for a in 0..8 {
            let mut l = line(a);
            l.coherent = a % 2 == 0;
            c.insert(l);
        }
        let drained = c.drain_matching(|l| !l.coherent);
        assert_eq!(drained.len(), 4);
        assert!(c.iter_lines().all(|l| l.coherent));
    }

    #[test]
    fn sets_isolate_addresses() {
        let mut c = tiny();
        // Addresses 0..4 map to distinct sets; filling them must not evict.
        for a in 0..4 {
            assert!(c.insert(line(a)).is_none());
        }
        for a in 0..4 {
            assert!(c.peek(LineAddr(a)).is_some());
        }
    }

    #[test]
    fn clear_empties() {
        let mut c = tiny();
        c.insert(line(1));
        c.clear();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn mosi_predicates() {
        assert!(Mosi::Modified.is_dirty());
        assert!(Mosi::Owned.is_dirty());
        assert!(!Mosi::Shared.is_dirty());
        assert!(Mosi::Modified.can_write());
        assert!(!Mosi::Owned.can_write());
        assert!(!Mosi::Shared.can_write());
    }
}
