//! Memory-system event counters.

use mmm_types::stats::Log2Histogram;

/// Counters accumulated by [`crate::system::MemorySystem`].
///
/// All counts are machine-wide; per-core breakdowns live in the core
/// model's own statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1-I hits.
    pub l1i_hits: u64,
    /// L1-I misses.
    pub l1i_misses: u64,
    /// L1-D hits.
    pub l1d_hits: u64,
    /// L1-D misses.
    pub l1d_misses: u64,
    /// Private-L2 hits (data or instruction).
    pub l2_hits: u64,
    /// Private-L2 misses that left the core.
    pub l2_misses: u64,
    /// Shared-L3 hits (2-hop).
    pub l3_hits: u64,
    /// Cache-to-cache transfers from another core's L2 (3-hop). The
    /// paper's §5.1 reports these growing 20–50% under Reunion
    /// (pmake: +220%).
    pub c2c_transfers: u64,
    /// Demand reads served by DRAM.
    pub dram_reads: u64,
    /// Store upgrades (S/O → M) that invalidated remote copies.
    pub upgrades: u64,
    /// Invalidation messages delivered to remote caches.
    pub invalidations: u64,
    /// Lines filled incoherently by mute cores.
    pub incoherent_fills: u64,
    /// Mute loads that observed a stale version token (input
    /// incoherence; will surface as a fingerprint mismatch).
    pub stale_mute_hits: u64,
    /// Lines written back from L2/L3 toward memory.
    pub writebacks: u64,
    /// Mute-cache flush operations (Leave-DMR in MMM-TP).
    pub flushes: u64,
    /// Total cycles spent in flush walks.
    pub flush_cycles: u64,
    /// Cycles requests queued on L3/directory banks (0 unless the
    /// optional contention model is enabled).
    pub bank_queue_cycles: u64,
    /// Remote sharers invalidated per directory sharer walk (one
    /// observation per upgrade or read-for-ownership that consulted
    /// the sharer vector).
    pub sharer_walk: Log2Histogram,
}

impl MemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total demand loads (data side).
    pub fn loads(&self) -> u64 {
        self.l1d_hits + self.l1d_misses
    }

    /// L1-D miss ratio (0 when idle).
    pub fn l1d_miss_ratio(&self) -> f64 {
        let total = self.l1d_hits + self.l1d_misses;
        if total == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / total as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, o: &MemStats) {
        self.l1i_hits += o.l1i_hits;
        self.l1i_misses += o.l1i_misses;
        self.l1d_hits += o.l1d_hits;
        self.l1d_misses += o.l1d_misses;
        self.l2_hits += o.l2_hits;
        self.l2_misses += o.l2_misses;
        self.l3_hits += o.l3_hits;
        self.c2c_transfers += o.c2c_transfers;
        self.dram_reads += o.dram_reads;
        self.upgrades += o.upgrades;
        self.invalidations += o.invalidations;
        self.incoherent_fills += o.incoherent_fills;
        self.stale_mute_hits += o.stale_mute_hits;
        self.writebacks += o.writebacks;
        self.flushes += o.flushes;
        self.flush_cycles += o.flush_cycles;
        self.bank_queue_cycles += o.bank_queue_cycles;
        self.sharer_walk.merge(&o.sharer_walk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = MemStats::new();
        assert_eq!(s.l1d_miss_ratio(), 0.0);
        assert_eq!(s.loads(), 0);
    }

    #[test]
    fn merge_adds() {
        let mut a = MemStats {
            l1d_hits: 3,
            c2c_transfers: 2,
            ..Default::default()
        };
        let b = MemStats {
            l1d_hits: 1,
            dram_reads: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.l1d_hits, 4);
        assert_eq!(a.c2c_transfers, 2);
        assert_eq!(a.dram_reads, 5);
    }

    #[test]
    fn miss_ratio_math() {
        let s = MemStats {
            l1d_hits: 75,
            l1d_misses: 25,
            ..Default::default()
        };
        assert!((s.l1d_miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.loads(), 100);
    }
}
