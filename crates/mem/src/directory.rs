//! The MOSI directory.
//!
//! The paper's machine keeps L2 shadow tags co-located with each L3
//! bank; the directory here is the logical content of those shadow
//! tags: for every line cached in at least one private L2, the set of
//! sharer cores and the owner (the core holding it Modified or Owned,
//! responsible for sourcing data).
//!
//! Mute-core (incoherent) requests never appear here — "all requests
//! emanating from the private cache hierarchy of a mute core do not
//! change the state of the line in the directory or any other caches"
//! (paper §3.2).

use mmm_types::{CoreId, LineAddr};

use crate::linemap::LineMap;

/// Directory record for one line resident in at least one L2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of cores holding the line in their L2.
    pub sharers: u32,
    /// Core holding the line dirty (Modified/Owned), if any.
    pub owner: Option<CoreId>,
}

impl DirEntry {
    /// Whether no L2 holds the line.
    pub fn is_empty(&self) -> bool {
        self.sharers == 0
    }

    /// Number of sharer L2s.
    pub fn sharer_count(&self) -> u32 {
        self.sharers.count_ones()
    }

    /// Whether `core` is recorded as a sharer.
    pub fn has_sharer(&self, core: CoreId) -> bool {
        self.sharers & (1 << core.index()) != 0
    }

    /// Iterates over sharer cores.
    pub fn sharer_cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..32u16)
            .filter(move |i| self.sharers & (1 << i) != 0)
            .map(CoreId)
    }
}

/// The full directory.
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: LineMap<DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Directory state for a line (empty entry if untracked).
    pub fn entry(&self, line: LineAddr) -> DirEntry {
        self.entries.get(line).copied().unwrap_or_default()
    }

    /// Records `core` as a sharer of `line`.
    pub fn add_sharer(&mut self, line: LineAddr, core: CoreId) {
        let e = self.entries.entry_or_default(line);
        e.sharers |= 1 << core.index();
    }

    /// Records `core` as the owner (and a sharer) of `line`.
    ///
    /// # Panics
    ///
    /// Panics if a different owner is already recorded — ownership must
    /// be transferred explicitly via [`Directory::clear_owner`].
    pub fn set_owner(&mut self, line: LineAddr, core: CoreId) {
        let e = self.entries.entry_or_default(line);
        assert!(
            e.owner.is_none() || e.owner == Some(core),
            "line {line} already owned by {:?}",
            e.owner
        );
        e.owner = Some(core);
        e.sharers |= 1 << core.index();
    }

    /// Clears the owner of `line` (the core keeps any sharer record).
    pub fn clear_owner(&mut self, line: LineAddr) {
        if let Some(e) = self.entries.get_mut(line) {
            e.owner = None;
        }
    }

    /// Removes `core` from the sharer set (and ownership); deletes the
    /// entry if no sharers remain.
    pub fn remove_sharer(&mut self, line: LineAddr, core: CoreId) {
        if let Some(e) = self.entries.get_mut(line) {
            e.sharers &= !(1 << core.index());
            if e.owner == Some(core) {
                e.owner = None;
            }
            if e.is_empty() {
                self.entries.remove(line);
            }
        }
    }

    /// Removes every sharer except `keep`, returning the bitmask of
    /// the cores that were invalidated. Used on a store upgrade; this
    /// is the allocation-free form for the store hot path.
    pub fn invalidate_others_mask(&mut self, line: LineAddr, keep: CoreId) -> u32 {
        let Some(e) = self.entries.get_mut(line) else {
            return 0;
        };
        let keep_bit = 1u32 << keep.index();
        let kicked = e.sharers & !keep_bit;
        e.sharers &= keep_bit;
        if e.owner.is_some() && e.owner != Some(keep) {
            e.owner = None;
        }
        if e.is_empty() {
            self.entries.remove(line);
        }
        kicked
    }

    /// Removes every sharer except `keep`, returning the cores that
    /// were invalidated (in ascending core order).
    pub fn invalidate_others(&mut self, line: LineAddr, keep: CoreId) -> Vec<CoreId> {
        let mask = self.invalidate_others_mask(line, keep);
        (0..32u16)
            .filter(|i| mask & (1u32 << i) != 0)
            .map(CoreId)
            .collect()
    }

    /// Number of tracked lines (diagnostics).
    pub fn tracked_lines(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: LineAddr = LineAddr(0xABC);

    #[test]
    fn empty_entry_for_unknown_line() {
        let d = Directory::new();
        assert!(d.entry(L).is_empty());
        assert_eq!(d.entry(L).owner, None);
    }

    #[test]
    fn add_and_remove_sharers() {
        let mut d = Directory::new();
        d.add_sharer(L, CoreId(1));
        d.add_sharer(L, CoreId(5));
        let e = d.entry(L);
        assert_eq!(e.sharer_count(), 2);
        assert!(e.has_sharer(CoreId(1)));
        assert!(e.has_sharer(CoreId(5)));
        assert!(!e.has_sharer(CoreId(2)));
        d.remove_sharer(L, CoreId(1));
        assert_eq!(d.entry(L).sharer_count(), 1);
        d.remove_sharer(L, CoreId(5));
        assert!(d.entry(L).is_empty());
        assert_eq!(d.tracked_lines(), 0);
    }

    #[test]
    fn owner_is_also_sharer() {
        let mut d = Directory::new();
        d.set_owner(L, CoreId(3));
        let e = d.entry(L);
        assert_eq!(e.owner, Some(CoreId(3)));
        assert!(e.has_sharer(CoreId(3)));
    }

    #[test]
    fn removing_owner_clears_ownership() {
        let mut d = Directory::new();
        d.set_owner(L, CoreId(3));
        d.remove_sharer(L, CoreId(3));
        assert_eq!(d.entry(L).owner, None);
        assert!(d.entry(L).is_empty());
    }

    #[test]
    #[should_panic(expected = "already owned")]
    fn double_ownership_is_a_bug() {
        let mut d = Directory::new();
        d.set_owner(L, CoreId(1));
        d.set_owner(L, CoreId(2));
    }

    #[test]
    fn ownership_transfer_via_clear() {
        let mut d = Directory::new();
        d.set_owner(L, CoreId(1));
        d.clear_owner(L);
        d.set_owner(L, CoreId(2));
        assert_eq!(d.entry(L).owner, Some(CoreId(2)));
        // Core 1 remains a (stale-tracked) sharer until removed.
        assert!(d.entry(L).has_sharer(CoreId(1)));
    }

    #[test]
    fn invalidate_others_keeps_only_writer() {
        let mut d = Directory::new();
        d.set_owner(L, CoreId(2));
        d.add_sharer(L, CoreId(4));
        d.add_sharer(L, CoreId(7));
        let kicked = d.invalidate_others(L, CoreId(4));
        assert_eq!(kicked.len(), 2);
        assert!(kicked.contains(&CoreId(2)));
        assert!(kicked.contains(&CoreId(7)));
        let e = d.entry(L);
        assert_eq!(e.sharer_count(), 1);
        assert!(e.has_sharer(CoreId(4)));
        assert_eq!(e.owner, None, "old owner was invalidated");
    }

    #[test]
    fn sharer_cores_iterates_exactly() {
        let mut d = Directory::new();
        for c in [0u16, 3, 15, 31] {
            d.add_sharer(L, CoreId(c));
        }
        let cores: Vec<u16> = d.entry(L).sharer_cores().map(|c| c.0).collect();
        assert_eq!(cores, vec![0, 3, 15, 31]);
    }
}
