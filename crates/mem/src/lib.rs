//! Cycle-level memory hierarchy for the mixed-mode multicore.
//!
//! Models the paper's target machine (§3.1, §4.1): per-core split
//! 16 KB write-through L1 I/D caches, a 512 KB 4-way private L2, an
//! 8 MB 16-way shared L3 that is *exclusive* with the private L2s
//! (like IBM Power5 / AMD quad-core Opteron), a MOSI directory using
//! shadow tags co-located with the L3, a point-to-point interconnect
//! with 10-cycle average latency, and 350-cycle DRAM behind 40 GB/s of
//! off-chip bandwidth.
//!
//! # Modelling approach
//!
//! Coherence *state* is tracked exactly — every line's MOSI state, the
//! directory's sharer/owner sets, and L3 exclusivity evolve precisely
//! as the protocol dictates, so cache-to-cache transfer counts and
//! invalidation behaviour are real. Request *latency* is composed
//! analytically from the configured hop latencies plus an
//! occupancy-based DRAM bandwidth queue.
//!
//! # Versions instead of values
//!
//! The simulator carries no data values. Instead every coherent store
//! stamps its line with a *version token* — a hash of
//! `(vcpu, line, dynamic instruction sequence)` — which is therefore
//! identical when a vocal and a mute core execute the same store of
//! the same software thread. A coherent load always observes the
//! globally current token (coherence invalidates stale copies); a mute
//! (incoherent) load observes whatever token its private hierarchy
//! holds. A token mismatch between DMR pair members is exactly
//! Reunion's *input incoherence*, and surfaces in the Check stage as a
//! fingerprint mismatch (see the `mmm-reunion` crate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod directory;
pub mod dram;
pub mod linemap;
pub mod request;
pub mod stats;
pub mod system;

pub use cache::{CacheLine, Mosi, SetAssocCache};
pub use request::{Access, Source, VersionToken};
pub use stats::MemStats;
pub use system::MemorySystem;
