//! Open-addressed hash table keyed by [`LineAddr`].
//!
//! The directory and the global version-token store are the hottest
//! maps in the simulator: every load, store, and invalidation performs
//! at least one lookup. A general `HashMap` pays for SipHash-free
//! hashing already (see `mmm_types::fastmap`), but still routes every
//! probe through control-byte groups and `Option`-wrapped buckets.
//! This table exploits what those maps cannot assume:
//!
//! * keys are plain 64-bit line addresses, never `u64::MAX` (the
//!   machine's physical address space tops out far below 2^63), so a
//!   sentinel key marks empty slots and no occupancy metadata exists;
//! * values are small `Copy` records, so slots store them inline and a
//!   probe touches exactly one cache line for the common hit.
//!
//! Collision policy is linear probing with backward-shift deletion —
//! no tombstones, so load factor and probe lengths stay honest across
//! the simulator's heavy insert/remove churn (directory entries come
//! and go with every eviction).

use mmm_types::LineAddr;

/// Sentinel key marking an empty slot. Real line addresses are
/// derived from physical addresses well below 2^63.
const EMPTY: u64 = u64::MAX;

/// SplitMix64 finalizer — same mixer as `mmm_types::fastmap`, inlined
/// here so a probe is mix + mask with no `Hasher` plumbing.
#[inline]
fn mix(key: u64) -> u64 {
    let mut x = key;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Open-addressed map from [`LineAddr`] to a small `Copy` value.
#[derive(Clone, Debug)]
pub struct LineMap<V> {
    /// `(key, value)` slots; `key == EMPTY` marks a free slot.
    slots: Vec<(u64, V)>,
    /// Occupied slot count.
    len: usize,
    /// `slots.len() - 1`; capacity is always a power of two.
    mask: usize,
}

impl<V: Copy + Default> Default for LineMap<V> {
    fn default() -> Self {
        Self::with_capacity_pow2(1024)
    }
}

impl<V: Copy + Default> LineMap<V> {
    /// Creates a map with `cap` slots (rounded up to a power of two).
    pub fn with_capacity_pow2(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(16);
        Self {
            slots: vec![(EMPTY, V::default()); cap],
            len: 0,
            mask: cap - 1,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index for `key`, or of the first empty slot in its probe
    /// chain if absent.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mut i = (mix(key) as usize) & self.mask;
        loop {
            let k = self.slots[i].0;
            if k == key || k == EMPTY {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up the value for `line`.
    #[inline]
    pub fn get(&self, line: LineAddr) -> Option<&V> {
        let i = self.probe(line.0);
        let (k, ref v) = self.slots[i];
        (k != EMPTY).then_some(v)
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut V> {
        let i = self.probe(line.0);
        if self.slots[i].0 == EMPTY {
            return None;
        }
        Some(&mut self.slots[i].1)
    }

    /// Inserts or overwrites the value for `line`.
    #[inline]
    pub fn insert(&mut self, line: LineAddr, value: V) {
        *self.entry_or_default(line) = value;
    }

    /// Returns a mutable reference to the value for `line`, inserting
    /// `V::default()` first if absent.
    #[inline]
    pub fn entry_or_default(&mut self, line: LineAddr) -> &mut V {
        debug_assert_ne!(line.0, EMPTY, "line address collides with sentinel");
        let mut i = self.probe(line.0);
        if self.slots[i].0 == EMPTY {
            if (self.len + 1) * 8 > self.slots.len() * 7 {
                self.grow();
                i = self.probe(line.0);
            }
            self.slots[i] = (line.0, V::default());
            self.len += 1;
        }
        &mut self.slots[i].1
    }

    /// Removes the entry for `line`, returning its value if present.
    ///
    /// Backward-shift deletion: slides the rest of the probe cluster
    /// back over the hole so later lookups never traverse tombstones.
    pub fn remove(&mut self, line: LineAddr) -> Option<V> {
        let mut hole = self.probe(line.0);
        if self.slots[hole].0 == EMPTY {
            return None;
        }
        let removed = self.slots[hole].1;
        self.len -= 1;
        let mut i = hole;
        loop {
            i = (i + 1) & self.mask;
            let (k, v) = self.slots[i];
            if k == EMPTY {
                break;
            }
            // If k's home slot lies outside the (home, hole] cluster
            // arc, k cannot fill the hole; keep scanning.
            let home = (mix(k) as usize) & self.mask;
            let dist_home = i.wrapping_sub(home) & self.mask;
            let dist_hole = i.wrapping_sub(hole) & self.mask;
            if dist_home >= dist_hole {
                self.slots[hole] = (k, v);
                hole = i;
            }
        }
        self.slots[hole] = (EMPTY, V::default());
        Some(removed)
    }

    /// Doubles capacity and reinserts every live entry.
    #[cold]
    fn grow(&mut self) {
        let doubled = vec![(EMPTY, V::default()); self.slots.len() * 2];
        let old = std::mem::replace(&mut self.slots, doubled);
        self.mask = self.slots.len() - 1;
        for (k, v) in old {
            if k != EMPTY {
                let i = self.probe(k);
                self.slots[i] = (k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut m: LineMap<u64> = LineMap::default();
        assert!(m.is_empty());
        m.insert(LineAddr(0x40), 7);
        m.insert(LineAddr(0x80), 8);
        assert_eq!(m.get(LineAddr(0x40)), Some(&7));
        assert_eq!(m.get(LineAddr(0x80)), Some(&8));
        assert_eq!(m.get(LineAddr(0xC0)), None);
        assert_eq!(m.remove(LineAddr(0x40)), Some(7));
        assert_eq!(m.get(LineAddr(0x40)), None);
        assert_eq!(m.get(LineAddr(0x80)), Some(&8));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn overwrite_keeps_len() {
        let mut m: LineMap<u64> = LineMap::default();
        m.insert(LineAddr(1), 1);
        m.insert(LineAddr(1), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(LineAddr(1)), Some(&2));
    }

    #[test]
    fn entry_or_default_inserts_once() {
        let mut m: LineMap<u32> = LineMap::default();
        *m.entry_or_default(LineAddr(5)) += 3;
        *m.entry_or_default(LineAddr(5)) += 4;
        assert_eq!(m.get(LineAddr(5)), Some(&7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: LineMap<u64> = LineMap::with_capacity_pow2(16);
        for i in 0..10_000u64 {
            m.insert(LineAddr(i * 64), i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(LineAddr(i * 64)), Some(&i), "key {i}");
        }
    }

    #[test]
    fn removal_preserves_probe_chains() {
        // Heavy churn over a colliding key set exercises the
        // backward-shift path: correctness is checked against a
        // reference HashMap.
        use std::collections::HashMap;
        let mut m: LineMap<u64> = LineMap::with_capacity_pow2(16);
        let mut r: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for step in 0..50_000 {
            // xorshift64 — deterministic mixed insert/remove pattern.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 512; // small key space forces collisions
            if step % 3 == 2 {
                assert_eq!(m.remove(LineAddr(key)), r.remove(&key), "step {step}");
            } else {
                m.insert(LineAddr(key), step);
                r.insert(key, step);
            }
        }
        assert_eq!(m.len(), r.len());
        for (&k, &v) in &r {
            assert_eq!(m.get(LineAddr(k)), Some(&v));
        }
    }
}
