//! Off-chip DRAM: fixed load-to-use latency plus an occupancy-based
//! bandwidth model.
//!
//! The paper's machine has 350-cycle load-to-use main memory behind
//! 40 GB/s of off-chip bandwidth (§4.1). Bandwidth is modelled as a
//! single channel whose busy time advances by `line_bytes /
//! bytes_per_cycle` per transferred line; a request arriving while the
//! channel is busy queues behind it. This is what makes the
//! `No DMR 2X` configuration (16 active VCPUs) feel roughly twice the
//! memory pressure of the 8-VCPU configurations, as the paper's §5.1
//! discussion requires.

use mmm_types::{Cycle, LineAddr};

/// The DRAM channel.
#[derive(Clone, Debug)]
pub struct Dram {
    latency: u32,
    cycles_per_line: u32,
    busy_until: Cycle,
    lines_read: u64,
    lines_written: u64,
    queue_cycles: u64,
}

impl Dram {
    /// Creates a channel with the given load-to-use latency and
    /// bandwidth (bytes per core cycle).
    pub fn new(latency: u32, bytes_per_cycle: u32) -> Self {
        assert!(bytes_per_cycle > 0, "bandwidth must be nonzero");
        Self {
            latency,
            cycles_per_line: (mmm_types::ids::LINE_BYTES as u32).div_ceil(bytes_per_cycle),
            busy_until: 0,
            lines_read: 0,
            lines_written: 0,
            queue_cycles: 0,
        }
    }

    /// Issues a demand line read at `now`; returns the cycle the data
    /// is usable.
    pub fn read(&mut self, _line: LineAddr, now: Cycle) -> Cycle {
        let start = self.busy_until.max(now);
        self.queue_cycles += start - now;
        self.busy_until = start + self.cycles_per_line as Cycle;
        self.lines_read += 1;
        start + self.latency as Cycle
    }

    /// Issues a writeback at `now`. Writebacks consume bandwidth but
    /// are off the critical path; no completion time is returned.
    pub fn write_back(&mut self, _line: LineAddr, now: Cycle) {
        let start = self.busy_until.max(now);
        self.busy_until = start + self.cycles_per_line as Cycle;
        self.lines_written += 1;
    }

    /// Total demand lines read.
    pub fn lines_read(&self) -> u64 {
        self.lines_read
    }

    /// Total lines written back.
    pub fn lines_written(&self) -> u64 {
        self.lines_written
    }

    /// Total cycles demand reads spent queued behind the channel.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Cycle through which the channel is currently busy.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_read_costs_latency() {
        let mut d = Dram::new(350, 13);
        assert_eq!(d.read(LineAddr(1), 1000), 1350);
        assert_eq!(d.lines_read(), 1);
        assert_eq!(d.queue_cycles(), 0);
    }

    #[test]
    fn back_to_back_reads_queue_on_bandwidth() {
        let mut d = Dram::new(350, 13);
        // 64/13 -> 5 cycles per line.
        let a = d.read(LineAddr(1), 0);
        let b = d.read(LineAddr(2), 0);
        let c = d.read(LineAddr(3), 0);
        assert_eq!(a, 350);
        assert_eq!(b, 355);
        assert_eq!(c, 360);
        assert_eq!(d.queue_cycles(), 5 + 10);
    }

    #[test]
    fn channel_drains_when_idle() {
        let mut d = Dram::new(350, 13);
        d.read(LineAddr(1), 0);
        // Long after the channel drained, no queuing remains.
        assert_eq!(d.read(LineAddr(2), 10_000), 10_350);
    }

    #[test]
    fn writebacks_consume_bandwidth_but_return_nothing() {
        let mut d = Dram::new(350, 13);
        d.write_back(LineAddr(9), 0);
        assert_eq!(d.lines_written(), 1);
        // A demand read right behind the writeback queues 5 cycles.
        assert_eq!(d.read(LineAddr(1), 0), 355);
    }

    #[test]
    fn bandwidth_rounds_up() {
        let d = Dram::new(100, 60); // 64/60 -> 2 cycles
        assert_eq!(d.cycles_per_line, 2);
        let d = Dram::new(100, 64);
        assert_eq!(d.cycles_per_line, 1);
    }
}
