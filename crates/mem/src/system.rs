//! The full memory system: per-core L1s and L2s, the shared exclusive
//! L3, the MOSI directory, and DRAM, behind a synchronous-latency
//! request API.
//!
//! # Request kinds
//!
//! * [`MemorySystem::ifetch`] / [`MemorySystem::load`] — instruction
//!   and data reads.
//! * [`MemorySystem::store_acquire`] — launched when a store
//!   dispatches: acquires write ownership (RFO/upgrade) so the later
//!   commit-time write is fast. This models an aggressive sequentially
//!   consistent core that prefetches exclusive permission while the
//!   store waits in the instruction window.
//! * [`MemorySystem::store_commit`] — the commit-time write-through:
//!   re-acquires ownership if it was stolen between dispatch and
//!   commit, stamps the line's version token, and updates the L1.
//!
//! Every call takes `coherent: bool`. Coherent requests are the normal
//! protocol. Incoherent requests model Reunion's mute cores: they
//! probe the hierarchy read-only ("best effort"), never change
//! directory or remote-cache state, fill their private hierarchy with
//! lines marked `coherent = false`, and keep stores entirely local.

use mmm_trace::{ProfPhase, Profiler};
use mmm_types::config::SystemConfig;
use mmm_types::{CoreId, Cycle, LineAddr};

use crate::cache::{CacheLine, Mosi, SetAssocCache};
use crate::directory::Directory;
use crate::dram::Dram;
use crate::linemap::LineMap;
use crate::request::{initial_token, Access, Source, VersionToken};
use crate::stats::MemStats;

/// Outcome of a mute-cache flush walk (Leave-DMR in MMM-TP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlushOutcome {
    /// Cycle at which the flush completes.
    pub complete_at: Cycle,
    /// L2 slots inspected (one per cycle, pessimistically — paper
    /// §3.4.3/§5.3: ~8k cycles for the 8192-line L2).
    pub inspected: usize,
    /// Coherent dirty lines written back (bounded by the VCPU state
    /// size, per the paper's footnote 4).
    pub written_back: usize,
    /// Incoherent lines discarded.
    pub invalidated: usize,
}

/// The machine's memory hierarchy.
pub struct MemorySystem {
    cfg: SystemConfig,
    l1i: Vec<SetAssocCache>,
    l1d: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
    dir: Directory,
    versions: LineMap<VersionToken>,
    dram: Dram,
    /// Reusable drain buffer for flush operations (avoids a fresh
    /// allocation per [`MemorySystem::flush_mute`]).
    scratch: Vec<CacheLine>,
    /// Busy horizon per L3/directory bank (optional contention model;
    /// unused when `bank_occupancy_cycles == 0`).
    bank_busy: Vec<Cycle>,
    /// Per-core: whether the private hierarchy *might* hold an
    /// incoherent line. Conservative (sticky true until a full purge):
    /// set at every site that creates or marks an incoherent copy,
    /// cleared only by [`MemorySystem::flush_mute`] and
    /// [`MemorySystem::flash_invalidate_incoherent`], which remove
    /// them all. While false, the coherent-request stale checks in
    /// [`MemorySystem::load`] and [`MemorySystem::ifetch`] are skipped
    /// — their outcome would be "nothing stale" — which spares the
    /// common vocal/solo path a whole L2 probe per access.
    maybe_incoherent: Vec<bool>,
    stats: MemStats,
    /// Self-profiler handle; one branch per request when off.
    profiler: Profiler,
}

impl MemorySystem {
    /// Builds the hierarchy for `cfg.cores` cores.
    pub fn new(cfg: &SystemConfig) -> Self {
        cfg.validate().expect("invalid system config");
        let n = cfg.cores as usize;
        Self {
            cfg: cfg.clone(),
            l1i: (0..n).map(|_| SetAssocCache::new(cfg.mem.l1i)).collect(),
            l1d: (0..n).map(|_| SetAssocCache::new(cfg.mem.l1d)).collect(),
            l2: (0..n).map(|_| SetAssocCache::new(cfg.mem.l2)).collect(),
            l3: SetAssocCache::new(cfg.mem.l3),
            dir: Directory::new(),
            versions: LineMap::default(),
            dram: Dram::new(cfg.mem.dram_latency, cfg.mem.dram_bytes_per_cycle),
            scratch: Vec::new(),
            bank_busy: vec![0; cfg.mem.l3_banks as usize],
            maybe_incoherent: vec![false; n],
            stats: MemStats::new(),
            profiler: Profiler::off(),
        }
    }

    /// Installs a self-profiler handle so request handling attributes
    /// its host cost to [`ProfPhase::Mem`]. Purely observational.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Applies the optional L3-bank contention model to a request for
    /// `line` issued at `now`: the request serializes on its bank for
    /// the configured occupancy. Returns the queueing delay added (0
    /// when the model is disabled).
    #[inline]
    fn bank_delay(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        let occ = self.cfg.mem.bank_occupancy_cycles as Cycle;
        if occ == 0 {
            return 0;
        }
        let bank = (line.0 as usize) & (self.bank_busy.len() - 1);
        let start = self.bank_busy[bank].max(now);
        self.bank_busy[bank] = start + occ;
        self.stats.bank_queue_cycles += start - now;
        start - now
    }

    /// The globally current version token of a line.
    pub fn current_version(&self, line: LineAddr) -> VersionToken {
        self.versions
            .get(line)
            .copied()
            .unwrap_or_else(|| initial_token(line))
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets counters (e.g. after warm-up) without touching cache state.
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::new();
        // DRAM keeps its busy horizon but its counters are part of
        // MemStats already (dram_reads / writebacks).
    }

    /// DRAM channel diagnostics (queue cycles, busy horizon).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Directory diagnostics.
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    fn c2c_latency(&self) -> u32 {
        // 3-hop: requester -> directory (at the L3 shadow tags) ->
        // owning L2 -> requester. One interconnect hop more than the
        // 2-hop L3 hit, as §5.1 requires.
        self.cfg.mem.l3_latency + self.cfg.mem.interconnect_latency
    }

    fn upgrade_latency(&self) -> u32 {
        // Round trip to the directory plus invalidation fan-out.
        2 * self.cfg.mem.interconnect_latency + 15
    }

    // ----- instruction fetch ------------------------------------------------

    /// Fetches the line containing an instruction. Mute cores fetch
    /// incoherently (`coherent = false`).
    ///
    /// A demand miss also triggers a next-line prefetch: sequential
    /// code walks hit the L1-I after the first miss, as a conventional
    /// next-line instruction prefetcher provides. Prefetch traffic
    /// consumes real bandwidth and cache space but adds no latency to
    /// the demand fetch.
    pub fn ifetch(&mut self, core: CoreId, line: LineAddr, coherent: bool, now: Cycle) -> Access {
        let _prof = self.profiler.enter(ProfPhase::Mem);
        if coherent && self.maybe_incoherent[core.index()] {
            // Discard incoherent leftovers (see `load`).
            let stale = |l: Option<&CacheLine>| l.map(|x| !x.coherent).unwrap_or(false);
            if stale(self.l1i[core.index()].peek(line)) || stale(self.l2[core.index()].peek(line)) {
                self.l1i[core.index()].invalidate(line);
                self.l2[core.index()].invalidate(line);
                self.l1d[core.index()].invalidate(line);
            }
        }
        if self.l1i[core.index()].lookup(line).is_some() {
            self.stats.l1i_hits += 1;
            return Access {
                complete_at: now + self.cfg.mem.l1_latency as Cycle,
                version: 0,
                source: Source::L1,
            };
        }
        self.stats.l1i_misses += 1;
        // The unified L2 may already hold the line (e.g. data written
        // there, or a prior I-fetch whose L1-I copy was evicted).
        let acc = if let Some(l2line) = self.l2[core.index()].lookup(line) {
            self.stats.l2_hits += 1;
            let copy = *l2line;
            self.l1i[core.index()].insert(copy);
            return Access {
                complete_at: now + self.cfg.mem.l2_latency as Cycle,
                version: copy.version,
                source: Source::L2,
            };
        } else {
            self.read_into_l2(core, line, coherent, now, false)
        };
        // Fill the L1-I (code is read-only; version is immaterial).
        let l2_copy = self.l2[core.index()]
            .peek(line)
            .copied()
            .expect("read_into_l2 leaves the line in L2");
        self.l1i[core.index()].insert(l2_copy);
        self.prefetch_next_line(core, line, coherent, now);
        acc
    }

    /// Brings `line + 1` into the L1-I in the background (next-line
    /// instruction prefetch). Consumes real bandwidth and cache space
    /// but adds no latency to the demand fetch.
    fn prefetch_next_line(&mut self, core: CoreId, line: LineAddr, coherent: bool, now: Cycle) {
        let next = LineAddr(line.0 + 1);
        if self.l1i[core.index()].peek(next).is_some() {
            return;
        }
        if self.l2[core.index()].peek(next).is_none() {
            self.read_into_l2(core, next, coherent, now, false);
        }
        let copy = self.l2[core.index()]
            .peek(next)
            .copied()
            .expect("prefetch fill resides in L2");
        self.l1i[core.index()].insert(copy);
    }

    // ----- loads ------------------------------------------------------------

    /// Loads a line. Coherent loads always observe the current version
    /// token; incoherent (mute) loads observe whatever their private
    /// hierarchy holds — possibly stale, which is how input
    /// incoherence enters the pipeline.
    pub fn load(&mut self, core: CoreId, line: LineAddr, coherent: bool, now: Cycle) -> Access {
        let _prof = self.profiler.enter(ProfPhase::Mem);
        // A coherent request must not consume an incoherent leftover
        // (a copy cached while this core was a mute): discard it and
        // refetch through the protocol.
        if coherent && self.maybe_incoherent[core.index()] {
            let stale_local = self.l2[core.index()]
                .peek(line)
                .map(|l| !l.coherent)
                .unwrap_or(false);
            if stale_local {
                self.l2[core.index()].invalidate(line);
                self.l1d[core.index()].invalidate(line);
                self.l1i[core.index()].invalidate(line);
            }
        }
        if let Some(l1line) = self.l1d[core.index()].lookup(line) {
            let version = l1line.version;
            let copy_coherent = l1line.coherent;
            if !coherent || copy_coherent {
                self.stats.l1d_hits += 1;
                // The global version is only consulted for incoherent
                // copies — the common coherent hit skips the map lookup.
                if !copy_coherent && version != self.current_version(line) {
                    self.stats.stale_mute_hits += 1;
                }
                return Access {
                    complete_at: now + self.cfg.mem.l1_latency as Cycle,
                    version,
                    source: Source::L1,
                };
            }
            // Coherent request, incoherent L1-only leftover: drop it.
            self.l1d[core.index()].invalidate(line);
        }
        self.stats.l1d_misses += 1;
        if let Some(l2line) = self.l2[core.index()].lookup(line) {
            self.stats.l2_hits += 1;
            let copy = *l2line;
            if !copy.coherent && copy.version != self.current_version(line) {
                self.stats.stale_mute_hits += 1;
            }
            self.l1d[core.index()].insert(copy);
            return Access {
                complete_at: now + self.cfg.mem.l2_latency as Cycle,
                version: copy.version,
                source: Source::L2,
            };
        }
        let acc = self.read_into_l2(core, line, coherent, now, true);
        let l2_copy = self.l2[core.index()]
            .peek(line)
            .copied()
            .expect("read_into_l2 leaves the line in L2");
        self.l1d[core.index()].insert(l2_copy);
        acc
    }

    /// Services an L2 miss for a read, installing the line in the
    /// requester's L2. `is_data` selects the miss counter only.
    fn read_into_l2(
        &mut self,
        core: CoreId,
        line: LineAddr,
        coherent: bool,
        now: Cycle,
        _is_data: bool,
    ) -> Access {
        self.stats.l2_misses += 1;
        let now = now + self.bank_delay(line, now);
        let current = self.current_version(line);
        let entry = self.dir.entry(line);
        let remote_owner = entry.owner.filter(|&o| o != core);
        let remote_sharer = entry.sharer_cores().find(|&c| c != core);

        let (latency, source) = if let Some(owner) = remote_owner {
            // 3-hop transfer from the owning L2.
            self.stats.c2c_transfers += 1;
            if coherent {
                // Owner transitions M -> O (stays the data source).
                if let Some(ol) = self.l2[owner.index()].lookup(line) {
                    if ol.state == Mosi::Modified {
                        ol.state = Mosi::Owned;
                    }
                }
            }
            (self.c2c_latency(), Source::CacheToCache)
        } else if self.l3.peek(line).is_some() {
            (self.cfg.mem.l3_latency, Source::L3)
        } else if !coherent && remote_sharer.is_some() {
            // Classic MOSI has no clean-forward state: coherent misses
            // to clean-shared lines are serviced by memory. Only a
            // mute's best-effort request scavenges a clean copy from a
            // peer L2 — typically its vocal's, which with the
            // exclusive L3 is often the only on-chip copy (paper
            // §5.1's source of Reunion's extra C2C transfers).
            self.stats.c2c_transfers += 1;
            (self.c2c_latency(), Source::CacheToCache)
        } else {
            self.stats.dram_reads += 1;
            let done = self.dram.read(line, now);
            let fill = CacheLine {
                addr: line,
                state: Mosi::Shared,
                version: current,
                coherent,
            };
            if coherent {
                self.dir.add_sharer(line, core);
            } else {
                self.stats.incoherent_fills += 1;
            }
            self.install_l2(core, fill);
            return Access {
                complete_at: done,
                version: current,
                source: Source::Dram,
            };
        };

        if source == Source::L3 && coherent {
            // Exclusive L3: the line moves into the requester's L2.
            let l3line = self.l3.invalidate(line).expect("peeked above");
            let fill = CacheLine {
                addr: line,
                state: if l3line.state.is_dirty() {
                    Mosi::Modified
                } else {
                    Mosi::Shared
                },
                version: current,
                coherent: true,
            };
            if fill.state.is_dirty() {
                self.dir.set_owner(line, core);
            } else {
                self.dir.add_sharer(line, core);
            }
            self.install_l2(core, fill);
        } else {
            // C2C fill, or any incoherent fill: requester gets a copy;
            // for incoherent fills nothing global changes (the L3 keeps
            // its line, the owner keeps its state).
            let fill = CacheLine {
                addr: line,
                state: Mosi::Shared,
                version: current,
                coherent,
            };
            if coherent {
                self.dir.add_sharer(line, core);
            } else {
                self.stats.incoherent_fills += 1;
            }
            self.install_l2(core, fill);
        }
        if source == Source::L3 {
            self.stats.l3_hits += 1;
        }
        Access {
            complete_at: now + latency as Cycle,
            version: current,
            source,
        }
    }

    // ----- stores -----------------------------------------------------------

    /// Acquires write ownership of `line` for a dispatched store.
    /// Returns when exclusive permission (coherent) or a local copy
    /// (incoherent) is available.
    pub fn store_acquire(
        &mut self,
        core: CoreId,
        line: LineAddr,
        coherent: bool,
        now: Cycle,
    ) -> Access {
        let _prof = self.profiler.enter(ProfPhase::Mem);
        if !coherent {
            return self.mute_local_fill(core, line, now);
        }
        // Fast path: already Modified and coherent in our L2.
        if let Some(l2line) = self.l2[core.index()].lookup(line) {
            if l2line.coherent {
                if l2line.state == Mosi::Modified {
                    self.stats.l2_hits += 1;
                    return Access {
                        complete_at: now + 1,
                        version: l2line.version,
                        source: Source::L2,
                    };
                }
                // Upgrade S/O -> M.
                self.stats.l2_hits += 1;
                self.stats.upgrades += 1;
                let mut kicked = self.dir.invalidate_others_mask(line, core);
                self.stats.invalidations += kicked.count_ones() as u64;
                while kicked != 0 {
                    let victim = CoreId(kicked.trailing_zeros() as u16);
                    kicked &= kicked - 1;
                    self.drop_core_line(victim, line);
                }
                let l2line = self.l2[core.index()]
                    .lookup(line)
                    .expect("upgrade target resident");
                l2line.state = Mosi::Modified;
                self.dir.clear_owner(line);
                self.dir.set_owner(line, core);
                return Access {
                    complete_at: now + self.upgrade_latency() as Cycle,
                    version: 0,
                    source: Source::L2,
                };
            }
            // An incoherent copy cannot satisfy a coherent store:
            // discard it and fall through to the miss path.
            self.l2[core.index()].invalidate(line);
            self.l1d[core.index()].invalidate(line);
            self.l1i[core.index()].invalidate(line);
        }
        self.rfo_miss(core, line, now)
    }

    /// Read-for-ownership on a coherent store miss.
    fn rfo_miss(&mut self, core: CoreId, line: LineAddr, now: Cycle) -> Access {
        self.stats.l2_misses += 1;
        let now = now + self.bank_delay(line, now);
        let current = self.current_version(line);
        let entry = self.dir.entry(line);
        let had_remote_owner = entry.owner.filter(|&o| o != core).is_some();
        let had_remote_sharer = entry.sharer_cores().any(|c| c != core);
        let in_l3 = self.l3.peek(line).is_some();

        // Invalidate every remote copy.
        let mut kicked = self.dir.invalidate_others_mask(line, core);
        self.stats.invalidations += kicked.count_ones() as u64;
        self.stats.sharer_walk.record(kicked.count_ones() as u64);
        while kicked != 0 {
            let victim = CoreId(kicked.trailing_zeros() as u16);
            kicked &= kicked - 1;
            self.drop_core_line(victim, line);
        }

        let (complete_at, source) = if had_remote_owner {
            self.stats.c2c_transfers += 1;
            (now + self.c2c_latency() as Cycle, Source::CacheToCache)
        } else if in_l3 {
            self.stats.l3_hits += 1;
            self.l3.invalidate(line);
            (now + self.cfg.mem.l3_latency as Cycle, Source::L3)
        } else if had_remote_sharer {
            self.stats.c2c_transfers += 1;
            (now + self.c2c_latency() as Cycle, Source::CacheToCache)
        } else {
            self.stats.dram_reads += 1;
            (self.dram.read(line, now), Source::Dram)
        };

        self.dir.clear_owner(line);
        self.dir.set_owner(line, core);
        self.install_l2(
            core,
            CacheLine {
                addr: line,
                state: Mosi::Modified,
                version: current,
                coherent: true,
            },
        );
        Access {
            complete_at,
            version: current,
            source,
        }
    }

    /// Commit-time write-through of a store. `token` becomes the
    /// line's new version. Ownership is re-acquired if it was lost
    /// between dispatch and commit.
    pub fn store_commit(
        &mut self,
        core: CoreId,
        line: LineAddr,
        token: VersionToken,
        coherent: bool,
        now: Cycle,
    ) -> Access {
        let _prof = self.profiler.enter(ProfPhase::Mem);
        if !coherent {
            // Mute store: purely local. The copy diverges from the
            // coherent world, so it must be marked incoherent even if
            // it was filled coherently earlier (mode-switch leftovers).
            self.maybe_incoherent[core.index()] = true;
            let fill = self.mute_local_fill(core, line, now);
            let idx = core.index();
            if let Some(l2line) = self.l2[idx].lookup(line) {
                if l2line.coherent {
                    // Leaving the coherent world: stop being tracked.
                    self.dir.remove_sharer(line, core);
                }
                l2line.coherent = false;
                l2line.version = token;
                l2line.state = Mosi::Modified;
            }
            if let Some(l1line) = self.l1d[idx].lookup(line) {
                l1line.coherent = false;
                l1line.version = token;
                l1line.state = Mosi::Modified;
            }
            return Access {
                complete_at: fill.complete_at.max(now + 1),
                version: token,
                source: fill.source,
            };
        }

        // Coherent path: ensure we still hold M.
        let holds_m = self.l2[core.index()]
            .peek(line)
            .map(|l| l.coherent && l.state == Mosi::Modified)
            .unwrap_or(false);
        let (mut complete_at, source) = if holds_m {
            (now + 1, Source::L2)
        } else {
            let acc = self.store_acquire(core, line, true, now);
            (acc.complete_at + 1, acc.source)
        };
        if complete_at <= now {
            complete_at = now + 1;
        }
        self.versions.insert(line, token);
        if let Some(l2line) = self.l2[core.index()].lookup(line) {
            l2line.version = token;
        }
        // Write-through, no-write-allocate L1: update an existing copy
        // only.
        if let Some(l1line) = self.l1d[core.index()].lookup(line) {
            l1line.version = token;
        }
        Access {
            complete_at,
            version: token,
            source,
        }
    }

    /// Ensures the mute core holds a private copy of `line`,
    /// best-effort, without any global state change.
    fn mute_local_fill(&mut self, core: CoreId, line: LineAddr, now: Cycle) -> Access {
        if let Some(l) = self.l2[core.index()].peek(line) {
            let v = l.version;
            return Access {
                complete_at: now + self.cfg.mem.l2_latency as Cycle,
                version: v,
                source: Source::L2,
            };
        }
        // Probe remote state read-only (via the directory bank).
        let now = now + self.bank_delay(line, now);
        let entry = self.dir.entry(line);
        let current = self.current_version(line);
        let (complete_at, source) = if entry.owner.filter(|&o| o != core).is_some()
            || entry.sharer_cores().any(|c| c != core)
        {
            self.stats.c2c_transfers += 1;
            (now + self.c2c_latency() as Cycle, Source::CacheToCache)
        } else if self.l3.peek(line).is_some() {
            self.stats.l3_hits += 1;
            (now + self.cfg.mem.l3_latency as Cycle, Source::L3)
        } else {
            self.stats.dram_reads += 1;
            (self.dram.read(line, now), Source::Dram)
        };
        self.stats.incoherent_fills += 1;
        self.stats.l2_misses += 1;
        self.install_l2(
            core,
            CacheLine {
                addr: line,
                state: Mosi::Shared,
                version: current,
                coherent: false,
            },
        );
        Access {
            complete_at,
            version: current,
            source,
        }
    }

    // ----- maintenance operations --------------------------------------------

    /// Invalidates a (possibly stale) private copy so the next access
    /// refetches fresh data. Used by Reunion recovery to heal the
    /// mute's input-incoherent lines.
    pub fn heal_line(&mut self, core: CoreId, line: LineAddr) {
        let idx = core.index();
        if let Some(l) = self.l2[idx].peek(line) {
            if l.coherent {
                self.dir.remove_sharer(line, core);
            }
        }
        self.l2[idx].invalidate(line);
        self.l1d[idx].invalidate(line);
        self.l1i[idx].invalidate(line);
    }

    /// Walks the mute's L2 when leaving DMR mode in MMM-TP: inspects
    /// every slot (1 per cycle), discards incoherent lines, and writes
    /// back coherent dirty lines (the staged VCPU state).
    pub fn flush_mute(&mut self, core: CoreId, now: Cycle) -> FlushOutcome {
        let idx = core.index();
        let inspected = self.l2[idx].slot_count();
        let mut scratch = std::mem::take(&mut self.scratch);
        self.l2[idx].drain_matching_into(|l| !l.coherent, &mut scratch);
        let invalidated = scratch.len();
        for l in &scratch {
            self.l1d[idx].invalidate(l.addr);
            self.l1i[idx].invalidate(l.addr);
        }
        // Coherent dirty lines move to the L3 (normal eviction path).
        self.l2[idx].drain_matching_into(|l| l.state.is_dirty(), &mut scratch);
        let written_back = scratch.len() - invalidated;
        for l in scratch.drain(invalidated..) {
            self.l1d[idx].invalidate(l.addr);
            self.l1i[idx].invalidate(l.addr);
            self.dir.remove_sharer(l.addr, core);
            self.install_l3(l, now);
        }
        scratch.clear();
        self.scratch = scratch;
        // Drop L1 incoherent leftovers wholesale (cheap CAM clear).
        self.l1d[idx].discard_matching(|l| !l.coherent);
        self.l1i[idx].discard_matching(|l| !l.coherent);
        self.maybe_incoherent[idx] = false;
        let cycles = (inspected as u64).div_ceil(self.cfg.virt.flush_lines_per_cycle as u64)
            + written_back as u64;
        self.stats.flushes += 1;
        self.stats.flush_cycles += cycles;
        FlushOutcome {
            complete_at: now + cycles,
            inspected,
            written_back,
            invalidated,
        }
    }

    /// Flash-invalidates every incoherent line in a core's private
    /// hierarchy. Unlike [`MemorySystem::flush_mute`], nothing needs
    /// writing back (incoherent dirty lines are redundant copies of
    /// state the vocal already made globally visible), so this is a
    /// single-cycle flash clear of the per-line coherent/valid bits —
    /// used when a core is (re-)coupled as a mute after an idle gap,
    /// so weeks-stale data does not trigger a recovery storm.
    pub fn flash_invalidate_incoherent(&mut self, core: CoreId) -> usize {
        let idx = core.index();
        self.maybe_incoherent[idx] = false;
        self.l2[idx].discard_matching(|l| !l.coherent)
            + self.l1d[idx].discard_matching(|l| !l.coherent)
            + self.l1i[idx].discard_matching(|l| !l.coherent)
    }

    /// Drops a line from a remote core's private hierarchy
    /// (invalidation delivery).
    fn drop_core_line(&mut self, core: CoreId, line: LineAddr) {
        let idx = core.index();
        self.l2[idx].invalidate(line);
        self.l1d[idx].invalidate(line);
        self.l1i[idx].invalidate(line);
    }

    /// Installs a line into a core's L2, handling the victim: coherent
    /// dirty victims move to the L3; coherent clean victims move to
    /// the L3 when no other sharer holds them (exclusive-hierarchy
    /// victim caching); incoherent victims vanish silently (mute state
    /// never escapes, paper §3.2).
    fn install_l2(&mut self, core: CoreId, line: CacheLine) {
        let idx = core.index();
        if !line.coherent {
            self.maybe_incoherent[idx] = true;
        }
        if let Some(victim) = self.l2[idx].insert(line) {
            self.l1d[idx].invalidate(victim.addr);
            self.l1i[idx].invalidate(victim.addr);
            if victim.coherent {
                self.dir.remove_sharer(victim.addr, core);
                // Dirty victims must reach the L3; clean victims are
                // cached there too when no other L2 still holds them
                // (exclusive-hierarchy victim caching).
                let cache_in_l3 = victim.state.is_dirty()
                    || (self.dir.entry(victim.addr).is_empty()
                        && self.l3.peek(victim.addr).is_none());
                if cache_in_l3 {
                    self.install_l3(victim, 0);
                }
            }
        }
    }

    /// Installs a line into the L3, writing back any dirty L3 victim.
    fn install_l3(&mut self, mut line: CacheLine, now: Cycle) {
        line.coherent = true;
        if let Some(victim) = self.l3.insert(line) {
            if victim.state.is_dirty() {
                self.dram.write_back(victim.addr, now);
                self.stats.writebacks += 1;
            }
        }
    }

    // ----- test/diagnostic accessors -----------------------------------------

    /// Peeks a core's L2 copy of a line (diagnostics).
    pub fn peek_l2(&self, core: CoreId, line: LineAddr) -> Option<&CacheLine> {
        self.l2[core.index()].peek(line)
    }

    /// Peeks the L3 copy of a line (diagnostics).
    pub fn peek_l3(&self, line: LineAddr) -> Option<&CacheLine> {
        self.l3.peek(line)
    }

    /// Occupancy of a core's L2 (diagnostics).
    pub fn l2_occupancy(&self, core: CoreId) -> usize {
        self.l2[core.index()].occupancy()
    }

    /// Occupancy of the shared L3 (diagnostics).
    pub fn l3_occupancy(&self) -> usize {
        self.l3.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::store_token;
    use mmm_types::VcpuId;

    fn sys() -> MemorySystem {
        MemorySystem::new(&SystemConfig::default())
    }

    const L: LineAddr = LineAddr(0x4_0000);
    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const C2: CoreId = CoreId(2);

    #[test]
    fn cold_load_comes_from_dram_then_hits_l1() {
        let mut m = sys();
        let a = m.load(C0, L, true, 0);
        assert_eq!(a.source, Source::Dram);
        assert!(a.complete_at >= 350);
        let b = m.load(C0, L, true, a.complete_at);
        assert_eq!(b.source, Source::L1);
        assert_eq!(b.complete_at, a.complete_at + 2);
        assert_eq!(b.version, a.version);
    }

    #[test]
    fn clean_shared_misses_go_to_memory_but_mute_scavenges() {
        let mut m = sys();
        m.load(C0, L, true, 0);
        // Classic MOSI: a coherent miss to a clean-shared line is
        // serviced by memory, not forwarded from the peer L2.
        let a = m.load(C1, L, true, 1000);
        assert_eq!(a.source, Source::Dram);
        assert_eq!(m.stats().c2c_transfers, 0);
        // A mute's best-effort request does scavenge the clean copy.
        let b = m.load(C2, L, false, 2000);
        assert_eq!(b.source, Source::CacheToCache);
        assert_eq!(m.stats().c2c_transfers, 1);
    }

    #[test]
    fn store_then_remote_load_gives_c2c_and_owner_becomes_owned() {
        let mut m = sys();
        let t = store_token(VcpuId(0), L, 1);
        m.store_acquire(C0, L, true, 0);
        m.store_commit(C0, L, t, true, 10);
        assert_eq!(m.peek_l2(C0, L).unwrap().state, Mosi::Modified);
        let a = m.load(C1, L, true, 100);
        assert_eq!(a.source, Source::CacheToCache);
        assert_eq!(a.version, t, "remote load sees the stored token");
        assert_eq!(m.peek_l2(C0, L).unwrap().state, Mosi::Owned);
        assert_eq!(m.peek_l2(C1, L).unwrap().state, Mosi::Shared);
    }

    #[test]
    fn store_upgrade_invalidates_sharers() {
        let mut m = sys();
        m.load(C0, L, true, 0);
        m.load(C1, L, true, 400);
        // C1 upgrades to M; C0's copy must die.
        let t = store_token(VcpuId(1), L, 5);
        m.store_acquire(C1, L, true, 800);
        m.store_commit(C1, L, t, true, 900);
        assert!(m.peek_l2(C0, L).is_none(), "C0 invalidated");
        assert_eq!(m.peek_l2(C1, L).unwrap().state, Mosi::Modified);
        assert!(m.stats().invalidations >= 1);
        // C0 reloading sees the new token.
        let a = m.load(C0, L, true, 1000);
        assert_eq!(a.version, t);
    }

    #[test]
    fn ownership_lost_between_dispatch_and_commit_is_reacquired() {
        let mut m = sys();
        m.store_acquire(C0, L, true, 0);
        // C1 steals ownership before C0 commits.
        m.store_acquire(C1, L, true, 50);
        let t1 = store_token(VcpuId(1), L, 9);
        m.store_commit(C1, L, t1, true, 60);
        // C0 commit must re-acquire and still succeed.
        let t0 = store_token(VcpuId(0), L, 10);
        let a = m.store_commit(C0, L, t0, true, 100);
        assert!(a.complete_at > 101, "re-acquisition costs latency");
        assert_eq!(m.current_version(L), t0);
        assert_eq!(m.peek_l2(C0, L).unwrap().state, Mosi::Modified);
        assert!(m.peek_l2(C1, L).is_none());
    }

    #[test]
    fn l2_eviction_moves_line_to_l3_and_back() {
        let mut m = sys();
        // Fill one L2 set (4 ways) plus one more mapping to the same set.
        let sets = SystemConfig::default().mem.l2.sets();
        let addrs: Vec<LineAddr> = (0..5).map(|i| LineAddr(0x100 + i * sets)).collect();
        for (i, &a) in addrs.iter().enumerate() {
            m.load(C0, a, true, i as Cycle * 1000);
        }
        // The first line was evicted to L3 (clean victim, no sharers).
        assert!(m.peek_l2(C0, addrs[0]).is_none());
        assert!(m.peek_l3(addrs[0]).is_some());
        // Reloading it hits L3 and removes it from L3 (exclusivity).
        let a = m.load(C0, addrs[0], true, 100_000);
        assert_eq!(a.source, Source::L3);
        assert!(m.peek_l3(addrs[0]).is_none());
        assert!(m.peek_l2(C0, addrs[0]).is_some());
    }

    #[test]
    fn dirty_eviction_preserves_token_through_l3() {
        let mut m = sys();
        let t = store_token(VcpuId(0), L, 3);
        m.store_acquire(C0, L, true, 0);
        m.store_commit(C0, L, t, true, 10);
        // Evict L by filling the set.
        let sets = SystemConfig::default().mem.l2.sets();
        for i in 1..=4u64 {
            m.load(C0, LineAddr(L.0 + i * sets), true, i * 1000);
        }
        assert!(m.peek_l2(C0, L).is_none());
        let l3line = m.peek_l3(L).expect("dirty victim went to L3");
        assert!(l3line.state.is_dirty());
        // Another core's load hits L3 and sees the token; the line
        // moves into its L2 still dirty (Modified), preserving the
        // only up-to-date copy.
        let a = m.load(C1, L, true, 50_000);
        assert_eq!(a.source, Source::L3);
        assert_eq!(a.version, t);
        assert_eq!(m.peek_l2(C1, L).unwrap().state, Mosi::Modified);
    }

    #[test]
    fn mute_load_does_not_change_directory_or_remote_state() {
        let mut m = sys();
        let t = store_token(VcpuId(0), L, 1);
        m.store_acquire(C0, L, true, 0);
        m.store_commit(C0, L, t, true, 10);
        let before_owner = m.directory().entry(L).owner;
        let before_state = m.peek_l2(C0, L).unwrap().state;

        let a = m.load(C1, L, false, 100);
        assert_eq!(a.source, Source::CacheToCache);
        assert_eq!(a.version, t, "best effort returns current data");
        // Nothing global changed.
        assert_eq!(m.directory().entry(L).owner, before_owner);
        assert_eq!(m.peek_l2(C0, L).unwrap().state, before_state);
        assert!(!m.directory().entry(L).has_sharer(C1));
        // But the mute holds a private incoherent copy now.
        let copy = m.peek_l2(C1, L).unwrap();
        assert!(!copy.coherent);
    }

    #[test]
    fn mute_copy_goes_stale_after_foreign_store() {
        let mut m = sys();
        m.load(C1, L, false, 0); // mute fill
        let t = store_token(VcpuId(0), L, 7);
        m.store_acquire(C0, L, true, 100);
        m.store_commit(C0, L, t, true, 110);
        // Mute hit returns the OLD token; the coherent world moved on.
        let a = m.load(C1, L, false, 200);
        assert_eq!(a.source, Source::L1);
        assert_ne!(a.version, t, "mute observes stale data");
        assert_eq!(m.current_version(L), t);
        assert!(m.stats().stale_mute_hits >= 1);
    }

    #[test]
    fn heal_line_makes_mute_refetch_fresh() {
        let mut m = sys();
        m.load(C1, L, false, 0);
        let t = store_token(VcpuId(0), L, 7);
        m.store_acquire(C0, L, true, 100);
        m.store_commit(C0, L, t, true, 110);
        m.heal_line(C1, L);
        let a = m.load(C1, L, false, 300);
        assert_eq!(a.version, t, "after heal the mute refetches fresh data");
    }

    #[test]
    fn mute_store_stays_local() {
        let mut m = sys();
        let t_mute = store_token(VcpuId(0), L, 4);
        m.store_acquire(C1, L, false, 0);
        m.store_commit(C1, L, t_mute, false, 10);
        // Global world unchanged.
        assert_ne!(m.current_version(L), t_mute);
        assert_eq!(m.directory().entry(L).owner, None);
        // Local copy diverged but holds the token the mute wrote —
        // its own later load observes its own store (store-to-load
        // consistency within the mute).
        let a = m.load(C1, L, false, 100);
        assert_eq!(a.version, t_mute);
    }

    #[test]
    fn matching_vocal_and_mute_stores_produce_matching_tokens() {
        let mut m = sys();
        // Vocal C0 and mute C1 execute the same dynamic store of VCPU 3.
        let t = store_token(VcpuId(3), L, 42);
        m.store_acquire(C0, L, true, 0);
        m.store_commit(C0, L, t, true, 10);
        m.store_acquire(C1, L, false, 5);
        m.store_commit(C1, L, t, false, 12);
        let vocal = m.load(C0, L, true, 100);
        let mute = m.load(C1, L, false, 100);
        assert_eq!(vocal.version, mute.version, "redundant stores agree");
    }

    #[test]
    fn mute_coherent_line_becomes_incoherent_on_mute_store() {
        let mut m = sys();
        // Coherent fill on C1 (e.g. VCPU-state restore while mute).
        m.load(C1, L, true, 0);
        assert!(m.directory().entry(L).has_sharer(C1));
        // Now a mute store dirties it locally.
        let t = store_token(VcpuId(1), L, 1);
        m.store_commit(C1, L, t, false, 100);
        assert!(!m.peek_l2(C1, L).unwrap().coherent);
        assert!(
            !m.directory().entry(L).has_sharer(C1),
            "diverged copy left the coherent world"
        );
    }

    #[test]
    fn incoherent_dirty_eviction_never_escapes() {
        let mut m = sys();
        let t = store_token(VcpuId(1), L, 1);
        m.store_acquire(C1, L, false, 0);
        m.store_commit(C1, L, t, false, 10);
        // Evict the incoherent dirty line.
        let sets = SystemConfig::default().mem.l2.sets();
        for i in 1..=4u64 {
            m.load(C1, LineAddr(L.0 + i * sets), false, i * 1000);
        }
        assert!(m.peek_l2(C1, L).is_none());
        assert!(m.peek_l3(L).is_none(), "mute state must not reach L3");
        assert_ne!(m.current_version(L), t);
    }

    #[test]
    fn flush_mute_discards_incoherent_and_writes_back_coherent_dirty() {
        let mut m = sys();
        // Incoherent fills.
        for i in 0..10u64 {
            m.load(C1, LineAddr(0x9000 + i), false, i);
        }
        // Coherent dirty (VCPU state staging).
        let t = store_token(VcpuId(1), LineAddr(0xA000), 1);
        m.store_acquire(C1, LineAddr(0xA000), true, 100);
        m.store_commit(C1, LineAddr(0xA000), t, true, 110);
        let out = m.flush_mute(C1, 1000);
        assert_eq!(out.invalidated, 10);
        assert_eq!(out.written_back, 1);
        // Inspection walk dominates: 8192 slots at 1/cycle.
        let slots = SystemConfig::default().mem.l2.lines();
        assert!(out.complete_at - 1000 >= slots);
        assert!(m.peek_l2(C1, LineAddr(0x9000)).is_none());
        // The state line survives in the L3, still current.
        assert_eq!(m.peek_l3(LineAddr(0xA000)).map(|l| l.version), Some(t));
        assert_eq!(m.current_version(LineAddr(0xA000)), t);
    }

    #[test]
    fn three_cores_share_then_one_writes() {
        let mut m = sys();
        for (i, c) in [C0, C1, C2].iter().enumerate() {
            m.load(*c, L, true, i as Cycle * 500);
        }
        assert_eq!(m.directory().entry(L).sharer_count(), 3);
        let t = store_token(VcpuId(2), L, 8);
        m.store_acquire(C2, L, true, 5000);
        m.store_commit(C2, L, t, true, 5100);
        assert_eq!(m.directory().entry(L).sharer_count(), 1);
        assert_eq!(m.directory().entry(L).owner, Some(C2));
        for c in [C0, C1] {
            assert!(m.peek_l2(c, L).is_none());
            let a = m.load(c, L, true, 6000);
            assert_eq!(a.version, t);
        }
    }

    #[test]
    fn ifetch_fills_l1i_and_hits() {
        let mut m = sys();
        let a = m.ifetch(C0, L, true, 0);
        assert_eq!(a.source, Source::Dram);
        let b = m.ifetch(C0, L, true, 1000);
        assert_eq!(b.source, Source::L1);
        assert_eq!(m.stats().l1i_hits, 1);
        assert_eq!(m.stats().l1i_misses, 1);
    }

    #[test]
    fn next_line_prefetch_halves_sequential_fetch_misses() {
        let mut m = sys();
        // A sequential code walk with a demand-miss-triggered
        // next-line prefetcher: each miss pulls in the following line,
        // so at most every other access misses (vs. all of them
        // without the prefetcher).
        let mut misses = 0;
        for i in 0..32u64 {
            let a = m.ifetch(C0, LineAddr(0x7000 + i), true, i * 100);
            if a.source != Source::L1 {
                misses += 1;
            }
        }
        assert!(
            misses <= 16,
            "prefetcher must at least halve misses: {misses}"
        );
        assert!(misses >= 1, "the first access cannot hit");
    }

    #[test]
    fn ifetch_after_data_write_hits_the_unified_l2() {
        let mut m = sys();
        let t = store_token(VcpuId(0), L, 1);
        m.store_acquire(C0, L, true, 0);
        m.store_commit(C0, L, t, true, 10);
        // An instruction fetch of the same line must not clobber the
        // Modified state (regression: read_into_l2 used to overwrite
        // an owned line with a Shared fill).
        let a = m.ifetch(C0, L, true, 100);
        assert_eq!(a.source, Source::L2);
        assert_eq!(m.peek_l2(C0, L).unwrap().state, Mosi::Modified);
        assert_eq!(m.directory().entry(L).owner, Some(C0));
    }

    #[test]
    fn coherent_access_discards_incoherent_leftovers() {
        let mut m = sys();
        // A mute stint leaves an incoherent dirty line behind.
        let t_mute = store_token(VcpuId(1), L, 5);
        m.store_acquire(C1, L, false, 0);
        m.store_commit(C1, L, t_mute, false, 5);
        // The same core, now coherent (role change without a flush —
        // the memory API must still be safe): a coherent load must
        // not observe the mute leftovers.
        let a = m.load(C1, L, true, 100);
        assert_eq!(a.version, m.current_version(L));
        assert_ne!(a.version, t_mute);
    }

    #[test]
    fn dram_bandwidth_queues_under_burst() {
        let mut m = sys();
        let mut last = 0;
        for i in 0..50u64 {
            let a = m.load(C0, LineAddr(0x10_0000 + i * 8192), true, 0);
            assert!(a.complete_at >= last, "monotonic queue");
            last = a.complete_at;
        }
        assert!(m.dram().queue_cycles() > 0, "burst must queue");
    }

    #[test]
    fn bank_contention_queues_only_when_enabled() {
        // Disabled (default): two same-bank misses at the same cycle
        // see identical latency.
        let mut m = sys();
        let a1 = m.load(C0, LineAddr(0x10_000), true, 0);
        let mut m2 = sys();
        let b1 = m2.load(C0, LineAddr(0x10_000), true, 0);
        assert_eq!(a1.complete_at, b1.complete_at);
        assert_eq!(m.stats().bank_queue_cycles, 0);

        // Enabled: simultaneous misses to the same bank serialize.
        let mut cfg = SystemConfig::default();
        cfg.mem.bank_occupancy_cycles = 4;
        let mut mc = MemorySystem::new(&cfg);
        // Same bank: line numbers congruent mod 8.
        let first = mc.load(C0, LineAddr(0x10_000), true, 0);
        let second = mc.load(C1, LineAddr(0x10_008), true, 0);
        assert!(
            second.complete_at > first.complete_at,
            "second same-bank miss queues behind the first"
        );
        assert_eq!(mc.stats().bank_queue_cycles, 4, "one occupancy of queueing");
        // Different bank: no bank queueing accrues (DRAM bandwidth
        // queueing is accounted separately).
        let before = mc.stats().bank_queue_cycles;
        mc.load(C2, LineAddr(0x10_001), true, 0);
        assert_eq!(mc.stats().bank_queue_cycles, before);
    }

    #[test]
    fn reset_stats_keeps_cache_state() {
        let mut m = sys();
        m.load(C0, L, true, 0);
        m.reset_stats();
        assert_eq!(m.stats().dram_reads, 0);
        let a = m.load(C0, L, true, 1000);
        assert_eq!(a.source, Source::L1, "cache state survived the reset");
    }
}
