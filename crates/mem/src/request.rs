//! Request/response types exchanged between cores and the memory
//! system.

use mmm_types::{Cycle, LineAddr, VcpuId};

/// A version token: the stand-in for a line's data value.
///
/// Tokens are equal exactly when the bytes would be equal in a
/// functional simulation of the redundant pair: the same dynamic store
/// of the same software thread produces the same token on the vocal
/// and the mute core, while a store by any other thread produces a
/// different token.
pub type VersionToken = u64;

/// Computes the version token for the `seq`-th dynamic instruction of
/// `vcpu` storing to `line`.
///
/// Uses a strong 64-bit mix (SplitMix64 finalizer) so distinct inputs
/// collide with negligible probability.
#[inline]
pub fn store_token(vcpu: VcpuId, line: LineAddr, seq: u64) -> VersionToken {
    let mut x = (vcpu.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(line.0)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(seq);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The token of a line never written since simulation start ("initial
/// memory image"): a pure function of the address so that vocal and
/// mute observe identical tokens for untouched memory.
#[inline]
pub fn initial_token(line: LineAddr) -> VersionToken {
    line.0.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1
}

/// Where a request was ultimately serviced from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Source {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit (2-hop).
    L3,
    /// Cache-to-cache transfer from another core's L2 (3-hop).
    CacheToCache,
    /// Off-chip DRAM.
    Dram,
}

/// Completion record for one memory request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the requested data is usable.
    pub complete_at: Cycle,
    /// Version token observed (meaningful for loads).
    pub version: VersionToken,
    /// Service point.
    pub source: Source,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_dynamic_store_same_token() {
        let a = store_token(VcpuId(3), LineAddr(0x1000), 77);
        let b = store_token(VcpuId(3), LineAddr(0x1000), 77);
        assert_eq!(a, b);
    }

    #[test]
    fn different_thread_or_seq_different_token() {
        let base = store_token(VcpuId(3), LineAddr(0x1000), 77);
        assert_ne!(base, store_token(VcpuId(4), LineAddr(0x1000), 77));
        assert_ne!(base, store_token(VcpuId(3), LineAddr(0x1001), 77));
        assert_ne!(base, store_token(VcpuId(3), LineAddr(0x1000), 78));
    }

    #[test]
    fn initial_tokens_are_stable_and_distinct() {
        assert_eq!(initial_token(LineAddr(5)), initial_token(LineAddr(5)));
        assert_ne!(initial_token(LineAddr(5)), initial_token(LineAddr(6)));
    }

    #[test]
    fn token_collisions_are_rare() {
        let mut seen = std::collections::HashSet::new();
        for seq in 0..10_000u64 {
            assert!(seen.insert(store_token(VcpuId(1), LineAddr(42), seq)));
        }
    }
}
