//! Lossless metrics serialization for cross-run aggregation.
//!
//! [`crate::MetricsRegistry::to_json`] is a *summary* export: it
//! collapses histograms to count/mean/max/percentiles, which cannot
//! be merged after the fact. The campaign engine needs the opposite:
//! per-cell metrics checkpointed to disk, reloaded in a later process,
//! and merged into a cross-run aggregate that is **byte-identical** to
//! the aggregate an uninterrupted run would have produced. This module
//! provides that round trip:
//!
//! * counters serialize as integers;
//! * gauges and [`RunningStat`]s serialize their exact `f64` state
//!   (Rust's shortest-roundtrip float rendering parses back to the
//!   same bits);
//! * [`Log2Histogram`]s serialize their sparse bucket counts plus the
//!   exact sum (a decimal string — the sum is a `u128`) and max.
//!
//! `registry_from_json(registry_to_json(&m))` reconstructs a registry
//! that merges bit-identically to `m`.

use mmm_types::stats::{Log2Histogram, RunningStat};

use crate::json::Json;
use crate::metrics::MetricsRegistry;

/// Serializes a histogram's full state (sparse buckets, exact sum,
/// max) — mergeable after [`histogram_from_json`], unlike the summary
/// form in [`MetricsRegistry::to_json`].
pub fn histogram_to_json(h: &Log2Histogram) -> Json {
    let buckets = Json::Arr(
        h.bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::U64(i as u64), Json::U64(c)]))
            .collect(),
    );
    Json::obj([
        ("buckets", buckets),
        ("sum", Json::str(h.sum().to_string())),
        ("max", Json::U64(h.max())),
    ])
}

/// Rebuilds a histogram serialized by [`histogram_to_json`].
pub fn histogram_from_json(v: &Json) -> Result<Log2Histogram, String> {
    let buckets = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram has no buckets array")?;
    let sparse: Vec<(usize, u64)> = buckets
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().ok_or("bucket entry is not a pair")?;
            match pair {
                [i, c] => Ok((
                    i.as_u64().ok_or("bucket index is not an integer")? as usize,
                    c.as_u64().ok_or("bucket count is not an integer")?,
                )),
                _ => Err("bucket entry is not a pair".to_string()),
            }
        })
        .collect::<Result<_, String>>()?;
    let sum: u128 = v
        .get("sum")
        .and_then(Json::as_str)
        .ok_or("histogram has no sum")?
        .parse()
        .map_err(|_| "histogram sum is not an unsigned decimal".to_string())?;
    let max = v
        .get("max")
        .and_then(Json::as_u64)
        .ok_or("histogram has no max")?;
    Log2Histogram::from_parts(&sparse, sum, max)
        .ok_or_else(|| "histogram bucket index out of range".to_string())
}

/// Serializes a running stat's full state (`n`, `mean`, `m2`).
pub fn stat_to_json(s: &RunningStat) -> Json {
    Json::obj([
        ("n", Json::U64(s.count())),
        ("mean", Json::F64(s.mean())),
        ("m2", Json::F64(s.m2())),
    ])
}

/// Rebuilds a running stat serialized by [`stat_to_json`].
pub fn stat_from_json(v: &Json) -> Result<RunningStat, String> {
    let n = v.get("n").and_then(Json::as_u64).ok_or("stat has no n")?;
    let mean = v
        .get("mean")
        .and_then(Json::as_f64)
        .ok_or("stat has no mean")?;
    let m2 = v.get("m2").and_then(Json::as_f64).ok_or("stat has no m2")?;
    Ok(RunningStat::from_parts(n, mean, m2))
}

/// Serializes a whole registry losslessly (the mergeable counterpart
/// of [`MetricsRegistry::to_json`]). Keys iterate in sorted order, so
/// the rendering is deterministic.
pub fn registry_to_json(m: &MetricsRegistry) -> Json {
    let counters = Json::Obj(
        m.counters()
            .map(|(k, v)| (k.to_string(), Json::U64(v)))
            .collect(),
    );
    let gauges = Json::Obj(
        m.gauges()
            .map(|(k, v)| (k.to_string(), Json::F64(v)))
            .collect(),
    );
    let histograms = Json::Obj(
        m.histograms()
            .map(|(k, h)| (k.to_string(), histogram_to_json(h)))
            .collect(),
    );
    let stats = Json::Obj(
        m.stats_iter()
            .map(|(k, s)| (k.to_string(), stat_to_json(s)))
            .collect(),
    );
    Json::obj([
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("stats", stats),
    ])
}

/// Rebuilds a registry serialized by [`registry_to_json`]. The result
/// merges bit-identically to the original registry.
pub fn registry_from_json(v: &Json) -> Result<MetricsRegistry, String> {
    let mut m = MetricsRegistry::new();
    for (k, c) in v.get("counters").and_then(Json::as_obj).unwrap_or(&[]) {
        m.count(
            k,
            c.as_u64()
                .ok_or_else(|| format!("counter {k} is not an integer"))?,
        );
    }
    for (k, g) in v.get("gauges").and_then(Json::as_obj).unwrap_or(&[]) {
        m.gauge(
            k,
            g.as_f64()
                .ok_or_else(|| format!("gauge {k} is not a number"))?,
        );
    }
    for (k, h) in v.get("histograms").and_then(Json::as_obj).unwrap_or(&[]) {
        let h = histogram_from_json(h).map_err(|e| format!("histogram {k}: {e}"))?;
        m.merge_histogram(k, &h);
    }
    for (k, s) in v.get("stats").and_then(Json::as_obj).unwrap_or(&[]) {
        let s = stat_from_json(s).map_err(|e| format!("stat {k}: {e}"))?;
        m.merge_stat(k, &s);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.count("core.commits", 123_456_789);
        m.count("mem.l1d_hits", 7);
        m.gauge("run.avg_user_ipc", 0.123456789012345);
        m.gauge("run.negative", -2.5);
        for v in [0u64, 1, 5, 900, 1 << 40] {
            m.observe("latency", v);
        }
        let mut s = RunningStat::new();
        for x in [1.0, 2.5, -3.25] {
            s.push(x);
        }
        m.merge_stat("transition.enter", &s);
        m
    }

    #[test]
    fn registry_round_trips_losslessly() {
        let m = sample_registry();
        let rendered = registry_to_json(&m).render();
        let parsed = Json::parse(&rendered).expect("parses");
        let rebuilt = registry_from_json(&parsed).expect("rebuilds");
        // Byte-identical re-rendering is the property resume relies on.
        assert_eq!(registry_to_json(&rebuilt).render(), rendered);
        // And the rebuilt registry merges exactly like the original.
        let mut a = sample_registry();
        let mut b = sample_registry();
        a.merge(&m);
        b.merge(&rebuilt);
        assert_eq!(registry_to_json(&a).render(), registry_to_json(&b).render());
    }

    #[test]
    fn split_merge_equals_whole_merge() {
        // Checkpoint two cells separately, reload, merge — identical
        // to merging the live registries.
        let mut cell_a = MetricsRegistry::new();
        cell_a.count("c", 3);
        cell_a.observe("h", 17);
        let mut cell_b = MetricsRegistry::new();
        cell_b.count("c", 4);
        cell_b.observe("h", 90000);

        let mut live = MetricsRegistry::new();
        live.merge(&cell_a);
        live.merge(&cell_b);

        let mut reloaded = MetricsRegistry::new();
        for cell in [&cell_a, &cell_b] {
            let text = registry_to_json(cell).render();
            let back = registry_from_json(&Json::parse(&text).unwrap()).unwrap();
            reloaded.merge(&back);
        }
        assert_eq!(
            registry_to_json(&reloaded).render(),
            registry_to_json(&live).render()
        );
    }

    #[test]
    fn extreme_floats_and_sums_survive() {
        let mut m = MetricsRegistry::new();
        m.gauge("tiny", 5e-324); // smallest subnormal
        m.gauge("big", 1.7976931348623157e308);
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        m.merge_histogram("huge", &h); // sum exceeds u64
        let text = registry_to_json(&m).render();
        let back = registry_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(
            back.gauge_value("tiny").unwrap().to_bits(),
            5e-324f64.to_bits()
        );
        assert_eq!(back.histogram("huge").unwrap().sum(), 2 * u64::MAX as u128);
        assert_eq!(registry_to_json(&back).render(), text);
    }

    #[test]
    fn malformed_aggregates_are_rejected() {
        for text in [
            r#"{"histograms":{"h":{"buckets":[[99,1]],"sum":"0","max":0}}}"#,
            r#"{"histograms":{"h":{"buckets":[[0,1]],"sum":"abc","max":0}}}"#,
            r#"{"histograms":{"h":{"buckets":[1,2],"sum":"0","max":0}}}"#,
            r#"{"counters":{"c":"text"}}"#,
            r#"{"stats":{"s":{"n":1}}}"#,
        ] {
            let v = Json::parse(text).unwrap();
            assert!(registry_from_json(&v).is_err(), "{text} must be rejected");
        }
    }
}
