//! Self-profiler: phase-level host-cost attribution for the hot loop.
//!
//! The simulator can observe everything about the *simulated* machine
//! (event tracing, metrics, the flight recorder) but, before this
//! module, nothing about its *own* execution cost. The [`Profiler`]
//! closes that gap: scoped timers attribute host wall-time to named
//! [`ProfPhase`]s of the hot loop (op generation, core
//! dispatch/commit, memory access, pair service, sampler service,
//! event-wheel bookkeeping, fast-forward jumps), and a set of
//! wheel/skip introspection counters records where the cycle-skipping
//! machinery actually spends its jumps.
//!
//! The handle follows the same discipline as [`crate::Tracer`] and
//! [`crate::Sampler`]: a cheap clonable `Option<Rc<RefCell<..>>>`
//! whose disabled form ([`Profiler::off`]) costs one branch per probe
//! — profiling is free when off, and a timing test enforces it. The
//! profiler only ever reads the host clock; it never touches
//! simulated state, so reports and metrics series stay bit-identical
//! with the profiler on or off.
//!
//! Time attribution is *exclusive*: entering a nested scope flushes
//! the elapsed time into the enclosing phase first, and dropping the
//! scope resumes it. Every nanosecond between [`Profiler::begin`] and
//! [`Profiler::end`] lands in exactly one phase, so phase shares sum
//! to exactly 100% of the measured window.
//!
//! ```
//! use mmm_trace::{ProfPhase, Profiler};
//!
//! let p = Profiler::enabled();
//! p.begin();
//! {
//!     let _core = p.enter(ProfPhase::Core);
//!     let _mem = p.enter(ProfPhase::Mem); // Core's clock pauses here
//! }
//! p.end();
//! let report = p.report().unwrap();
//! assert_eq!(report.total_nanos, report.phase_nanos.iter().map(|(_, n)| n).sum());
//!
//! let silent = Profiler::off(); // costs one branch per probe
//! let _s = silent.enter(ProfPhase::OpGen);
//! assert!(silent.report().is_none());
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use mmm_types::stats::Log2Histogram;

use crate::json::Json;

/// Number of distinct [`ProfPhase`]s.
pub const PROF_PHASES: usize = 10;

/// Number of event-wheel wake-source slots tracked by the
/// introspection counters (mirrors the wheel's slot count).
pub const WAKE_SLOTS: usize = 4;

/// Labels for the wake-source slots, indexed by the wheel's
/// `WakeSource` discriminant.
pub const WAKE_SLOT_LABELS: [&str; WAKE_SLOTS] = ["slice", "sample", "fault", "single_os_poll"];

/// A named phase of the simulator hot loop that host time is
/// attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ProfPhase {
    /// Synthetic op generation (`OpStream::next_op`).
    OpGen = 0,
    /// Core dispatch/commit work inside `Core::tick` (minus nested
    /// phases, which subtract automatically).
    Core = 1,
    /// Memory-system accesses (ifetch, load, store acquire/commit).
    Mem = 2,
    /// DMR pair service: fingerprint comparison, heals, reunion.
    Pair = 3,
    /// Flight-recorder sampler service (registry snapshot + deltas).
    Sampler = 4,
    /// Event-wheel bookkeeping: rescheduling the wake slots.
    Wheel = 5,
    /// Fast-forward jump computation at the bottom of the tick.
    FastForward = 6,
    /// Scheduler transitions: gang switches, overcommit rotation,
    /// single-OS polls, fault application.
    Sched = 7,
    /// Everything else inside the measured window (loop glue).
    Other = 8,
    /// Per-cycle core-loop bookkeeping: wake-hint scanning, occupancy
    /// accounting, and the pair service-flag sweep (minus the nested
    /// core/mem/op-gen/pair phases, which subtract automatically).
    CoreLoop = 9,
}

impl ProfPhase {
    /// All phases, in fixed export order.
    pub const ALL: [ProfPhase; PROF_PHASES] = [
        ProfPhase::OpGen,
        ProfPhase::Core,
        ProfPhase::Mem,
        ProfPhase::Pair,
        ProfPhase::Sampler,
        ProfPhase::Wheel,
        ProfPhase::FastForward,
        ProfPhase::Sched,
        ProfPhase::CoreLoop,
        ProfPhase::Other,
    ];

    /// Stable snake_case label used in every export format.
    pub fn label(self) -> &'static str {
        match self {
            ProfPhase::OpGen => "op_gen",
            ProfPhase::Core => "core_dispatch_commit",
            ProfPhase::Mem => "mem_access",
            ProfPhase::Pair => "pair_service",
            ProfPhase::Sampler => "sampler_service",
            ProfPhase::Wheel => "wheel_bookkeeping",
            ProfPhase::FastForward => "fast_forward",
            ProfPhase::Sched => "sched_transition",
            ProfPhase::CoreLoop => "core_loop_bookkeeping",
            ProfPhase::Other => "other",
        }
    }
}

/// Shared profiler state behind the handle.
#[derive(Debug)]
struct ProfCore {
    /// True between `begin()` and `end()`; probes outside the window
    /// (e.g. during warm-up) record nothing.
    running: bool,
    /// Phase currently accumulating time.
    current: ProfPhase,
    /// Host instant the current phase started accumulating.
    since: Instant,
    /// Enclosing phases suspended by nested scopes.
    stack: Vec<ProfPhase>,
    /// Exclusive nanoseconds per phase, indexed by discriminant.
    nanos: [u64; PROF_PHASES],
    /// Per-slot wake-source hit counts (wheel introspection).
    wake_hits: [u64; WAKE_SLOTS],
    /// Log2 histogram of fast-forward jump lengths (> 1 cycle).
    jump_lengths: Log2Histogram,
    /// Log2 histogram of awake-core counts per executed tick.
    occupancy: Log2Histogram,
    /// Executed ticks inside the window.
    ticks: u64,
    /// Simulated cycles advanced inside the window.
    advanced_cycles: u64,
    /// Cycles covered by fast-forward jumps instead of ticks.
    skipped_cycles: u64,
}

impl ProfCore {
    fn new() -> Self {
        ProfCore {
            running: false,
            current: ProfPhase::Other,
            since: Instant::now(),
            stack: Vec::with_capacity(8),
            nanos: [0; PROF_PHASES],
            wake_hits: [0; WAKE_SLOTS],
            jump_lengths: Log2Histogram::new(),
            occupancy: Log2Histogram::new(),
            ticks: 0,
            advanced_cycles: 0,
            skipped_cycles: 0,
        }
    }

    /// Flushes host time elapsed since `since` into the current
    /// phase, restarting the clock at `now`.
    fn flush(&mut self, now: Instant) {
        let dt = now.duration_since(self.since).as_nanos() as u64;
        self.nanos[self.current as usize] += dt;
        self.since = now;
    }
}

/// Cheap clonable handle to the self-profiler.
///
/// The default ([`Profiler::off`]) is disabled and costs exactly one
/// branch per probe. Clones share the same recording, so the handle
/// can be distributed to every component that hosts a probe.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    /// Shared state; `None` when disabled.
    inner: Option<Rc<RefCell<ProfCore>>>,
}

impl Profiler {
    /// A disabled profiler: every probe is a single branch.
    pub fn off() -> Self {
        Profiler { inner: None }
    }

    /// An enabled profiler. Recording starts at [`Profiler::begin`];
    /// probes before that (e.g. during warm-up) record nothing.
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(Rc::new(RefCell::new(ProfCore::new()))),
        }
    }

    /// Whether this handle can record at all (begin may not have been
    /// called yet).
    #[inline]
    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens the measured window: clears any previous recording and
    /// starts attributing time to [`ProfPhase::Other`]. Call after
    /// the warm-up reset so warm-up cost is excluded.
    pub fn begin(&self) {
        let Some(inner) = &self.inner else { return };
        let mut c = inner.borrow_mut();
        *c = ProfCore::new();
        c.running = true;
        c.since = Instant::now();
    }

    /// Closes the measured window, flushing the tail of the current
    /// phase. Probes after this record nothing; the recording stays
    /// available through [`Profiler::report`].
    pub fn end(&self) {
        let Some(inner) = &self.inner else { return };
        let mut c = inner.borrow_mut();
        if !c.running {
            return;
        }
        c.flush(Instant::now());
        c.running = false;
    }

    /// Enters `phase`, suspending the enclosing phase's clock until
    /// the returned guard drops. One branch when the profiler is off.
    #[inline]
    pub fn enter(&self, phase: ProfPhase) -> ProfScope {
        let Some(inner) = &self.inner else {
            return ProfScope { inner: None };
        };
        {
            let mut c = inner.borrow_mut();
            if !c.running {
                return ProfScope { inner: None };
            }
            c.flush(Instant::now());
            let prev = c.current;
            c.stack.push(prev);
            c.current = phase;
        }
        ProfScope {
            inner: Some(Rc::clone(inner)),
        }
    }

    /// Records a wake-source hit for wheel slot `slot` (the
    /// `WakeSource` discriminant). Out-of-range slots are ignored.
    #[inline]
    pub fn wake_hit(&self, slot: usize) {
        let Some(inner) = &self.inner else { return };
        let mut c = inner.borrow_mut();
        if c.running && slot < WAKE_SLOTS {
            c.wake_hits[slot] += 1;
        }
    }

    /// Records one executed tick that advanced simulated time by
    /// `advance` cycles. Advances beyond one cycle are fast-forward
    /// jumps: their length enters the log2 histogram and the cycles
    /// they covered count as skipped.
    #[inline]
    pub fn advance(&self, advance: u64) {
        let Some(inner) = &self.inner else { return };
        let mut c = inner.borrow_mut();
        if !c.running {
            return;
        }
        c.ticks += 1;
        c.advanced_cycles += advance;
        if advance > 1 {
            c.skipped_cycles += advance - 1;
            c.jump_lengths.record(advance);
        }
    }

    /// Records how many cores were actually ticked (awake) this tick.
    #[inline]
    pub fn occupancy(&self, awake: u64) {
        let Some(inner) = &self.inner else { return };
        let mut c = inner.borrow_mut();
        if c.running {
            c.occupancy.record(awake);
        }
    }

    /// Snapshot of the recording, or `None` when the profiler is off.
    /// Callable mid-window (flushes up to now) or after
    /// [`Profiler::end`].
    pub fn report(&self) -> Option<ProfileReport> {
        let inner = self.inner.as_ref()?;
        let mut c = inner.borrow_mut();
        if c.running {
            c.flush(Instant::now());
        }
        let phase_nanos: Vec<(&'static str, u64)> = ProfPhase::ALL
            .iter()
            .map(|p| (p.label(), c.nanos[*p as usize]))
            .collect();
        Some(ProfileReport {
            total_nanos: c.nanos.iter().sum(),
            phase_nanos,
            wake_hits: c.wake_hits,
            jump_lengths: c.jump_lengths.clone(),
            occupancy: c.occupancy.clone(),
            ticks: c.ticks,
            advanced_cycles: c.advanced_cycles,
            skipped_cycles: c.skipped_cycles,
        })
    }
}

/// Guard returned by [`Profiler::enter`]; restores the enclosing
/// phase's clock on drop.
#[derive(Debug)]
pub struct ProfScope {
    /// Shared state; `None` for the no-op guard of a disabled (or
    /// not-yet-begun) profiler.
    inner: Option<Rc<RefCell<ProfCore>>>,
}

impl Drop for ProfScope {
    fn drop(&mut self) {
        let Some(inner) = &self.inner else { return };
        let mut c = inner.borrow_mut();
        c.flush(Instant::now());
        if let Some(prev) = c.stack.pop() {
            c.current = prev;
        }
    }
}

/// Finished profile: exclusive time per phase plus wheel/skip
/// introspection, exportable as a JSON section or a speedscope file.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Total measured nanoseconds (= sum of all phase nanos; the
    /// window tiles exactly, so shares sum to 100%).
    pub total_nanos: u64,
    /// Exclusive nanoseconds per phase, in [`ProfPhase::ALL`] order.
    pub phase_nanos: Vec<(&'static str, u64)>,
    /// Per-slot wake-source hit counts, indexed like
    /// [`WAKE_SLOT_LABELS`].
    pub wake_hits: [u64; WAKE_SLOTS],
    /// Log2 histogram of fast-forward jump lengths.
    pub jump_lengths: Log2Histogram,
    /// Log2 histogram of awake cores per executed tick.
    pub occupancy: Log2Histogram,
    /// Executed ticks inside the window.
    pub ticks: u64,
    /// Simulated cycles advanced inside the window.
    pub advanced_cycles: u64,
    /// Cycles covered by fast-forward jumps instead of ticks.
    pub skipped_cycles: u64,
}

impl ProfileReport {
    /// Share of total time spent in `label`, in percent (0 when the
    /// window is empty).
    pub fn share_pct(&self, label: &str) -> f64 {
        if self.total_nanos == 0 {
            return 0.0;
        }
        self.phase_nanos
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, n)| 100.0 * *n as f64 / self.total_nanos as f64)
            .unwrap_or(0.0)
    }

    /// Fraction of advanced cycles covered by jumps instead of ticks
    /// (0 when nothing advanced).
    pub fn skip_efficiency(&self) -> f64 {
        if self.advanced_cycles == 0 {
            return 0.0;
        }
        self.skipped_cycles as f64 / self.advanced_cycles as f64
    }

    fn histogram_json(h: &Log2Histogram) -> Json {
        Json::obj([
            ("count", Json::U64(h.count())),
            ("mean", Json::F64(h.mean())),
            ("max", Json::U64(h.max())),
            ("p50", Json::U64(h.percentile(50.0))),
            ("p99", Json::U64(h.percentile(99.0))),
        ])
    }

    /// The `profile` section embedded in `BENCH_*.json`: phase nanos
    /// and shares plus the wheel introspection block
    /// (`validate_bench.py` checks this shape).
    pub fn to_json(&self) -> Json {
        let nanos: Vec<(&str, Json)> = self
            .phase_nanos
            .iter()
            .map(|(l, n)| (*l, Json::U64(*n)))
            .collect();
        let shares: Vec<(&str, Json)> = self
            .phase_nanos
            .iter()
            .map(|(l, _)| (*l, Json::F64(self.share_pct(l))))
            .collect();
        let hits: Vec<(&str, Json)> = WAKE_SLOT_LABELS
            .iter()
            .zip(self.wake_hits.iter())
            .map(|(l, n)| (*l, Json::U64(*n)))
            .collect();
        Json::obj([
            ("total_nanos", Json::U64(self.total_nanos)),
            ("phase_nanos", Json::obj(nanos)),
            ("phase_shares", Json::obj(shares)),
            (
                "wheel",
                Json::obj([
                    ("wake_hits", Json::obj(hits)),
                    ("jump_lengths", Self::histogram_json(&self.jump_lengths)),
                    ("occupancy", Self::histogram_json(&self.occupancy)),
                    ("ticks", Json::U64(self.ticks)),
                    ("advanced_cycles", Json::U64(self.advanced_cycles)),
                    ("skipped_cycles", Json::U64(self.skipped_cycles)),
                    ("skip_efficiency", Json::F64(self.skip_efficiency())),
                ]),
            ),
        ])
    }

    /// Renders the profile in the speedscope JSON file format
    /// (`"type": "sampled"`, one single-frame sample per phase,
    /// weights in nanoseconds). Open at <https://www.speedscope.app>
    /// or with `speedscope <file>`.
    pub fn to_speedscope(&self, name: &str) -> String {
        let frames: Vec<Json> = self
            .phase_nanos
            .iter()
            .map(|(l, _)| Json::obj([("name", Json::str(*l))]))
            .collect();
        let mut samples = Vec::new();
        let mut weights = Vec::new();
        for (i, (_, n)) in self.phase_nanos.iter().enumerate() {
            if *n > 0 {
                samples.push(Json::Arr(vec![Json::U64(i as u64)]));
                weights.push(Json::U64(*n));
            }
        }
        Json::obj([
            (
                "$schema",
                Json::str("https://www.speedscope.app/file-format-schema.json"),
            ),
            ("name", Json::str(name)),
            ("activeProfileIndex", Json::U64(0)),
            ("exporter", Json::str("mmm-profile")),
            ("shared", Json::obj([("frames", Json::Arr(frames))])),
            (
                "profiles",
                Json::Arr(vec![Json::obj([
                    ("type", Json::str("sampled")),
                    ("name", Json::str(name)),
                    ("unit", Json::str("nanoseconds")),
                    ("startValue", Json::U64(0)),
                    ("endValue", Json::U64(self.total_nanos)),
                    ("samples", Json::Arr(samples)),
                    ("weights", Json::Arr(weights)),
                ])]),
            ),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Burn a little host time so a phase accumulates nonzero nanos.
    fn spin() -> u64 {
        let mut acc = 0u64;
        for i in 0..20_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(acc)
    }

    #[test]
    fn off_profiler_is_inert() {
        let p = Profiler::off();
        p.begin();
        {
            let _s = p.enter(ProfPhase::Core);
            spin();
        }
        p.advance(100);
        p.wake_hit(0);
        p.occupancy(16);
        p.end();
        assert!(!p.is_on());
        assert!(p.report().is_none());
    }

    #[test]
    fn probes_before_begin_record_nothing() {
        let p = Profiler::enabled();
        {
            let _s = p.enter(ProfPhase::OpGen);
            spin();
        }
        p.advance(50);
        p.begin();
        p.end();
        let r = p.report().unwrap();
        assert_eq!(
            r.phase_nanos
                .iter()
                .find(|(l, _)| *l == "op_gen")
                .unwrap()
                .1,
            0
        );
        assert_eq!(r.ticks, 0);
        assert_eq!(r.advanced_cycles, 0);
    }

    #[test]
    fn nested_scopes_attribute_exclusive_time_summing_to_total() {
        let p = Profiler::enabled();
        p.begin();
        {
            let _core = p.enter(ProfPhase::Core);
            spin();
            {
                let _mem = p.enter(ProfPhase::Mem);
                spin();
            }
            spin();
        }
        p.end();
        let r = p.report().unwrap();
        let core = r
            .phase_nanos
            .iter()
            .find(|(l, _)| *l == "core_dispatch_commit")
            .unwrap()
            .1;
        let mem = r
            .phase_nanos
            .iter()
            .find(|(l, _)| *l == "mem_access")
            .unwrap()
            .1;
        assert!(core > 0, "core phase got time");
        assert!(mem > 0, "nested mem phase got time");
        let sum: u64 = r.phase_nanos.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, r.total_nanos, "phases tile the window exactly");
        let share_sum: f64 = ProfPhase::ALL
            .iter()
            .map(|ph| r.share_pct(ph.label()))
            .sum();
        assert!(
            (share_sum - 100.0).abs() < 1e-9,
            "shares sum to 100, got {share_sum}"
        );
    }

    #[test]
    fn introspection_counters_record() {
        let p = Profiler::enabled();
        p.begin();
        p.wake_hit(0);
        p.wake_hit(0);
        p.wake_hit(3);
        p.wake_hit(99); // out of range: ignored
        p.advance(1); // plain tick, no jump
        p.advance(64); // 64-cycle fast-forward
        p.occupancy(4);
        p.end();
        let r = p.report().unwrap();
        assert_eq!(r.wake_hits, [2, 0, 0, 1]);
        assert_eq!(r.ticks, 2);
        assert_eq!(r.advanced_cycles, 65);
        assert_eq!(r.skipped_cycles, 63);
        assert_eq!(r.jump_lengths.count(), 1);
        assert_eq!(r.jump_lengths.max(), 64);
        assert_eq!(r.occupancy.count(), 1);
        assert!((r.skip_efficiency() - 63.0 / 65.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_the_recording() {
        let p = Profiler::enabled();
        let q = p.clone();
        p.begin();
        {
            let _s = q.enter(ProfPhase::Pair);
            spin();
        }
        p.end();
        let r = p.report().unwrap();
        assert!(
            r.phase_nanos
                .iter()
                .find(|(l, _)| *l == "pair_service")
                .unwrap()
                .1
                > 0
        );
    }

    #[test]
    fn begin_resets_a_previous_recording() {
        let p = Profiler::enabled();
        p.begin();
        p.advance(10);
        p.end();
        p.begin();
        p.end();
        let r = p.report().unwrap();
        assert_eq!(r.ticks, 0, "begin() discards the previous window");
    }

    #[test]
    fn json_section_has_the_expected_shape() {
        let p = Profiler::enabled();
        p.begin();
        {
            let _s = p.enter(ProfPhase::OpGen);
            spin();
        }
        p.advance(8);
        p.end();
        let j = p.report().unwrap().to_json();
        let parsed = Json::parse(&j.render()).expect("profile json parses");
        assert!(parsed.get("total_nanos").and_then(Json::as_u64).unwrap() > 0);
        let shares = parsed.get("phase_shares").expect("phase_shares");
        let sum: f64 = ProfPhase::ALL
            .iter()
            .map(|ph| shares.get(ph.label()).and_then(Json::as_f64).unwrap())
            .sum();
        assert!((sum - 100.0).abs() < 1e-6, "shares sum to ~100, got {sum}");
        let wheel = parsed.get("wheel").expect("wheel block");
        assert_eq!(wheel.get("advanced_cycles").and_then(Json::as_u64), Some(8));
        assert!(wheel
            .get("skip_efficiency")
            .and_then(Json::as_f64)
            .is_some());
    }

    #[test]
    fn speedscope_export_parses_and_names_the_phases() {
        let p = Profiler::enabled();
        p.begin();
        {
            let _s = p.enter(ProfPhase::Mem);
            spin();
        }
        p.end();
        let text = p.report().unwrap().to_speedscope("unit-test");
        let parsed = Json::parse(&text).expect("speedscope json parses");
        assert_eq!(
            parsed.get("$schema").and_then(Json::as_str),
            Some("https://www.speedscope.app/file-format-schema.json")
        );
        let frames = parsed
            .get("shared")
            .and_then(|s| s.get("frames"))
            .and_then(Json::as_arr)
            .expect("frames");
        assert_eq!(frames.len(), PROF_PHASES);
        assert!(frames
            .iter()
            .any(|f| f.get("name").and_then(Json::as_str) == Some("mem_access")));
        let profile = parsed
            .get("profiles")
            .and_then(Json::as_arr)
            .and_then(|a| a.first())
            .expect("one profile");
        assert_eq!(profile.get("type").and_then(Json::as_str), Some("sampled"));
        let samples = profile.get("samples").and_then(Json::as_arr).unwrap();
        let weights = profile.get("weights").and_then(Json::as_arr).unwrap();
        assert_eq!(samples.len(), weights.len());
        assert!(!samples.is_empty(), "nonzero phases exported");
    }
}
