//! A unified registry of named counters, gauges, and histograms.
//!
//! Every component's statistics export into one flat namespace
//! (`core.user_commits`, `pab.violations`, `transition.enter_dmr`,
//! ...), replacing the ad-hoc per-struct merging the report path used
//! to hand-roll. `BTreeMap` keys make iteration — and therefore JSON
//! output — deterministic.

use std::collections::BTreeMap;

use mmm_types::stats::{Log2Histogram, RunningStat};

use crate::json::Json;

/// A flat, name-keyed registry of metrics.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Log2Histogram>,
    stats: BTreeMap<String, RunningStat>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at 0).
    pub fn count(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Merges a whole histogram into the named histogram.
    pub fn merge_histogram(&mut self, name: &str, h: &Log2Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Merges a running mean/variance accumulator under `name`.
    pub fn merge_stat(&mut self, name: &str, s: &RunningStat) {
        self.stats.entry(name.to_string()).or_default().merge(s);
    }

    /// The named counter's value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// The named running stat, if any samples were merged.
    pub fn stat(&self, name: &str) -> Option<&RunningStat> {
        self.stats.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Log2Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// All running stats in name order.
    pub fn stats_iter(&self) -> impl Iterator<Item = (&str, &RunningStat)> {
        self.stats.iter().map(|(k, s)| (k.as_str(), s))
    }

    /// Absorbs another registry: counters add, gauges overwrite,
    /// histograms and stats merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            self.gauges.insert(k.clone(), v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        for (k, s) in &other.stats {
            self.stats.entry(k.clone()).or_default().merge(s);
        }
    }

    /// The registry as one JSON object, keys sorted, suitable for a
    /// JSONL line or an export file.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::U64(v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Json::F64(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count", Json::U64(h.count())),
                            ("mean", Json::F64(h.mean())),
                            ("max", Json::U64(h.max())),
                            ("p50", Json::U64(h.percentile(50.0))),
                            ("p99", Json::U64(h.percentile(99.0))),
                        ]),
                    )
                })
                .collect(),
        );
        let stats = Json::Obj(
            self.stats
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count", Json::U64(s.count())),
                            ("mean", Json::F64(s.mean())),
                            ("stddev", Json::F64(s.stddev())),
                            ("ci95", Json::F64(s.ci95_half_width())),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("stats", stats),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.count("a.x", 2);
        m.count("a.x", 3);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = MetricsRegistry::new();
        a.count("c", 1);
        a.observe("h", 4);
        let mut sa = RunningStat::new();
        sa.push(1.0);
        a.merge_stat("s", &sa);

        let mut b = MetricsRegistry::new();
        b.count("c", 2);
        b.gauge("g", 0.5);
        b.observe("h", 8);
        let mut sb = RunningStat::new();
        sb.push(3.0);
        b.merge_stat("s", &sb);

        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge_value("g"), Some(0.5));
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.stat("s").unwrap().count(), 2);
        assert!((a.stat("s").unwrap().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.count("z.last", 1);
        m.count("a.first", 2);
        m.gauge("mid", 1.25);
        let s = m.to_json().render();
        assert!(s.find("a.first").unwrap() < s.find("z.last").unwrap());
        assert_eq!(s, m.to_json().render(), "rendering must be stable");
        assert!(s.starts_with('{') && s.ends_with('}'));
    }
}
