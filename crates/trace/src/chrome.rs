//! Chrome trace-event export.
//!
//! Converts a recorded event stream into the Chrome trace-event JSON
//! format, viewable in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Each physical core gets two tracks: a *mode*
//! track showing what the core was doing (idle, performance-mode VCPU,
//! vocal/mute half of a DMR pair, or mid-transition), and an *events*
//! track carrying instants (faults, PAB denials, check mismatches,
//! phase boundaries) and serializing-stall slices. Timestamps are in
//! cycles; the `displayTimeUnit` is nanoseconds, so one "ns" on screen
//! is one simulated cycle.

use mmm_types::CoreId;

use crate::event::{Event, SchedAction, TraceRecord};
use crate::forensics::{FaultRecord, FaultVerdict};
use crate::json::Json;
use crate::sampler::MetricsSeries;

/// Builds the full Chrome trace JSON document from a record stream.
///
/// `num_cores` fixes how many per-core tracks are named up front;
/// events for higher core ids still render, just without a pretty
/// thread name. `end` closes any still-open mode slice (pass the final
/// simulated cycle).
pub fn chrome_trace(records: &[TraceRecord], num_cores: usize, end: u64) -> String {
    render_trace(base_events(records, num_cores, end))
}

/// Like [`chrome_trace`], but appends the sampled metrics series as
/// Perfetto counter tracks (`"ph":"C"` events) after the base events,
/// so the per-core timelines are byte-identical to the plain export.
pub fn chrome_trace_with_counters(
    records: &[TraceRecord],
    num_cores: usize,
    end: u64,
    series: &MetricsSeries,
) -> String {
    let mut events = base_events(records, num_cores, end);
    events.extend(series.counter_events());
    render_trace(events)
}

/// Like [`chrome_trace_with_counters`], but additionally appends the
/// per-fault forensics spans ([`forensics_span_events`]) after the
/// counter tracks. With no records and an empty series this
/// degenerates byte-for-byte to [`chrome_trace`].
pub fn chrome_trace_full(
    records: &[TraceRecord],
    num_cores: usize,
    end: u64,
    series: &MetricsSeries,
    faults: &[FaultRecord],
) -> String {
    let mut events = base_events(records, num_cores, end);
    events.extend(series.counter_events());
    events.extend(forensics_span_events(faults, num_cores));
    render_trace(events)
}

/// Builds the per-fault forensics track: one async begin/end span per
/// injection record, from injection to verdict, colored by outcome
/// (detected green, masked grey, escaped red, pending orange). The
/// spans live on a dedicated "faults" thread after the per-core
/// tracks and are *appended* to a base trace by the export harness —
/// only when forensics is enabled — so the default trace document
/// stays byte-identical.
pub fn forensics_span_events(records: &[FaultRecord], num_cores: usize) -> Vec<Json> {
    if records.is_empty() {
        return Vec::new();
    }
    let tid = num_cores as u64 * 2;
    let mut events = Vec::with_capacity(records.len() * 2 + 1);
    events.push(meta_thread_name(tid, "faults"));
    for r in records {
        let cname = match &r.verdict {
            FaultVerdict::Detected { .. } => "good",
            FaultVerdict::Masked { .. } => "grey",
            FaultVerdict::Escaped { .. } => "terrible",
            FaultVerdict::Pending { .. } => "bad",
        };
        let name = format!("{} #{}", r.site, r.id);
        let common = |ph: &'static str, ts: u64| {
            Json::obj([
                ("name", Json::str(name.clone())),
                ("cat", Json::str("fault")),
                ("ph", Json::str(ph)),
                ("id", Json::U64(r.id)),
                ("pid", Json::U64(1)),
                ("tid", Json::U64(tid)),
                ("ts", Json::U64(ts)),
                ("cname", Json::str(cname)),
                (
                    "args",
                    Json::obj([
                        ("core", Json::U64(r.core.0 as u64)),
                        ("mode", Json::str(r.mode)),
                        ("verdict", Json::str(r.verdict.label())),
                    ]),
                ),
            ])
        };
        events.push(common("b", r.at));
        events.push(common("e", r.resolved_at().max(r.at)));
    }
    events
}

/// Wraps the event list in the trace-document envelope.
fn render_trace(events: Vec<Json>) -> String {
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::str("ns")),
    ])
    .render()
}

/// The per-core metadata, mode slices, and instant events shared by
/// both export flavors.
fn base_events(records: &[TraceRecord], num_cores: usize, end: u64) -> Vec<Json> {
    let mut events: Vec<Json> = Vec::with_capacity(records.len() + num_cores * 2 + 1);

    events.push(meta_process_name());
    for c in 0..num_cores {
        events.push(meta_thread_name(
            mode_tid(CoreId(c as u16)),
            &format!("C{c} mode"),
        ));
        events.push(meta_thread_name(
            event_tid(CoreId(c as u16)),
            &format!("C{c} events"),
        ));
    }

    // Per-core open mode slice: (name, start cycle).
    let mut open: Vec<Option<(String, u64)>> = vec![None; num_cores.max(16)];
    let close_and_open = |events: &mut Vec<Json>,
                          open: &mut Vec<Option<(String, u64)>>,
                          core: CoreId,
                          at: u64,
                          next: Option<String>| {
        let idx = core.index();
        if idx >= open.len() {
            open.resize(idx + 1, None);
        }
        if let Some((name, start)) = open[idx].take() {
            events.push(complete_slice(&name, mode_tid(core), start, at.max(start)));
        }
        open[idx] = next.map(|n| (n, at));
    };

    for rec in records {
        let at = rec.at;
        match &rec.event {
            Event::SchedDecision {
                action,
                core,
                partner,
                vcpu,
            } => {
                let vl = vcpu.map_or_else(|| "?".to_string(), |v| format!("V{}", v.0));
                match action {
                    SchedAction::InstallSolo => {
                        close_and_open(
                            &mut events,
                            &mut open,
                            *core,
                            at,
                            Some(format!("perf {vl}")),
                        );
                    }
                    SchedAction::InstallDmr => {
                        close_and_open(
                            &mut events,
                            &mut open,
                            *core,
                            at,
                            Some(format!("dmr-vocal {vl}")),
                        );
                        if let Some(mute) = partner {
                            close_and_open(
                                &mut events,
                                &mut open,
                                *mute,
                                at,
                                Some(format!("dmr-mute {vl}")),
                            );
                        }
                    }
                    SchedAction::EvictSolo => {
                        close_and_open(&mut events, &mut open, *core, at, None);
                    }
                    SchedAction::EvictDmr => {
                        close_and_open(&mut events, &mut open, *core, at, None);
                        if let Some(mute) = partner {
                            close_and_open(&mut events, &mut open, *mute, at, None);
                        }
                    }
                    SchedAction::GangSwitch
                    | SchedAction::OvercommitSwitch
                    | SchedAction::SingleOsPoll => {
                        events.push(instant(rec, event_tid(*core)));
                    }
                }
            }
            Event::ModeTransition { core, kind, done } => {
                events.push(Json::obj([
                    ("name", Json::str(kind.label())),
                    ("ph", Json::str("X")),
                    ("pid", Json::U64(1)),
                    ("tid", Json::U64(event_tid(*core))),
                    ("ts", Json::U64(at)),
                    ("dur", Json::U64(done.saturating_sub(at))),
                    ("args", rec.event.args()),
                ]));
            }
            Event::SiStall { core, cycles } => {
                events.push(Json::obj([
                    ("name", Json::str("si_stall")),
                    ("ph", Json::str("X")),
                    ("pid", Json::U64(1)),
                    ("tid", Json::U64(event_tid(*core))),
                    ("ts", Json::U64(at)),
                    ("dur", Json::U64(*cycles)),
                    ("args", rec.event.args()),
                ]));
            }
            other => {
                events.push(instant(rec, event_tid(other.core())));
            }
        }
    }

    // Close whatever is still running at the end of the run.
    for (idx, slot) in open.iter_mut().enumerate() {
        if let Some((name, start)) = slot.take() {
            let core = CoreId(idx as u16);
            events.push(complete_slice(&name, mode_tid(core), start, end.max(start)));
        }
    }

    events
}

/// The mode track's thread id for a core.
fn mode_tid(core: CoreId) -> u64 {
    core.0 as u64 * 2
}

/// The events track's thread id for a core.
fn event_tid(core: CoreId) -> u64 {
    core.0 as u64 * 2 + 1
}

fn meta_process_name() -> Json {
    Json::obj([
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::U64(1)),
        (
            "args",
            Json::obj([("name", Json::str("mixed-mode multicore"))]),
        ),
    ])
}

fn meta_thread_name(tid: u64, name: &str) -> Json {
    Json::obj([
        ("name", Json::str("thread_name")),
        ("ph", Json::str("M")),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid)),
        ("args", Json::obj([("name", Json::str(name))])),
    ])
}

fn complete_slice(name: &str, tid: u64, start: u64, end: u64) -> Json {
    Json::obj([
        ("name", Json::str(name)),
        ("ph", Json::str("X")),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid)),
        ("ts", Json::U64(start)),
        ("dur", Json::U64(end - start)),
    ])
}

fn instant(rec: &TraceRecord, tid: u64) -> Json {
    Json::obj([
        ("name", Json::str(rec.event.name())),
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("pid", Json::U64(1)),
        ("tid", Json::U64(tid)),
        ("ts", Json::U64(rec.at)),
        ("args", rec.event.args()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmm_types::VcpuId;

    fn rec(seq: u64, at: u64, event: Event) -> TraceRecord {
        TraceRecord { seq, at, event }
    }

    #[test]
    fn install_and_evict_produce_mode_slices() {
        let records = vec![
            rec(
                0,
                100,
                Event::SchedDecision {
                    action: SchedAction::InstallDmr,
                    core: CoreId(0),
                    partner: Some(CoreId(1)),
                    vcpu: Some(VcpuId(3)),
                },
            ),
            rec(
                1,
                900,
                Event::SchedDecision {
                    action: SchedAction::EvictDmr,
                    core: CoreId(0),
                    partner: Some(CoreId(1)),
                    vcpu: Some(VcpuId(3)),
                },
            ),
        ];
        let out = chrome_trace(&records, 2, 1000);
        assert!(out.contains("\"dmr-vocal V3\""), "{out}");
        assert!(out.contains("\"dmr-mute V3\""), "{out}");
        assert!(out.contains("\"dur\":800"), "{out}");
        assert!(out.contains("\"displayTimeUnit\":\"ns\""));
    }

    #[test]
    fn open_slices_are_closed_at_end() {
        let records = vec![rec(
            0,
            10,
            Event::SchedDecision {
                action: SchedAction::InstallSolo,
                core: CoreId(2),
                partner: None,
                vcpu: Some(VcpuId(0)),
            },
        )];
        let out = chrome_trace(&records, 4, 50);
        assert!(out.contains("\"perf V0\""));
        assert!(out.contains("\"dur\":40"), "{out}");
    }

    #[test]
    fn output_is_deterministic() {
        let records = vec![rec(
            0,
            5,
            Event::PabDeny {
                core: CoreId(1),
                page: 77,
            },
        )];
        assert_eq!(chrome_trace(&records, 2, 10), chrome_trace(&records, 2, 10));
    }

    #[test]
    fn counters_extend_the_plain_trace() {
        use crate::sampler::{MetricsSample, MetricsSeries};

        let records = vec![rec(
            0,
            5,
            Event::PabDeny {
                core: CoreId(1),
                page: 77,
            },
        )];
        let series = MetricsSeries {
            interval: 10,
            samples: vec![MetricsSample {
                at: 10,
                counters: vec![("pab.lookups".to_string(), 3)],
                gauges: vec![],
                histograms: vec![],
            }],
        };
        let plain = chrome_trace(&records, 2, 10);
        let with = chrome_trace_with_counters(&records, 2, 10, &series);
        assert!(with.contains("\"ph\":\"C\""), "{with}");
        assert!(with.contains("\"pab.lookups\""), "{with}");
        // The base events are a prefix: appending counters must not
        // perturb the plain export's timelines.
        let plain_events = plain.trim_end_matches("],\"displayTimeUnit\":\"ns\"}");
        assert!(with.starts_with(plain_events), "base events must match");
        // Empty series degenerates to the plain trace.
        let empty = chrome_trace_with_counters(&records, 2, 10, &MetricsSeries::default());
        assert_eq!(empty, plain);
    }

    #[test]
    fn forensics_spans_extend_without_perturbing_the_base() {
        use crate::forensics::{FaultRecord, FaultVerdict};

        let records = vec![rec(
            0,
            5,
            Event::PabDeny {
                core: CoreId(1),
                page: 77,
            },
        )];
        let faults = vec![FaultRecord {
            id: 0,
            at: 5,
            core: CoreId(1),
            site: "tlb_permission",
            mode: "perf",
            chain: Vec::new(),
            verdict: FaultVerdict::Detected {
                by: "pab",
                latency: Some(12),
            },
        }];
        let plain = chrome_trace(&records, 2, 10);
        let with = chrome_trace_full(&records, 2, 10, &MetricsSeries::default(), &faults);
        assert!(with.contains("\"ph\":\"b\""), "{with}");
        assert!(with.contains("\"ph\":\"e\""), "{with}");
        assert!(with.contains("\"cname\":\"good\""), "{with}");
        assert!(
            with.contains("\"tid\":4"),
            "faults track sits past the core tracks"
        );
        let plain_events = plain.trim_end_matches("],\"displayTimeUnit\":\"ns\"}");
        assert!(with.starts_with(plain_events), "base events must match");
        // No records: byte-identical to the plain trace.
        let none = chrome_trace_full(&records, 2, 10, &MetricsSeries::default(), &[]);
        assert_eq!(none, plain);
    }
}
