//! Fault forensics: a causal per-injection lifecycle recorder.
//!
//! The campaign telemetry (`fault.site.*`) says *how many* faults were
//! detected, masked, or escaped; this module says *why each one* did.
//! Every injected fault opens a [`FaultRecord`] carrying the injection
//! cycle/core/site, the core's role at injection, a causal chain of
//! architectural effects (wild-store target and PAB verdict, privreg
//! arming, fingerprint divergence), and a terminal [`FaultVerdict`].
//! On an *escape* — the one outcome the paper's mechanisms exist to
//! prevent — the record additionally dumps a "black box": the last
//! [`FORENSICS_WINDOW`] cycle-stamped events from the struck core's
//! per-core ring (reusing the [`Event`]/[`RingSink`] machinery).
//!
//! The handle discipline matches the [`crate::Tracer`] and
//! [`crate::Profiler`]: [`Forensics`] is an `Option<Rc<RefCell<..>>>`,
//! off by default, one branch per probe when off, clones share state,
//! and recording is purely observational — reports, metrics series,
//! and traces are bit-identical with forensics on or off. Records are
//! keyed by injection order, so the stream is deterministic across
//! thread counts like every other export.

use std::cell::RefCell;
use std::rc::Rc;

use mmm_types::{CoreId, Cycle};

use crate::event::{Event, TraceRecord};
use crate::json::Json;
use crate::sink::{RingSink, TraceSink};

/// Black-box depth: events retained per core for escape dumps.
pub const FORENSICS_WINDOW: usize = 32;

/// Terminal classification of one injected fault. The variants map
/// one-to-one onto the `fault.site.*` campaign counters: `Detected`
/// records sum to `detected`, `Masked` to `masked`, `Escaped` to
/// `escaped`, and `Pending` is the remainder (`injected` minus the
/// other three) — a corruption still armed when the run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultVerdict {
    /// Caught by a redundancy mechanism. `latency` is the exact
    /// injection-to-detection distance when one detection event could
    /// be attributed to exactly this injection; `None` when the
    /// injection merged into an already-armed detection (the
    /// documented `detection_latency.count() <= detected` contract).
    Detected {
        /// `dmr`, `pab`, or `enter_dmr`.
        by: &'static str,
        /// Cycles from injection to detection, when attributable.
        latency: Option<u64>,
    },
    /// Contained without any detector firing.
    Masked {
        /// Why it was harmless (`idle`, `silent_perf_fault`, ...).
        reason: &'static str,
    },
    /// Silent corruption reached memory.
    Escaped {
        /// Pages corrupted by the escaped store(s).
        pages: Vec<u64>,
        /// The struck core's last-events window at the escape.
        blackbox: Vec<TraceRecord>,
    },
    /// Unresolved at run end (or merged into an armed corruption that
    /// resolves as someone else's detection).
    Pending {
        /// Why no detector fired before the run ended.
        reason: &'static str,
    },
}

impl FaultVerdict {
    /// Stable export label (`detected_by_dmr`, `masked`, ...).
    pub fn label(&self) -> String {
        match self {
            FaultVerdict::Detected { by, .. } => format!("detected_by_{by}"),
            FaultVerdict::Masked { .. } => "masked".to_string(),
            FaultVerdict::Escaped { .. } => "escaped".to_string(),
            FaultVerdict::Pending { .. } => "pending".to_string(),
        }
    }
}

/// One cycle-stamped causal-chain entry.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainLink {
    /// When the effect happened.
    pub at: Cycle,
    /// What happened (`wild_store page=412 tlb_resident=false`, ...).
    pub what: String,
}

/// The full lifecycle of one injected fault.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRecord {
    /// Injection ordinal within the measured period (also the record's
    /// index in the report).
    pub id: u64,
    /// Injection cycle.
    pub at: Cycle,
    /// The struck core.
    pub core: CoreId,
    /// Stable site label (`core_logic`, `tlb_permission`, `priv_reg`).
    pub site: &'static str,
    /// The core's role at injection: `dmr_vocal`, `dmr_mute`, `perf`,
    /// or `idle`.
    pub mode: &'static str,
    /// Causal chain of architectural effects, injection onward.
    pub chain: Vec<ChainLink>,
    /// Terminal classification.
    pub verdict: FaultVerdict,
}

impl FaultRecord {
    /// The cycle the verdict landed: injection plus the attributed
    /// latency (injection itself for merged, masked, escaped, and
    /// pending outcomes).
    pub fn resolved_at(&self) -> Cycle {
        match &self.verdict {
            FaultVerdict::Detected {
                latency: Some(l), ..
            } => self.at + l,
            _ => self.at,
        }
    }

    /// The record as one JSON object (one `faults.jsonl` line). Every
    /// key is always present so the schema is fixed: `latency` and
    /// `reason` are `null` when inapplicable, `pages`/`blackbox` empty
    /// unless the fault escaped.
    pub fn to_json(&self, run: u64) -> Json {
        let (latency, reason, pages, blackbox) = match &self.verdict {
            FaultVerdict::Detected { latency, .. } => (
                latency.map_or(Json::Null, Json::U64),
                Json::Null,
                Vec::new(),
                Vec::new(),
            ),
            FaultVerdict::Masked { reason } => {
                (Json::Null, Json::str(*reason), Vec::new(), Vec::new())
            }
            FaultVerdict::Escaped { pages, blackbox } => (
                Json::Null,
                Json::Null,
                pages.iter().map(|&p| Json::U64(p)).collect(),
                blackbox.iter().map(blackbox_json).collect(),
            ),
            FaultVerdict::Pending { reason } => {
                (Json::Null, Json::str(*reason), Vec::new(), Vec::new())
            }
        };
        let chain = self
            .chain
            .iter()
            .map(|l| Json::obj([("at", Json::U64(l.at)), ("what", Json::str(l.what.clone()))]))
            .collect();
        Json::obj([
            ("kind", Json::str("fault")),
            ("run", Json::U64(run)),
            ("id", Json::U64(self.id)),
            ("at", Json::U64(self.at)),
            ("core", Json::U64(self.core.0 as u64)),
            ("site", Json::str(self.site)),
            ("mode", Json::str(self.mode)),
            ("verdict", Json::str(self.verdict.label())),
            ("latency", latency),
            ("reason", reason),
            ("pages", Json::Arr(pages)),
            ("chain", Json::Arr(chain)),
            ("blackbox", Json::Arr(blackbox)),
        ])
    }
}

/// One black-box window entry as JSON.
fn blackbox_json(r: &TraceRecord) -> Json {
    Json::obj([
        ("seq", Json::U64(r.seq)),
        ("at", Json::U64(r.at)),
        ("name", Json::str(r.event.name())),
        ("core", Json::U64(r.event.core().0 as u64)),
        ("args", r.event.args()),
    ])
}

/// Harvested forensics for one run: the records, in injection order.
/// Carried on the system report but — like the metrics series and the
/// profile — deliberately excluded from the golden report JSON;
/// exported separately as `*.faults.jsonl`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ForensicsReport {
    /// All injection records of the measured period.
    pub records: Vec<FaultRecord>,
}

impl ForensicsReport {
    /// Renders the report as JSONL: one run-header line (identity
    /// fields plus the record count, for pairing against the matching
    /// report line in the main export) followed by one line per
    /// record.
    pub fn jsonl(&self, run: u64, config: &str, benchmark: &str, scheduler: &str) -> Vec<String> {
        let mut lines = Vec::with_capacity(self.records.len() + 1);
        lines.push(
            Json::obj([
                ("kind", Json::str("mmm-faults-run")),
                ("run", Json::U64(run)),
                ("config", Json::str(config)),
                ("benchmark", Json::str(benchmark)),
                ("scheduler", Json::str(scheduler)),
                ("records", Json::U64(self.records.len() as u64)),
            ])
            .render(),
        );
        for r in &self.records {
            lines.push(r.to_json(run).render());
        }
        lines
    }
}

/// Recorder state behind one enabled handle.
#[derive(Debug)]
struct ForensicsState {
    records: Vec<FaultRecord>,
    /// Per-core black-box rings (grown on demand).
    rings: Vec<RingSink>,
    window: usize,
}

impl ForensicsState {
    fn ring(&mut self, core: CoreId) -> &mut RingSink {
        let idx = core.index();
        while self.rings.len() <= idx {
            self.rings.push(RingSink::new(self.window));
        }
        &mut self.rings[idx]
    }
}

/// The cheap, cloneable forensics handle threaded through the
/// simulator. `Forensics::default()` is off — every probe is a single
/// branch and no payload is ever constructed. Record ids double as
/// indices into the record table, so follow-up probes (latency
/// attribution, verdict upgrades) are O(1).
#[derive(Clone, Debug, Default)]
pub struct Forensics {
    state: Option<Rc<RefCell<ForensicsState>>>,
}

impl Forensics {
    /// The zero-overhead disabled recorder (same as `default()`).
    pub fn off() -> Self {
        Self { state: None }
    }

    /// An enabled recorder with per-core black-box rings of `window`
    /// events, pre-sized for `cores` cores. Clones share state.
    pub fn enabled(cores: usize, window: usize) -> Self {
        let window = window.max(1);
        Self {
            state: Some(Rc::new(RefCell::new(ForensicsState {
                records: Vec::new(),
                rings: (0..cores).map(|_| RingSink::new(window)).collect(),
                window,
            }))),
        }
    }

    /// Whether records are being kept.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.state.is_some()
    }

    /// Records a black-box context event (attributed to the event's
    /// core). When forensics is off, `f` is never called.
    #[inline]
    pub fn note(&self, at: Cycle, f: impl FnOnce() -> Event) {
        if let Some(state) = &self.state {
            let event = f();
            let core = event.core();
            state.borrow_mut().ring(core).record(at, event);
        }
    }

    /// Opens a record for a fresh injection; returns its id (`None`
    /// when off — the id threads through the resolution plumbing as an
    /// `Option` so the off path stays branch-only).
    pub fn open(
        &self,
        at: Cycle,
        core: CoreId,
        site: &'static str,
        mode: &'static str,
    ) -> Option<u64> {
        let state = self.state.as_ref()?;
        let mut s = state.borrow_mut();
        let id = s.records.len() as u64;
        s.records.push(FaultRecord {
            id,
            at,
            core,
            site,
            mode,
            chain: Vec::new(),
            verdict: FaultVerdict::Pending {
                reason: "unresolved",
            },
        });
        Some(id)
    }

    /// Appends a causal-chain entry to record `id`. The string is only
    /// built when forensics is on and the id is live.
    #[inline]
    pub fn link(&self, id: Option<u64>, at: Cycle, f: impl FnOnce() -> String) {
        if let (Some(state), Some(id)) = (&self.state, id) {
            let mut s = state.borrow_mut();
            let what = f();
            if let Some(r) = s.records.get_mut(id as usize) {
                r.chain.push(ChainLink { at, what });
            }
        }
    }

    fn with_record(&self, id: Option<u64>, f: impl FnOnce(&mut FaultRecord)) {
        if let (Some(state), Some(id)) = (&self.state, id) {
            let mut s = state.borrow_mut();
            if let Some(r) = s.records.get_mut(id as usize) {
                f(r);
            }
        }
    }

    /// Resolves record `id` as detected by `by`, with an attributable
    /// latency or `None` for a merged detection.
    pub fn detected(&self, id: Option<u64>, by: &'static str, latency: Option<u64>) {
        self.with_record(id, |r| {
            r.verdict = FaultVerdict::Detected { by, latency };
        });
    }

    /// Upgrades an already-`Detected` record with the exact detection
    /// cycle once the deferred detection event lands (DMR fingerprint
    /// mismatches detect at pair service, cycles after injection).
    pub fn attribute_latency(&self, id: Option<u64>, detected_at: Cycle) {
        self.with_record(id, |r| {
            let latency = detected_at.saturating_sub(r.at);
            if let FaultVerdict::Detected { latency: l, .. } = &mut r.verdict {
                *l = Some(latency);
            }
            r.chain.push(ChainLink {
                at: detected_at,
                what: format!("fingerprint_mismatch_detected latency={latency}"),
            });
        });
    }

    /// Resolves record `id` as masked.
    pub fn masked(&self, id: Option<u64>, reason: &'static str) {
        self.with_record(id, |r| {
            r.verdict = FaultVerdict::Masked { reason };
        });
    }

    /// Marks record `id` terminally pending with an explicit reason
    /// (e.g. merged into an already-armed privreg corruption, whose
    /// eventual detection belongs to the first injection).
    pub fn pending(&self, id: Option<u64>, reason: &'static str) {
        self.with_record(id, |r| {
            r.verdict = FaultVerdict::Pending { reason };
        });
    }

    /// Resolves record `id` as escaped, dumping the struck core's
    /// black-box window and the corrupted page set into the record.
    pub fn escaped(&self, id: Option<u64>, pages: Vec<u64>) {
        if let (Some(state), Some(id)) = (&self.state, id) {
            let mut s = state.borrow_mut();
            let Some(core) = s.records.get(id as usize).map(|r| r.core) else {
                return;
            };
            let blackbox = s.ring(core).snapshot();
            if let Some(r) = s.records.get_mut(id as usize) {
                r.verdict = FaultVerdict::Escaped { pages, blackbox };
            }
        }
    }

    /// Drops all records (the warm-up reset): the harvested report
    /// covers exactly the measured period, like every other counter.
    /// Black-box rings survive — pre-reset context is still the most
    /// recent history a post-reset escape wants to dump.
    pub fn reset(&self) {
        if let Some(state) = &self.state {
            state.borrow_mut().records.clear();
        }
    }

    /// Harvests the records into a [`ForensicsReport`], finalizing
    /// still-unresolved records (a privreg corruption armed at run
    /// end) with a terminal `pending` reason. `None` when off.
    pub fn take_report(&self) -> Option<ForensicsReport> {
        let state = self.state.as_ref()?;
        let mut s = state.borrow_mut();
        let mut records = std::mem::take(&mut s.records);
        for r in &mut records {
            if matches!(
                r.verdict,
                FaultVerdict::Pending {
                    reason: "unresolved"
                }
            ) {
                r.verdict = FaultVerdict::Pending {
                    reason: "armed_at_run_end",
                };
            }
        }
        Some(ForensicsReport { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_builds_payloads() {
        let f = Forensics::off();
        let mut built = false;
        f.note(1, || {
            built = true;
            Event::SiStall {
                core: CoreId(0),
                cycles: 1,
            }
        });
        f.link(Some(0), 1, || {
            built = true;
            String::new()
        });
        assert!(!built);
        assert!(!f.is_on());
        assert_eq!(f.open(1, CoreId(0), "core_logic", "perf"), None);
        assert!(f.take_report().is_none());
    }

    #[test]
    fn lifecycle_detected_with_latency() {
        let f = Forensics::enabled(2, 8);
        let id = f.open(100, CoreId(1), "core_logic", "dmr_mute");
        assert_eq!(id, Some(0));
        f.link(id, 100, || "fingerprint_divergence_armed".to_string());
        f.detected(id, "dmr", None);
        f.attribute_latency(id, 140);
        let rep = f.take_report().unwrap();
        assert_eq!(rep.records.len(), 1);
        let r = &rep.records[0];
        assert_eq!(
            r.verdict,
            FaultVerdict::Detected {
                by: "dmr",
                latency: Some(40)
            }
        );
        assert_eq!(r.resolved_at(), 140);
        assert_eq!(r.chain.len(), 2);
        assert_eq!(r.verdict.label(), "detected_by_dmr");
    }

    #[test]
    fn escape_dumps_the_black_box() {
        let f = Forensics::enabled(1, 4);
        for i in 0..10u64 {
            f.note(i, || Event::SiStall {
                core: CoreId(0),
                cycles: i,
            });
        }
        let id = f.open(10, CoreId(0), "tlb_permission", "perf");
        f.note(10, || Event::FaultInjected {
            core: CoreId(0),
            site: "tlb_permission",
        });
        f.escaped(id, vec![412]);
        let rep = f.take_report().unwrap();
        let FaultVerdict::Escaped { pages, blackbox } = &rep.records[0].verdict else {
            panic!("escaped verdict expected");
        };
        assert_eq!(pages, &vec![412]);
        assert_eq!(blackbox.len(), 4, "window bound holds");
        assert_eq!(
            blackbox.last().unwrap().event.name(),
            "fault_injected",
            "injection is the newest black-box entry"
        );
    }

    #[test]
    fn unresolved_records_finalize_as_pending() {
        let f = Forensics::enabled(1, 4);
        let id = f.open(5, CoreId(0), "priv_reg", "perf");
        f.link(id, 5, || "privreg_armed".to_string());
        let rep = f.take_report().unwrap();
        assert_eq!(
            rep.records[0].verdict,
            FaultVerdict::Pending {
                reason: "armed_at_run_end"
            }
        );
    }

    #[test]
    fn reset_clears_records_and_restarts_ids() {
        let f = Forensics::enabled(1, 4);
        f.open(5, CoreId(0), "core_logic", "perf");
        f.reset();
        let id = f.open(9, CoreId(0), "core_logic", "perf");
        assert_eq!(id, Some(0), "ids restart at the measurement reset");
        assert_eq!(f.take_report().unwrap().records.len(), 1);
    }

    #[test]
    fn jsonl_is_schema_stable() {
        let f = Forensics::enabled(1, 4);
        let a = f.open(5, CoreId(0), "core_logic", "idle");
        f.masked(a, "idle");
        let rep = f.take_report().unwrap();
        let lines = rep.jsonl(3, "MMM-TP", "oltp", "gang");
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"kind\":\"mmm-faults-run\""));
        assert!(lines[0].contains("\"records\":1"));
        let rec = Json::parse(&lines[1]).unwrap();
        for key in [
            "kind", "run", "id", "at", "core", "site", "mode", "verdict", "latency", "reason",
            "pages", "chain", "blackbox",
        ] {
            assert!(rec.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(rec.get("verdict").unwrap().as_str(), Some("masked"));
        assert_eq!(rec.get("run").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn clones_share_state() {
        let a = Forensics::enabled(1, 4);
        let b = a.clone();
        let id = a.open(1, CoreId(0), "core_logic", "perf");
        b.detected(id, "dmr", Some(7));
        let rep = a.take_report().unwrap();
        assert_eq!(
            rep.records[0].verdict,
            FaultVerdict::Detected {
                by: "dmr",
                latency: Some(7)
            }
        );
    }
}
